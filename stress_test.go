package cods_test

import (
	"fmt"
	"reflect"
	"testing"

	"cods"
	"cods/internal/workload"
)

// TestStressAllOperators drives every SMO over a generated 100k-row table
// through the public API, validating the catalog's structural invariants
// after each step and verifying that the decompose∘merge and
// partition∘union round trips preserve the tuple multiset.
func TestStressAllOperators(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	db := cods.Open(cods.Config{ValidateFD: true})
	r, err := workload.BuildColstore(workload.Spec{Rows: 100_000, DistinctKeys: 2_000, Seed: 99}, "R")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTableFromRows("R", r.ColumnNames(), nil, rows); err != nil {
		t.Fatal(err)
	}
	original, err := db.RunQuery("R", cods.TableQuery{
		Aggregates: []cods.Agg{{Func: cods.Count}},
	})
	if err != nil {
		t.Fatal(err)
	}

	exec := func(op string) {
		t.Helper()
		if _, err := db.Exec(op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("after %s: %v", op, err)
		}
	}

	// One pass over every Table 1 operator.
	exec("COPY TABLE R TO Backup")
	exec("ADD COLUMN Tag TO R DEFAULT 'none'")
	exec("RENAME COLUMN Tag TO Label IN R")
	exec("DROP COLUMN Label FROM R")
	exec("DECOMPOSE TABLE R INTO S (A, B), T (A, C)")
	exec("MERGE TABLES S, T INTO R")
	exec("PARTITION TABLE R WHERE A < 'k0001000' INTO Low, High")
	exec("UNION TABLES Low, High INTO R")
	exec("RENAME TABLE Backup TO Archive")
	exec("CREATE TABLE Scratch (X, Y) KEY (X)")
	exec("DROP TABLE Scratch")
	exec("DROP TABLE Archive")

	// After the full tour, R holds exactly the original multiset.
	archive, err := db.Rows("R", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(len(archive)) != original.Rows[0][0] {
		t.Fatalf("row count drifted: %d vs %s", len(archive), original.Rows[0][0])
	}
	back := map[string]int{}
	for _, row := range archive {
		back[row[0]+"\x00"+row[1]+"\x00"+row[2]]++
	}
	want := map[string]int{}
	for _, row := range rows {
		want[row[0]+"\x00"+row[1]+"\x00"+row[2]]++
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatal("operator tour changed the data")
	}

	// History recorded the tour; rollback to the very beginning works.
	if len(db.History()) != 12 {
		t.Fatalf("history=%d", len(db.History()))
	}
	if err := db.Rollback(0); err != nil {
		t.Fatal(err)
	}
	n, _ := db.NumRows("R")
	if n != 100_000 {
		t.Fatalf("rows after rollback=%d", n)
	}
}

package cods_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cods"
)

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func employeeDB(t *testing.T) *cods.DB {
	t.Helper()
	db := cods.Open(cods.Config{Parallelism: 2})
	rows := [][]string{
		{"jones", "typing", "sf"},
		{"ellis", "alchemy", "la"},
		{"smith", "typing", "sf"},
	}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "City"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDMLThroughExec drives INSERT/UPDATE/DELETE through the public Exec
// path and checks every facade read merges the delta overlay.
func TestDMLThroughExec(t *testing.T) {
	db := employeeDB(t)
	v0 := db.Version()

	res, err := db.Exec("INSERT INTO R VALUES ('brown', 'typing', 'oakland')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "INSERT" || res.Version != v0+1 {
		t.Fatalf("INSERT result = %+v", res)
	}
	if len(res.Created) != 0 || len(res.Dropped) != 0 {
		t.Fatalf("DML reported catalog changes: created=%v dropped=%v", res.Created, res.Dropped)
	}

	if _, err := db.Exec("UPDATE R SET City = 'berkeley' WHERE Employee = 'smith'"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM R WHERE Employee = 'ellis'"); err != nil {
		t.Fatal(err)
	}

	want := [][]string{
		{"jones", "typing", "sf"},
		{"smith", "typing", "berkeley"},
		{"brown", "typing", "oakland"},
	}
	n, err := db.NumRows("R")
	if err != nil || n != 3 {
		t.Fatalf("NumRows = %d (%v), want 3", n, err)
	}
	rows, err := db.Rows("R", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedRows(rows), sortedRows(want)) {
		t.Fatalf("Rows = %v, want %v", rows, want)
	}
	got, err := db.Query("R", "Skill = 'typing'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Query(typing) = %v, want 3 rows", got)
	}
	cnt, err := db.Count("R", "City = 'berkeley'")
	if err != nil || cnt != 1 {
		t.Fatalf("Count(berkeley) = %d (%v), want 1", cnt, err)
	}
	// Aggregation flushes the overlay transparently.
	rs, err := db.RunQuery("R", cods.TableQuery{
		GroupBy:    "Skill",
		Aggregates: []cods.Agg{{Func: cods.Count}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][1] != "3" {
		t.Fatalf("grouped count = %v, want [[typing 3]]", rs.Rows)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != v0+3 {
		t.Fatalf("Version = %d, want %d (one per DML statement)", got, v0+3)
	}
}

// TestDMLVisibleToEvolution checks the flush-before-evolve rule: an
// evolution over a table with pending DML operates on the merged tuples.
func TestDMLVisibleToEvolution(t *testing.T) {
	db := employeeDB(t)
	script := `
INSERT INTO R VALUES ('brown', 'welding', 'sf')
DELETE FROM R WHERE Employee = 'ellis'
DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, City)
`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("S", "Employee = 'brown'")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][1] != "welding" {
		t.Fatalf("decomposed S misses inserted row: %v", got)
	}
	cnt, err := db.Count("T", "Employee = 'ellis'")
	if err != nil || cnt != 0 {
		t.Fatalf("deleted row survived decomposition: count=%d err=%v", cnt, err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackRestoresPreDMLState: DML versions are catalog versions, so
// rollback walks them back like any schema change.
func TestRollbackRestoresPreDMLState(t *testing.T) {
	db := employeeDB(t)
	v0 := db.Version()
	if _, err := db.Exec("DELETE FROM R"); err != nil {
		t.Fatal(err)
	}
	n, _ := db.NumRows("R")
	if n != 0 {
		t.Fatalf("NumRows after DELETE FROM R = %d, want 0", n)
	}
	if err := db.Rollback(v0); err != nil {
		t.Fatal(err)
	}
	n, _ = db.NumRows("R")
	if n != 3 {
		t.Fatalf("NumRows after rollback = %d, want 3", n)
	}
}

// TestCompactInMemory: an in-memory DB can retire overlays without a
// durable checkpoint — content and version unchanged, and DML keeps
// working afterwards.
func TestCompactInMemory(t *testing.T) {
	db := employeeDB(t)
	if _, err := db.Exec("INSERT INTO R VALUES ('kim', 'editing', 'ny')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM R WHERE Employee = 'ellis'"); err != nil {
		t.Fatal(err)
	}
	before, err := db.Rows("R", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := db.Version()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := db.Version(); got != v {
		t.Fatalf("Compact changed version %d -> %d", v, got)
	}
	after, err := db.Rows("R", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedRows(after), sortedRows(before)) {
		t.Fatalf("Compact changed content: %v -> %v", before, after)
	}
	if _, err := db.Exec("INSERT INTO R VALUES ('post', 'compact', 'sf')"); err != nil {
		t.Fatal(err)
	}
	n, err := db.NumRows("R")
	if err != nil || n != uint64(len(before)+1) {
		t.Fatalf("NumRows after post-compact insert = %d (%v), want %d", n, err, len(before)+1)
	}
}

// TestSnapshotPinsDelta: an explicitly held snapshot keeps observing its
// delta overlay state while later DML commits.
func TestSnapshotPinsDelta(t *testing.T) {
	db := employeeDB(t)
	if _, err := db.Exec("INSERT INTO R VALUES ('kim', 'editing', 'ny')"); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if _, err := db.Exec("DELETE FROM R"); err != nil {
		t.Fatal(err)
	}
	n, err := snap.NumRows("R")
	if err != nil || n != 4 {
		t.Fatalf("pinned snapshot NumRows = %d (%v), want 4", n, err)
	}
	cnt, err := snap.Count("R", "Employee = 'kim'")
	if err != nil || cnt != 1 {
		t.Fatalf("pinned snapshot Count(kim) = %d (%v), want 1", cnt, err)
	}
	if n, _ := db.NumRows("R"); n != 0 {
		t.Fatalf("live NumRows = %d, want 0", n)
	}
}

// TestReadsDuringParkedEvolutionSeeDelta is the acceptance criterion:
// with DML pending on R, park a DECOMPOSE of R mid-operator (it holds
// the write path and has already flushed the delta into its working
// input) and assert readers still observe the pre-evolution snapshot
// including the delta. Under -race this also exercises DML statements
// racing the parked evolution's publication.
func TestReadsDuringParkedEvolutionSeeDelta(t *testing.T) {
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db := cods.Open(cods.Config{Parallelism: 2, Status: func(step string) {
		// Park only once the evolution proper starts, not on the delta
		// flush event that precedes it.
		if strings.HasPrefix(step, "distinction") {
			once.Do(func() {
				close(parked)
				<-release
			})
		}
	}})
	var rows [][]string
	for i := 0; i < 200; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("e%03d", i%20),
			fmt.Sprintf("s%03d", i),
			fmt.Sprintf("a%02d", i%10),
		})
	}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO R VALUES ('e999', 'snew', 'a99')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM R WHERE Employee = 'e000'"); err != nil {
		t.Fatal(err)
	}
	vPre := db.Version()

	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
		done <- err
	}()
	<-parked

	// Concurrent DML queued behind the parked evolution must neither
	// block readers nor become visible early.
	dmlDone := make(chan error, 1)
	go func() {
		_, err := db.Exec("INSERT INTO S VALUES ('late', 'slate')")
		dmlDone <- err
	}()

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		if got := db.Version(); got != vPre {
			t.Errorf("Version mid-evolution = %d, want %d", got, vPre)
		}
		n, err := db.NumRows("R")
		if err != nil || n != 191 {
			t.Errorf("NumRows mid-evolution = %d (%v), want 191 (200 - 10 deleted + 1 inserted)", n, err)
		}
		cnt, err := db.Count("R", "Employee = 'e999'")
		if err != nil || cnt != 1 {
			t.Errorf("inserted row invisible mid-evolution: %d (%v)", cnt, err)
		}
		cnt, err = db.Count("R", "Employee = 'e000'")
		if err != nil || cnt != 0 {
			t.Errorf("deleted rows visible mid-evolution: %d (%v)", cnt, err)
		}
		if db.HasTable("S") {
			t.Error("half-applied DECOMPOSE output visible")
		}
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("reads blocked behind a parked evolution")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-dmlDone; err != nil {
		t.Fatal(err)
	}

	// Post-evolution: outputs contain the delta's effects, plus the
	// late DML landed on S.
	cnt, err := db.Count("S", "Employee = 'e999'")
	if err != nil || cnt != 1 {
		t.Fatalf("S misses pre-evolution insert: %d (%v)", cnt, err)
	}
	cnt, err = db.Count("S", "Employee = 'e000'")
	if err != nil || cnt != 0 {
		t.Fatalf("S contains pre-evolution deleted rows: %d (%v)", cnt, err)
	}
	cnt, err = db.Count("S", "Employee = 'late'")
	if err != nil || cnt != 1 {
		t.Fatalf("queued DML lost: %d (%v)", cnt, err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDMLQueriesAndEvolution races DML writers, snapshot
// readers and an evolution loop on the same DB; run under -race it
// checks the copy-on-write overlay publication.
func TestConcurrentDMLQueriesAndEvolution(t *testing.T) {
	db := cods.Open(cods.Config{Parallelism: 2})
	var rows [][]string
	for i := 0; i < 1000; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("e%04d", i%100),
			fmt.Sprintf("s%04d", i),
			fmt.Sprintf("a%03d", i%50),
		})
	}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	// W is the DML battleground; R evolves concurrently.
	if err := db.CreateTableFromRows("W", []string{"K", "V"},
		nil, [][]string{{"seed", "0"}}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"); err != nil {
				errs <- fmt.Errorf("decompose %d: %w", i, err)
				return
			}
			if _, err := db.Exec("MERGE TABLES T, S INTO R"); err != nil {
				errs <- fmt.Errorf("merge %d: %w", i, err)
				return
			}
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO W VALUES ('%s', '%d')", k, i)); err != nil {
					errs <- fmt.Errorf("insert %s: %w", k, err)
					return
				}
				if i%3 == 0 {
					if _, err := db.Exec(fmt.Sprintf("UPDATE W SET V = '99' WHERE K = '%s'", k)); err != nil {
						errs <- fmt.Errorf("update %s: %w", k, err)
						return
					}
				}
				if i%5 == 0 {
					if _, err := db.Exec(fmt.Sprintf("DELETE FROM W WHERE K = '%s'", k)); err != nil {
						errs <- fmt.Errorf("delete %s: %w", k, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := db.Count("W", "V = '99'"); err != nil {
					errs <- fmt.Errorf("count: %w", err)
					return
				}
				snap := db.Snapshot()
				if _, err := snap.NumRows("W"); err != nil {
					errs <- fmt.Errorf("numrows: %w", err)
					return
				}
				db.Tables()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Deterministic final state on W: per writer, inserts minus deletes.
	n, err := db.NumRows("W")
	if err != nil {
		t.Fatal(err)
	}
	// 1 seed + 2 writers × (25 inserts - 5 deletes).
	if want := uint64(1 + 2*20); n != want {
		t.Fatalf("W has %d rows, want %d", n, want)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

package cods

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func employeeRows() [][]string {
	return [][]string{
		{"Jones", "Typing", "425 Grant Ave"},
		{"Jones", "Shorthand", "425 Grant Ave"},
		{"Roberts", "Light Cleaning", "747 Industrial Way"},
		{"Ellis", "Alchemy", "747 Industrial Way"},
		{"Jones", "Whittling", "425 Grant Ave"},
		{"Ellis", "Juggling", "747 Industrial Way"},
		{"Harrison", "Light Cleaning", "425 Grant Ave"},
	}
}

func openWithR(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{ValidateFD: true})
	err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, employeeRows())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPaperScenarioEndToEnd(t *testing.T) {
	db := openWithR(t)

	res, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "DECOMPOSE TABLE" || res.Version != 1 {
		t.Fatalf("result: %+v", res)
	}
	if !reflect.DeepEqual(db.Tables(), []string{"S", "T"}) {
		t.Fatalf("tables=%v", db.Tables())
	}
	nT, _ := db.NumRows("T")
	if nT != 4 {
		t.Fatalf("T rows=%d", nT)
	}

	if _, err := db.Exec("MERGE TABLES S, T INTO R"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Rows("R", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("R rows=%d", len(rows))
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.Version() != 2 || len(db.History()) != 2 {
		t.Fatalf("version=%d history=%d", db.Version(), len(db.History()))
	}
}

func TestQueryAndCount(t *testing.T) {
	db := openWithR(t)
	rows, err := db.Query("R", "Address = '425 Grant Ave' AND Skill != 'Typing'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%v", rows)
	}
	n, err := db.Count("R", "Employee = 'Jones'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count=%d", n)
	}
	if _, err := db.Query("R", "bad syntax ~"); err == nil {
		t.Fatal("bad condition should fail")
	}
	if _, err := db.Count("Nope", "x = 1"); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestDescribe(t *testing.T) {
	db := openWithR(t)
	info, err := db.Describe("R")
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 7 || len(info.Columns) != 3 {
		t.Fatalf("info=%+v", info)
	}
	if info.Columns[0].Name != "Employee" || info.Columns[0].DistinctValues != 4 {
		t.Fatalf("columns=%+v", info.Columns)
	}
	if info.Columns[0].Encoding != "bitmap" {
		t.Fatalf("encoding=%s", info.Columns[0].Encoding)
	}
	cols, err := db.Columns("R")
	if err != nil || len(cols) != 3 {
		t.Fatalf("cols=%v err=%v", cols, err)
	}
}

func TestExecScript(t *testing.T) {
	db := openWithR(t)
	results, err := db.ExecScript(`
-- the paper's round trip
DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)
MERGE TABLES S, T INTO R
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results=%d", len(results))
	}
	if results[1].Kind != "MERGE TABLES" {
		t.Fatalf("second result: %+v", results[1])
	}
}

func TestSaveOpenDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dbdir")
	db := openWithR(t)
	if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db2.Tables(), []string{"S", "T"}) {
		t.Fatalf("tables=%v", db2.Tables())
	}
	// The reopened database evolves correctly.
	if _, err := db2.Exec("MERGE TABLES S, T INTO R"); err != nil {
		t.Fatal(err)
	}
	n, _ := db2.NumRows("R")
	if n != 7 {
		t.Fatalf("rows=%d", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	db := openWithR(t)
	if err := db.SaveCSV(path, "R"); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadCSV(path, "R2"); err != nil {
		t.Fatal(err)
	}
	a, _ := db.Rows("R", 0, 0)
	b, _ := db.Rows("R2", 0, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CSV round trip changed rows")
	}
}

func TestStatusEvents(t *testing.T) {
	var steps []string
	db := Open(Config{Status: func(s string) { steps = append(steps, s) }})
	db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, employeeRows())
	if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(steps, "\n"), "bitmap filtering") {
		t.Fatalf("steps=%v", steps)
	}
}

func TestRollback(t *testing.T) {
	db := openWithR(t)
	if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP COLUMN Skill FROM S"); err != nil {
		t.Fatal(err)
	}
	// Back to the original single-table schema (version 0).
	if err := db.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.Tables(), []string{"R"}) {
		t.Fatalf("tables=%v", db.Tables())
	}
	n, _ := db.NumRows("R")
	if n != 7 {
		t.Fatalf("rows=%d", n)
	}
	// Rollback is itself versioned; history is append-only.
	if db.Version() != 3 {
		t.Fatalf("version=%d", db.Version())
	}
	// Forward again to version 1 (the decomposed schema).
	if err := db.Rollback(1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.Tables(), []string{"S", "T"}) {
		t.Fatalf("tables=%v", db.Tables())
	}
	s, _ := db.Columns("S")
	if len(s) != 2 {
		t.Fatalf("S columns=%v (should have Skill back)", s)
	}
	if err := db.Rollback(99); err == nil {
		t.Fatal("rollback to unknown version should fail")
	}
}

func TestRunQuery(t *testing.T) {
	db := openWithR(t)
	rs, err := db.RunQuery("R", TableQuery{
		GroupBy:    "Address",
		Aggregates: []Agg{{Func: Count}, {Func: CountDistinct, Column: "Employee", As: "employees"}},
		OrderBy:    "Address",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"425 Grant Ave", "4", "2"},
		{"747 Industrial Way", "3", "2"},
	}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows=%v", rs.Rows)
	}
	if rs.Columns[2] != "employees" {
		t.Fatalf("columns=%v", rs.Columns)
	}

	sel, err := db.RunQuery("R", TableQuery{
		Select:  []string{"Employee"},
		Where:   "Skill = 'Light Cleaning'",
		OrderBy: "Employee",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel.Rows, [][]string{{"Harrison"}, {"Roberts"}}) {
		t.Fatalf("rows=%v", sel.Rows)
	}

	if _, err := db.RunQuery("Nope", TableQuery{}); err == nil {
		t.Fatal("unknown table should fail")
	}
	if _, err := db.RunQuery("R", TableQuery{Aggregates: []Agg{{Func: AggFunc(99)}}}); err == nil {
		t.Fatal("unknown aggregate should fail")
	}
}

func TestAdvise(t *testing.T) {
	db := openWithR(t)
	suggestions, err := db.Advise("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no suggestions for Figure 1's table")
	}
	// The top suggestion must be executable and preserve the data.
	if _, err := db.Exec(suggestions[0].Operator); err != nil {
		t.Fatalf("suggested operator %q failed: %v", suggestions[0].Operator, err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Advise("Nope"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestExecErrors(t *testing.T) {
	db := openWithR(t)
	if _, err := db.Exec("NOT AN OPERATOR"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := db.Exec("DROP TABLE Nope"); err == nil {
		t.Fatal("unknown table error expected")
	}
	// Failed ops do not bump the version.
	if db.Version() != 0 {
		t.Fatalf("version=%d", db.Version())
	}
}

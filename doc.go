// Package cods is a Go implementation of CODS — "Column Oriented Database
// Schema update" — the data-level data evolution platform for column
// oriented databases described in:
//
//	Liu, Natarajan, He, Hsiao, Chen.
//	CODS: Evolving Data Efficiently and Scalably in Column Oriented
//	Databases. PVLDB 3(2), VLDB 2010.
//
// Tables are stored as bitmap-indexed columns: one value dictionary and
// one WAH-compressed bitmap per distinct value. Schema Modification
// Operators (DECOMPOSE TABLE, MERGE TABLES, PARTITION, UNION, column
// operations, ...) evolve the stored data directly on the compressed
// bitmaps — without materializing query results, without rebuilding
// indexes, and without decompressing columns — which is orders of
// magnitude faster than executing the equivalent INSERT ... SELECT at
// query level.
//
// # Quick start
//
//	db := cods.Open(cods.Config{})
//	db.CreateTableFromRows("R",
//		[]string{"Employee", "Skill", "Address"}, nil, rows)
//	res, err := db.Exec(
//		"DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
//	...
//	res, err = db.Exec("MERGE TABLES S, T INTO R")
//	res, err = db.Exec("INSERT INTO R VALUES ('Nguyen', 'Juggling', '12 Side St')")
//
// The operator syntax is the paper's Table 1 plus the DML statements
// INSERT INTO t VALUES (...), DELETE FROM t [WHERE ...] and UPDATE t SET
// c = 'v' [WHERE ...]; see the Exec documentation for the full grammar.
// Reads have a statement form of their own — SELECT ... FROM t [JOIN u
// ON (...)] ... — executed by Select, not Exec (see "Queries and the
// join planner" below).
// Lower-level building blocks (the WAH bitmap engine, the column store,
// the DML delta overlay, the evolution algorithms, the row-store
// baselines used by the benchmark harness) live under internal/ and are
// exercised through this facade, the example programs, and the cmd/
// tools.
//
// # DML and the delta overlay
//
// Tables accept row-level writes without giving up immutable storage:
// each catalog entry is a base table plus a delta overlay
// (internal/delta) of appended rows and a deletion bitmap, derived
// copy-on-write per statement and published like any other catalog
// change. Reads merge base and delta transparently; an evolution
// operator over a table with pending DML flushes the delta into the base
// first; Checkpoint compacts overlays the same way. DML statements
// are WAL-journaled as text and replayed on recovery like SMOs. The
// write path is amortized O(1) per keyed statement: a per-lineage key
// index of the appended tail answers INSERT conflicts and point
// DELETE/UPDATE matches without scanning pending rows.
//
// # Queries and the join planner
//
// DB.Select (and Snapshot.Select) parses and runs one read-only SELECT
// statement:
//
//	SELECT <columns | * | aggregates> FROM t [JOIN u ON (col, ...)]...
//		[WHERE <condition>] [GROUP BY col]
//		[ORDER BY col [ASC|DESC]] [LIMIT n]
//
// Joins are inner equi-joins, USING-style: each ON column must exist on
// both sides and appears once in the output; the written join order
// defines the output schema. RunQuery is the structured equivalent
// (TableQuery with a Joins field). Multi-table queries are planned by a
// small cost-based planner (internal/plan): WHERE conjuncts that
// mention only one table's columns are pushed into that table's scan
// and evaluated as compressed per-value bitmaps; joins are reordered
// greedily by estimated cardinality from the column statistics
// (dictionary distinct counts over row counts, surfaced per table in
// Describe and the server's /stats); and when a join key's dictionaries
// share lineage — pointer-equal or value-identical, the natural state
// for tables produced by DECOMPOSE — the probe side is pre-reduced by a
// WAH semi-join mask, so rows that cannot join are never decoded.
// Predicates that genuinely span tables stay as a residual filter above
// the join. Plan shapes (the statement with literals stripped, plus the
// schema version) are memoized in a small LRU cache on the DB, so a
// repeated query shape skips pushdown analysis and join ordering;
// evolutions invalidate by construction because the version changes.
//
// Semantically, SELECT over a join is the inverse of DECOMPOSE: joining
// the decomposition back on its shared key returns exactly the rows of
// the original table (when the decomposition was lossless), which the
// test suite exploits as a correctness oracle for data-level evolution.
// SELECT never changes catalog state: Exec rejects it (nothing to
// journal or roll back), it creates no version, and it runs lock-free
// against one pinned snapshot like every other read.
//
// # Segmented base storage
//
// A base table is an ordered list of immutable segments behind a
// manifest (internal/colstore), so a flush seals the appended tail into
// one new small segment and rewrites only the segments deletions touch —
// O(tail) work however large the table is, where the old monolithic
// rebuild was O(table). A tiered merge policy folds small tail segments
// together to keep the segment count logarithmic: Config.SegmentMergeRatio
// tunes it (0 means the default ratio 2, negative disables merging) and
// Config.BackgroundMerge moves the fold off the writer lock, splicing
// the merged run back only if no concurrent change invalidated it.
// Config.RebuildOnFlush restores the monolithic rebuild — kept as the
// oracle for the segmented-vs-rebuild property test and as the
// superlinear baseline in the huge-table write benchmark. Durable
// catalogs persist one directory per segment and cross-check the
// manifest's row counts on load.
//
// # Segment-wise evolution
//
// Schema Modification Operators run segment-wise too: each operator maps
// over the input's segments (local dictionaries, local bitmaps — fanned
// out like any other bitmap work) and merges the per-segment results
// under a union dictionary, so evolution cost tracks distinct values and
// touched segments rather than the stitched table size, and evolution
// outputs stay segmented — UNION adopts both inputs' segments outright,
// a key–FK MERGE keeps one output segment per fact segment, and the
// deduplicated DECOMPOSE side packs each segment's surviving rows into a
// segment of its own. Outputs feed back into the tiered merge policy,
// and MemStats reports the per-table segment layout plus the running
// merge count. Config.RebuildEvolve forces the pre-segmentation
// monolithic algorithms instead — like RebuildOnFlush, an oracle (the
// property test requires byte-identical tables from both paths) and the
// baseline the evolution benchmark measures the segment-wise win
// against. Leave both off in production.
//
// # Bounded memory: retention and auto-compaction
//
// Every statement produces a rollback-able catalog version, so on
// write-heavy workloads memory grows with statement count unless
// bounded. Config.RetainVersions prunes the version history after every
// commit to the current version plus N predecessors (Prune and the
// PRUNE KEEP n statement are the explicit forms); Rollback to a pruned
// version fails with an error matching ErrVersionPruned that names the
// retained window, while a version that never existed keeps the plain
// "no schema version" error. Config.AutoCompactPending compacts a
// table's overlay as soon as a DML statement leaves it with that many
// pending rows — contents and version unchanged, readers never blocked.
// Both default off (keep-everything, compact-at-checkpoint). MemStats
// reports the gauges (retained versions, pending overlay rows,
// compaction count) lock-free; HistoryTail pages the operator log at
// O(limit).
//
// # Parallelism
//
// Config.Parallelism bounds the worker pool used for per-distinct-value
// bitmap work — the dominant cost of every evolution operator and of
// bitmap-index query evaluation. Zero means GOMAXPROCS; one forces serial
// execution. The setting changes only wall-clock time: evolution outputs,
// query results and aggregate values are bit-identical at any parallelism
// (fan-in is index-ordered throughout; see internal/par).
//
// # Concurrency
//
// A DB is safe for concurrent use by multiple goroutines, and reads never
// block. Committed catalog state is published as an immutable snapshot
// behind an atomic pointer; every read (Query, Count, RunQuery, Rows,
// Describe, Save, ...) loads the pointer once and runs lock-free against
// that snapshot, so even a long DECOMPOSE or MERGE holding the write path
// never stalls query traffic — the paper's online-evolution promise. A
// read observes the whole schema version that was current when it
// started: never a partially applied operator, and never the outputs of
// an SMO that has not committed. Catalog-changing calls (Exec,
// ExecScript, Rollback, CreateTableFromRows, LoadCSV) serialize on an
// internal mutex, build the next version off to the side, and publish it
// with one atomic swap at commit; Rollback publishes the restored version
// the same way. Tables are immutable, so results already materialized
// stay valid across subsequent evolutions, and DB.Snapshot pins one
// schema version explicitly for multi-step reads.
//
// # Durability and serving
//
// OpenDurable opens a crash-safe catalog: every committed change is
// either appended to a checksummed, fsync'd write-ahead log or captured
// by a snapshot before the call returns, and recovery (snapshot load +
// log replay) restores the last committed schema version after any
// crash. Checkpoint truncates the log; Close releases it. The cods serve
// command (internal/server) exposes a DB over HTTP/JSON — POST /query,
// POST /exec, GET /schema, GET /healthz, GET /stats — with bounded
// request concurrency and graceful shutdown; see README.md for the API.
//
// # Error classification
//
// Errors crossing this API are classified with errors.Is against the
// exported sentinels (ErrClosed, ErrNotDurable, ErrNoTable, ...), so the
// package is marked cods:boundary for codslint: new error paths must
// wrap a sentinel with %w rather than invent anonymous errors. See
// internal/lint.
package cods

// Package cods is a Go implementation of CODS — "Column Oriented Database
// Schema update" — the data-level data evolution platform for column
// oriented databases described in:
//
//	Liu, Natarajan, He, Hsiao, Chen.
//	CODS: Evolving Data Efficiently and Scalably in Column Oriented
//	Databases. PVLDB 3(2), VLDB 2010.
//
// Tables are stored as bitmap-indexed columns: one value dictionary and
// one WAH-compressed bitmap per distinct value. Schema Modification
// Operators (DECOMPOSE TABLE, MERGE TABLES, PARTITION, UNION, column
// operations, ...) evolve the stored data directly on the compressed
// bitmaps — without materializing query results, without rebuilding
// indexes, and without decompressing columns — which is orders of
// magnitude faster than executing the equivalent INSERT ... SELECT at
// query level.
//
// # Quick start
//
//	db := cods.Open(cods.Config{})
//	db.CreateTableFromRows("R",
//		[]string{"Employee", "Skill", "Address"}, nil, rows)
//	res, err := db.Exec(
//		"DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
//	...
//	res, err = db.Exec("MERGE TABLES S, T INTO R")
//
// The operator syntax is the paper's Table 1; see the Exec documentation
// for the full grammar. Lower-level building blocks (the WAH bitmap
// engine, the column store, the evolution algorithms, the row-store
// baselines used by the benchmark harness) live under internal/ and are
// exercised through this facade, the example programs, and the cmd/
// tools.
package cods

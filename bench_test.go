// Benchmarks regenerating the paper's evaluation at go-test scale, plus
// ablations of CODS's design choices. Inputs are built once per
// configuration outside the timed region (tables are immutable, so
// iterations share them); the timed region is the data evolution only,
// matching the paper's methodology. cmd/codsbench runs the same
// experiments at full scale.
package cods_test

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"cods/internal/bench"
	"cods/internal/bitset"
	"cods/internal/colquery"
	"cods/internal/colstore"
	"cods/internal/evolve"
	"cods/internal/plan"
	"cods/internal/queryevolve"
	"cods/internal/rowstore"
	"cods/internal/wah"
	"cods/internal/workload"

	"cods"
)

const benchRows = 200_000

var benchDistincts = []int{100, 10_000}

// --- Figure 3(a): decomposition ---

func BenchmarkFigure3aDecompose(b *testing.B) {
	for _, d := range benchDistincts {
		spec := workload.Spec{Rows: benchRows, DistinctKeys: d, Seed: 1}

		colInput, err := workload.BuildColstore(spec, "R")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("D/distinct=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := evolve.Decompose(colInput, evolve.DecomposeSpec{
					OutS: "S", SColumns: []string{"A", "B"},
					OutT: "T", TColumns: []string{"A", "C"},
				}, evolve.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("M/distinct=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := queryevolve.Decompose(colInput, "S", []string{"A", "B"}, "T", []string{"A", "C"}); err != nil {
					b.Fatal(err)
				}
			}
		})

		for _, sys := range []struct {
			key     string
			profile rowstore.Profile
			kind    rowstore.StorageKind
		}{
			{"C", rowstore.ProfileCommercial, rowstore.HeapStorage},
			{"C+I", rowstore.ProfileCommercialIndexed, rowstore.HeapStorage},
			{"S", rowstore.ProfileSQLiteLike, rowstore.BTreeStorage},
		} {
			db := rowstore.NewDB()
			if _, err := workload.BuildRowstore(spec, db, "R", sys.kind); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/distinct=%d", sys.key, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					outS, outT := fmt.Sprintf("S%d", i), fmt.Sprintf("T%d", i)
					_, err := rowstore.DecomposeQueryLevel(db, "R", outS, []string{"A", "B"}, outT, []string{"A", "C"}, []string{"A"}, sys.profile)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					db.Drop(outS)
					db.Drop(outT)
					b.StartTimer()
				}
			})
		}
	}
}

// --- Figure 3(b): mergence ---

func BenchmarkFigure3bMerge(b *testing.B) {
	for _, d := range benchDistincts {
		spec := workload.Spec{Rows: benchRows, DistinctKeys: d, Seed: 2}

		s, t, err := workload.BuildColstoreST(spec, "S", "T")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("D/distinct=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evolve.MergeKeyFK(s, t, "R", evolve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("M/distinct=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := queryevolve.Merge(s, t, "R"); err != nil {
					b.Fatal(err)
				}
			}
		})

		for _, sys := range []struct {
			key     string
			profile rowstore.Profile
			kind    rowstore.StorageKind
		}{
			{"C", rowstore.ProfileCommercial, rowstore.HeapStorage},
			{"C+I", rowstore.ProfileCommercialIndexed, rowstore.HeapStorage},
		} {
			db := rowstore.NewDB()
			if err := workload.BuildRowstoreST(spec, db, "S", "T", sys.kind); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/distinct=%d", sys.key, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out := fmt.Sprintf("R%d", i)
					if _, err := rowstore.MergeQueryLevel(db, "S", "T", out, []string{"A"}, sys.profile); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					db.Drop(out)
					b.StartTimer()
				}
			})
		}
	}
}

// --- §2.5.2: general mergence (companion technical report experiment) ---

func BenchmarkGeneralMerge(b *testing.B) {
	for _, d := range benchDistincts {
		spec := workload.Spec{Rows: benchRows / 2, DistinctKeys: d, Seed: 3}
		s, t1, err := workload.BuildColstoreST(spec, "S", "T1")
		if err != nil {
			b.Fatal(err)
		}
		// Double the dimension rows so the join attribute is a key of
		// neither side.
		tb, err := colstore.NewTableBuilder("T", []string{"A", "C"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := t1.Rows(0, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			tb.AppendRow(row)
			tb.AppendRow([]string{row[0], row[1] + "x"})
		}
		t2, err := tb.Finish()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("D/distinct=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evolve.MergeGeneral(s, t2, "R", evolve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("M/distinct=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := queryevolve.Merge(s, t2, "R"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: bitmap filtering on compressed form vs decompress +
// filter + recompress (the §2.1 claim that avoiding the codec round trip
// matters) ---

func BenchmarkAblationFilter(b *testing.B) {
	const n = 1_000_000
	col := wah.New()
	// A realistic value vector: clustered runs.
	for i := 0; i < 50; i++ {
		col.AppendRun(uint32(i%2), n/50)
	}
	var positions []uint64
	for i := uint64(0); i < 1000; i++ {
		positions = append(positions, i*(n/1000))
	}
	mask, err := wah.FromPositions(positions, n)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("compressed-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wah.Filter(col, mask)
		}
	})
	b.Run("decompress-recompress", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Decompress both to bit slices, filter, re-compress.
			colBits := make([]bool, n)
			col.Ones(func(p uint64) bool { colBits[p] = true; return true })
			out := wah.New()
			mask.Ones(func(p uint64) bool {
				if colBits[p] {
					out.AppendBit(1)
				} else {
					out.AppendBit(0)
				}
				return true
			})
		}
	})
}

// --- Ablation: WAH compressed bitmaps vs uncompressed bitsets for the
// evolution primitives, across value densities (§2.2's representation
// choice) ---

func BenchmarkAblationWAHvsBitset(b *testing.B) {
	const n = 2_000_000
	for _, distinct := range []int{100, 100_000} {
		// One value's bitmap in a column with `distinct` values: n/distinct
		// set bits, clustered.
		setBits := uint64(n / distinct)
		wb := wah.New()
		wb.AppendRun(0, n/3)
		wb.AppendRun(1, setBits)
		wb.Extend(n)
		bs := bitset.New(n)
		wb.Ones(func(p uint64) bool { bs.Set(p); return true })
		// The distinction position list.
		positions := make([]uint64, distinct)
		for i := range positions {
			positions[i] = uint64(i) * (n / uint64(distinct))
		}
		b.Run(fmt.Sprintf("filter/wah/distinct=%d", distinct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wah.FilterPositions(wb, positions)
			}
			b.ReportMetric(float64(wb.SizeBytes()), "bytes")
		})
		b.Run(fmt.Sprintf("filter/bitset/distinct=%d", distinct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bs.FilterPositions(positions)
			}
			b.ReportMetric(float64(bs.SizeBytes()), "bytes")
		})
		b.Run(fmt.Sprintf("or/wah/distinct=%d", distinct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wah.Or(wb, wb)
			}
		})
		b.Run(fmt.Sprintf("or/bitset/distinct=%d", distinct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bs.Clone().Or(bs)
			}
		})
	}
}

// --- Ablation: balanced pairwise OR vs sequential left fold in key-FK
// mergence's vector combination ---

func BenchmarkAblationOrAll(b *testing.B) {
	const n = 500_000
	var vectors []*wah.Bitmap
	for i := 0; i < 256; i++ {
		bm := wah.New()
		bm.AppendRun(0, uint64(i)*(n/256))
		bm.AppendRun(1, n/256)
		bm.Extend(n)
		vectors = append(vectors, bm)
	}
	b.Run("balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wah.OrAll(vectors)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := vectors[0].Clone()
			for _, v := range vectors[1:] {
				acc = wah.Or(acc, v)
			}
		}
	})
}

// --- Ablation: key skew sensitivity (uniform vs Zipf) for decomposition ---

func BenchmarkAblationSkew(b *testing.B) {
	for _, zipf := range []float64{0, 1.3} {
		spec := workload.Spec{Rows: benchRows, DistinctKeys: 10_000, ZipfS: zipf, Seed: 4}
		r, err := workload.BuildColstore(spec, "R")
		if err != nil {
			b.Fatal(err)
		}
		name := "uniform"
		if zipf > 0 {
			name = fmt.Sprintf("zipf=%.1f", zipf)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := evolve.Decompose(r, evolve.DecomposeSpec{
					OutS: "S", SColumns: []string{"A", "B"},
					OutT: "T", TColumns: []string{"A", "C"},
				}, evolve.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: decomposition parallelism across bitmap vectors ---

func BenchmarkAblationParallelism(b *testing.B) {
	spec := workload.Spec{Rows: benchRows, DistinctKeys: 50_000, Seed: 5}
	r, err := workload.BuildColstore(spec, "R")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := evolve.Decompose(r, evolve.DecomposeSpec{
					OutS: "S", SColumns: []string{"A", "B"},
					OutT: "T", TColumns: []string{"A", "C"},
				}, evolve.Options{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel scaling: the Parallelism knob on multi-million-row tables ---

// BenchmarkParallelScaling measures DECOMPOSE and MERGE throughput on a
// ≥1M-row, high-cardinality table at Parallelism=1 versus GOMAXPROCS. The
// per-distinct-value bitmap work is embarrassingly parallel, so on
// multi-core hardware the GOMAXPROCS runs should scale with core count;
// on a single core both configurations converge (the pool runs inline).
// Skipped in -short mode: building the million-row inputs dominates there.
func BenchmarkParallelScaling(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-row inputs are too expensive for -short")
	}
	procs := runtime.GOMAXPROCS(0)
	configs := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("gomaxprocs=%d", procs), procs},
	}

	spec := workload.Spec{Rows: 1_200_000, DistinctKeys: 150_000, Seed: 8}
	r, err := workload.BuildColstore(spec, "R")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range configs {
		b.Run("decompose/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := evolve.Decompose(r, evolve.DecomposeSpec{
					OutS: "S", SColumns: []string{"A", "B"},
					OutT: "T", TColumns: []string{"A", "C"},
				}, evolve.Options{Parallelism: c.workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	s, t, err := workload.BuildColstoreST(spec, "S", "T")
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range configs {
		b.Run("merge/"+c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := evolve.MergeKeyFK(s, t, "R", evolve.Options{Parallelism: c.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1: per-operator microbenchmarks through the public API ---

func BenchmarkSMOOperators(b *testing.B) {
	setup := func(b *testing.B) *cods.DB {
		db := cods.Open(cods.Config{})
		spec := workload.Spec{Rows: 100_000, DistinctKeys: 1000, Seed: 6}
		r, err := workload.BuildColstore(spec, "R")
		if err != nil {
			b.Fatal(err)
		}
		if err := dbRegister(db, r); err != nil {
			b.Fatal(err)
		}
		return db
	}
	cases := []struct {
		name string
		ops  []string
	}{
		{"CopyTable", []string{"COPY TABLE R TO R2", "DROP TABLE R2"}},
		{"RenameTable", []string{"RENAME TABLE R TO R2", "RENAME TABLE R2 TO R"}},
		{"RenameColumn", []string{"RENAME COLUMN B TO B2 IN R", "RENAME COLUMN B2 TO B IN R"}},
		{"AddDropColumnDefault", []string{"ADD COLUMN Z TO R DEFAULT 'v'", "DROP COLUMN Z FROM R"}},
		{"PartitionUnion", []string{"PARTITION TABLE R WHERE A < 'k0000500' INTO P1, P2", "UNION TABLES P1, P2 INTO R"}},
		{"DecomposeMerge", []string{"DECOMPOSE TABLE R INTO S (A, B), T (A, C)", "MERGE TABLES S, T INTO R"}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := setup(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, op := range c.ops {
					if _, err := db.Exec(op); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// dbRegister loads a prebuilt table into a public DB via its rows (the
// public API has no internal-table ingestion, deliberately).
func dbRegister(db *cods.DB, t *colstore.Table) error {
	rows, err := t.Rows(0, 0)
	if err != nil {
		return err
	}
	return db.CreateTableFromRows(t.Name(), t.ColumnNames(), t.Key(), rows)
}

// BenchmarkReadLatencyDuringEvolution measures read latency (p99 and max,
// reported as metrics) while a DECOMPOSE/MERGE loop runs concurrently on
// another table of the same DB.
//
// The "snapshot" case is the live code path: reads load the published
// catalog snapshot and never wait, so read latency is independent of
// evolution duration. The "rwmutex" case emulates the retired design —
// readers take a shared lock that each evolution holds exclusively — so
// its p99 degrades to roughly the length of an evolution. The gap between
// the two is what copy-on-write catalog publication buys.
func BenchmarkReadLatencyDuringEvolution(b *testing.B) {
	setup := func(b *testing.B) *cods.DB {
		db := cods.Open(cods.Config{})
		var evolveRows, queryRows [][]string
		for i := 0; i < 3000; i++ {
			evolveRows = append(evolveRows, []string{
				fmt.Sprintf("e%04d", i%300),
				fmt.Sprintf("s%04d", i),
				fmt.Sprintf("a%03d", i%150),
			})
		}
		for i := 0; i < 10_000; i++ {
			queryRows = append(queryRows, []string{fmt.Sprintf("k%05d", i%500), fmt.Sprintf("v%05d", i)})
		}
		if err := db.CreateTableFromRows("E", []string{"Employee", "Skill", "Address"}, nil, evolveRows); err != nil {
			b.Fatal(err)
		}
		if err := db.CreateTableFromRows("Q", []string{"K", "V"}, nil, queryRows); err != nil {
			b.Fatal(err)
		}
		return db
	}

	// gate non-nil emulates the old RWMutex contract around the DB.
	run := func(b *testing.B, gate *sync.RWMutex) {
		db := setup(b)
		stop := make(chan struct{})
		evolveErr := make(chan error, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if gate != nil {
					gate.Lock()
				}
				_, err1 := db.Exec("DECOMPOSE TABLE E INTO S (Employee, Skill), T (Employee, Address)")
				_, err2 := db.Exec("MERGE TABLES T, S INTO E")
				if gate != nil {
					gate.Unlock()
				}
				if err1 != nil || err2 != nil {
					select {
					case evolveErr <- fmt.Errorf("evolution loop: %w / %w", err1, err2):
					default:
					}
					return
				}
			}
		}()

		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if gate != nil {
				gate.RLock()
			}
			n, err := db.Count("Q", "K = 'k00042'")
			if gate != nil {
				gate.RUnlock()
			}
			if err != nil {
				b.Fatal(err)
			}
			if n != 20 {
				b.Fatalf("Count = %d, want 20", n)
			}
			lat = append(lat, time.Since(start))
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		select {
		case err := <-evolveErr:
			b.Fatal(err)
		default:
		}

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[len(lat)*99/100]
		b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99-ms")
		b.ReportMetric(float64(lat[len(lat)-1].Nanoseconds())/1e6, "max-ms")
	}

	b.Run("snapshot", func(b *testing.B) { run(b, nil) })
	b.Run("rwmutex", func(b *testing.B) { run(b, new(sync.RWMutex)) })
}

// BenchmarkMixedWorkload is the HTAP-shaped counterpart of
// BenchmarkReadLatencyDuringEvolution: one DB takes interleaved DML
// (through the delta overlay), bitmap count queries (merged base+delta
// without flushing), grouped aggregates (which flush the overlay), and a
// periodic PARTITION/UNION evolution cycle (which flushes before
// evolving). It tracks the cost of the write path the delta overlay
// opens, so the perf trajectory covers writes, not just reads and
// evolutions.
func BenchmarkMixedWorkload(b *testing.B) {
	db := cods.Open(cods.Config{})
	spec := workload.Spec{Rows: 20_000, DistinctKeys: 500, Seed: 11}
	r, err := workload.BuildColstore(spec, "R")
	if err != nil {
		b.Fatal(err)
	}
	if err := dbRegister(db, r); err != nil {
		b.Fatal(err)
	}
	stmts := workload.DML(spec, "R", 3*b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range stmts[3*i : 3*i+3] {
			if _, err := db.Exec(s); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := db.Count("R", "A = 'k0000042'"); err != nil {
			b.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := db.RunQuery("R", cods.TableQuery{
				Where:      "C >= 'c0000000'",
				Aggregates: []cods.Agg{{Func: cods.Count}, {Func: cods.CountDistinct, Column: "A"}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		if i%25 == 24 {
			// Generated keys are 'k…', DML-inserted ones 'n…': the split is
			// clean and the union restores R, delta flushed into the base.
			if _, err := db.Exec("PARTITION TABLE R WHERE A < 'n0000000' INTO Rk, Rn"); err != nil {
				b.Fatal(err)
			}
			if _, err := db.Exec("UNION TABLES Rk, Rn INTO R"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSustainedKeyedWrites measures the hot write path the delta
// overlay's arena key index amortizes: b.N keyed INSERTs through Exec,
// interleaved with a DELETE of an earlier key every 100 statements, and
// no manual compaction — the workload that was O(pending²) before the
// key index (every INSERT scanned the appended tail for conflicts, and
// the first INSERT after each DELETE copied the tail). Run with
// -benchtime=50000x for the 50k-pending-rows reference point recorded in
// BENCH_writes.json; ns/op should stay flat as b.N grows (near-linear
// total).
//
// The "bounded" variant runs the same stream with the retention and
// auto-compaction knobs on, the recommended production configuration:
// slightly more work per statement on average (periodic flushes), but
// memory stays O(threshold) instead of O(statements).
func BenchmarkSustainedKeyedWrites(b *testing.B) {
	run := func(b *testing.B, cfg cods.Config) {
		db := cods.Open(cfg)
		if err := db.CreateTableFromRows("kv", []string{"K", "V"}, []string{"K"},
			[][]string{{"seed", "0"}}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('k%08d', 'v')", i)); err != nil {
				b.Fatal(err)
			}
			if i%100 == 99 {
				if _, err := db.Exec(fmt.Sprintf("DELETE FROM kv WHERE K = 'k%08d'", i-50)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		ms := db.MemStats()
		b.ReportMetric(float64(ms.PendingRows), "pending-rows")
		b.ReportMetric(float64(ms.RetainedVersions), "retained-versions")
	}
	b.Run("retain-all", func(b *testing.B) { run(b, cods.Config{}) })
	b.Run("bounded", func(b *testing.B) {
		run(b, cods.Config{RetainVersions: 8, AutoCompactPending: 4096})
	})
}

// BenchmarkHarnessSmoke runs the figure harness end to end at a tiny scale
// so `go test -bench .` exercises the exact code path codsbench uses.
func BenchmarkHarnessSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.RunDecompose(bench.Config{
			Rows:           20_000,
			DistinctCounts: []int{100},
			Systems:        bench.Figure3aSystems,
			Seed:           7,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHugeTableSustainedWrites is the segmentation acceptance
// benchmark: the same sustained keyed write stream as
// BenchmarkSustainedKeyedWrites, but over a large pre-existing base
// table, in two flush modes. "segmented" is the production write path —
// an overlay flush seals only the appended tail into a new segment, so
// per-statement cost must stay flat as the base grows. "rebuild" forces
// the pre-segmentation monolithic flush (Config.RebuildOnFlush): every
// auto-compaction rewrites the whole base, so cost grows linearly with
// base size. Run with a fixed -benchtime=Nx so ns/op is comparable
// across base sizes; scripts/bench_writes.sh records the series in
// BENCH_writes.json. The 10M-row point is gated behind CODS_BENCH_HUGE=1
// (it needs several GB of RAM).
func BenchmarkHugeTableSustainedWrites(b *testing.B) {
	bases := []struct {
		name string
		rows int
	}{
		{"base100k", 100_000},
		{"base1M", 1_000_000},
	}
	if os.Getenv("CODS_BENCH_HUGE") != "" {
		bases = append(bases, struct {
			name string
			rows int
		}{"base10M", 10_000_000})
	}
	for _, base := range bases {
		for _, mode := range []string{"segmented", "rebuild"} {
			b.Run(base.name+"/"+mode, func(b *testing.B) {
				cfg := cods.Config{RetainVersions: 8, AutoCompactPending: 2048}
				cfg.RebuildOnFlush = mode == "rebuild"
				db := cods.Open(cfg)
				// Build the base outside the timed region. Keys are
				// non-integer ('k…') so key probes take the per-segment
				// dictionary fast path, exactly like production keys.
				tb := make([][]string, base.rows)
				for i := range tb {
					tb[i] = []string{fmt.Sprintf("k%08d", i), fmt.Sprintf("v%d", i%100)}
				}
				if err := db.CreateTableFromRows("kv", []string{"K", "V"}, []string{"K"}, tb); err != nil {
					b.Fatal(err)
				}
				tb = nil
				// Collect the build garbage (and any previous sub-benchmark's
				// heap) before timing: GC marking of a polluted multi-GB heap
				// otherwise bleeds into ns/op and masks the flush cost being
				// measured.
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('n%08d', 'v')", i)); err != nil {
						b.Fatal(err)
					}
					if i%100 == 99 {
						if _, err := db.Exec(fmt.Sprintf("DELETE FROM kv WHERE K = 'n%08d'", i-50)); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				ms := db.MemStats()
				b.ReportMetric(float64(ms.Compactions), "flushes")
			})
		}
	}
}

// BenchmarkJoinDecomposedVsScan measures the multi-table query layer on
// the decomposed star the evolution oracle produces: a 1M-row fact table
// S (A, B) joined to its 10k-row dimension T (A, C) on the shared key,
// against the same selective aggregate scanned off the pre-DECOMPOSE
// table R. "semi" is the production path — the dimension's predicate
// bitmap is turned into a WAH semi-join mask over the fact scan without
// decoding a row (the key columns share dictionary lineage, asserted
// here); "generic" disables the reduction and probes every fact row
// through the hash table; "scan" is the single-table baseline. All three
// must return the same count. Run with -benchtime=10x for the
// BENCH_joins.json series.
func BenchmarkJoinDecomposedVsScan(b *testing.B) {
	spec := workload.Spec{Rows: 1_000_000, DistinctKeys: 10_000, Seed: 1}
	r, err := workload.BuildColstore(spec, "R")
	if err != nil {
		b.Fatal(err)
	}
	dec, err := evolve.Decompose(r, evolve.DecomposeSpec{
		OutS: "S", SColumns: []string{"A", "B"},
		OutT: "T", TColumns: []string{"A", "C"},
	}, evolve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sKey, _ := dec.S.Column("A")
	tKey, _ := dec.T.Column("A")
	if !colquery.SharedLineage(sKey, tKey) {
		b.Fatal("decomposed key columns lost dictionary lineage; the semi-join path would not engage")
	}
	resolve := func(name string) (*colstore.Table, error) {
		switch name {
		case "R":
			return r, nil
		case "S":
			return dec.S, nil
		case "T":
			return dec.T, nil
		}
		return nil, fmt.Errorf("no table %q", name)
	}
	const where = "C = 'c0000001'"
	count := []colquery.Agg{{Func: colquery.Count}}
	modes := []struct {
		name string
		q    plan.Query
	}{
		{"scan", plan.Query{From: "R", Where: where, Aggregates: count}},
		{"semi", plan.Query{From: "S", Joins: []plan.Join{{Table: "T", On: []string{"A"}}},
			Where: where, Aggregates: count}},
		{"generic", plan.Query{From: "S", Joins: []plan.Join{{Table: "T", On: []string{"A"}}},
			Where: where, Aggregates: count, DisableSemiJoin: true}},
	}
	want := ""
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := plan.Run(resolve, m.q, nil)
				if err != nil {
					b.Fatal(err)
				}
				if want == "" {
					want = rs.Rows[0][0]
				} else if rs.Rows[0][0] != want {
					b.Fatalf("%s counted %s rows, other modes counted %s", m.name, rs.Rows[0][0], want)
				}
			}
			b.ReportMetric(float64(spec.Rows)*float64(b.N)/b.Elapsed().Seconds(), "fact-rows/s")
		})
	}
}

// BenchmarkEvolutionDecompose measures a schema evolution on a segmented
// 1M-row table: 99% of the rows sit in one merged base segment and 1% in
// a flushed tail, the steady state the tiered merge policy converges to.
// Each iteration inserts one row (so the evolution always sees a fresh
// table — no memoized stitching survives between iterations), runs
// DECOMPOSE, and rolls back. "segmentwise" is the production map/merge
// evolution path; "rebuild" forces the pre-segmentation monolithic
// algorithms (Config.RebuildEvolve), which stitch every input column
// before evolving. The gap between the two is the win the segment-wise
// fan-out buys on evolution latency. Run with -benchtime=20x for the
// BENCH_writes.json "evolution" series.
func BenchmarkEvolutionDecompose(b *testing.B) {
	const baseRows = 990_000
	const tailRows = 10_000
	for _, mode := range []string{"segmentwise", "rebuild"} {
		b.Run(mode, func(b *testing.B) {
			cfg := cods.Config{RetainVersions: 8, SegmentMergeRatio: -1}
			cfg.RebuildEvolve = mode == "rebuild"
			db := cods.Open(cfg)
			rows := make([][]string, baseRows)
			for i := range rows {
				g := i % 32
				rows[i] = []string{fmt.Sprintf("k%08d", i), fmt.Sprintf("g%02d", g), fmt.Sprintf("d%d", g%7)}
			}
			if err := db.CreateTableFromRows("T", []string{"K", "G", "D"}, []string{"K"}, rows); err != nil {
				b.Fatal(err)
			}
			rows = nil
			for i := 0; i < tailRows; i++ {
				g := i % 32
				stmt := fmt.Sprintf("INSERT INTO T VALUES ('t%08d', 'g%02d', 'd%d')", i, g, g%7)
				if _, err := db.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Compact(); err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := db.Version()
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO T VALUES ('x%08d', 'g00', 'd0')", i)); err != nil {
					b.Fatal(err)
				}
				if _, err := db.Exec("DECOMPOSE TABLE T INTO A (K, G), B (G, D)"); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					// The reused output must keep the input's segmentation
					// (merged base + tail + fresh flush), not arrive
					// restitched as one segment.
					for _, ts := range db.MemStats().Tables {
						if ts.Table == "A" {
							b.ReportMetric(float64(ts.Segments), "a-segments")
							if ts.Segments < 2 {
								b.Fatalf("evolution output A has %d segments, want multi-segment", ts.Segments)
							}
						}
					}
				}
				if err := db.Rollback(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Command codslint runs the codslint analyzer suite (internal/lint): the
// static checks that enforce the engine's concurrency, immutability, and
// durability invariants. It speaks two protocols:
//
// Standalone, the `make lint` entry point:
//
//	codslint [-dir DIR] [packages...]   # default ./...
//	codslint -analyzers                 # list analyzer names, one per line
//
// findings print to stdout as file:line:col: message (codslint/NAME) and
// the exit status is 1 when any survive suppression.
//
// Vet tool, for editor and toolchain integration:
//
//	go vet -vettool=$(which codslint) ./...
//
// In this mode the go command invokes the binary with -V=full (version
// fingerprint for build caching), -flags (supported flags, none), and
// once per package with a JSON config file argument — the unitchecker
// protocol. Diagnostics then follow go vet's own reporting.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cods/internal/lint"
	"cods/internal/lint/loader"
)

func main() {
	args := os.Args[1:]
	// The unitchecker protocol invocations come before flag parsing: the
	// go command passes exactly one of -V=full, -flags, or a .cfg path.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetMode(args[0]))
		}
	}

	dir := flag.String("dir", ".", "module directory to load packages from")
	listAnalyzers := flag.Bool("analyzers", false, "print the analyzer names and exit")
	flag.Parse()

	if *listAnalyzers {
		for _, a := range lint.All() {
			fmt.Printf("%s\t%s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codslint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(prog, prog.Packages, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "codslint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// printVersion implements -V=full: a stable fingerprint of this binary
// that the go command folds into its build cache key, so upgrading
// codslint re-runs vet.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel codslint buildID=%x\n", name, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel codslint\n", name)
}

// vetConfig is the unitchecker config the go command writes for each
// package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes one package per the unitchecker protocol and returns
// the process exit code.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codslint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "codslint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the .vetx facts file to exist afterwards,
	// even though codslint exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "codslint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "codslint:", err)
			return 2
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "codslint:", err)
		return 2
	}

	prog := loader.NewProgram(fset)
	pkg := &loader.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Pkg: tpkg, Info: info}
	prog.Add(pkg)
	prog.DirResolver = moduleDirResolver(cfg.Dir)

	findings, err := lint.Run(prog, []*loader.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "codslint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (codslint/%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// compilerOr defaults the export-data format to gc.
func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

// moduleDirResolver maps import paths within the enclosing module to
// source directories, so cross-package cods: markers resolve in vet mode
// (where the config carries export data but no source layout). It walks
// up from dir to the nearest go.mod.
func moduleDirResolver(dir string) func(string) string {
	root, modPath := findModule(dir)
	return func(importPath string) string {
		if root == "" {
			return ""
		}
		if importPath == modPath {
			return root
		}
		rest, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return ""
		}
		return filepath.Join(root, filepath.FromSlash(rest))
	}
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest)
				}
			}
			return "", ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", ""
		}
		dir = parent
	}
}

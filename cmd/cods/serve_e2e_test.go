package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The E2E tests drive the real binary: build it once, start `cods serve`,
// talk HTTP to it, and kill it the way production would die.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func buildBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cods-e2e-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "cods")
		cmd := exec.Command("go", "build", "-o", binPath, ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %w\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// serveProc is one running `cods serve` child process.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startServe launches the binary on a free port and waits for readiness.
func startServe(t *testing.T, args ...string) *serveProc {
	return startServeEnv(t, nil, args...)
}

// startServeEnv is startServe with extra environment variables for the
// child (the crash-matrix tests arm CODS_CRASH_POINT this way).
func startServeEnv(t *testing.T, env []string, args ...string) *serveProc {
	t.Helper()
	bin := buildBinary(t)
	cmd := exec.Command(bin, append([]string{"serve", "-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The server logs "listening on 127.0.0.1:PORT" once bound.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrc <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case addr := <-addrc:
		p := &serveProc{cmd: cmd, base: "http://" + addr}
		waitHealthy(t, p.base)
		return p
	case <-time.After(10 * time.Second):
		t.Fatal("server never reported its listen address")
		return nil
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never became healthy: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func post(t *testing.T, url string, body map[string]any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func execOp(t *testing.T, base, op string) {
	t.Helper()
	resp, raw := post(t, base+"/exec", map[string]any{"op": op})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec %q: %d %s", op, resp.StatusCode, raw)
	}
}

func getSchema(t *testing.T, base string) (version int, tables map[string][]string) {
	t.Helper()
	resp, err := http.Get(base + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Version int `json:"version"`
		Tables  []struct {
			Name    string `json:"name"`
			Columns []struct {
				Name string `json:"name"`
			} `json:"columns"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	tables = make(map[string][]string)
	for _, tb := range sr.Tables {
		var cols []string
		for _, c := range tb.Columns {
			cols = append(cols, c.Name)
		}
		tables[tb.Name] = cols
	}
	return sr.Version, tables
}

// queryRows posts /query and returns the matching rows.
func queryRows(t *testing.T, base, table, where string) [][]string {
	t.Helper()
	resp, raw := post(t, base+"/query", map[string]any{"table": table, "where": where})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %s where %q: %d %s", table, where, resp.StatusCode, raw)
	}
	var qr struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	return qr.Rows
}

// TestServeSIGKILLRecovery is the acceptance test: a durable server
// killed with SIGKILL after N /exec statements — schema evolutions and
// DML — must recover all N on restart via snapshot + WAL replay,
// including the delta overlay the DML left behind.
func TestServeSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dbdir := filepath.Join(t.TempDir(), "db")

	p := startServe(t, "-dir", dbdir)
	ops := []string{
		"CREATE TABLE emp (Employee, Skill, Address)",
		"INSERT INTO emp VALUES ('alice', 'go', '1 Main St')",
		"INSERT INTO emp VALUES ('bob', 'sql', '2 Oak Ave')",
		"INSERT INTO emp VALUES ('carol', 'go', '3 Pine;Rd')", // hostile literal through the WAL
		"UPDATE emp SET Address = '9 New Rd' WHERE Employee = 'alice'",
		"DELETE FROM emp WHERE Employee = 'bob'",
		"ADD COLUMN Grade TO emp DEFAULT 'junior'",
		"COPY TABLE emp TO emp2",
		"RENAME COLUMN Grade TO Level IN emp2",
		"DECOMPOSE TABLE emp2 INTO skills (Employee, Skill), rest (Employee, Address, Level)",
	}
	for _, op := range ops {
		execOp(t, p.base, op)
	}
	v, _ := getSchema(t, p.base)
	if v != len(ops) {
		t.Fatalf("pre-kill version = %d, want %d", v, len(ops))
	}

	// Die hard: no Shutdown, no Close, no checkpoint ever ran.
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()

	re := startServe(t, "-dir", dbdir)
	v, tables := getSchema(t, re.base)
	if v != len(ops) {
		t.Fatalf("recovered version = %d, want %d (all evolutions replayed)", v, len(ops))
	}
	for name, wantCols := range map[string][]string{
		"emp":    {"Employee", "Skill", "Address", "Grade"},
		"skills": {"Employee", "Skill"},
		"rest":   {"Employee", "Address", "Level"},
	} {
		cols, ok := tables[name]
		if !ok {
			t.Fatalf("recovered catalog lacks %q (have %v)", name, tables)
		}
		if strings.Join(cols, ",") != strings.Join(wantCols, ",") {
			t.Errorf("recovered %s columns = %v, want %v", name, cols, wantCols)
		}
	}
	if _, ok := tables["emp2"]; ok {
		t.Error("emp2 survived recovery but was decomposed before the kill")
	}

	// The replayed DML state: alice updated, bob deleted, carol's hostile
	// literal intact — in emp (still carrying its delta overlay) and in
	// the decomposed outputs (delta flushed before the operator).
	if rows := queryRows(t, re.base, "emp", "Employee = 'alice'"); len(rows) != 1 || rows[0][2] != "9 New Rd" {
		t.Errorf("recovered alice = %v, want updated address", rows)
	}
	if rows := queryRows(t, re.base, "emp", "Employee = 'bob'"); len(rows) != 0 {
		t.Errorf("deleted bob survived recovery: %v", rows)
	}
	if rows := queryRows(t, re.base, "rest", "Address = '3 Pine;Rd'"); len(rows) != 1 || rows[0][0] != "carol" {
		t.Errorf("recovered rest misses carol's row: %v", rows)
	}

	// Recovery must also work across a checkpoint boundary: checkpoint,
	// evolve once more, kill, restart.
	resp, raw := post(t, re.base+"/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, raw)
	}
	execOp(t, re.base, "DROP TABLE emp")
	re.cmd.Process.Kill()
	re.cmd.Wait()

	re2 := startServe(t, "-dir", dbdir)
	_, tables = getSchema(t, re2.base)
	if _, ok := tables["emp"]; ok {
		t.Error("emp survived recovery but was dropped after the checkpoint")
	}
	if _, ok := tables["skills"]; !ok {
		t.Error("skills lost across checkpoint recovery")
	}
}

// TestServeGracefulShutdown: SIGTERM must drain and exit 0.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	p := startServe(t)
	execOp(t, p.base, "CREATE TABLE r (a)")
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServeInMemory: without -dir the server works but warns; a restart
// loses state (sanity-check the non-durable path).
func TestServeInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	p := startServe(t)
	execOp(t, p.base, "CREATE TABLE r (a, b)")
	v, tables := getSchema(t, p.base)
	if v != 1 || len(tables) != 1 {
		t.Fatalf("version = %d, tables = %v", v, tables)
	}
}

// getMemStats reads GET /stats's memory gauges.
func getMemStats(t *testing.T, base string) (retained int, pending, compactions uint64) {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Memory struct {
			RetainedVersions int    `json:"retained_versions"`
			PendingRows      uint64 `json:"pending_rows"`
			Compactions      uint64 `json:"compactions"`
		} `json:"memory"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.Memory.RetainedVersions, sr.Memory.PendingRows, sr.Memory.Compactions
}

// TestServeSIGKILLRecoveryWithRetention runs the durable server with the
// bounded-memory knobs on (-retain, -autocompact), drives a keyed write
// stream through them — auto-compaction and pruning both fire — kills it
// hard, and requires a restart with the same flags to recover every
// committed row while keeping the bounds.
func TestServeSIGKILLRecoveryWithRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dbdir := filepath.Join(t.TempDir(), "db")
	flags := []string{"-dir", dbdir, "-retain", "2", "-autocompact", "3"}

	p := startServe(t, flags...)
	execOp(t, p.base, "CREATE TABLE kv (K, V) KEY (K)")
	for i := 0; i < 10; i++ {
		execOp(t, p.base, fmt.Sprintf("INSERT INTO kv VALUES ('k%02d', 'v%d')", i, i))
	}
	execOp(t, p.base, "UPDATE kv SET V = 'changed' WHERE K = 'k03'")
	execOp(t, p.base, "DELETE FROM kv WHERE K = 'k07'")
	execOp(t, p.base, "PRUNE KEEP 2") // the statement form rides the WAL too

	retained, pending, compactions := getMemStats(t, p.base)
	if retained > 3 {
		t.Errorf("retained_versions = %d, want <= 3 with -retain 2", retained)
	}
	if pending >= 3 {
		t.Errorf("pending_rows = %d, want < 3 with -autocompact 3", pending)
	}
	if compactions == 0 {
		t.Error("compactions = 0, auto-compaction never fired")
	}

	// Die hard: no shutdown, no checkpoint call.
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()

	re := startServe(t, flags...)
	if rows := queryRows(t, re.base, "kv", "K != ''"); len(rows) != 9 {
		t.Fatalf("recovered %d rows, want 9 (10 inserts - 1 delete)", len(rows))
	}
	if rows := queryRows(t, re.base, "kv", "K = 'k03'"); len(rows) != 1 || rows[0][1] != "changed" {
		t.Errorf("recovered k03 = %v, want updated value", rows)
	}
	if rows := queryRows(t, re.base, "kv", "K = 'k07'"); len(rows) != 0 {
		t.Errorf("deleted k07 survived recovery: %v", rows)
	}
	// The key is still enforced after replay + auto-compaction.
	resp, _ := post(t, re.base+"/exec", map[string]any{"op": "INSERT INTO kv VALUES ('k01', 'dup')"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("duplicate key after recovery: status %d, want 422", resp.StatusCode)
	}

	// Keep writing: the bounds hold on the recovered catalog too.
	for i := 0; i < 8; i++ {
		execOp(t, re.base, fmt.Sprintf("INSERT INTO kv VALUES ('r%02d', 'v')", i))
	}
	retained, pending, _ = getMemStats(t, re.base)
	if retained > 3 {
		t.Errorf("post-recovery retained_versions = %d, want <= 3", retained)
	}
	if pending >= 3 {
		t.Errorf("post-recovery pending_rows = %d, want < 3", pending)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash matrix: a durable server is killed by the storage layer's
// own crash injection (CODS_CRASH_POINT, see installCrashPoint) at each
// barrier of the checkpoint write path, and a clean restart must land on
// exactly the pre-checkpoint or post-checkpoint state — never a hybrid.
// The CURRENT pointer decides which one, so the matrix pins down, per
// point, whether the pointer may have moved:
//
//	segment-written   data files durable, no manifest  → pre only
//	manifest-written  snapshot complete, not published → pre only
//	current-swapped   pointer swapped, WAL not reset   → post only
var crashMatrix = []struct {
	point       string
	wantAdvance bool // CURRENT must have moved to a new epoch
}{
	{"segment-written", false},
	{"manifest-written", false},
	{"current-swapped", true},
}

// readCurrentPointer returns the contents of <dir>/CURRENT ("" if the
// pointer does not exist yet).
func readCurrentPointer(t *testing.T, dbdir string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dbdir, "CURRENT"))
	if os.IsNotExist(err) {
		return ""
	}
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(data))
}

// postMayDie posts and tolerates the connection dying mid-request — the
// expected outcome when the handler SIGKILLs its own process.
func postMayDie(base, path string) {
	data, _ := json.Marshal(map[string]any{})
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err == nil {
		resp.Body.Close()
	}
}

// waitKilled waits for the child to exit and asserts it died by SIGKILL
// (the injected crash), not a clean error path.
func waitKilled(t *testing.T, p *serveProc) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("armed server exited cleanly; crash point never fired")
		}
		if ws, ok := p.cmd.ProcessState.Sys().(syscall.WaitStatus); ok {
			if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("armed server died with %v, want SIGKILL from the crash point", err)
			}
		}
	case <-time.After(15 * time.Second):
		t.Fatal("armed server did not die after checkpoint")
	}
}

func TestCrashMatrixCheckpointRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	for _, tc := range crashMatrix {
		t.Run(tc.point, func(t *testing.T) {
			dbdir := filepath.Join(t.TempDir(), "db")

			// Phase A — build committed state: a checkpointed epoch plus
			// WAL-only statements on top of it.
			p := startServe(t, "-dir", dbdir)
			execOp(t, p.base, "CREATE TABLE kv (K, V) KEY (K)")
			for i := 0; i < 6; i++ {
				execOp(t, p.base, fmt.Sprintf("INSERT INTO kv VALUES ('k%02d', 'v%d')", i, i))
			}
			resp, raw := post(t, p.base+"/checkpoint", map[string]any{})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("baseline checkpoint: %d %s", resp.StatusCode, raw)
			}
			for i := 6; i < 10; i++ {
				execOp(t, p.base, fmt.Sprintf("INSERT INTO kv VALUES ('k%02d', 'v%d')", i, i))
			}
			execOp(t, p.base, "UPDATE kv SET V = 'changed' WHERE K = 'k03'")
			execOp(t, p.base, "DELETE FROM kv WHERE K = 'k07'")
			preCurrent := readCurrentPointer(t, dbdir)
			if preCurrent == "" {
				t.Fatal("no CURRENT pointer after baseline checkpoint")
			}
			p.cmd.Process.Kill()
			p.cmd.Wait()

			// Phase B — restart armed, then trigger a checkpoint that dies
			// at the injected barrier.
			armed := startServeEnv(t, []string{"CODS_CRASH_POINT=" + tc.point}, "-dir", dbdir)
			if rows := queryRows(t, armed.base, "kv", "K != ''"); len(rows) != 9 {
				t.Fatalf("armed server recovered %d rows, want 9", len(rows))
			}
			postMayDie(armed.base, "/checkpoint")
			waitKilled(t, armed)

			// Disk-level dichotomy: the pointer either did not move at all
			// or moved exactly once to the new epoch.
			postCurrent := readCurrentPointer(t, dbdir)
			if tc.wantAdvance {
				if postCurrent == preCurrent {
					t.Fatalf("CURRENT still %q after crash at %s, want advanced", postCurrent, tc.point)
				}
			} else if postCurrent != preCurrent {
				t.Fatalf("CURRENT moved %q -> %q though the crash at %s preceded the swap", preCurrent, postCurrent, tc.point)
			}

			// Phase C — clean restart: every committed statement is back,
			// whichever side of the checkpoint recovery loaded.
			re := startServe(t, "-dir", dbdir)
			rows := queryRows(t, re.base, "kv", "K != ''")
			if len(rows) != 9 {
				t.Fatalf("recovered %d rows, want 9 (10 inserts - 1 delete)", len(rows))
			}
			if got := queryRows(t, re.base, "kv", "K = 'k03'"); len(got) != 1 || got[0][1] != "changed" {
				t.Errorf("k03 = %v, want updated value", got)
			}
			if got := queryRows(t, re.base, "kv", "K = 'k07'"); len(got) != 0 {
				t.Errorf("deleted k07 resurrected: %v", got)
			}
			resp, _ = post(t, re.base+"/exec", map[string]any{"op": "INSERT INTO kv VALUES ('k01', 'dup')"})
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Errorf("duplicate key after crash recovery: status %d, want 422", resp.StatusCode)
			}

			// The directory is not poisoned: new writes and a fresh
			// checkpoint succeed, and survive one more hard kill.
			execOp(t, re.base, "INSERT INTO kv VALUES ('k99', 'after')")
			resp, raw = post(t, re.base+"/checkpoint", map[string]any{})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-crash checkpoint: %d %s", resp.StatusCode, raw)
			}
			re.cmd.Process.Kill()
			re.cmd.Wait()

			final := startServe(t, "-dir", dbdir)
			if rows := queryRows(t, final.base, "kv", "K != ''"); len(rows) != 10 {
				t.Fatalf("final recovery has %d rows, want 10", len(rows))
			}
		})
	}
}

// Command cods is the interactive CODS platform — the CLI counterpart of
// the paper's demo UI (Figure 4). It creates tables, loads data, executes
// Schema Modification Operators with live data-evolution status, and
// displays tables.
//
// Usage:
//
//	cods [-dir dbdir] [-validate] [-quiet] [script.smo ...]
//	cods serve [-addr :8344] [-dir dbdir] [-max-inflight N]
//	           [-parallelism N] [-retain N] [-autocompact N]
//	           [-merge-ratio N] [-background-merge] [-rebuild-evolve]
//	           [-quiet]
//
// With script arguments, each file is executed and the process exits;
// otherwise an interactive prompt starts. Type \help at the prompt for the
// meta commands (display, load, save, advise, rollback, ...); any other
// line is parsed as a Schema Modification Operator.
//
// The serve subcommand runs the HTTP/JSON serving layer (see
// internal/server and README.md for the API). With -dir the catalog is
// durable: every executed statement is write-ahead-logged, and a restart
// — even after a hard kill — recovers the last committed schema version
// from snapshot plus log. Without -dir the catalog is in-memory only.
// -retain N bounds memory on write-heavy workloads by keeping only the
// current schema version plus its N predecessors rollback-able, and
// -autocompact N folds a table's delta overlay into its base once N rows
// are pending; GET /stats reports both at work. SIGINT/SIGTERM shut the
// server down gracefully, draining in-flight requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cods"
	"cods/internal/repl"
	"cods/internal/server"
	"cods/internal/storage"
)

// installCrashPoint arms the storage layer's crash injection for the
// crash-recovery E2E matrix: when CODS_CRASH_POINT names a checkpoint
// barrier ("segment-written", "manifest-written", "current-swapped"),
// reaching that barrier kills the process on the spot — no deferred
// cleanup, no WAL close — simulating a crash at exactly that durability
// step. Unset (the production state) this is a no-op.
func installCrashPoint() {
	point := os.Getenv("CODS_CRASH_POINT")
	if point == "" {
		return
	}
	storage.CrashPoint = func(p string) {
		if p == point {
			syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			select {} // SIGKILL is not handleable; never proceed past the barrier
		}
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "cods serve:", err)
			os.Exit(1)
		}
		return
	}
	dir := flag.String("dir", "", "open a persisted database directory")
	validate := flag.Bool("validate", true, "verify losslessness of decompositions")
	quiet := flag.Bool("quiet", false, "suppress data-evolution status output")
	flag.Parse()

	cfg := cods.Config{ValidateFD: *validate}
	if !*quiet {
		cfg.Status = func(step string) { fmt.Printf("  [status] %s\n", step) }
	}
	var db *cods.DB
	var err error
	if *dir != "" {
		db, err = cods.OpenDir(*dir, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cods:", err)
			os.Exit(1)
		}
		fmt.Printf("opened %s: tables %s\n", *dir, strings.Join(db.Tables(), ", "))
	} else {
		db = cods.Open(cfg)
	}

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cods:", err)
				os.Exit(1)
			}
			if _, err := db.ExecScript(string(data)); err != nil {
				fmt.Fprintln(os.Stderr, "cods:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("CODS — column-oriented database schema update platform")
	fmt.Println(`type an SMO (e.g. DECOMPOSE TABLE R INTO S (A, B), T (A, C)) or \help`)
	r := &repl.Repl{DB: db, Out: os.Stdout, Prompt: "cods> "}
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "cods:", err)
		os.Exit(1)
	}
	fmt.Println()
}

// runServe starts the HTTP serving layer and blocks until a signal or a
// listener error.
func runServe(args []string) error {
	fs := flag.NewFlagSet("cods serve", flag.ExitOnError)
	addr := fs.String("addr", ":8344", "listen address")
	dir := fs.String("dir", "", "durable database directory (in-memory when empty)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently served requests (0 = 4×GOMAXPROCS)")
	parallelism := fs.Int("parallelism", 0, "per-request bitmap-work parallelism (0 = GOMAXPROCS)")
	retain := fs.Int("retain", 0, "rollback-able previous schema versions kept after each statement (0 = all)")
	autoCompact := fs.Int("autocompact", 0, "compact a table's delta overlay once it holds this many pending rows (0 = only at checkpoints)")
	mergeRatio := fs.Int("merge-ratio", 0, "tiered segment-merge size ratio (0 = default 2, negative = never merge)")
	bgMerge := fs.Bool("background-merge", false, "run tiered segment merges on a background goroutine instead of inline")
	rebuildEvolve := fs.Bool("rebuild-evolve", false, "run evolutions with the monolithic pre-segmentation algorithms (correctness oracle; slower)")
	quiet := fs.Bool("quiet", false, "suppress the per-request log")
	if err := fs.Parse(args); err != nil {
		return err
	}

	installCrashPoint()
	logger := log.New(os.Stderr, "cods-serve ", log.LstdFlags)
	cfg := cods.Config{
		Parallelism: *parallelism, RetainVersions: *retain, AutoCompactPending: *autoCompact,
		SegmentMergeRatio: *mergeRatio, BackgroundMerge: *bgMerge, RebuildEvolve: *rebuildEvolve,
	}
	var db *cods.DB
	var err error
	if *dir != "" {
		db, err = cods.OpenDurable(*dir, cfg)
		if err != nil {
			return err
		}
		defer db.Close()
		logger.Printf("durable catalog %s: version %d, tables [%s]", *dir, db.Version(), strings.Join(db.Tables(), " "))
	} else {
		db = cods.Open(cfg)
		logger.Printf("in-memory catalog (no -dir): schema changes will not survive restart")
	}

	scfg := server.Config{MaxInFlight: *maxInFlight}
	if !*quiet {
		scfg.Log = logger
	}
	srv := server.New(db, scfg)

	// Install the signal handler before announcing readiness: a signal
	// arriving after "listening on" but before Notify would hit the
	// default handler and kill the process instead of draining it.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	// Listen before forking the serve goroutine so the bound address is
	// known (and printable — ":0" picks a free port) when we report ready.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	logger.Printf("listening on %s", l.Addr())

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		logger.Printf("drained; bye")
		return nil
	}
}

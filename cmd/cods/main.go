// Command cods is the interactive CODS platform — the CLI counterpart of
// the paper's demo UI (Figure 4). It creates tables, loads data, executes
// Schema Modification Operators with live data-evolution status, and
// displays tables.
//
// Usage:
//
//	cods [-dir dbdir] [-validate] [-quiet] [script.smo ...]
//
// With script arguments, each file is executed and the process exits;
// otherwise an interactive prompt starts. Type \help at the prompt for the
// meta commands (display, load, save, advise, rollback, ...); any other
// line is parsed as a Schema Modification Operator.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cods"
	"cods/internal/repl"
)

func main() {
	dir := flag.String("dir", "", "open a persisted database directory")
	validate := flag.Bool("validate", true, "verify losslessness of decompositions")
	quiet := flag.Bool("quiet", false, "suppress data-evolution status output")
	flag.Parse()

	cfg := cods.Config{ValidateFD: *validate}
	if !*quiet {
		cfg.Status = func(step string) { fmt.Printf("  [status] %s\n", step) }
	}
	var db *cods.DB
	var err error
	if *dir != "" {
		db, err = cods.OpenDir(*dir, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cods:", err)
			os.Exit(1)
		}
		fmt.Printf("opened %s: tables %s\n", *dir, strings.Join(db.Tables(), ", "))
	} else {
		db = cods.Open(cfg)
	}

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cods:", err)
				os.Exit(1)
			}
			if _, err := db.ExecScript(string(data)); err != nil {
				fmt.Fprintln(os.Stderr, "cods:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("CODS — column-oriented database schema update platform")
	fmt.Println(`type an SMO (e.g. DECOMPOSE TABLE R INTO S (A, B), T (A, C)) or \help`)
	r := &repl.Repl{DB: db, Out: os.Stdout, Prompt: "cods> "}
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "cods:", err)
		os.Exit(1)
	}
	fmt.Println()
}

// Command codsgen generates the paper's synthetic workload as a CSV file,
// for loading into the cods CLI or any other system:
//
//	codsgen -rows 1000000 -distinct 10000 [-zipf 1.2] [-seed 1] -o r.csv
//
// The output table R(A, B, C) has the evaluation's shape: A is the key
// attribute with the requested number of distinct values, C depends
// functionally on A, and B is a high-cardinality per-row attribute.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"cods/internal/workload"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "number of rows")
	distinct := flag.Int("distinct", 10_000, "distinct values of the key attribute A")
	zipf := flag.Float64("zipf", 0, "Zipf skew parameter (>1 to enable)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "-", "output file (default stdout)")
	flag.Parse()

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codsgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(workload.Columns); err != nil {
		fmt.Fprintln(os.Stderr, "codsgen:", err)
		os.Exit(1)
	}
	spec := workload.Spec{Rows: *rows, DistinctKeys: *distinct, ZipfS: *zipf, Seed: *seed}
	err := workload.ForEachRow(spec, func(row []string) error {
		return cw.Write(row)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codsgen:", err)
		os.Exit(1)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fmt.Fprintln(os.Stderr, "codsgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "codsgen:", err)
		os.Exit(1)
	}
}

// Command codsbench is the benchmark driver. Its default mode
// regenerates the paper's evaluation (Figure 3): the time to decompose a
// table and to merge it back, as a function of the number of distinct
// values, on CODS's data-level path (D) versus the query-level baselines
// (C, C+I, S, M). Its htap mode runs a YCSB-style mixed workload —
// zipfian point reads, GROUP-BY scans, keyed DML and background schema
// evolution — with per-class latency percentiles and optional SLO gates.
//
// Usage:
//
//	codsbench [-experiment decompose|merge|general-merge|scale|all]
//	          [-rows N] [-distinct 100,1000,...] [-systems D,C,C+I,S,M]
//	          [-zipf s] [-seed n] [-quiet]
//
//	codsbench htap [-workload name] [-table R] [-rows N] [-distinct N]
//	          [-zipf s] [-read pct] [-scan pct] [-write pct]
//	          [-smo-interval d] [-workers n] [-duration d] [-rate ops/s]
//	          [-transport inproc|http] [-addr http://host:port]
//	          [-retain n] [-autocompact n] [-parallelism n]
//	          [-out BENCH_htap.json] [-seed n] [-quiet]
//	          [-slo-read-p99 d] [-slo-scan-p99 d] [-slo-write-p99 d]
//	          [-slo-smo-p99 d]
//
//	codsbench joins [-rows N] [-dim N] [-parallelism n] [-seed n]
//	          [-out BENCH_joins.json] [-quiet]
//
// In the default mode the default row count (2,000,000) keeps a full
// sweep inside laptop memory; -rows 10000000 reproduces the paper's
// scale. Times are for the evolution step only — input loading is
// excluded, as in the paper.
//
// In htap mode the mix percentages must sum to 100. -transport inproc
// drives the engine directly; -transport http self-hosts an
// internal/server over loopback (or, with -addr, drives an external
// `cods serve`). -smo-interval > 0 adds a background COPY → DECOMPOSE →
// MERGE → DROP evolution cycle. A -slo-*-p99 threshold that is exceeded
// (or that gates a class the run never issued) makes codsbench exit
// with status 3, so CI can gate on latency. -out appends the run to a
// JSON series file; see BENCHMARKS.md for the schema and methodology.
//
// The joins mode benchmarks the multi-table query layer on a decomposed
// star: a -rows fact table joined to a -dim dimension, timing the same
// selective aggregate as a scan of the pre-DECOMPOSE table, a hash join
// with the WAH semi-join reduction, and a hash join without it. -out
// appends to BENCH_joins.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cods/internal/bench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "htap" {
		htapMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "joins" {
		joinsMain(os.Args[2:])
		return
	}
	figure3Main()
}

func joinsMain(args []string) {
	fs := flag.NewFlagSet("codsbench joins", flag.ExitOnError)
	rows := fs.Int("rows", 1_000_000, "fact-table rows")
	dim := fs.Int("dim", 10_000, "dimension rows (distinct join keys)")
	parallelism := fs.Int("parallelism", 0, "per-distinct-value fan-out (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "workload generation seed")
	out := fs.String("out", "", "append the result to this JSON series file (e.g. BENCH_joins.json)")
	quiet := fs.Bool("quiet", false, "suppress setup progress")
	fs.Parse(args)

	cfg := bench.JoinConfig{FactRows: *rows, DimRows: *dim, Parallelism: *parallelism, Seed: *seed}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := bench.RunJoins(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codsbench: joins:", err)
		os.Exit(1)
	}
	res.Format(os.Stdout)
	if *out != "" {
		if err := bench.AppendSeries(*out, res); err != nil {
			fmt.Fprintln(os.Stderr, "codsbench: joins:", err)
			os.Exit(1)
		}
		fmt.Printf("# appended to %s\n", *out)
	}
}

func figure3Main() {
	experiment := flag.String("experiment", "all", "decompose | merge | general-merge | scale | all")
	rows := flag.Int("rows", 2_000_000, "input rows (the paper uses 10000000)")
	distinct := flag.String("distinct", "100,1000,10000,100000,1000000", "comma-separated distinct-value counts (the Figure 3 x-axis)")
	systems := flag.String("systems", "", "comma-separated system keys (default: the figure's lines)")
	zipf := flag.Float64("zipf", 0, "Zipf skew parameter for key frequencies (>1 to enable)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	quiet := flag.Bool("quiet", false, "suppress per-measurement progress")
	flag.Parse()

	counts, err := parseInts(*distinct)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codsbench:", err)
		os.Exit(2)
	}
	cfg := bench.Config{Rows: *rows, DistinctCounts: counts, Seed: *seed, ZipfS: *zipf}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	run := func(name string, defaults []bench.System, fn func(bench.Config) (*bench.Result, error)) {
		cfg := cfg
		cfg.Systems = defaults
		if *systems != "" {
			cfg.Systems = parseSystems(*systems)
		}
		res, err := fn(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codsbench:", err)
			os.Exit(1)
		}
		res.Format(os.Stdout)
		speedups := res.Speedups()
		for _, d := range res.Distincts {
			if s, ok := speedups[d]; ok {
				fmt.Printf("# d=%d: CODS speedup over slowest query-level system = %.1fx\n", d, s)
			}
		}
		fmt.Println()
	}

	runScale := func() {
		// Row-count scaling at a fixed distinct count: the "scalably"
		// axis of the paper's title.
		rowCounts := []int{*rows / 8, *rows / 4, *rows / 2, *rows}
		run("scale", bench.Figure3aSystems, func(cfg bench.Config) (*bench.Result, error) {
			return bench.RunScale(cfg, rowCounts, 10_000)
		})
	}

	switch *experiment {
	case "decompose":
		run("decompose", bench.Figure3aSystems, bench.RunDecompose)
	case "merge":
		run("merge", bench.Figure3bSystems, bench.RunMerge)
	case "general-merge":
		run("general-merge", []bench.System{bench.SystemCODS, bench.SystemCommercial, bench.SystemCommercialIdx, bench.SystemMonet}, bench.RunGeneralMerge)
	case "scale":
		runScale()
	case "all":
		run("decompose", bench.Figure3aSystems, bench.RunDecompose)
		run("merge", bench.Figure3bSystems, bench.RunMerge)
		run("general-merge", []bench.System{bench.SystemCODS, bench.SystemCommercial, bench.SystemCommercialIdx, bench.SystemMonet}, bench.RunGeneralMerge)
	default:
		fmt.Fprintf(os.Stderr, "codsbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func htapMain(args []string) {
	fs := flag.NewFlagSet("codsbench htap", flag.ExitOnError)
	workloadName := fs.String("workload", "", "workload label in output and the series file (default derived from the mix)")
	table := fs.String("table", "R", "table under test (the SMO cycle uses <table>_smo scratch names)")
	rows := fs.Int("rows", 50_000, "initial table size")
	distinct := fs.Int("distinct", 0, "distinct keys in column A (default rows/10)")
	zipf := fs.Float64("zipf", 0, "Zipf skew for data and point-read keys (>1 to enable)")
	readPct := fs.Int("read", 70, "point-read percentage of the mix")
	scanPct := fs.Int("scan", 10, "GROUP-BY scan percentage of the mix")
	writePct := fs.Int("write", 20, "keyed DML percentage of the mix")
	smoInterval := fs.Duration("smo-interval", 0, "background evolution cycle period (0 disables)")
	workers := fs.Int("workers", 4, "concurrent client workers")
	duration := fs.Duration("duration", 5*time.Second, "measured wall time")
	rate := fs.Float64("rate", 0, "total target ops/sec across workers (0 = closed loop)")
	transport := fs.String("transport", bench.TransportInproc, "inproc | http (http self-hosts a server unless -addr is set)")
	addr := fs.String("addr", "", "base URL of an external cods-serve endpoint (implies -transport http)")
	retain := fs.Int("retain", 8, "cods.Config.RetainVersions for the in-process DB")
	autocompact := fs.Int("autocompact", 4096, "cods.Config.AutoCompactPending for the in-process DB")
	parallelism := fs.Int("parallelism", 0, "cods.Config.Parallelism (0 = GOMAXPROCS)")
	out := fs.String("out", "", "append the result to this JSON series file (e.g. BENCH_htap.json)")
	seed := fs.Int64("seed", 1, "seed for data, key choice and mix selection")
	quiet := fs.Bool("quiet", false, "suppress setup progress")
	sloRead := fs.Duration("slo-read-p99", 0, "fail (exit 3) if read p99 exceeds this (0 disables)")
	sloScan := fs.Duration("slo-scan-p99", 0, "fail (exit 3) if scan p99 exceeds this (0 disables)")
	sloWrite := fs.Duration("slo-write-p99", 0, "fail (exit 3) if write p99 exceeds this (0 disables)")
	sloSMO := fs.Duration("slo-smo-p99", 0, "fail (exit 3) if smo p99 exceeds this (0 disables)")
	fs.Parse(args)

	cfg := bench.HTAPConfig{
		Name:         *workloadName,
		Table:        *table,
		Rows:         *rows,
		DistinctKeys: *distinct,
		ZipfS:        *zipf,
		ReadPct:      *readPct,
		ScanPct:      *scanPct,
		WritePct:     *writePct,
		SMOInterval:  *smoInterval,
		Workers:      *workers,
		Duration:     *duration,
		TargetRate:   *rate,
		Seed:         *seed,
		Transport:    *transport,
		Addr:         *addr,
		Retain:       *retain,
		AutoCompact:  *autocompact,
		Parallelism:  *parallelism,
	}
	if *addr != "" {
		cfg.Transport = bench.TransportHTTP
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	res, err := bench.RunHTAP(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codsbench: htap:", err)
		os.Exit(1)
	}
	res.Format(os.Stdout)
	if *out != "" {
		if err := bench.AppendResult(*out, res); err != nil {
			fmt.Fprintln(os.Stderr, "codsbench: htap:", err)
			os.Exit(1)
		}
		fmt.Printf("# appended to %s\n", *out)
	}

	violations := res.CheckSLOs(map[string]time.Duration{
		bench.ClassRead:  *sloRead,
		bench.ClassScan:  *sloScan,
		bench.ClassWrite: *sloWrite,
		bench.ClassSMO:   *sloSMO,
	})
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "codsbench:", v)
	}
	if len(violations) > 0 {
		os.Exit(3)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad distinct count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSystems(s string) []bench.System {
	var out []bench.System
	for _, f := range strings.Split(s, ",") {
		out = append(out, bench.System(strings.TrimSpace(f)))
	}
	return out
}

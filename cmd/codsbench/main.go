// Command codsbench regenerates the paper's evaluation (Figure 3): the
// time to decompose a table and to merge it back, as a function of the
// number of distinct values, on CODS's data-level path (D) versus the
// query-level baselines (C, C+I, S, M).
//
// Usage:
//
//	codsbench [-experiment decompose|merge|general-merge|all]
//	          [-rows N] [-distinct 100,1000,...] [-systems D,C,C+I,S,M]
//	          [-zipf s] [-seed n] [-quiet]
//
// The default row count (2,000,000) keeps a full sweep inside laptop
// memory; -rows 10000000 reproduces the paper's scale. Times are for the
// evolution step only — input loading is excluded, as in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cods/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "decompose | merge | general-merge | all")
	rows := flag.Int("rows", 2_000_000, "input rows (the paper uses 10000000)")
	distinct := flag.String("distinct", "100,1000,10000,100000,1000000", "comma-separated distinct-value counts (the Figure 3 x-axis)")
	systems := flag.String("systems", "", "comma-separated system keys (default: the figure's lines)")
	zipf := flag.Float64("zipf", 0, "Zipf skew parameter for key frequencies (>1 to enable)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	quiet := flag.Bool("quiet", false, "suppress per-measurement progress")
	flag.Parse()

	counts, err := parseInts(*distinct)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codsbench:", err)
		os.Exit(2)
	}
	cfg := bench.Config{Rows: *rows, DistinctCounts: counts, Seed: *seed, ZipfS: *zipf}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	run := func(name string, defaults []bench.System, fn func(bench.Config) (*bench.Result, error)) {
		cfg := cfg
		cfg.Systems = defaults
		if *systems != "" {
			cfg.Systems = parseSystems(*systems)
		}
		res, err := fn(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codsbench:", err)
			os.Exit(1)
		}
		res.Format(os.Stdout)
		speedups := res.Speedups()
		for _, d := range res.Distincts {
			if s, ok := speedups[d]; ok {
				fmt.Printf("# d=%d: CODS speedup over slowest query-level system = %.1fx\n", d, s)
			}
		}
		fmt.Println()
	}

	runScale := func() {
		// Row-count scaling at a fixed distinct count: the "scalably"
		// axis of the paper's title.
		rowCounts := []int{*rows / 8, *rows / 4, *rows / 2, *rows}
		run("scale", bench.Figure3aSystems, func(cfg bench.Config) (*bench.Result, error) {
			return bench.RunScale(cfg, rowCounts, 10_000)
		})
	}

	switch *experiment {
	case "decompose":
		run("decompose", bench.Figure3aSystems, bench.RunDecompose)
	case "merge":
		run("merge", bench.Figure3bSystems, bench.RunMerge)
	case "general-merge":
		run("general-merge", []bench.System{bench.SystemCODS, bench.SystemCommercial, bench.SystemCommercialIdx, bench.SystemMonet}, bench.RunGeneralMerge)
	case "scale":
		runScale()
	case "all":
		run("decompose", bench.Figure3aSystems, bench.RunDecompose)
		run("merge", bench.Figure3bSystems, bench.RunMerge)
		run("general-merge", []bench.System{bench.SystemCODS, bench.SystemCommercial, bench.SystemCommercialIdx, bench.SystemMonet}, bench.RunGeneralMerge)
	default:
		fmt.Fprintf(os.Stderr, "codsbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad distinct count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSystems(s string) []bench.System {
	var out []bench.System
	for _, f := range strings.Split(s, ",") {
		out = append(out, bench.System(strings.TrimSpace(f)))
	}
	return out
}

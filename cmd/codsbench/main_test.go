package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestHTAPEndToEnd drives the real htap entry point — flag parsing, the
// workload run, the series append, and a passing SLO gate — with a fixed
// seed and a tiny duration, then asserts the emitted BENCH_htap.json
// entry carries the documented schema. (The SLO *violation* path calls
// os.Exit(3) and is exercised by scripts/bench_htap.sh and CI instead.)
func TestHTAPEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_htap.json")
	htapMain([]string{
		"-workload", "e2e", "-rows", "1500", "-workers", "2",
		"-duration", "150ms", "-smo-interval", "10m", "-seed", "42",
		"-quiet", "-out", out, "-slo-read-p99", "10s",
	})

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var series []map[string]any
	if err := json.Unmarshal(data, &series); err != nil {
		t.Fatalf("emitted series is not a JSON array: %v", err)
	}
	if len(series) != 1 {
		t.Fatalf("series has %d entries, want 1", len(series))
	}
	entry := series[0]
	if entry["workload"] != "e2e" || entry["transport"] != "inproc" {
		t.Fatalf("entry identity wrong: %v / %v", entry["workload"], entry["transport"])
	}
	for _, field := range []string{
		"rows", "distinct_keys", "zipf_s", "mix", "workers", "duration_ms",
		"seed", "classes", "pending_rows", "retained_versions", "compactions",
	} {
		if _, ok := entry[field]; !ok {
			t.Errorf("entry missing documented field %q", field)
		}
	}
	classes, ok := entry["classes"].(map[string]any)
	if !ok || len(classes) == 0 {
		t.Fatalf("classes missing or empty: %v", entry["classes"])
	}
	for class, v := range classes {
		cs, ok := v.(map[string]any)
		if !ok {
			t.Fatalf("class %q is not an object", class)
		}
		for _, field := range []string{"ops", "errors", "ops_per_sec", "p50_ms", "p95_ms", "p99_ms", "max_ms"} {
			if _, ok := cs[field]; !ok {
				t.Errorf("class %q missing field %q", class, field)
			}
		}
	}
}

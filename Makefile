GO ?= go

# Pinned versions for the external linters CI installs; keep in sync with
# .github/workflows/ci.yml. Local runs skip them when the tool is absent
# (this repo builds offline), so `make lint` only hard-requires codslint.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build vet fmt-check test race fuzz fuzz-smoke bench bench-smoke bench-writes bench-htap bench-joins docs-lint serve-smoke lint staticcheck govulncheck ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-sensitive packages: the parallel
# execution layer, the evolution algorithms that fan out over it, the
# engine's atomic catalog publication (now including background segment
# merges racing flushes), the DML delta overlay (lazy flush caching racing
# concurrent readers), the segmented persistence layer, the SMO parser the
# WAL replays through, the public facade (lock-free reads vs Exec, plus
# the segmented-vs-rebuild property test), and the HTTP serving layer.
race:
	$(GO) test -race cods cods/internal/par cods/internal/evolve \
		cods/internal/wah cods/internal/colstore cods/internal/colquery \
		cods/internal/core cods/internal/delta cods/internal/server \
		cods/internal/storage cods/internal/smo cods/internal/bench \
		cods/internal/plan

# Short native-fuzz pass (seed corpora + 5s live fuzzing per target) over
# the WAH kernels and the SMO parser round trip; cheap enough for CI.
fuzz-smoke:
	sh scripts/fuzz_smoke.sh

# Longer fuzzing session for local bug hunting (2 min per target; raise
# FUZZ_TIME for overnight runs).
fuzz:
	FUZZ_TIME=2m sh scripts/fuzz_smoke.sh

# Every package must carry a package doc comment.
docs-lint:
	sh scripts/docslint.sh

# codslint: the in-repo go/analysis suite enforcing the engine's
# concurrency, immutability, and durability invariants (see
# internal/lint/doc.go). Runs both standalone and as a vet tool so the
# vet-driven path (which also covers _test.go files) stays exercised.
lint:
	$(GO) run ./cmd/codslint ./...
	$(GO) build -o $(or $(TMPDIR),/tmp)/codslint ./cmd/codslint
	$(GO) vet -vettool=$(or $(TMPDIR),/tmp)/codslint ./...

# External linters, pinned above. Installed in CI; skipped locally when
# not on PATH so offline checkouts still get a green `make ci`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION))"; fi

# Real-binary E2E smoke of `cods serve` (health, exec, query, shutdown).
serve-smoke:
	sh scripts/serve_smoke.sh

# Smoke-run every benchmark once so bench code cannot rot; use
# `go test -bench=. -benchtime=10x` (or cmd/codsbench) for real numbers.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Read p99 while a DECOMPOSE/MERGE loop runs (lock-free snapshot reads vs
# the retired RWMutex design), plus the mixed DML+query+evolution workload
# over the delta overlay and a short sustained keyed-write burst, so the
# perf trajectory covers writes. Enough iterations to make the metrics
# meaningful; still seconds, not minutes.
bench-smoke:
	$(GO) test -run=NONE -bench='ReadLatencyDuringEvolution|MixedWorkload|SustainedKeyedWrites' -benchtime=200x cods

# The full 50k-statement sustained keyed-write run, recorded to
# BENCH_writes.json (the write-path perf trajectory; ~1 min).
bench-writes:
	sh scripts/bench_writes.sh

# Mixed HTAP workload (reads + scans + keyed DML + background evolution)
# on both transports with a generous read-p99 SLO gate, appended to
# BENCH_htap.json. See BENCHMARKS.md for knobs and methodology.
bench-htap:
	sh scripts/bench_htap.sh

# Join benchmark series (decomposed star vs scan-of-original) ->
# BENCH_joins.json. BENCH_JOINS_ROWS/BENCH_JOINS_DIM shrink it for CI.
bench-joins:
	sh scripts/bench_joins.sh

ci: build vet fmt-check lint staticcheck govulncheck test docs-lint serve-smoke race fuzz-smoke bench bench-smoke bench-writes bench-htap bench-joins

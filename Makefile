GO ?= go

.PHONY: all build vet fmt-check test race bench ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-sensitive packages: the parallel
# execution layer, the evolution algorithms that fan out over it, and the
# public facade (concurrent Query vs Exec).
race:
	$(GO) test -race cods cods/internal/par cods/internal/evolve \
		cods/internal/wah cods/internal/colstore cods/internal/colquery

# Smoke-run every benchmark once so bench code cannot rot; use
# `go test -bench=. -benchtime=10x` (or cmd/codsbench) for real numbers.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

ci: build vet fmt-check test race bench

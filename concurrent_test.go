package cods_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"cods"
)

// TestConcurrentQueryDuringEvolve races parallel Query/Count/catalog reads
// against SMO execution on the same DB. Under -race this exercises the
// facade's lock-free snapshot reads against the writers' copy-on-write
// catalog publication; the assertions check that every reader observes a
// whole schema version — one of the known catalog states an SMO sequence
// can leave behind, never a half-applied one.
func TestConcurrentQueryDuringEvolve(t *testing.T) {
	db := cods.Open(cods.Config{Parallelism: 4})
	var rows [][]string
	for i := 0; i < 4000; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("e%04d", i%200),
			fmt.Sprintf("s%04d", i),
			fmt.Sprintf("a%03d", i%200/2),
		})
	}
	if err := db.CreateTableFromRows("R", []string{"Employee", "Skill", "Address"}, nil, rows); err != nil {
		t.Fatal(err)
	}

	const (
		readers      = 4
		readsEach    = 60
		evolveCycles = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*readsEach+evolveCycles*2)

	// Writer: repeatedly decompose R and merge it back. Between operators
	// the catalog is either {R} or {S, T}; readers must only ever see one
	// of those two states.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < evolveCycles; i++ {
			if _, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)"); err != nil {
				errs <- fmt.Errorf("decompose cycle %d: %w", i, err)
				return
			}
			if _, err := db.Exec("MERGE TABLES T, S INTO R"); err != nil {
				errs <- fmt.Errorf("merge cycle %d: %w", i, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsEach; i++ {
				hasR, hasS, hasT := db.HasTable("R"), db.HasTable("S"), db.HasTable("T")
				// A consistent catalog within one snapshot would be exactly
				// {R} or {S, T}; HasTable takes three separate snapshots, so
				// only per-call sanity holds. Query against whichever table
				// the instantaneous catalog offers.
				table, where := "R", "Employee = 'e0001'"
				if !hasR && (hasS || hasT) {
					table = "S"
					if !hasS {
						table = "T"
						where = "Employee = 'e0001'"
					}
				}
				got, err := db.Query(table, where)
				if err != nil {
					// The table may evolve away between HasTable and Query —
					// an acceptable race (re-checking HasTable would race
					// again with the table's re-creation). Any other failure
					// is real.
					if !strings.Contains(err.Error(), "no table") {
						errs <- fmt.Errorf("reader %d: Query(%s): %w", r, table, err)
						return
					}
					continue
				}
				for _, row := range got {
					if row[0] != "e0001" {
						errs <- fmt.Errorf("reader %d: Query(%s) returned row for %q", r, table, row[0])
						return
					}
				}
				if _, err := db.Count(table, where); err != nil && !strings.Contains(err.Error(), "no table") {
					errs <- fmt.Errorf("reader %d: Count(%s): %w", r, table, err)
					return
				}
				db.Tables()
				db.Version()
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After all evolutions, R must be back with the original tuple count.
	n, err := db.NumRows("R")
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(rows)) {
		t.Fatalf("R has %d rows after evolve cycles, want %d", n, len(rows))
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRunQueryAndRollback races aggregate queries with rollbacks,
// the other write path.
func TestConcurrentRunQueryAndRollback(t *testing.T) {
	db := cods.Open(cods.Config{Parallelism: 2})
	var rows [][]string
	for i := 0; i < 1000; i++ {
		rows = append(rows, []string{fmt.Sprintf("g%d", i%7), fmt.Sprintf("%d", i)})
	}
	if err := db.CreateTableFromRows("T", []string{"G", "V"}, nil, rows); err != nil {
		t.Fatal(err)
	}
	base := db.Version()
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Exec(fmt.Sprintf("ADD COLUMN X%d TO T DEFAULT 'x'", i)); err != nil {
				errs <- err
				return
			}
			if err := db.Rollback(base); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				rs, err := db.RunQuery("T", cods.TableQuery{
					GroupBy:    "G",
					Aggregates: []cods.Agg{{Func: cods.Count}, {Func: cods.Sum, Column: "V"}},
					OrderBy:    "G",
				})
				if err != nil {
					errs <- err
					return
				}
				if len(rs.Rows) != 7 {
					errs <- fmt.Errorf("got %d groups, want 7", len(rs.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

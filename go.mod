module cods

go 1.23

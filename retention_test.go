// Tests for the bounded-memory write path: version retention (Prune,
// Config.RetainVersions, the PRUNE statement), overlay auto-compaction,
// and the paged history accessors.
package cods_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cods"
)

func keyedDB(t *testing.T, cfg cods.Config) *cods.DB {
	t.Helper()
	db := cods.Open(cfg)
	if _, err := db.Exec("CREATE TABLE kv (K, V) KEY (K)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPruneAndRollbackWindow(t *testing.T) {
	db := keyedDB(t, cods.Config{})
	for i := 0; i < 8; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('k%d', 'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	v := db.Version() // 9: CREATE plus eight INSERTs

	if n := db.Prune(2); n == 0 {
		t.Fatal("Prune(2) retired nothing")
	}
	ms := db.MemStats()
	if ms.RetainedVersions != 3 || ms.OldestRetainedVersion != v-2 {
		t.Fatalf("MemStats after Prune(2) = %+v", ms)
	}

	err := db.Rollback(1)
	if !errors.Is(err, cods.ErrVersionPruned) {
		t.Fatalf("Rollback(pruned) = %v, want ErrVersionPruned", err)
	}
	var pe *cods.VersionPrunedError
	if !errors.As(err, &pe) || pe.Version != 1 || pe.OldestRetained != v-2 || pe.Newest != v {
		t.Fatalf("pruned-error window = %+v (err %v)", pe, err)
	}
	// Never-existed versions keep the plain error, so a typo is not
	// mistaken for retention.
	if err := db.Rollback(v + 50); err == nil || errors.Is(err, cods.ErrVersionPruned) {
		t.Fatalf("Rollback(never-existed) = %v", err)
	}

	// Inside the window rollback still works, including the DML state.
	if err := db.Rollback(v - 1); err != nil {
		t.Fatal(err)
	}
	n, err := db.NumRows("kv")
	if err != nil || n != 7 {
		t.Fatalf("rows after rollback = %d (%v), want 7", n, err)
	}
}

// The PRUNE statement is the scriptable form of Prune: no new schema
// version, no history entry, same window.
func TestPruneStatement(t *testing.T) {
	db := keyedDB(t, cods.Config{})
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('k%d', 'v')", i)); err != nil {
			t.Fatal(err)
		}
	}
	v := db.Version()
	histLen := db.Snapshot().HistoryLen()

	res, err := db.Exec("PRUNE KEEP 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "PRUNE" || res.Version != v || db.Version() != v {
		t.Fatalf("PRUNE result = %+v (version now %d), want version unchanged at %d", res, db.Version(), v)
	}
	if got := db.Snapshot().HistoryLen(); got != histLen {
		t.Fatalf("PRUNE grew history: %d -> %d", histLen, got)
	}
	if len(res.Steps) == 0 || !strings.Contains(res.Steps[0], "rollback window") {
		t.Fatalf("PRUNE steps = %v", res.Steps)
	}
	if err := db.Rollback(0); !errors.Is(err, cods.ErrVersionPruned) {
		t.Fatalf("Rollback(0) after PRUNE KEEP 1 = %v", err)
	}
	if err := db.Rollback(v - 1); err != nil {
		t.Fatalf("Rollback inside kept window: %v", err)
	}
}

// Auto-compaction is invisible to results: the same mixed DML script run
// with compaction after every statement (threshold 1), a mid-size
// threshold, and never (0) produces identical contents, versions and
// query answers — only the physical representation differs.
func TestAutoCompactionScriptEquivalence(t *testing.T) {
	script := []string{
		"INSERT INTO kv VALUES ('a', '1')",
		"INSERT INTO kv VALUES ('b', '2')",
		"INSERT INTO kv VALUES ('c', '3')",
		"UPDATE kv SET V = '20' WHERE K = 'b'",
		"INSERT INTO kv VALUES ('d', '4')",
		"DELETE FROM kv WHERE K = 'a'",
		"INSERT INTO kv VALUES ('e', '5')",
		"INSERT INTO kv VALUES ('a', '10')",
		"UPDATE kv SET V = '0' WHERE V < '3'",
		"DELETE FROM kv WHERE K = 'e'",
		"INSERT INTO kv VALUES ('f', '6')",
	}
	type state struct {
		version int
		rows    []string
		filter  []string
		count   uint64
	}
	run := func(threshold int) state {
		db := keyedDB(t, cods.Config{AutoCompactPending: threshold})
		for _, s := range script {
			if _, err := db.Exec(s); err != nil {
				t.Fatalf("threshold %d: %q: %v", threshold, s, err)
			}
		}
		rows, err := db.Rows("kv", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		filter, err := db.Query("kv", "V >= '1'")
		if err != nil {
			t.Fatal(err)
		}
		count, err := db.Count("kv", "K != 'zzz'")
		if err != nil {
			t.Fatal(err)
		}
		return state{db.Version(), sortedRows(rows), sortedRows(filter), count}
	}

	never := run(0)
	each := run(1)
	mid := run(3)
	if !reflect.DeepEqual(never, each) {
		t.Fatalf("threshold 1 diverged:\nnever: %+v\neach:  %+v", never, each)
	}
	if !reflect.DeepEqual(never, mid) {
		t.Fatalf("threshold 3 diverged:\nnever: %+v\nmid:   %+v", never, mid)
	}

	// And the compacting run really compacted: nothing pending at
	// threshold 1, compaction counter moving.
	db := keyedDB(t, cods.Config{AutoCompactPending: 1})
	for _, s := range script {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	ms := db.MemStats()
	if ms.PendingRows != 0 || ms.Compactions == 0 {
		t.Fatalf("threshold-1 run left MemStats = %+v, want 0 pending and >0 compactions", ms)
	}
}

// Acceptance: after Checkpoint with RetainVersions=N the engine retains
// at most N+1 snapshots, and a SIGKILL-shaped reopen (no Close) with the
// same config recovers the data and keeps the bound.
func TestDurableRetainVersionsBound(t *testing.T) {
	const retain = 2
	dir := t.TempDir()
	cfg := cods.Config{RetainVersions: retain, AutoCompactPending: 4}
	db, err := cods.OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE kv (K, V) KEY (K)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('k%02d', 'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ms := db.MemStats()
	if ms.RetainedVersions > retain+1 {
		t.Fatalf("retained %d versions after Checkpoint, want <= %d", ms.RetainedVersions, retain+1)
	}
	if ms.PendingRows != 0 {
		t.Fatalf("pending rows after Checkpoint = %d, want 0", ms.PendingRows)
	}
	if err := db.Rollback(0); !errors.Is(err, cods.ErrVersionPruned) {
		t.Fatalf("Rollback(0) = %v, want ErrVersionPruned", err)
	}
	// Crash: drop the handle without Close.

	re, err := cods.OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Rollback on a durable DB checkpoints, so the version moved past the
	// insert count; the data is what matters.
	n, err := re.NumRows("kv")
	if err != nil || n != 12 {
		t.Fatalf("recovered rows = %d (%v), want 12", n, err)
	}
	for i := 0; i < 6; i++ {
		if _, err := re.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('r%02d', 'v')", i)); err != nil {
			t.Fatal(err)
		}
	}
	if ms := re.MemStats(); ms.RetainedVersions > retain+1 {
		t.Fatalf("retained %d versions after recovery writes, want <= %d", ms.RetainedVersions, retain+1)
	}
}

func TestHistoryTail(t *testing.T) {
	db := keyedDB(t, cods.Config{})
	for i := 0; i < 6; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('k%d', 'v')", i)); err != nil {
			t.Fatal(err)
		}
	}
	full := db.History()
	if db.Snapshot().HistoryLen() != len(full) {
		t.Fatalf("HistoryLen = %d, want %d", db.Snapshot().HistoryLen(), len(full))
	}
	tail := db.HistoryTail(3)
	if !reflect.DeepEqual(tail, full[len(full)-3:]) {
		t.Fatalf("HistoryTail(3) = %v, want last 3 of %v", tail, full)
	}
	if got := db.HistoryTail(0); !reflect.DeepEqual(got, full) {
		t.Fatalf("HistoryTail(0) = %v, want full history", got)
	}
	if got := db.HistoryTail(100); !reflect.DeepEqual(got, full) {
		t.Fatalf("HistoryTail(100) = %v, want full history", got)
	}
	// Retention does not touch history: pruning snapshots keeps the log.
	db.Prune(1)
	if got := db.Snapshot().HistoryLen(); got != len(full) {
		t.Fatalf("Prune shrank history: %d -> %d", len(full), got)
	}
}

// Rollback, Prune, DML (with auto-compaction) and lock-free snapshot
// readers race without torn state: run with -race. Readers must always
// observe a whole schema version; writers may lose rollback targets to
// the pruner, which is the documented contract, never a crash.
func TestConcurrentRollbackPruneSnapshotReaders(t *testing.T) {
	db := keyedDB(t, cods.Config{AutoCompactPending: 8})
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('seed%d', 'v')", i)); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 120
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Writer: a DML stream (inserts with occasional deletes) that crosses
	// the auto-compaction threshold many times.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('w%04d', 'v')", i)); err != nil {
				report(fmt.Errorf("insert: %w", err))
				return
			}
			if i%7 == 6 {
				if _, err := db.Exec(fmt.Sprintf("DELETE FROM kv WHERE K = 'w%04d'", i-3)); err != nil {
					report(fmt.Errorf("delete: %w", err))
					return
				}
			}
		}
	}()

	// Rollbacker: jumps one version back now and then; the target may
	// have been pruned already, which must fail cleanly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			v := db.Version()
			if v == 0 {
				continue
			}
			if err := db.Rollback(v - 1); err != nil && !errors.Is(err, cods.ErrVersionPruned) {
				report(fmt.Errorf("rollback: %w", err))
				return
			}
		}
	}()

	// Pruner: alternates the API and the statement form.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if i%2 == 0 {
				db.Prune(3)
			} else if _, err := db.Exec("PRUNE KEEP 3"); err != nil {
				report(fmt.Errorf("prune statement: %w", err))
				return
			}
		}
	}()

	// Readers: pin snapshots and read everything off them.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap := db.Snapshot()
				n, err := snap.NumRows("kv")
				if err != nil {
					report(fmt.Errorf("reader rows: %w", err))
					return
				}
				c, err := snap.Count("kv", "K != ''")
				if err != nil {
					report(fmt.Errorf("reader count: %w", err))
					return
				}
				if c != n {
					report(fmt.Errorf("torn snapshot: Count=%d NumRows=%d", c, n))
					return
				}
				if tl := snap.HistoryTail(5); len(tl) > snap.HistoryLen() {
					report(fmt.Errorf("tail longer than log"))
					return
				}
				_ = db.MemStats()
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Lock-free point reads (Count/Query with the whole key pinned by
// equality — the arena key index fast path) race a keyed INSERT stream
// whose tip claims write the same shared index: run with -race. This is
// the reader-vs-claim interleaving the arena mutex guards.
func TestConcurrentPointReadsVsKeyedInserts(t *testing.T) {
	db := keyedDB(t, cods.Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 4)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 300; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES ('p%04d', 'v')", i)); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Point predicate: resolved via the key index, not a scan.
				n, err := db.Count("kv", fmt.Sprintf("K = 'p%04d'", i%300))
				if err != nil || n > 1 {
					select {
					case errc <- fmt.Errorf("point count: n=%d err=%w", n, err):
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

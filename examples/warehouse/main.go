// Warehouse: the paper's data-warehouse motivation (§1, scenario 2) —
// evolving between a denormalized star schema and a normalized
// snowflake-ish schema as the workload shifts.
//
// A sales fact table arrives denormalized: every sale row repeats the
// product's category and the store's region. When the warehouse becomes
// update-intensive (product categories get reassigned), the repeated
// attributes are decomposed out into dimension tables. When the workload
// later becomes scan-heavy dashboards, the dimensions are merged back in
// to avoid joins. CODS performs both evolutions at data level.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cods"
)

func main() {
	db := cods.Open(cods.Config{ValidateFD: true})

	// Denormalized sales: Sale, Product, Category, Store, Region with the
	// FDs Product -> Category and Store -> Region.
	const nSales = 50_000
	rng := rand.New(rand.NewSource(7))
	products := make([]string, 200)
	categories := make([]string, len(products))
	for i := range products {
		products[i] = fmt.Sprintf("prod-%03d", i)
		categories[i] = fmt.Sprintf("cat-%02d", i%17)
	}
	stores := make([]string, 50)
	regions := make([]string, len(stores))
	for i := range stores {
		stores[i] = fmt.Sprintf("store-%02d", i)
		regions[i] = fmt.Sprintf("region-%d", i%6)
	}
	rows := make([][]string, nSales)
	for i := range rows {
		p, s := rng.Intn(len(products)), rng.Intn(len(stores))
		rows[i] = []string{
			fmt.Sprintf("sale-%06d", i),
			products[p], categories[p],
			stores[s], regions[s],
		}
	}
	if err := db.CreateTableFromRows("Sales",
		[]string{"Sale", "Product", "Category", "Store", "Region"}, nil, rows); err != nil {
		log.Fatal(err)
	}
	describe(db, "Sales")

	// Workload turns update-intensive: normalize. Two decompositions peel
	// the dimensions off the fact table.
	fmt.Println("\n--- normalize: star -> snowflake (update-intensive workload) ---")
	script := `
DECOMPOSE TABLE Sales INTO Sales1 (Sale, Product, Store, Region), ProductDim (Product, Category)
DECOMPOSE TABLE Sales1 INTO Fact (Sale, Product, Store), StoreDim (Store, Region)
`
	results, err := db.ExecScript(script)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %-90s %v\n", r.Op, r.Elapsed)
	}
	for _, t := range db.Tables() {
		describe(db, t)
	}

	// A category reassignment is now one dimension-row change away.
	nBefore, _ := db.Count("ProductDim", "Category = 'cat-03'")
	fmt.Printf("\nproducts in cat-03: %d (updating them now touches %d dimension rows, not %d fact rows)\n",
		nBefore, nBefore, mustCount(db, "Fact", "Product != ''"))

	// Workload turns into scan-heavy dashboards: denormalize back.
	fmt.Println("\n--- denormalize: snowflake -> star (query-intensive workload) ---")
	results, err = db.ExecScript(`
MERGE TABLES Fact, StoreDim INTO Sales1
MERGE TABLES Sales1, ProductDim INTO Sales
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %-60s %v\n", r.Op, r.Elapsed)
	}
	describe(db, "Sales")

	// Sanity: the round trip preserved every sale.
	n, _ := db.NumRows("Sales")
	if n != nSales {
		log.Fatalf("lost sales: %d != %d", n, nSales)
	}
	fmt.Printf("\nround trip preserved all %d sales; dashboards query one table again:\n", n)
	got, err := db.Query("Sales", "Region = 'region-2' AND Category = 'cat-03'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  region-2 x cat-03 sales: %d rows (no join executed)\n", len(got))
}

func describe(db *cods.DB, table string) {
	info, err := db.Describe(table)
	if err != nil {
		log.Fatal(err)
	}
	var bytes uint64
	for _, c := range info.Columns {
		bytes += c.CompressedBytes
	}
	fmt.Printf("%-12s %8d rows  %d columns  %8d bytes compressed\n",
		info.Name, info.Rows, len(info.Columns), bytes)
}

func mustCount(db *cods.DB, table, cond string) uint64 {
	n, err := db.Count(table, cond)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

// Quickstart: the paper's Figure 1 evolution in a dozen lines of API.
//
// A table R(Employee, Skill, Address) turns out to violate normalization
// once it becomes clear that employees have multiple skills, so it is
// decomposed into S(Employee, Skill) and T(Employee, Address) — and later,
// when the workload becomes query-intensive, merged back.
package main

import (
	"fmt"
	"log"

	"cods"
)

func main() {
	db := cods.Open(cods.Config{ValidateFD: true})

	err := db.CreateTableFromRows("R",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"Jones", "Typing", "425 Grant Ave"},
			{"Jones", "Shorthand", "425 Grant Ave"},
			{"Roberts", "Light Cleaning", "747 Industrial Way"},
			{"Ellis", "Alchemy", "747 Industrial Way"},
			{"Jones", "Whittling", "425 Grant Ave"},
			{"Ellis", "Juggling", "747 Industrial Way"},
			{"Harrison", "Light Cleaning", "425 Grant Ave"},
		})
	if err != nil {
		log.Fatal(err)
	}

	// Schema 1 -> schema 2: data-level decomposition.
	res, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed R in %v\n", res.Elapsed)
	for _, name := range db.Tables() {
		n, _ := db.NumRows(name)
		fmt.Printf("  %s: %d rows\n", name, n)
	}

	// Query the evolved schema through the bitmap index.
	addrs, err := db.Query("T", "Address = '425 Grant Ave'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("employees at 425 Grant Ave:")
	for _, row := range addrs {
		fmt.Println("  ", row[0])
	}

	// Schema 2 -> schema 1: key-foreign-key mergence.
	res, err = db.Exec("MERGE TABLES S, T INTO R")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged back in %v; R has %d-row multiset identical to the original\n",
		res.Elapsed, mustRows(db, "R"))
}

func mustRows(db *cods.DB, table string) uint64 {
	n, err := db.NumRows(table)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

// Workloadshift: the remaining Table 1 operators on a realistic scenario —
// new information arriving about the data (§1, scenario 1) and a
// hot/cold split driven by access patterns.
//
// An access-log table gains a column when new information emerges (ADD
// COLUMN), is split into hot and cold partitions by year (PARTITION
// TABLE), archived (COPY/RENAME TABLE), re-unified when the access pattern
// changes again (UNION TABLES), and trimmed of a stale attribute (DROP
// COLUMN).
package main

import (
	"fmt"
	"log"

	"cods"
)

func main() {
	db := cods.Open(cods.Config{})

	var rows [][]string
	for i := 0; i < 20_000; i++ {
		year := 2019 + i%6
		rows = append(rows, []string{
			fmt.Sprintf("user-%04d", i%500),
			fmt.Sprintf("page-%03d", i%97),
			fmt.Sprintf("%d", year),
		})
	}
	if err := db.CreateTableFromRows("Log", []string{"User", "Page", "Year"}, nil, rows); err != nil {
		log.Fatal(err)
	}

	// New information about the data: a device type becomes available.
	// The default fills history in O(1) — a single fill bitmap.
	exec(db, "ADD COLUMN Device TO Log DEFAULT 'unknown'")
	exec(db, "RENAME COLUMN Device TO Client IN Log")

	// Access pattern: recent rows are hot, old rows are cold.
	exec(db, "PARTITION TABLE Log WHERE Year >= 2023 INTO Hot, Cold")
	show(db)

	// Archive a snapshot of the cold partition (constant time: columns
	// are immutable and shared).
	exec(db, "COPY TABLE Cold TO ColdArchive")
	exec(db, "RENAME TABLE ColdArchive TO Archive2024")

	// The analytics team later wants one table again.
	exec(db, "UNION TABLES Hot, Cold INTO Log")
	n, _ := db.NumRows("Log")
	fmt.Printf("re-unified log: %d rows\n", n)

	// The client column never got real data; drop it.
	exec(db, "DROP COLUMN Client FROM Log")
	exec(db, "DROP TABLE Archive2024")
	show(db)

	if err := db.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("final catalog validates; operator history:")
	for _, h := range db.History() {
		fmt.Printf("  v%-2d %-55s %v\n", h.Version, h.Op, h.Elapsed)
	}
}

func exec(db *cods.DB, op string) {
	res, err := db.Exec(op)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-55s %v\n", op, res.Elapsed)
}

func show(db *cods.DB) {
	for _, t := range db.Tables() {
		n, _ := db.NumRows(t)
		cols, _ := db.Columns(t)
		fmt.Printf("  %-14s %8d rows  columns %v\n", t, n, cols)
	}
}

// Advisor: the paper's "new information about the data" scenario (§1,
// scenario 1), closed into a loop — the system itself discovers the new
// information.
//
// A products table accumulated denormalized supplier data. The advisor
// mines the stored bitmaps for functional dependencies, proposes the
// decomposition that removes the most redundancy, the operator is applied
// at data level, and the result is queried through the bitmap index.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cods"
)

func main() {
	db := cods.Open(cods.Config{ValidateFD: true})

	// 10k products from 40 suppliers; supplier city and rating repeat on
	// every product row.
	rng := rand.New(rand.NewSource(11))
	cities := []string{"Austin", "Boston", "Chicago", "Denver", "Eugene"}
	var rows [][]string
	for i := 0; i < 10_000; i++ {
		s := rng.Intn(40)
		rows = append(rows, []string{
			fmt.Sprintf("prod-%05d", i),
			fmt.Sprintf("supplier-%02d", s),
			cities[s%len(cities)],
			fmt.Sprintf("%d", 1+s%5),
			fmt.Sprintf("%d", 5+rng.Intn(95)), // price: per-product
		})
	}
	err := db.CreateTableFromRows("Products",
		[]string{"Product", "Supplier", "City", "Rating", "Price"}, nil, rows)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovering evolution opportunities in Products...")
	suggestions, err := db.Advise("Products")
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range suggestions {
		fmt.Printf("%d. %s (saves ~%d cells)\n", i+1, s.Operator, s.SavedCells)
		for _, fd := range s.FDs {
			fmt.Printf("     %s\n", fd)
		}
	}
	if len(suggestions) == 0 {
		log.Fatal("expected at least one suggestion")
	}

	fmt.Println("\napplying the top suggestion at data level...")
	res, err := db.Exec(suggestions[0].Operator)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v; catalog: %v\n", res.Elapsed, db.Tables())

	// The dimension table is small and queryable; the fact table kept its
	// per-product attributes.
	for _, name := range db.Tables() {
		info, err := db.Describe(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %6d rows, columns %v\n", info.Name, info.Rows, columnNames(info))
	}

	rs, err := db.RunQuery("Products_Supplier_dim", cods.TableQuery{
		GroupBy:    "City",
		Aggregates: []cods.Agg{{Func: cods.Count, As: "suppliers"}},
		OrderBy:    "suppliers",
		Desc:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsuppliers per city (computed by compressed popcounts):")
	for _, row := range rs.Rows {
		fmt.Printf("  %-10s %s\n", row[0], row[1])
	}
}

func columnNames(info *cods.TableInfo) []string {
	out := make([]string, len(info.Columns))
	for i, c := range info.Columns {
		out[i] = c.Name
	}
	return out
}

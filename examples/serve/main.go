// Serve: schema evolution over HTTP while query traffic is in flight.
//
// The program starts the CODS serving layer (internal/server) on a
// loopback port over a durable catalog, then plays two roles at once
// through plain HTTP/JSON:
//
//   - readers: goroutines continuously POST /query, like online clients
//   - a migrator: POSTs /exec statements that decompose and re-merge the
//     schema underneath that live traffic
//
// Every query observes a whole schema version — the facade's read/write
// locking extends through the network layer — and because the catalog is
// durable, the final schema would survive a kill -9 of this process.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cods"
	"cods/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "cods-serve-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := cods.OpenDurable(dir, cods.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTableFromRows("emp",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"Jones", "Typing", "425 Grant Ave"},
			{"Jones", "Shorthand", "425 Grant Ave"},
			{"Roberts", "Light Cleaning", "747 Industrial Way"},
			{"Ellis", "Alchemy", "747 Industrial Way"},
			{"Harrison", "Light Cleaning", "425 Grant Ave"},
		}); err != nil {
		log.Fatal(err)
	}

	srv := server.New(db, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Println("serving on", base)

	// Readers: constant query pressure during the whole migration.
	var queries, misses atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// During the migration the rows live either in emp or in
				// skills; a 404 on one name just means the schema moved on.
				status, rows := query(base, "emp", "Skill = 'Light Cleaning'")
				if status == http.StatusNotFound {
					status, rows = query(base, "skills", "Skill = 'Light Cleaning'")
				}
				queries.Add(1)
				if status != http.StatusOK {
					misses.Add(1)
					continue
				}
				if rows != 2 {
					log.Fatalf("query saw %d light-cleaning rows, want 2: torn schema version!", rows)
				}
			}
		}()
	}

	// The migrator: evolve the schema while the readers are running.
	for round := 1; round <= 3; round++ {
		execOp(base, "DECOMPOSE TABLE emp INTO skills (Employee, Skill), addrs (Employee, Address)")
		execOp(base, "MERGE TABLES skills, addrs INTO emp")
		fmt.Printf("round %d: decomposed and re-merged under load\n", round)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	fmt.Printf("served %d queries during the migration (%d transient 404s, 0 torn reads)\n",
		queries.Load(), misses.Load())

	// The stats endpoint shows what the traffic looked like to the server.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st struct {
		SchemaVersion int `json:"schema_version"`
		Endpoints     map[string]struct {
			Requests int64   `json:"requests"`
			MeanMS   float64 `json:"mean_ms"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("schema version %d; /query: %d requests, mean %.3fms; /exec: %d requests, mean %.3fms\n",
		st.SchemaVersion,
		st.Endpoints["/query"].Requests, st.Endpoints["/query"].MeanMS,
		st.Endpoints["/exec"].Requests, st.Endpoints["/exec"].MeanMS)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("graceful shutdown complete; the catalog on disk holds the final schema")
}

// query POSTs /query and returns the HTTP status and row count.
func query(base, table, where string) (status, rows int) {
	body, _ := json.Marshal(map[string]any{"table": table, "where": where})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		RowCount int `json:"row_count"`
	}
	json.NewDecoder(resp.Body).Decode(&qr)
	return resp.StatusCode, qr.RowCount
}

// execOp POSTs one SMO statement to /exec and fails loudly on error.
func execOp(base, op string) {
	body, _ := json.Marshal(map[string]any{"op": op})
	resp, err := http.Post(base+"/exec", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("exec %q: %d %s", op, resp.StatusCode, e.Error)
	}
}

// Employee: a verbose walkthrough of the paper's running example
// (Figure 1), printing the tables before and after each evolution and the
// live "Data Evolution Status" events the demo UI shows (§3) — including
// the distinction and bitmap-filtering steps of §2.4.
package main

import (
	"fmt"
	"log"
	"strings"

	"cods"
)

func main() {
	db := cods.Open(cods.Config{
		ValidateFD: true,
		Status:     func(step string) { fmt.Printf("    [evolution status] %s\n", step) },
	})

	err := db.CreateTableFromRows("R",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"Jones", "Typing", "425 Grant Ave"},
			{"Jones", "Shorthand", "425 Grant Ave"},
			{"Roberts", "Light Cleaning", "747 Industrial Way"},
			{"Ellis", "Alchemy", "747 Industrial Way"},
			{"Jones", "Whittling", "425 Grant Ave"},
			{"Ellis", "Juggling", "747 Industrial Way"},
			{"Harrison", "Light Cleaning", "425 Grant Ave"},
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== schema 1: the denormalized table R ===")
	display(db, "R")
	fmt.Println()
	fmt.Println("Each employee has one address but many skills: the FD")
	fmt.Println("Employee -> Address makes R redundant and update-anomalous.")
	fmt.Println()

	fmt.Println("=== DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address) ===")
	res, err := db.Exec("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v, schema version %d\n\n", res.Elapsed, res.Version)

	fmt.Println("=== schema 2 ===")
	display(db, "S")
	fmt.Println()
	display(db, "T")
	fmt.Println()

	info, err := db.Describe("T")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T is keyed by %v; per-column storage:\n", info.Key)
	for _, c := range info.Columns {
		fmt.Printf("  %-10s %d distinct values, %d bytes of compressed bitmaps\n",
			c.Name, c.DistinctValues, c.CompressedBytes)
	}
	fmt.Println()

	fmt.Println("=== the workload turns query-intensive: MERGE TABLES S, T INTO R ===")
	res, err = db.Exec("MERGE TABLES S, T INTO R")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v, schema version %d\n\n", res.Elapsed, res.Version)
	display(db, "R")

	fmt.Println()
	fmt.Println("=== operator history ===")
	for _, h := range db.History() {
		fmt.Printf("  v%d  %-60s %v\n", h.Version, h.Op, h.Elapsed)
	}
}

func display(db *cods.DB, table string) {
	cols, err := db.Columns(table)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := db.Rows(table, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%d rows)\n", table, len(rows))
	fmt.Printf("  %s\n", strings.Join(cols, " | "))
	for _, r := range rows {
		fmt.Printf("  %s\n", strings.Join(r, " | "))
	}
}

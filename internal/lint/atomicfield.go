package lint

import (
	"go/ast"
	"go/types"

	"cods/internal/lint/analysis"
)

// AtomicField enforces all-or-nothing atomicity per field: once any code
// in a package operates on a struct field through sync/atomic
// (atomic.AddUint64(&s.n, 1), atomic.LoadPointer(&s.p), ...), every
// other access to that field must also be atomic. A mixed regime — an
// atomic increment on one path and a plain read on another — is a data
// race the race detector only catches when the schedule cooperates, and
// it is precisely the failure mode the engine avoided by moving its
// counters to typed atomics (atomic.Uint64, atomic.Pointer[Catalog]).
// Typed atomics are immune by construction, since their value is not
// reachable except through Load/Store methods; this analyzer guards the
// legacy address-based form, the one still easy to reintroduce.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "reject non-atomic access to fields that are elsewhere accessed through sync/atomic",
	Run:  runAtomicField,
}

func runAtomicField(pass *analysis.Pass) (interface{}, error) {
	af := &atomicField{
		pass:       pass,
		atomic:     make(map[*types.Var]string),
		sanctioned: make(map[*ast.SelectorExpr]bool),
	}
	// Pass 1: find the fields handed to sync/atomic and remember the
	// selector nodes those sanctioned accesses go through.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field, desc := af.fieldOf(sel); field != nil {
					af.atomic[field] = desc
					af.sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(af.atomic) == 0 {
		return nil, nil
	}
	// Pass 2: every other touch of those fields is a race.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || af.sanctioned[sel] {
				return true
			}
			field, _ := af.fieldOf(sel)
			if field == nil {
				return true
			}
			if desc, ok := af.atomic[field]; ok {
				pass.Reportf(sel.Pos(), "non-atomic access to %s, which is accessed with sync/atomic elsewhere; every access must go through sync/atomic", desc)
			}
			return true
		})
	}
	return nil, nil
}

type atomicField struct {
	pass *analysis.Pass
	// atomic maps a struct field to its "T.f" description once some
	// sync/atomic call takes its address.
	atomic map[*types.Var]string
	// sanctioned marks the selector nodes inside sync/atomic arguments,
	// so pass 2 can skip them.
	sanctioned map[*ast.SelectorExpr]bool
}

// fieldOf resolves a selector to the struct field it reads, with a
// "T.f" description.
func (af *atomicField) fieldOf(sel *ast.SelectorExpr) (*types.Var, string) {
	s, ok := af.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	desc := field.Name()
	if named := namedOf(s.Recv()); named != nil {
		desc = named.Obj().Name() + "." + desc
	}
	return field, desc
}

// Package a is the atomicfield fixture: a counter touched through
// sync/atomic on one path and plainly on others.
package a

import "sync/atomic"

// Stats mixes an atomic counter with plainly-accessed fields.
type Stats struct {
	ops   uint64
	name  string
	other uint64
}

// Record is the sanctioned access: it goes through sync/atomic.
func (s *Stats) Record() {
	atomic.AddUint64(&s.ops, 1)
}

// Ops reads the counter without atomic: a data race.
func (s *Stats) Ops() uint64 {
	return s.ops // want `non-atomic access to Stats\.ops, which is accessed with sync/atomic elsewhere; every access must go through sync/atomic`
}

// Reset writes the counter without atomic: the same race.
func (s *Stats) Reset() {
	s.ops = 0 // want `non-atomic access to Stats\.ops, which is accessed with sync/atomic elsewhere; every access must go through sync/atomic`
}

// OpsAtomic is the correct read; no finding.
func (s *Stats) OpsAtomic() uint64 {
	return atomic.LoadUint64(&s.ops)
}

// Untracked touches fields that never go through sync/atomic; plain
// access is fine.
func (s *Stats) Untracked() uint64 {
	s.other++
	_ = s.name
	return s.other
}

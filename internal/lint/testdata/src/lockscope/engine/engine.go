// Package engine is the lockscope fixture: blocking work under a writer
// lock, and read paths that must stay lock-free.
package engine

import (
	"os"
	"sync"
	"time"

	"lockscope/storage"
)

// Engine mimics the real engine's locking shape.
type Engine struct {
	mu    sync.Mutex // cods:writerlock
	other sync.Mutex // unmarked: lockscope must ignore it
	ch    chan int
	state int
}

// BadBlockingCalls runs IO while the writer lock is held.
func (e *Engine) BadBlockingCalls() {
	e.mu.Lock()
	defer e.mu.Unlock()
	os.Getwd()                   // want `call to os\.Getwd may block while Engine\.mu is held`
	time.Sleep(time.Millisecond) // want `call to time\.Sleep may block while Engine\.mu is held`
	_ = storage.Append("insert") // want `call to lockscope/storage\.Append \(marked cods:blocking\) may block while Engine\.mu is held`
	e.ch <- 1                    // want `channel send while Engine\.mu is held`
	<-e.ch                       // want `channel receive while Engine\.mu is held`
	select {                     // want `select while Engine\.mu is held`
	case <-e.ch: // want `channel receive while Engine\.mu is held`
	default:
	}
}

// AfterUnlock is clean: the blocking call runs after the lock is
// released.
func (e *Engine) AfterUnlock() {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	os.Getwd()
	_ = storage.Peek()
}

// UnmarkedLock is clean: the held mutex carries no cods:writerlock
// marker.
func (e *Engine) UnmarkedLock() {
	e.other.Lock()
	defer e.other.Unlock()
	os.Getwd()
}

// GoroutineEscapes is clean: the function literal runs on its own
// goroutine, not under the caller's lock.
func (e *Engine) GoroutineEscapes() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		os.Getwd()
	}()
}

// SuppressedAppend documents the durability-before-visibility exception.
func (e *Engine) SuppressedAppend() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:ignore codslint/lockscope fixture: durability before visibility requires the fsync under the lock
	_ = storage.Append("insert")
}

// acquire takes the writer lock on behalf of its callers.
func (e *Engine) acquire() {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
}

// BadRead is marked lock-free but reaches the writer lock through a
// same-package call.
//
// cods:lockfree
func (e *Engine) BadRead() int { // want `Engine\.BadRead is marked cods:lockfree but calls acquire, which acquires Engine\.mu`
	e.acquire()
	return e.state
}

// GoodRead is lock-free for real.
//
// cods:lockfree
func (e *Engine) GoodRead() int {
	return e.state + storage.Peek()
}

// Package storage is a fixture: the blocking durability layer.
package storage

// Append pretends to fsync a WAL record.
//
// cods:blocking
func Append(stmt string) error { return nil }

// Peek is cheap and carries no marker.
func Peek() int { return 0 }

// Package a is the suppression-hygiene fixture: a reasonless directive
// (which must not silence its finding and is itself flagged) and a stale
// directive that matches nothing.
package a

import (
	"sync"

	"lockscope/storage"
)

// Engine reuses the lockscope marker shape.
type Engine struct {
	mu    sync.Mutex // cods:writerlock
	state int
}

// Reasonless holds a directive with no explanation: the blocking-call
// finding survives, and the directive is reported on top.
func (e *Engine) Reasonless() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:ignore codslint/lockscope
	_ = storage.Append("insert")
}

// Stale holds a directive that suppresses nothing.
func (e *Engine) Stale() {
	//lint:ignore codslint/lockscope nothing here blocks under a lock
	_ = storage.Peek()
}

// Explained is correctly suppressed: no findings at all.
func (e *Engine) Explained() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:ignore codslint/lockscope fixture: the fsync belongs under the lock
	_ = storage.Append("insert")
}

// Package stmt is the walreplay fixture's statement package: the marked
// interface, three operators, and a complete registry (no finding here).
package stmt

// Op is the statement interface every operator implements.
//
// cods:statement
type Op interface {
	Kind() string
}

// A is dispatched by type assertion in the dispatch fixture.
type A struct{}

// Kind names the operator.
func (A) Kind() string { return "a" }

// B is handled by the execute type switch.
type B struct{}

// Kind names the operator.
func (B) Kind() string { return "b" }

// C parses fine but is missing from dispatch: the PR 7 replay gap.
type C struct{}

// Kind names the operator.
func (C) Kind() string { return "c" }

// AllOps lists every operator; a complete registry stays silent.
//
// cods:stmt-registry
var AllOps = []Op{A{}, B{}, C{}}

// Package registry is the walreplay fixture for the registry rule: a
// cods:stmt-registry literal that forgot one operator.
package registry

// Op is this package's statement interface.
//
// cods:statement
type Op interface {
	Kind() string
}

// Add is listed in the registry.
type Add struct{}

// Kind names the operator.
func (Add) Kind() string { return "add" }

// Drop is listed in the registry.
type Drop struct{}

// Kind names the operator.
func (Drop) Kind() string { return "drop" }

// Rename is missing from the registry.
type Rename struct{}

// Kind names the operator.
func (Rename) Kind() string { return "rename" }

// AllOps forgot Rename; the round-trip test iterating it would never
// cover that operator.
//
// cods:stmt-registry
var AllOps = []Op{ // want `statement registry AllOps is missing Rename of registry\.Op \(marked cods:statement\); round-trip coverage would skip it`
	Add{},
	Drop{},
}

// Package dispatch is the walreplay fixture reproducing the PR 7 replay
// gap: operator C parses (it is a full stmt.Op) but neither dispatch
// function names it, so WAL replay would reject it.
package dispatch

import "walreplay/stmt"

// Engine is the dispatch target.
type Engine struct{ n int }

// Apply handles A by type assertion before handing off to execute,
// mirroring how the real engine special-cases Prune.
//
// cods:stmt-dispatch
func Apply(e *Engine, op stmt.Op) error { // want `statement dispatch does not handle C of stmt\.Op \(marked cods:statement\); WAL replay would reject it`
	if _, ok := op.(stmt.A); ok {
		e.n++
		return nil
	}
	return execute(e, op)
}

// execute is the main type switch; C is missing on purpose.
//
// cods:stmt-dispatch
func execute(e *Engine, op stmt.Op) error {
	switch op.(type) {
	case stmt.B:
		e.n--
	}
	return nil
}

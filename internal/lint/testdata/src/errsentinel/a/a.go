// Package a is the errsentinel fixture for the comparison and wrapping
// rules (the boundary rule lives in errsentinel/boundary).
package a

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrGone is a package sentinel (fine anywhere).
var ErrGone = errors.New("gone")

// Compare exercises the ==/!= rule.
func Compare(err error) bool {
	if err == io.EOF { // want `errors compared with ==; wrapped errors break identity`
		return true
	}
	if err != os.ErrNotExist { // want `errors compared with !=; wrapped errors break identity`
		return false
	}
	if err == nil { // nil checks are fine
		return true
	}
	return errors.Is(err, ErrGone) // the idiom
}

// Switch exercises the switch-on-error rule.
func Switch(err error) int {
	switch err { // no finding here: the case tag is the comparison
	case nil:
		return 0
	case io.EOF: // want `switch compares errors with ==`
		return 1
	}
	return 2
}

// Wrap exercises the %w rule.
func Wrap(err error, name string) error {
	if err == nil {
		return nil
	}
	bad := fmt.Errorf("loading %s: %v", name, err) // want `error formatted with %v loses its sentinel`
	good := fmt.Errorf("loading %s: %w", name, err)
	plain := fmt.Errorf("no error arguments for %s at row %d", name, 7)
	return errors.Join(bad, good, plain)
}

// pruned mirrors the errors.Is protocol: == against the target inside an
// Is method is the one sanctioned identity comparison.
type pruned struct{}

func (pruned) Error() string { return "pruned" }

// Is implements the errors.Is protocol.
func (pruned) Is(target error) bool { return target == ErrGone }

// Package boundary is the errsentinel fixture for the boundary rule:
// in a package marked as an error boundary, every error must be a
// package-level sentinel (or wrap one) so callers can classify it.
//
// cods:boundary
package boundary

import (
	"errors"
	"fmt"
)

// ErrClosed is a package-level sentinel; errors.New is fine here.
var ErrClosed = errors.New("boundary: closed")

// Do returns classifiable errors.
func Do(open bool) error {
	if !open {
		return fmt.Errorf("doing work: %w", ErrClosed)
	}
	return nil
}

// Bad mints an ad-hoc error inside a function body: callers cannot
// match it with errors.Is.
func Bad() error {
	return errors.New("something went wrong") // want `errors\.New inside a cods:boundary function creates an unclassifiable error`
}

// Package box is the pubimmutable fixture's defining package: an
// immutable type and a shared-view accessor. Mutation inside this
// package is construction and stays legal.
package box

// Box is immutable once published.
//
// cods:immutable
type Box struct {
	Label   string
	Rows    []int
	history []entry
}

type entry struct{ N int }

// New builds a Box; in-package writes are construction, not violations.
func New(label string, rows []int) *Box {
	b := &Box{}
	b.Label = label
	b.Rows = rows
	return b
}

// View returns internal storage by reference.
//
// cods:shared-view
func (b *Box) View() []int { return b.Rows }

// Copy returns a defensive copy; no marker, so writes through it are
// fine.
func (b *Box) Copy() []int { return append([]int(nil), b.Rows...) }

// Package use consumes box from outside its package: every write into
// published Box storage must be flagged.
package use

import "pubimmutable/box"

// Mutate writes immutable storage in every way the analyzer tracks.
func Mutate(b *box.Box) {
	b.Label = "x" // want `write to field Label of immutable type box\.Box outside its package`
	b.Rows[0] = 1 // want `element write through field Rows of immutable box\.Box`
	v := b.View()
	v[0] = 1 // want `element write through shared view from Box\.View`
	w := v
	w[1] = 2 // want `element write through shared view from Box\.View`
}

// ReadOnly is clean: reads, defensive copies, and value copies never
// alias published storage.
func ReadOnly(b *box.Box) int {
	n := b.Rows[0]
	c := b.Copy()
	c[0] = 99
	e := b.View()[0]
	e++
	local := []int{1, 2}
	local[0] = n
	return n + e + local[0] + len(b.Label)
}

package lint_test

import (
	"strings"
	"testing"

	"cods/internal/lint"
	"cods/internal/lint/analysis"
	"cods/internal/lint/analysistest"
	"cods/internal/lint/loader"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockScope, "lockscope/engine")
}

func TestPubImmutable(t *testing.T) {
	analysistest.Run(t, "testdata", lint.PubImmutable, "pubimmutable/box", "pubimmutable/use")
}

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ErrSentinel, "errsentinel/a", "errsentinel/boundary")
}

// TestWalReplay covers both walreplay obligations, including the PR 7
// regression shape: operator C of walreplay/stmt parses (it is a full
// stmt.Op and sits in the complete registry) but neither dispatch
// function in walreplay/dispatch names it.
func TestWalReplay(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WalReplay, "walreplay/stmt", "walreplay/dispatch", "walreplay/registry")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicField, "atomicfield/a")
}

// TestSuppressionHygiene drives lint.Run directly: `// want` comments
// cannot share a line with //lint:ignore directives (trailing text would
// become the directive's reason), so the driver's own findings are
// asserted by hand.
func TestSuppressionHygiene(t *testing.T) {
	prog, err := loader.LoadTree("testdata", "suppression/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkg := prog.Package("suppression/a")
	if pkg == nil {
		t.Fatal("fixture package suppression/a not loaded")
	}
	findings, err := lint.Run(prog, []*loader.Package{pkg}, []*analysis.Analyzer{lint.LockScope})
	if err != nil {
		t.Fatalf("running lockscope: %v", err)
	}

	type want struct {
		line     int
		analyzer string
		fragment string
	}
	wants := []want{
		// The reasonless directive does not silence its finding...
		{24, "lockscope", "may block while Engine.mu is held"},
		// ...and is itself flagged.
		{23, "suppression", "has no reason"},
		// The directive that fires on nothing is stale.
		{29, "suppression", "matches no finding"},
	}
	for _, w := range wants {
		found := false
		for _, f := range findings {
			if f.Pos.Line == w.line && f.Analyzer == w.analyzer && strings.Contains(f.Message, w.fragment) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("line %d: no codslint/%s finding containing %q; got:\n%s",
				w.line, w.analyzer, w.fragment, render(findings))
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("want exactly %d findings (Explained must be fully suppressed); got %d:\n%s",
			len(wants), len(findings), render(findings))
	}
}

func render(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

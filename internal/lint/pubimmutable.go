package lint

import (
	"go/ast"
	"go/types"

	"cods/internal/lint/analysis"
)

// PubImmutable enforces the publication contract of the types marked
// `// cods:immutable` (core.Catalog, colstore.Segment, colstore.Column,
// wah.Bitmap): once a value escapes its defining package — in this
// codebase, once it is reachable from the atomic.Pointer catalog swap —
// nothing may write to it. Go already hides unexported fields, so the
// analyzer's weight is on the leaks the type system does not catch:
//
//   - writes to any field (exported or promoted) of a marked type from
//     outside its package, including element and map writes through a
//     field (`t.rows[i] = v`), and
//
//   - element writes through slices obtained from methods marked
//     `// cods:shared-view` (Catalog.HistoryTail and friends), which
//     return internal storage by reference for O(1) reads; the taint is
//     tracked through local variables within a function.
//
// Inside the defining package anything goes: builders necessarily
// mutate the value before it is published. The boundary is the package,
// matching the documented contract "immutable after construction and
// freely shared".
var PubImmutable = &analysis.Analyzer{
	Name: "pubimmutable",
	Doc:  "reject post-construction writes to cods:immutable types outside their defining package",
	Run:  runPubImmutable,
}

func runPubImmutable(pass *analysis.Pass) (interface{}, error) {
	pi := &pubImmutable{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pi.checkFunc(fn)
		}
	}
	return nil, nil
}

type pubImmutable struct {
	pass *analysis.Pass
}

// immutableOwner returns the marked named type a field selection reads
// from, when that type is defined outside the current package.
func (pi *pubImmutable) immutableOwner(sel *ast.SelectorExpr) (*types.Named, *types.Var) {
	s, ok := pi.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg() == pi.pass.Pkg {
		return nil, nil
	}
	if !pi.pass.HasMarker(named.Obj().Pkg().Path(), named.Obj().Name(), "immutable") {
		return nil, nil
	}
	field, _ := s.Obj().(*types.Var)
	return named, field
}

// sharedViewCall reports whether a call invokes a method marked
// cods:shared-view in another package, returning its description.
func (pi *pubImmutable) sharedViewCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pi.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pi.pass.Pkg {
		return "", false
	}
	key := funcMarkerKey(fn)
	if !pi.pass.HasMarker(fn.Pkg().Path(), key, "shared-view") {
		return "", false
	}
	return key, true
}

// typeName renders a named type as pkg.Name for diagnostics.
func typeName(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// checkFunc checks one function: first it collects locals tainted by
// shared views or immutable-type fields, then it reports writes through
// those locals and writes to immutable fields.
func (pi *pubImmutable) checkFunc(fn *ast.FuncDecl) {
	info := pi.pass.TypesInfo

	// tainted maps a local variable to a description of the immutable
	// storage it aliases.
	tainted := make(map[*types.Var]string)
	taintSource := func(e ast.Expr) (string, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if named, field := pi.immutableOwner(x); named != nil {
				return "field " + field.Name() + " of immutable " + typeName(named), true
			}
		case *ast.CallExpr:
			if desc, ok := pi.sharedViewCall(x); ok {
				return "shared view from " + desc, true
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				if desc, ok := tainted[v]; ok {
					return desc, true
				}
			}
		}
		return "", false
	}

	// Taint pass: any local ever assigned from a tainted source is
	// tainted for the whole function (order-insensitive, so aliases
	// introduced after a write still flag it — stricter, never looser).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Defs[id].(*types.Var)
				if !ok {
					v, ok = info.Uses[id].(*types.Var)
					if !ok {
						continue
					}
				}
				if _, done := tainted[v]; done {
					continue
				}
				if desc, ok := taintSource(as.Rhs[i]); ok {
					tainted[v] = desc
					changed = true
				}
			}
			return true
		})
	}

	// Write pass.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				pi.checkWrite(lhs, taintSource)
			}
		case *ast.IncDecStmt:
			pi.checkWrite(s.X, taintSource)
		}
		return true
	})
}

// checkWrite reports when an assignment target writes into immutable
// storage: a field of a marked type, or an element reached through a
// tainted slice or map. It descends the target chain, so a write like
// view[i].Field = v is caught at the indexing step.
func (pi *pubImmutable) checkWrite(lhs ast.Expr, taintSource func(ast.Expr) (string, bool)) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if named, field := pi.immutableOwner(e); named != nil {
				pi.pass.Reportf(e.Pos(), "write to field %s of immutable type %s outside its package (marked cods:immutable)", field.Name(), typeName(named))
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			if desc, ok := taintSource(e.X); ok {
				pi.pass.Reportf(e.Pos(), "element write through %s; published values are immutable (marked cods:immutable)", desc)
				return
			}
			lhs = e.X
		case *ast.StarExpr:
			if desc, ok := taintSource(e.X); ok {
				pi.pass.Reportf(e.Pos(), "write through pointer to %s; published values are immutable (marked cods:immutable)", desc)
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

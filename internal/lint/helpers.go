package lint

import (
	"go/ast"
	"go/types"

	"cods/internal/lint/analysis"
)

// namedOf peels pointers and aliases off a type and returns the
// underlying named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for conversions, builtins and indirect calls through
// function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcMarkerKey names a *types.Func the way the marker map does: "F" or
// "T.M".
func funcMarkerKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// funcDeclKey names a FuncDecl for marker lookup.
func funcDeclKey(d *ast.FuncDecl) string { return analysis.FuncDeclKey(d) }

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (and is not the
// untyped nil).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType)
}

// Package analysistest runs codslint analyzers over fixture packages and
// checks their diagnostics against inline expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest: a fixture line that should
// be flagged carries a comment
//
//	// want `regexp`
//
// (one or more quoted regexps; double quotes work too) and the test fails
// on any unexpected diagnostic and any unmatched expectation. Fixtures
// live under testdata/src/<importpath>/ and may import each other; the
// driver's //lint:ignore suppression handling is active, so suppression
// semantics are testable with fixtures as well (a suppressed finding
// needs no want, a reasonless or stale directive wants the driver's
// "suppression" diagnostic).
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cods/internal/lint"
	"cods/internal/lint/analysis"
	"cods/internal/lint/loader"
)

// expectation is one `// want` regexp waiting for a diagnostic on its
// line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies the analyzer to each named fixture package under
// testdata/src and reports mismatches between diagnostics and // want
// expectations on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := loader.LoadTree(testdata, pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var targets []*loader.Package
	for _, p := range pkgs {
		pkg := prog.Package(p)
		if pkg == nil {
			t.Fatalf("fixture package %q not loaded", p)
		}
		targets = append(targets, pkg)
	}

	var wants []*expectation
	for _, pkg := range targets {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				for _, c := range g.List {
					ws, err := parseWants(prog, c)
					if err != nil {
						t.Fatalf("%s: %v", prog.Fset.Position(c.Pos()), err)
					}
					wants = append(wants, ws...)
				}
			}
		}
	}

	findings, err := lint.Run(prog, targets, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s (codslint/%s)", f.Pos, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// claim matches a finding against the unmatched expectations on its line.
func claim(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the quoted regexps of one comment's `// want`
// clause, anchored to the comment's line.
func parseWants(prog *loader.Program, c *ast.Comment) ([]*expectation, error) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	pos := prog.Fset.Position(c.Pos())
	var out []*expectation
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, errWant(rest)
			}
			raw = rest[:end+2]
			rest = rest[end+2:]
		case '"':
			// strconv handles escapes; find the closing quote it accepts.
			end := 1
			for ; end < len(rest); end++ {
				if rest[end] == '"' && rest[end-1] != '\\' {
					break
				}
			}
			if end == len(rest) {
				return nil, errWant(rest)
			}
			raw = rest[:end+1]
			rest = rest[end+1:]
		default:
			return nil, errWant(rest)
		}
		pattern, err := strconv.Unquote(raw)
		if err != nil {
			return nil, errWant(raw)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, err
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
		rest = strings.TrimSpace(rest)
	}
	return out, nil
}

// errWant reports a malformed want clause.
func errWant(rest string) error {
	return &wantError{rest}
}

type wantError struct{ rest string }

func (e *wantError) Error() string {
	return "malformed // want clause near " + strconv.Quote(e.rest)
}

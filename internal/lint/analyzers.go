package lint

import "cods/internal/lint/analysis"

// All returns the codslint analyzer suite in reporting order. Drivers
// (cmd/codslint, the analysistest harness, scripts/docslint.sh via
// `codslint -analyzers`) share this list so an analyzer cannot exist
// without being enforced and documented.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicField,
		ErrSentinel,
		LockScope,
		PubImmutable,
		WalReplay,
	}
}

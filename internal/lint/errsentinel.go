package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"cods/internal/lint/analysis"
)

// ErrSentinel enforces the error-handling discipline at the engine's
// boundaries: callers classify failures with errors.Is/errors.As against
// exported sentinels, so errors crossing a package boundary must stay
// classifiable after wrapping. Three rules, checked everywhere:
//
//   - Never compare two errors with == or != (nil comparisons are fine);
//     wrapped errors make identity comparison silently wrong — use
//     errors.Is. The same applies to `switch err { case io.EOF: }`.
//
//   - fmt.Errorf with an error argument must format it with %w, not %v
//     or %s: a boundary that re-words an error without wrapping it strips
//     the sentinel and breaks every errors.Is upstream.
//
//   - In packages marked `// cods:boundary` (the cods facade and
//     internal/server), errors.New inside a function body creates an
//     anonymous, unclassifiable error. Boundary errors must either be
//     package-level sentinels (errors.New at var level is fine — that is
//     how sentinels are born) or wrap one with fmt.Errorf("...: %w", ...).
var ErrSentinel = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "require errors.Is/As over ==, %w over %v for wrapping, and sentinel-based errors in cods:boundary packages",
	Run:  runErrSentinel,
}

func runErrSentinel(pass *analysis.Pass) (interface{}, error) {
	es := &errSentinel{pass: pass}
	boundary := pass.HasMarker(pass.Pkg.Path(), "package", "boundary")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// The Is(error) bool method is where == against a sentinel is
			// the idiom: errors.Is hands it the exact target, unwrapped.
			inIsMethod := isErrorIsMethod(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if !inIsMethod {
						es.checkCompare(e)
					}
				case *ast.SwitchStmt:
					es.checkSwitch(e)
				case *ast.CallExpr:
					es.checkErrorf(e)
					if boundary {
						es.checkBoundaryNew(e)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

type errSentinel struct {
	pass *analysis.Pass
}

// isErrorIsMethod reports whether fn is the `Is(error) bool` method of
// the errors.Is protocol.
func isErrorIsMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || fn.Name.Name != "Is" {
		return false
	}
	p, r := fn.Type.Params, fn.Type.Results
	return p != nil && len(p.List) == 1 && r != nil && len(r.List) == 1
}

// exprErrorType reports whether e has error type and is not the nil
// literal.
func (es *errSentinel) exprErrorType(e ast.Expr) bool {
	tv, ok := es.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return isErrorType(tv.Type)
}

// checkCompare flags err == otherErr / err != otherErr when both sides
// are non-nil errors.
func (es *errSentinel) checkCompare(e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if !es.exprErrorType(e.X) || !es.exprErrorType(e.Y) {
		return
	}
	es.pass.Reportf(e.OpPos, "errors compared with %s; wrapped errors break identity — use errors.Is", e.Op)
}

// checkSwitch flags `switch err { case io.EOF: }`: a value switch on an
// error with non-nil case tags is the == comparison in disguise.
func (es *errSentinel) checkSwitch(s *ast.SwitchStmt) {
	if s.Tag == nil || !es.exprErrorType(s.Tag) {
		return
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, tag := range cc.List {
			if es.exprErrorType(tag) {
				es.pass.Reportf(tag.Pos(), "switch compares errors with ==; wrapped errors break identity — use errors.Is")
				return
			}
		}
	}
}

// checkErrorf maps fmt.Errorf's format verbs to its arguments and flags
// error-typed arguments formatted with anything but %w.
func (es *errSentinel) checkErrorf(call *ast.CallExpr) {
	fn := calleeFunc(es.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := unquote(lit.Value)
	if err {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if verbs[i] != 'w' && es.exprErrorType(arg) {
			es.pass.Reportf(arg.Pos(), "error formatted with %%%c loses its sentinel for errors.Is; wrap it with %%w", verbs[i])
		}
	}
}

// checkBoundaryNew flags errors.New calls inside function bodies of
// boundary packages.
func (es *errSentinel) checkBoundaryNew(call *ast.CallExpr) {
	fn := calleeFunc(es.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "errors" || fn.Name() != "New" {
		return
	}
	es.pass.Reportf(call.Pos(), "errors.New inside a cods:boundary function creates an unclassifiable error; declare a package-level sentinel or wrap one with %%w")
}

// unquote strips a Go string literal's quotes; reports failure.
func unquote(s string) (string, bool) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		return s[1 : len(s)-1], false
	}
	return "", true
}

// formatVerbs extracts the verb letters of a format string in argument
// order; '*' width/precision arguments are returned as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision; record '*' consumers.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '%' {
				break // literal %%
			}
			if strings.IndexByte("+-# 0123456789.[]", c) >= 0 {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cods/internal/lint/analysis"
)

// WalReplay enforces exhaustiveness of statement dispatch: every concrete
// implementation of an interface marked `// cods:statement` (smo.Op — the
// schema-modification operators that flow through the WAL) must be
// handled wherever the engine dispatches on statement kind. PR 7's replay
// gap — a new operator that parsed from the WAL but fell through replay's
// type switch to "unsupported operator" — is exactly the bug class this
// rules out mechanically.
//
// Two obligations, each anchored by a marker:
//
//   - Functions marked `// cods:stmt-dispatch` (Engine.Apply and
//     Engine.execute) must, between them, name every implementer in a
//     type switch case or a type assertion. Prune is dispatched by
//     assertion in Apply rather than a switch case in execute, so the
//     analyzer unions both forms across all marked functions of the
//     package before reporting what is missing.
//
//   - A package-level var marked `// cods:stmt-registry` (smo.AllOps)
//     must mention every implementer in its composite literal. The
//     registry is what the String/Parse round-trip test iterates, so a
//     complete registry makes round-trip coverage of a new operator
//     impossible to forget.
var WalReplay = &analysis.Analyzer{
	Name: "walreplay",
	Doc:  "require every cods:statement implementer in cods:stmt-dispatch functions and the cods:stmt-registry literal",
	Run:  runWalReplay,
}

func runWalReplay(pass *analysis.Pass) (interface{}, error) {
	wr := &walReplay{pass: pass}
	ifaces := wr.statementInterfaces()
	if len(ifaces) == 0 {
		return nil, nil
	}
	for _, si := range ifaces {
		wr.checkDispatch(si)
		wr.checkRegistry(si)
	}
	return nil, nil
}

type walReplay struct {
	pass *analysis.Pass
}

// stmtIface is one interface marked cods:statement, with its concrete
// implementers enumerated from its defining package's scope.
type stmtIface struct {
	named        *types.Named
	iface        *types.Interface
	implementers []*types.Named
}

// statementInterfaces finds cods:statement interfaces visible to this
// package: declared here or in a direct import.
func (wr *walReplay) statementInterfaces() []*stmtIface {
	var out []*stmtIface
	scan := func(p *types.Package) {
		markers := wr.pass.PkgMarkers(p.Path())
		for key, ms := range markers {
			if strings.Contains(key, ".") {
				continue
			}
			marked := false
			for _, m := range ms {
				if m == "statement" {
					marked = true
				}
			}
			if !marked {
				continue
			}
			tn, ok := p.Scope().Lookup(key).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			iface, ok := named.Underlying().(*types.Interface)
			if !ok {
				continue
			}
			out = append(out, &stmtIface{named: named, iface: iface, implementers: implementersOf(p, iface)})
		}
	}
	scan(wr.pass.Pkg)
	for _, imp := range wr.pass.Pkg.Imports() {
		scan(imp)
	}
	return out
}

// implementersOf enumerates the concrete named types of p that satisfy
// iface (by value or pointer receiver), sorted by name.
func implementersOf(p *types.Package, iface *types.Interface) []*types.Named {
	var out []*types.Named
	for _, name := range p.Scope().Names() {
		tn, ok := p.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, named)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj().Name() < out[j].Obj().Name() })
	return out
}

// checkDispatch unions the statement kinds named by the package's
// cods:stmt-dispatch functions and reports the implementers left out.
func (wr *walReplay) checkDispatch(si *stmtIface) {
	handled := make(map[*types.TypeName]bool)
	var dispatchFns []*ast.FuncDecl
	for _, f := range wr.pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !wr.pass.HasMarker(wr.pass.Pkg.Path(), funcDeclKey(fn), "stmt-dispatch") {
				continue
			}
			// A dispatch function is held to si only if it receives si as
			// a parameter or already names one of its implementers — a
			// package may dispatch several statement interfaces.
			if !wr.takesIface(fn, si) {
				before := len(handled)
				wr.collectHandled(fn, si, handled)
				if len(handled) == before {
					continue
				}
			} else {
				wr.collectHandled(fn, si, handled)
			}
			dispatchFns = append(dispatchFns, fn)
		}
	}
	if len(dispatchFns) == 0 {
		return
	}
	sort.Slice(dispatchFns, func(i, j int) bool { return dispatchFns[i].Pos() < dispatchFns[j].Pos() })
	var missing []string
	for _, impl := range si.implementers {
		if !handled[impl.Obj()] {
			missing = append(missing, impl.Obj().Name())
		}
	}
	if len(missing) > 0 {
		wr.pass.Reportf(dispatchFns[0].Name.Pos(), "statement dispatch does not handle %s of %s (marked cods:statement); WAL replay would reject it",
			strings.Join(missing, ", "), typeName(si.named))
	}
}

// takesIface reports whether a function has a parameter of the
// statement interface type.
func (wr *walReplay) takesIface(fn *ast.FuncDecl, si *stmtIface) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, fld := range fn.Type.Params.List {
		tv, ok := wr.pass.TypesInfo.Types[fld.Type]
		if !ok {
			continue
		}
		if named := namedOf(tv.Type); named != nil && named.Obj() == si.named.Obj() {
			return true
		}
	}
	return false
}

// collectHandled records the si implementers a function names in type
// switch cases or type assertions.
func (wr *walReplay) collectHandled(fn *ast.FuncDecl, si *stmtIface, handled map[*types.TypeName]bool) {
	record := func(texpr ast.Expr) {
		if texpr == nil {
			return
		}
		tv, ok := wr.pass.TypesInfo.Types[texpr]
		if !ok {
			return
		}
		named := namedOf(tv.Type)
		if named == nil {
			return
		}
		for _, impl := range si.implementers {
			if impl.Obj() == named.Obj() {
				handled[named.Obj()] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.TypeSwitchStmt:
			for _, c := range e.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, t := range cc.List {
						record(t)
					}
				}
			}
		case *ast.TypeAssertExpr:
			record(e.Type) // nil inside a type switch guard; record skips it
		}
		return true
	})
}

// checkRegistry verifies that every package-level var marked
// cods:stmt-registry lists all implementers of si in its composite
// literal.
func (wr *walReplay) checkRegistry(si *stmtIface) {
	for _, f := range wr.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !wr.pass.HasMarker(wr.pass.Pkg.Path(), name.Name, "stmt-registry") {
						continue
					}
					if i >= len(vs.Values) {
						continue
					}
					wr.checkRegistryLiteral(name, vs.Values[i], si)
				}
			}
		}
	}
}

// checkRegistryLiteral reports implementers of si absent from the
// registry var's composite literal.
func (wr *walReplay) checkRegistryLiteral(name *ast.Ident, value ast.Expr, si *stmtIface) {
	lit, ok := ast.Unparen(value).(*ast.CompositeLit)
	if !ok {
		return
	}
	// Ignore a registry that holds some other element type entirely.
	listed := make(map[*types.TypeName]bool)
	relevant := false
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		tv, ok := wr.pass.TypesInfo.Types[elt]
		if !ok {
			continue
		}
		named := namedOf(tv.Type)
		if named == nil {
			continue
		}
		for _, impl := range si.implementers {
			if impl.Obj() == named.Obj() {
				listed[named.Obj()] = true
				relevant = true
			}
		}
	}
	if !relevant {
		return
	}
	var missing []string
	for _, impl := range si.implementers {
		if !listed[impl.Obj()] {
			missing = append(missing, impl.Obj().Name())
		}
	}
	if len(missing) > 0 {
		wr.pass.Reportf(name.Pos(), "statement registry %s is missing %s of %s (marked cods:statement); round-trip coverage would skip it",
			name.Name, strings.Join(missing, ", "), typeName(si.named))
	}
}

// Package lint is codslint: a static-analysis suite that mechanically
// enforces the engine's concurrency, immutability, and durability
// invariants. The invariants themselves are documented prose
// (ARCHITECTURE.md, "Invariants"); this package turns each one into an
// analyzer that fails the build when a change violates it, so the
// contracts survive contributors who never read the docs.
//
// # Markers
//
// Analyzers find the code they constrain through `cods:` doc-comment
// markers rather than hard-coded symbol names, so the suite keeps
// working as the engine grows:
//
//	cods:writerlock    mutex field serializing writers (Engine.mu, DB.mu)
//	cods:lockfree      function that must never take a writer lock
//	cods:blocking      function that may block on IO (WAL append, snapshot)
//	cods:immutable     type never written after construction once published
//	cods:shared-view   method returning internal storage by reference
//	cods:statement     interface whose implementers flow through the WAL
//	cods:stmt-dispatch function dispatching on statement kind
//	cods:stmt-registry package var enumerating every statement kind
//	cods:boundary      package whose errors callers classify with errors.Is
//
// # Analyzers
//
//	lockscope     no blocking calls under a writer lock; cods:lockfree
//	              read paths never acquire one, even transitively
//	pubimmutable  no writes to cods:immutable types outside their
//	              package, including through cods:shared-view aliases
//	errsentinel   errors.Is/As instead of ==; %w when wrapping; no
//	              anonymous errors.New in boundary packages
//	walreplay     every statement kind handled by WAL replay dispatch
//	              and listed in the round-trip registry
//	atomicfield   fields touched via sync/atomic are never accessed
//	              non-atomically
//
// # Suppression
//
// An intentional exception is silenced on its own line (or the line
// above) with
//
//	//lint:ignore codslint/<analyzer> <reason>
//
// The reason is mandatory and the directive must match a finding; the
// driver reports reasonless and stale directives, so every suppression
// in the tree is a reviewed, explained design decision — for example the
// WAL fsync under DB.mu, which is the durability-before-visibility
// ordering working as intended.
//
// # Drivers
//
// cmd/codslint runs the suite standalone (`make lint`) and as a
// `go vet -vettool` plugin; internal/lint/analysistest runs analyzers
// over testdata/src fixtures with inline `// want` expectations. Both
// load packages with internal/lint/loader, which shells out to `go list
// -export` and reads compiler export data — no dependency outside the
// standard library.
package lint

// Package analysis is a self-contained, standard-library-only mirror of
// the golang.org/x/tools/go/analysis API surface that the codslint
// analyzers need: an Analyzer is a named check, a Pass hands it one
// type-checked package, and Report emits positioned diagnostics. The
// repository vendors no third-party modules, so the real go/analysis
// framework is not importable; this shim keeps the analyzers written
// against the familiar shape (swapping the import path is all a future
// migration to x/tools would need) while the drivers — cmd/codslint's
// standalone and unitchecker modes, and internal/lint/analysistest —
// stay in full control of package loading.
//
// Beyond the x/tools core, Pass carries one extension the codslint suite
// is built around: PkgMarkers, a lookup of the `cods:` doc-comment
// markers (cods:immutable, cods:writerlock, cods:lockfree, and friends)
// declared in any package of the program, not just the one under
// analysis. Markers are how the engine's prose invariants are attached
// to the code they constrain; see internal/lint's package documentation
// for the full catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore codslint/<name> suppressions.
	Name string
	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest elaborates.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// A Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report emits one diagnostic. The driver wraps it with
	// //lint:ignore suppression handling.
	Report func(Diagnostic)
	// PkgMarkers returns the cods: markers declared in the package with
	// the given import path, or nil when the package's source is not
	// reachable (e.g. the standard library). See ScanMarkers for the
	// object-key scheme.
	PkgMarkers func(path string) map[string][]string
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// HasMarker reports whether the object identified by key in the package
// with the given import path carries the named cods: marker. Keys follow
// ScanMarkers: "T" for types, "T.f" for struct fields, "F" for
// functions, "T.M" for methods, "V" for package-level vars, and
// "package" for the package clause itself.
func (p *Pass) HasMarker(pkgPath, key, marker string) bool {
	if p.PkgMarkers == nil {
		return false
	}
	for _, m := range p.PkgMarkers(pkgPath)[key] {
		if m == marker {
			return true
		}
	}
	return false
}

// ScanMarkers extracts the cods: doc-comment markers from a package's
// files. A marker is a comment line of the form "// cods:<name>" (the
// rest of the line may explain it); it attaches to the declaration whose
// doc comment or trailing line comment carries it. The returned map is
// keyed by object:
//
//	"T"       type T
//	"T.f"     field f of struct type T
//	"F"       package-level func F
//	"T.M"     method M with receiver (pointer or value) of type T
//	"V"       package-level var V
//	"package" the package clause (file doc comments)
func ScanMarkers(files []*ast.File) map[string][]string {
	out := make(map[string][]string)
	add := func(key string, groups ...*ast.CommentGroup) {
		for _, g := range groups {
			for _, m := range markersIn(g) {
				out[key] = append(out[key], m)
			}
		}
	}
	for _, f := range files {
		add("package", f.Doc)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				add(funcKey(d), d.Doc)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						add(s.Name.Name, d.Doc, s.Doc, s.Comment)
						if st, ok := s.Type.(*ast.StructType); ok && st.Fields != nil {
							for _, fld := range st.Fields.List {
								for _, name := range fld.Names {
									add(s.Name.Name+"."+name.Name, fld.Doc, fld.Comment)
								}
							}
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							add(name.Name, d.Doc, s.Doc, s.Comment)
						}
					}
				}
			}
		}
	}
	return out
}

// FuncDeclKey names a FuncDecl the way the marker map does: "F" for a
// function, "T.M" for a method (pointer and value receivers collapse).
func FuncDeclKey(d *ast.FuncDecl) string { return funcKey(d) }

// funcKey names a FuncDecl for the marker map: "F" or "T.M".
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
}

// recvTypeName unwraps a receiver type expression to its base type name.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// markersIn returns the cods: marker names in one comment group.
func markersIn(g *ast.CommentGroup) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		for _, field := range strings.Fields(text) {
			if name, ok := strings.CutPrefix(field, "cods:"); ok && name != "" {
				out = append(out, name)
			}
		}
	}
	return out
}

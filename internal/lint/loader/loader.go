// Package loader type-checks Go packages for the codslint analyzers
// using only the standard library and the go command. It keeps every
// loaded package's syntax trees (comments included) so the analyzers can
// read cods: doc-comment markers across package boundaries.
//
// Two entry points cover the two driver shapes. Load lists a module's
// packages with `go list -deps -export -json` and type-checks each
// target from source against the compiler export data of its
// dependencies — fast, and exactly what a whole-repo `codslint ./...`
// run needs. LoadTree resolves imports inside an analysistest-style
// testdata/src tree from source, falling back to installed export data
// for everything else, which lets analyzer fixtures span multiple small
// packages without being part of the module's build graph.
package loader

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked package with its syntax retained.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory holding the package's source files.
	Dir string
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// Program is a set of loaded packages plus the dependency metadata the
// analyzers need to chase markers and types across package boundaries.
type Program struct {
	// Fset positions every loaded file.
	Fset *token.FileSet
	// Packages are the source-checked packages in deterministic
	// (import-path) order.
	Packages []*Package

	// DirResolver optionally maps an import path to its source directory
	// when the loader has no record of it — the vet-tool driver uses it,
	// since `go vet` hands the tool export data but no source metadata.
	DirResolver func(path string) string

	byPath map[string]*Package
	// dirs maps import paths (loaded or dependency-only) to source
	// directories, for on-demand marker scans of packages that were not
	// source-checked.
	dirs map[string]string

	mu      sync.Mutex
	markers map[string]map[string][]string
}

// NewProgram returns an empty Program for drivers that type-check
// packages themselves (cmd/codslint's unitchecker mode).
func NewProgram(fset *token.FileSet) *Program {
	return &Program{
		Fset:   fset,
		byPath: make(map[string]*Package),
		dirs:   make(map[string]string),
	}
}

// Add registers a package the driver type-checked itself.
func (p *Program) Add(pkg *Package) {
	p.Packages = append(p.Packages, pkg)
	p.byPath[pkg.Path] = pkg
	if pkg.Dir != "" {
		p.dirs[pkg.Path] = pkg.Dir
	}
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Markers returns the cods: markers of the package with the given import
// path: from its loaded syntax when the package was source-checked, and
// from a one-off comment parse of its source directory otherwise.
// Unknown packages (no reachable source) yield nil. Results are cached.
func (p *Program) Markers(scan func([]*ast.File) map[string][]string, path string) map[string][]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if m, ok := p.markers[path]; ok {
		return m
	}
	var m map[string][]string
	dir, haveDir := p.dirs[path]
	if !haveDir && p.DirResolver != nil {
		dir = p.DirResolver(path)
		haveDir = dir != ""
	}
	if pkg := p.byPath[path]; pkg != nil {
		m = scan(pkg.Files)
	} else if haveDir {
		if files, err := parseDir(token.NewFileSet(), dir); err == nil {
			m = scan(files)
		}
	}
	if p.markers == nil {
		p.markers = make(map[string]map[string][]string)
	}
	p.markers[path] = m
	return m
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go %s: %w", strings.Join(args, " "), err)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists patterns (e.g. "./...") in the module rooted at dir and
// type-checks every matched package from source, resolving imports
// through the compiler export data `go list -export` produces.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		dirs:   make(map[string]string),
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Dir != "" {
			prog.dirs[p.ImportPath] = p.Dir
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	imp := exportImporter(prog.Fset, exports)
	for _, t := range targets {
		files, err := parseFiles(prog.Fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, info, err := check(prog.Fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %w", t.ImportPath, err)
		}
		lp := &Package{Path: t.ImportPath, Dir: t.Dir, Files: files, Pkg: pkg, Info: info}
		prog.Packages = append(prog.Packages, lp)
		prog.byPath[t.ImportPath] = lp
	}
	return prog, nil
}

// exportImporter resolves import paths through compiler export data
// files. The gc importer caches, so one instance serves a whole Program.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// externExports caches `go list -export` results for packages outside a
// LoadTree root (the standard library, in practice) across calls — the
// analyzer tests would otherwise pay a go list invocation each.
var externExports = struct {
	sync.Mutex
	files map[string]string
	known map[string]bool
}{files: map[string]string{}, known: map[string]bool{}}

// resolveExterns ensures export data is known for every path in paths,
// batching the go list invocation for the unknown ones.
func resolveExterns(paths []string) (map[string]string, error) {
	externExports.Lock()
	defer externExports.Unlock()
	var missing []string
	for _, p := range paths {
		if !externExports.known[p] {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, missing...)
		listed, err := goList(".", args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				externExports.files[p.ImportPath] = p.Export
			}
		}
		for _, p := range missing {
			externExports.known[p] = true
		}
	}
	out := make(map[string]string, len(externExports.files))
	for k, v := range externExports.files {
		out[k] = v
	}
	return out, nil
}

// LoadTree loads the packages named by paths from an analysistest-style
// tree: the import path P lives in root/src/P, and imports between
// packages in the tree resolve from source. Imports that leave the tree
// (the standard library) resolve through installed export data.
func LoadTree(root string, paths ...string) (*Program, error) {
	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
		dirs:   make(map[string]string),
	}

	// Parse the requested packages and every in-tree package they
	// reach, collecting the external imports along the way.
	parsed := make(map[string][]*ast.File)
	externs := make(map[string]bool)
	var queue []string
	queued := map[string]bool{}
	enqueue := func(p string) {
		if !queued[p] {
			queued[p] = true
			queue = append(queue, p)
		}
	}
	for _, p := range paths {
		enqueue(p)
	}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		files, err := parseDir(prog.Fset, dir)
		if err != nil {
			return nil, fmt.Errorf("loader: parsing %s: %w", path, err)
		}
		parsed[path] = files
		prog.dirs[path] = dir
		for _, f := range files {
			for _, spec := range f.Imports {
				ipath, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if st, err := os.Stat(filepath.Join(root, "src", filepath.FromSlash(ipath))); err == nil && st.IsDir() {
					enqueue(ipath)
				} else {
					externs[ipath] = true
				}
			}
		}
	}

	var externList []string
	for p := range externs {
		externList = append(externList, p)
	}
	exports, err := resolveExterns(externList)
	if err != nil {
		return nil, err
	}
	gcImp := exportImporter(prog.Fset, exports)

	// Type-check in-tree packages recursively; localImporter memoizes
	// and detects cycles.
	checking := make(map[string]bool)
	var checkLocal func(path string) (*Package, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if _, ok := parsed[path]; ok {
			lp, err := checkLocal(path)
			if err != nil {
				return nil, err
			}
			return lp.Pkg, nil
		}
		return gcImp.Import(path)
	})
	checkLocal = func(path string) (*Package, error) {
		if lp, ok := prog.byPath[path]; ok {
			return lp, nil
		}
		if checking[path] {
			return nil, fmt.Errorf("loader: import cycle through %q", path)
		}
		checking[path] = true
		defer delete(checking, path)
		pkg, info, err := check(prog.Fset, path, parsed[path], imp)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
		}
		lp := &Package{Path: path, Dir: prog.dirs[path], Files: parsed[path], Pkg: pkg, Info: info}
		prog.byPath[path] = lp
		return lp, nil
	}

	var all []string
	for p := range parsed {
		all = append(all, p)
	}
	sort.Strings(all)
	for _, p := range all {
		lp, err := checkLocal(p)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, lp)
	}
	return prog, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseFiles parses the named files in dir with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// parseDir parses every non-test .go file in dir with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	return parseFiles(fset, dir, names)
}

// check type-checks one package's parsed files.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cods/internal/lint/analysis"
)

// LockScope enforces the engine's central concurrency contract around
// the writer mutexes (struct fields marked `// cods:writerlock`, i.e.
// Engine.mu and DB.mu):
//
//   - While a writer lock is held, no call may block on IO or peers:
//     calls into os/net/net/http, time.Sleep, functions or methods
//     marked `// cods:blocking` (the storage layer's WAL appends and
//     snapshot writes), and channel operations are all reported. A
//     blocked writer is tolerable only when it is an explicit, explained
//     design decision (durability-before-visibility holds DB.mu across
//     the WAL fsync — that call site carries a //lint:ignore with the
//     rationale).
//
//   - Functions marked `// cods:lockfree` (the facade's read paths:
//     Query, Rows, Describe, Snapshot, ...) must not acquire any writer
//     lock, directly or through same-package calls — readers are
//     lock-free by contract, so a reader that can stall behind an
//     evolution is an invariant violation, not a performance bug.
//
// Lock regions are tracked per statement list: a `x.mu.Lock()` statement
// opens the region for the statements after it, `x.mu.Unlock()` closes
// it, and `defer x.mu.Unlock()` keeps it open to the end of the
// function. Function literals are not analyzed as part of the enclosing
// region (a spawned goroutine does not hold the caller's lock).
var LockScope = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "reject blocking calls under cods:writerlock mutexes and lock acquisition on cods:lockfree read paths",
	Run:  runLockScope,
}

// blockingPkgs are packages whose calls are assumed to block (IO,
// network, timers) unless allowlisted below.
var blockingPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
}

// nonBlocking allowlists cheap helpers from the blocking packages.
var nonBlocking = map[string]bool{
	"os.IsNotExist":   true,
	"os.IsExist":      true,
	"os.IsPermission": true,
	"os.Getenv":       true,
	"os.Getpid":       true,
}

func runLockScope(pass *analysis.Pass) (interface{}, error) {
	ls := &lockScope{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ls.checkBody(fn)
		}
	}
	ls.checkLockFree()
	return nil, nil
}

type lockScope struct {
	pass *analysis.Pass
}

// writerLockField reports whether sel selects a struct field marked
// cods:writerlock, returning its "Type.field" description.
func (ls *lockScope) writerLockField(sel *ast.SelectorExpr) (string, bool) {
	s, ok := ls.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return "", false
	}
	named := namedOf(s.Recv())
	if named == nil {
		return "", false
	}
	key := named.Obj().Name() + "." + field.Name()
	if !ls.pass.HasMarker(field.Pkg().Path(), key, "writerlock") {
		return "", false
	}
	return key, true
}

// lockCall classifies a statement as Lock/RLock ("acquire"), or
// Unlock/RUnlock ("release"), of a writer-lock field, returning the
// field description.
func (ls *lockScope) lockCall(call *ast.CallExpr) (field string, acquire, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	inner, okSel := sel.X.(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	field, okField := ls.writerLockField(inner)
	return field, acquire, okField
}

// checkBody walks one function body tracking the held writer lock.
func (ls *lockScope) checkBody(fn *ast.FuncDecl) {
	ls.checkStmts(fn.Body.List, "")
}

// checkStmts scans a statement list. held names the writer lock held on
// entry ("" for none); Lock/Unlock statements in the list update it for
// the statements that follow.
func (ls *lockScope) checkStmts(stmts []ast.Stmt, held string) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if field, acquire, ok := ls.lockCall(call); ok {
					if acquire {
						held = field
					} else {
						held = ""
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer x.mu.Unlock() keeps the region open to function end;
			// any other deferred call is checked like a plain call (it
			// runs while the lock is still held in that pattern).
			if _, acquire, ok := ls.lockCall(s.Call); ok && !acquire {
				continue
			}
		}
		if held != "" {
			ls.checkLocked(stmt, held)
		} else {
			// Descend looking for Lock() inside nested blocks.
			ls.descend(stmt, held)
		}
	}
}

// descend recurses into a statement's nested statement lists with the
// current lock state.
func (ls *lockScope) descend(stmt ast.Stmt, held string) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		ls.checkStmts(s.List, held)
	case *ast.IfStmt:
		ls.checkStmts(s.Body.List, held)
		if s.Else != nil {
			ls.descend(s.Else, held)
		}
	case *ast.ForStmt:
		ls.checkStmts(s.Body.List, held)
	case *ast.RangeStmt:
		ls.checkStmts(s.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.checkStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.checkStmts(cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		ls.descend(s.Stmt, held)
	}
}

// checkLocked reports blocking operations inside a statement executed
// with a writer lock held. Function literals are skipped: a goroutine or
// stored closure does not run under the caller's lock.
func (ls *lockScope) checkLocked(stmt ast.Stmt, held string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, _, ok := ls.lockCall(e); ok {
				return true // Lock/Unlock bookkeeping, not a blocking call
			}
			if desc, ok := ls.blockingCallee(e); ok {
				ls.pass.Reportf(e.Pos(), "call to %s may block while %s is held (marked cods:writerlock)", desc, held)
			}
		case *ast.SendStmt:
			ls.pass.Reportf(e.Pos(), "channel send while %s is held (marked cods:writerlock)", held)
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				ls.pass.Reportf(e.Pos(), "channel receive while %s is held (marked cods:writerlock)", held)
			}
		case *ast.SelectStmt:
			ls.pass.Reportf(e.Pos(), "select while %s is held (marked cods:writerlock)", held)
		}
		return true
	})
}

// blockingCallee reports whether a call's target is assumed to block:
// anything from os/net/net/http (minus the allowlist), time.Sleep, or a
// function or method marked cods:blocking.
func (ls *lockScope) blockingCallee(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(ls.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	full := fn.FullName()
	if nonBlocking[full] {
		return "", false
	}
	pkgPath := fn.Pkg().Path()
	if blockingPkgs[pkgPath] {
		return full, true
	}
	if pkgPath == "time" && fn.Name() == "Sleep" {
		return full, true
	}
	if ls.pass.HasMarker(pkgPath, funcMarkerKey(fn), "blocking") {
		return full + " (marked cods:blocking)", true
	}
	return "", false
}

// checkLockFree verifies that every function marked cods:lockfree stays
// lock-free through same-package calls.
func (ls *lockScope) checkLockFree() {
	info := ls.pass.TypesInfo

	type node struct {
		decl      *ast.FuncDecl
		locks     string // writer-lock field acquired directly, or ""
		callees   []types.Object
		calleePos map[types.Object]token.Pos
	}
	nodes := make(map[types.Object]*node)

	for _, f := range ls.pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			n := &node{decl: fn, calleePos: make(map[types.Object]token.Pos)}
			ast.Inspect(fn.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				if field, acquire, ok := ls.lockCall(call); ok && acquire {
					if n.locks == "" {
						n.locks = field
					}
					return true
				}
				callee := calleeFunc(info, call)
				if callee != nil && callee.Pkg() == ls.pass.Pkg {
					co := types.Object(callee)
					if _, seen := n.calleePos[co]; !seen {
						n.callees = append(n.callees, co)
						n.calleePos[co] = call.Pos()
					}
				}
				return true
			})
			nodes[obj] = n
		}
	}

	// reaches reports whether fn can acquire a writer lock, returning a
	// human-readable witness chain.
	var reaches func(obj types.Object, seen map[types.Object]bool) (string, bool)
	reaches = func(obj types.Object, seen map[types.Object]bool) (string, bool) {
		n := nodes[obj]
		if n == nil || seen[obj] {
			return "", false
		}
		seen[obj] = true
		if n.locks != "" {
			return "acquires " + n.locks, true
		}
		for _, callee := range n.callees {
			if why, ok := reaches(callee, seen); ok {
				return "calls " + callee.Name() + ", which " + why, true
			}
		}
		return "", false
	}

	for obj, n := range nodes {
		key := funcDeclKey(n.decl)
		if !ls.pass.HasMarker(ls.pass.Pkg.Path(), key, "lockfree") {
			continue
		}
		if why, ok := reaches(obj, make(map[types.Object]bool)); ok {
			ls.pass.Reportf(n.decl.Name.Pos(), "%s is marked cods:lockfree but %s; readers must never take a writer lock", key, why)
		}
	}
}

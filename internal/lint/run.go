package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"cods/internal/lint/analysis"
	"cods/internal/lint/loader"
)

// A Finding is one diagnostic from one analyzer, positioned and ready to
// print.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("suppression" for the
	// driver's own suppression-hygiene findings).
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (codslint/%s)", f.Pos, f.Message, f.Analyzer)
}

// directive is one //lint:ignore comment: which analyzer it silences, on
// which line, and why.
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// Run applies the analyzers to each package and returns the surviving
// findings, sorted by position.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore codslint/<analyzer> <reason>
//
// on the finding's line or on the line directly above it. The reason is
// mandatory and the directive must fire: a reasonless or unused
// suppression is itself reported (analyzer "suppression"), so silenced
// invariant violations always carry a reviewable explanation and stale
// directives cannot accumulate.
func Run(prog *loader.Program, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := scanDirectives(prog.Fset, pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				PkgMarkers: func(path string) map[string][]string {
					return prog.Markers(analysis.ScanMarkers, path)
				},
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := prog.Fset.Position(d.Pos)
				if suppressed(dirs, name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range dirs {
			switch {
			case d.reason == "":
				findings = append(findings, Finding{
					Analyzer: "suppression",
					Pos:      d.pos,
					Message:  fmt.Sprintf("suppression of codslint/%s has no reason; explain why the invariant does not apply here", d.analyzer),
				})
			case !d.used:
				findings = append(findings, Finding{
					Analyzer: "suppression",
					Pos:      d.pos,
					Message:  fmt.Sprintf("suppression of codslint/%s matches no finding; delete the stale directive", d.analyzer),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// scanDirectives collects the //lint:ignore directives of one package.
func scanDirectives(fset *token.FileSet, pkg *loader.Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				name, ok := strings.CutPrefix(fields[0], "codslint/")
				if !ok {
					continue // another linter's directive
				}
				pos := fset.Position(c.Pos())
				out = append(out, &directive{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
					reason:   strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
					pos:      pos,
				})
			}
		}
	}
	return out
}

// suppressed reports (and marks) whether a directive covers the given
// analyzer at the given position: same file, same line or the line
// directly above. Reasonless directives never suppress — they would
// otherwise hide a finding while the driver flags them anyway.
func suppressed(dirs []*directive, analyzer string, pos token.Position) bool {
	for _, d := range dirs {
		if d.analyzer != analyzer || d.file != pos.Filename || d.reason == "" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}

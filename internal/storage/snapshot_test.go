package storage

import (
	"os"
	"path/filepath"
	"testing"

	"cods/internal/colstore"
)

func buildTable(t *testing.T, name string, rows [][]string) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder(name, []string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if HasSnapshot(dir) {
		t.Fatal("empty dir claims a snapshot")
	}
	tab := buildTable(t, "r", [][]string{{"1", "x"}, {"2", "y"}})
	if _, err := SaveSnapshot(dir, []*colstore.Table{tab}, 1); err != nil {
		t.Fatal(err)
	}
	if !HasSnapshot(dir) {
		t.Fatal("snapshot not visible after SaveSnapshot")
	}
	tables, epoch, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || len(tables) != 1 || tables[0].Name() != "r" || tables[0].NumRows() != 2 {
		t.Fatalf("loaded epoch %d, tables %v", epoch, tables)
	}
}

// A new generation replaces the old atomically and prunes it.
func TestSnapshotGenerations(t *testing.T) {
	dir := t.TempDir()
	v1 := buildTable(t, "r", [][]string{{"1", "x"}})
	if _, err := SaveSnapshot(dir, []*colstore.Table{v1}, 1); err != nil {
		t.Fatal(err)
	}
	v2 := buildTable(t, "s", [][]string{{"2", "y"}, {"3", "z"}})
	if _, err := SaveSnapshot(dir, []*colstore.Table{v2}, 2); err != nil {
		t.Fatal(err)
	}
	tables, epoch, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || len(tables) != 1 || tables[0].Name() != "s" {
		t.Fatalf("loaded epoch %d, tables %v", epoch, tables)
	}
	if _, err := os.Stat(filepath.Join(dir, snapDirName(1))); !os.IsNotExist(err) {
		t.Fatalf("old generation not pruned: %v", err)
	}
}

// A crash before CURRENT is swapped must leave the old snapshot loadable:
// simulate by writing the new generation's directory without the pointer.
func TestSnapshotCrashBeforePublishKeepsOld(t *testing.T) {
	dir := t.TempDir()
	v1 := buildTable(t, "r", [][]string{{"1", "x"}})
	if _, err := SaveSnapshot(dir, []*colstore.Table{v1}, 1); err != nil {
		t.Fatal(err)
	}
	// Half-finished generation 2: data written, never published.
	v2 := buildTable(t, "s", [][]string{{"2", "y"}})
	if err := Save(filepath.Join(dir, snapDirName(2)), []*colstore.Table{v2}); err != nil {
		t.Fatal(err)
	}
	tables, epoch, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || tables[0].Name() != "r" {
		t.Fatalf("loaded epoch %d table %s; want the published generation 1", epoch, tables[0].Name())
	}
	// Re-checkpointing at epoch 2 must clobber the suspect leftovers.
	if _, err := SaveSnapshot(dir, []*colstore.Table{v2}, 2); err != nil {
		t.Fatal(err)
	}
	if _, epoch, _ := LoadSnapshot(dir); epoch != 2 {
		t.Fatalf("epoch after re-checkpoint = %d", epoch)
	}
}

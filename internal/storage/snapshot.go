package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cods/internal/colstore"
)

// Durable (checkpointed) catalogs do not overwrite their snapshot in
// place — a crash mid-write would destroy the only good copy. Instead,
// each checkpoint writes a complete new snapshot into its own epoch
// subdirectory and then atomically publishes it by renaming a one-line
// CURRENT pointer file:
//
//	<dir>/CURRENT            "snap-<epoch>\n", renamed into place
//	<dir>/snap-<epoch>/      a full Save layout (catalog.json + *.col)
//	<dir>/wal.log            statements since snapshot <epoch>
//
// Crash anywhere before the CURRENT rename leaves the previous snapshot
// (and its live WAL) untouched; crash after it but before the WAL reset
// leaves a WAL whose epoch is older than the snapshot's, which recovery
// detects and discards (see wal.go). Older snap-* directories are
// removed only after the new pointer is durably published. Plain
// Save/Load (the explicit, non-logged path) keep the flat layout.

// currentName is the snapshot pointer file inside a durable directory.
const currentName = "CURRENT"

func snapDirName(epoch uint64) string { return fmt.Sprintf("snap-%06d", epoch) }

// HasSnapshot reports whether dir contains a published durable snapshot.
// A durable database directory may legitimately have only a WAL (crash
// before the first checkpoint), so callers probe before LoadSnapshot.
func HasSnapshot(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, currentName))
	return err == nil
}

// SaveSnapshot checkpoints tables as snapshot generation epoch: the data
// is fully written and fsync'd before the CURRENT pointer is atomically
// swapped to it, and stale generations are pruned afterwards. On return
// the snapshot is the one recovery will load, so the caller may reset
// the WAL to the same epoch.
func SaveSnapshot(dir string, tables []*colstore.Table, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	sub := snapDirName(epoch)
	snapDir := filepath.Join(dir, sub)
	// A leftover directory at this epoch means an earlier checkpoint
	// crashed before publishing; its contents are suspect, start over.
	if err := os.RemoveAll(snapDir); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := Save(snapDir, tables); err != nil {
		return err
	}
	if err := syncTree(snapDir, tables); err != nil {
		return err
	}

	// Publish: write CURRENT beside the snapshot, fsync it, rename into
	// place, fsync the directory so the rename itself is durable.
	tmp := filepath.Join(dir, currentName+".tmp")
	if err := writeFileSync(tmp, []byte(sub+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentName)); err != nil {
		return fmt.Errorf("storage: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}

	// Old generations are unreachable now; pruning is best-effort.
	entries, err := os.ReadDir(dir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), "snap-") && e.Name() != sub {
				os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	return nil
}

// LoadSnapshot reads the published durable snapshot and returns its
// tables and epoch.
func LoadSnapshot(dir string) ([]*colstore.Table, uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		return nil, 0, fmt.Errorf("storage: %w", err)
	}
	sub := strings.TrimSpace(string(data))
	var epoch uint64
	if _, err := fmt.Sscanf(sub, "snap-%d", &epoch); err != nil {
		return nil, 0, fmt.Errorf("storage: malformed CURRENT %q: %w", sub, err)
	}
	tables, err := Load(filepath.Join(dir, sub))
	if err != nil {
		return nil, 0, err
	}
	return tables, epoch, nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing dir %s: %w", dir, err)
	}
	return nil
}

// syncTree fsyncs the snapshot's directories (column files are already
// fsync'd as they are written; catalog.json by Save's rename path needs
// its directory synced for the entries to be durable).
func syncTree(snapDir string, tables []*colstore.Table) error {
	for _, t := range tables {
		if err := syncDir(filepath.Join(snapDir, t.Name())); err != nil {
			return err
		}
	}
	return syncDir(snapDir)
}

package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cods/internal/colstore"
)

// Durable (checkpointed) catalogs do not overwrite their snapshot in
// place — a crash mid-write would destroy the only good copy. Instead,
// each checkpoint writes a complete new snapshot into its own epoch
// subdirectory and then atomically publishes it by renaming a one-line
// CURRENT pointer file:
//
//	<dir>/CURRENT            "snap-<epoch>\n", renamed into place
//	<dir>/snap-<epoch>/      a full Save layout (catalog.json + *.col)
//	<dir>/wal.log            statements since snapshot <epoch>
//
// Crash anywhere before the CURRENT rename leaves the previous snapshot
// (and its live WAL) untouched; crash after it but before the WAL reset
// leaves a WAL whose epoch is older than the snapshot's, which recovery
// detects and discards (see wal.go). Older snap-* directories are
// removed only after the new pointer is durably published. Plain
// Save/Load (the explicit, non-logged path) keep the flat layout.

// currentName is the snapshot pointer file inside a durable directory.
const currentName = "CURRENT"

func snapDirName(epoch uint64) string { return fmt.Sprintf("snap-%06d", epoch) }

// HasSnapshot reports whether dir contains a published durable snapshot.
// A durable database directory may legitimately have only a WAL (crash
// before the first checkpoint), so callers probe before LoadSnapshot.
func HasSnapshot(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, currentName))
	return err == nil
}

// HasFlatCatalog reports whether dir holds a plain Save layout (a
// top-level catalog.json). Durable openers probe this when no CURRENT
// pointer exists: silently treating a Save directory as an empty durable
// one would orphan its tables behind the first checkpoint's snapshot.
func HasFlatCatalog(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, catalogName))
	return err == nil
}

// SaveSnapshot checkpoints tables as snapshot generation epoch: the data
// is fully written and fsync'd before the CURRENT pointer is atomically
// swapped to it, and stale generations are pruned afterwards. On a nil
// error the snapshot is the one recovery will load, so the caller may
// reset the WAL to the same epoch. published reports whether the CURRENT
// swap happened: a failure with published true (the post-rename dir
// sync) means the new generation may already be the one recovery loads,
// so the caller must treat the old snapshot + log pair as retired.
//
// cods:blocking — writes and fsyncs the whole snapshot tree.
func SaveSnapshot(dir string, tables []*colstore.Table, epoch uint64) (published bool, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, fmt.Errorf("storage: %w", err)
	}
	sub := snapDirName(epoch)
	snapDir := filepath.Join(dir, sub)
	// A leftover directory at this epoch means an earlier checkpoint
	// crashed before publishing; its contents are suspect, start over.
	// (Callers never reuse a published epoch — see CurrentEpoch.)
	if err := os.RemoveAll(snapDir); err != nil {
		return false, fmt.Errorf("storage: %w", err)
	}
	if err := Save(snapDir, tables); err != nil {
		return false, err
	}
	if err := syncTree(snapDir, tables); err != nil {
		return false, err
	}
	crashPoint("manifest-written")

	// Publish: write CURRENT beside the snapshot, fsync it, rename into
	// place, fsync the directory so the rename itself is durable.
	tmp := filepath.Join(dir, currentName+".tmp")
	if err := writeFileSync(tmp, []byte(sub+"\n")); err != nil {
		return false, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentName)); err != nil {
		return false, fmt.Errorf("storage: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return true, err
	}
	crashPoint("current-swapped")

	// Old generations are unreachable now; pruning is best-effort.
	entries, rerr := os.ReadDir(dir)
	if rerr == nil {
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), "snap-") && e.Name() != sub {
				os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	return true, nil
}

// readCurrent parses dir's CURRENT pointer into its subdirectory name
// and epoch.
func readCurrent(dir string) (sub string, epoch uint64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		return "", 0, fmt.Errorf("storage: %w", err)
	}
	sub = strings.TrimSpace(string(data))
	if _, err := fmt.Sscanf(sub, "snap-%d", &epoch); err != nil {
		return "", 0, fmt.Errorf("storage: malformed CURRENT %q: %w", sub, err)
	}
	return sub, epoch, nil
}

// CurrentEpoch returns the published snapshot generation. ok is false
// with a nil error when none is published; a non-nil error means the
// pointer could not be read or parsed, so the published epoch is
// unknown. Checkpoints use it to never rewrite a published generation:
// retrying a failed checkpoint at an epoch that already got published
// would destroy the snapshot CURRENT points at while rewriting it —
// which is why an unreadable pointer must abort the checkpoint rather
// than pass for "nothing published".
func CurrentEpoch(dir string) (epoch uint64, ok bool, err error) {
	_, epoch, err = readCurrent(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	return epoch, true, nil
}

// LoadSnapshot reads the published durable snapshot and returns its
// tables and epoch.
func LoadSnapshot(dir string) ([]*colstore.Table, uint64, error) {
	sub, epoch, err := readCurrent(dir)
	if err != nil {
		return nil, 0, err
	}
	tables, err := Load(filepath.Join(dir, sub))
	if err != nil {
		return nil, 0, err
	}
	return tables, epoch, nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing dir %s: %w", dir, err)
	}
	return nil
}

// syncTree fsyncs the snapshot's directories (column files are already
// fsync'd as they are written; catalog.json by Save's rename path needs
// its directory synced for the entries to be durable). The segmented
// layout nests one directory per row segment under each table directory,
// and every level must be synced for the files to survive a crash.
func syncTree(snapDir string, tables []*colstore.Table) error {
	for _, t := range tables {
		tdir := filepath.Join(snapDir, t.Name())
		for k := range t.NumSegments() {
			if err := syncDir(filepath.Join(tdir, segDirName(k))); err != nil {
				return err
			}
		}
		if err := syncDir(tdir); err != nil {
			return err
		}
	}
	return syncDir(snapDir)
}

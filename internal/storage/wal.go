package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The write-ahead log makes a catalog directory crash-safe: every applied
// SMO statement is appended (checksummed and fsync'd) before the call
// returns, and recovery replays the log on top of the latest snapshot.
// Snapshot + WAL together always describe the last committed schema
// version; a torn tail record (crash mid-append) is detected by its CRC
// or short length and ignored.
//
// File layout (<dir>/wal.log, little-endian):
//
//	header:  magic "CODSWAL\x00" | uint32 format version | uint64 epoch
//	record:  uint32 payload length | uint32 CRC32(payload) | payload
//
// The payload is the statement text exactly as accepted by smo.Parse.
// Catalog changes that cannot be replayed from text alone (bulk loads,
// rollbacks, file-fed columns) are never logged; the facade checkpoints
// instead, so replaying the log is always pure statement re-execution.
//
// The epoch ties the log to the snapshot generation it extends: a
// checkpoint publishes snapshot epoch E+1 and then resets the log to
// epoch E+1. If a crash lands between those two steps, recovery sees a
// log whose epoch is older than the snapshot's and discards it — every
// statement in it is already part of the snapshot. Replaying on epoch
// mismatch would double-apply statements; see SaveSnapshot.

// walName is the log's file name inside a catalog directory.
const walName = "wal.log"

// walHeaderSize is magic (8) + format (4) + epoch (8).
const walHeaderSize = 20

var walMagic = [8]byte{'C', 'O', 'D', 'S', 'W', 'A', 'L', 0}

// maxWALRecord bounds a single record so a corrupt length prefix cannot
// trigger a huge allocation during replay.
const maxWALRecord = 16 << 20

// ErrWALFormat reports a WAL whose header is malformed or of an
// unsupported format version. A header shorter than walHeaderSize is NOT
// this error: that is the signature of a crash during Reset, and OpenWAL
// silently rebuilds it (the snapshot already holds everything).
var ErrWALFormat = errors.New("storage: bad WAL header")

// WAL is an append-only, fsync'd statement log. It is not safe for
// concurrent use; callers serialize appends (the cods.DB facade appends
// under its exclusive catalog lock).
type WAL struct {
	f     *os.File
	path  string
	epoch uint64
	// stmts holds the complete records found when the log was opened —
	// the recovery replay input.
	stmts []string
}

// walPath returns the log path for a catalog directory.
func walPath(dir string) string { return filepath.Join(dir, walName) }

// OpenWAL opens (creating if needed) the write-ahead log in dir and
// positions it for appending. A new log — or one whose header was torn
// by a crash during Reset — is (re)initialized with createEpoch; an
// existing log keeps its own epoch. The statements scanned at open time
// are available via Statements; appends go after the last complete
// record, discarding any torn tail left by a crash.
func OpenWAL(dir string, createEpoch uint64) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	path := walPath(dir)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	w := &WAL{f: f, path: path, epoch: createEpoch}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %w", err)
	}
	if size < walHeaderSize {
		// Empty, or a header torn by a crash mid-Reset: rebuild. Any
		// pre-crash statements were made redundant by the snapshot the
		// Reset was part of.
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	stmts, epoch, end, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.stmts, w.epoch = stmts, epoch
	if end < size {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %w", err)
	}
	return w, nil
}

// Epoch returns the snapshot generation this log extends.
func (w *WAL) Epoch() uint64 { return w.epoch }

// Statements returns the complete records found when the log was opened,
// in append order. The slice is not updated by later Appends.
func (w *WAL) Statements() []string { return w.stmts }

// writeHeader truncates the file and writes + fsyncs the header for the
// current epoch.
func (w *WAL) writeHeader() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: resetting WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], w.epoch)
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: writing WAL header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: syncing WAL header: %w", err)
	}
	return nil
}

// Append durably logs one statement: the record is written and fsync'd
// before Append returns, so a committed statement survives any later
// crash.
//
// cods:blocking
func (w *WAL) Append(stmt string) error { return w.AppendAll([]string{stmt}) }

// AppendAll durably logs a batch of statements with a single write and
// fsync. Crash-equivalent to sequential Appends whose durability is
// only observed after the last one — records land in order, so a crash
// mid-batch keeps a clean prefix (the torn tail is discarded on
// reopen) — while holding whatever lock serializes the caller for one
// disk sync instead of len(stmts).
//
// cods:blocking
func (w *WAL) AppendAll(stmts []string) error {
	if len(stmts) == 0 {
		return nil
	}
	var buf []byte
	for _, stmt := range stmts {
		payload := []byte(stmt)
		if len(payload) > maxWALRecord {
			return fmt.Errorf("storage: WAL record of %d bytes exceeds limit %d", len(payload), maxWALRecord)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("storage: appending WAL records: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: syncing WAL: %w", err)
	}
	return nil
}

// Reset truncates the log to an empty state at the given epoch. Called
// after a fresh snapshot (tagged with the same epoch) makes the logged
// statements redundant.
//
// cods:blocking — rewrites and fsyncs the log header.
func (w *WAL) Reset(epoch uint64) error {
	w.epoch = epoch
	w.stmts = nil
	return w.writeHeader()
}

// Close releases the log file. Append is durable on return, so Close has
// nothing left to flush.
//
// cods:blocking
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// ReplayWAL returns the statements in dir's write-ahead log in append
// order, plus the log's epoch. A missing or header-torn log is an empty
// recovery, not an error. Replay stops silently at the first torn or
// corrupt record — everything before it was durably committed,
// everything at and after it never fully was.
func ReplayWAL(dir string) ([]string, uint64, error) {
	f, err := os.Open(walPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Size() < walHeaderSize {
		return nil, 0, nil
	}
	stmts, epoch, _, err := scanWAL(f)
	return stmts, epoch, err
}

// scanWAL reads records from the start of the log, returning the decoded
// statements, the header epoch, and the byte offset just past the last
// complete record. A short, oversized, or checksum-failing record ends
// the scan; a bad full-size header is ErrWALFormat. Callers ensure the
// file is at least walHeaderSize long.
func scanWAL(f *os.File) ([]string, uint64, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("storage: %w", err)
	}
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: %w", ErrWALFormat, err)
	}
	if [8]byte(hdr[:8]) != walMagic {
		return nil, 0, 0, fmt.Errorf("%w: bad magic", ErrWALFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return nil, 0, 0, fmt.Errorf("%w: format %d (supported: %d)", ErrWALFormat, v, FormatVersion)
	}
	epoch := binary.LittleEndian.Uint64(hdr[12:])
	var stmts []string
	off := int64(walHeaderSize)
	for {
		var rh [8]byte
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			return stmts, epoch, off, nil // clean EOF or torn length/CRC prefix
		}
		n := binary.LittleEndian.Uint32(rh[0:])
		sum := binary.LittleEndian.Uint32(rh[4:])
		if n > maxWALRecord {
			return stmts, epoch, off, nil // corrupt length; treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return stmts, epoch, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return stmts, epoch, off, nil // corrupt payload
		}
		stmts = append(stmts, string(payload))
		off += 8 + int64(n)
	}
}

package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cods/internal/colstore"
	"cods/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := workload.BuildColstore(workload.Spec{Rows: 1000, DistinctKeys: 30, Seed: 1}, "R")
	if err != nil {
		t.Fatal(err)
	}
	emp, err := workload.EmployeeTable("Employees")
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, []*colstore.Table{r, emp}); err != nil {
		t.Fatal(err)
	}
	tables, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("loaded %d tables", len(tables))
	}
	byName := map[string]*colstore.Table{}
	for _, tab := range tables {
		byName[tab.Name()] = tab
	}
	for _, want := range []*colstore.Table{r, emp} {
		got, ok := byName[want.Name()]
		if !ok {
			t.Fatalf("table %q missing after load", want.Name())
		}
		if !reflect.DeepEqual(got.TupleMultiset(), want.TupleMultiset()) {
			t.Fatalf("table %q content changed across save/load", want.Name())
		}
		if !reflect.DeepEqual(got.ColumnNames(), want.ColumnNames()) {
			t.Fatalf("table %q columns changed", want.Name())
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSaveLoadPreservesRLEColumns(t *testing.T) {
	dir := t.TempDir()
	sorted := colstore.NewRLEColumn("S", []string{"a", "a", "b", "b", "b", "c"})
	other := colstore.NewColumnFromValues("V", []string{"1", "2", "3", "4", "5", "6"})
	tab, err := colstore.NewTable("T", []*colstore.Column{sorted, other}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, []*colstore.Table{tab}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	col, err := loaded[0].Column("S")
	if err != nil {
		t.Fatal(err)
	}
	if col.Encoding() != colstore.EncodingRLE {
		t.Fatalf("encoding=%v, RLE not preserved", col.Encoding())
	}
	v, _ := col.ValueAt(4)
	if v != "b" {
		t.Fatalf("row 4 = %q", v)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadRejectsCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadRejectsWrongFormatVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte(`{"format": 99, "tables": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected version error")
	}
}

func TestLoadRejectsCorruptColumn(t *testing.T) {
	dir := t.TempDir()
	emp, _ := workload.EmployeeTable("E")
	if err := Save(dir, []*colstore.Table{emp}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "E", "seg-0000", "0.col")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // break the magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestSaveOverwrites(t *testing.T) {
	dir := t.TempDir()
	emp, _ := workload.EmployeeTable("E")
	if err := Save(dir, []*colstore.Table{emp}); err != nil {
		t.Fatal(err)
	}
	small, _ := workload.BuildColstore(workload.Spec{Rows: 10, DistinctKeys: 2, Seed: 9}, "E")
	if err := Save(dir, []*colstore.Table{small}); err != nil {
		t.Fatal(err)
	}
	tables, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].NumRows() != 10 {
		t.Fatalf("overwrite failed: %v", tables)
	}
}

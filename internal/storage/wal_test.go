package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, dir string, stmts ...string) {
	t.Helper()
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, s := range stmts {
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
}

func replay(t *testing.T, dir string) []string {
	t.Helper()
	stmts, _, err := ReplayWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	return stmts
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	want := []string{
		"CREATE TABLE r (a, b)",
		"ADD COLUMN c TO r DEFAULT 'x'",
		"RENAME TABLE r TO s",
	}
	appendAll(t, dir, want...)
	got := replay(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d statements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWALReplayMissingLog(t *testing.T) {
	if got := replay(t, t.TempDir()); got != nil {
		t.Fatalf("replay of missing log = %v, want nil", got)
	}
}

func TestWALAppendAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, "CREATE TABLE a (x)")
	appendAll(t, dir, "CREATE TABLE b (y)")
	got := replay(t, dir)
	if len(got) != 2 || got[0] != "CREATE TABLE a (x)" || got[1] != "CREATE TABLE b (y)" {
		t.Fatalf("replay after reopen = %v", got)
	}
	// Statements scanned at open time are exposed for recovery.
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if s := w.Statements(); len(s) != 2 {
		t.Fatalf("Statements() = %v", s)
	}
}

func TestWALResetAdvancesEpoch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append("CREATE TABLE r (a)"); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(1); err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != 1 {
		t.Fatalf("epoch after reset = %d, want 1", w.Epoch())
	}
	if err := w.Append("CREATE TABLE s (b)"); err != nil {
		t.Fatal(err)
	}
	stmts, epoch, err := ReplayWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("replayed epoch = %d, want 1", epoch)
	}
	if len(stmts) != 1 || stmts[0] != "CREATE TABLE s (b)" {
		t.Fatalf("replay after reset = %v", stmts)
	}
	// Reopening keeps the persisted epoch, ignoring createEpoch.
	w.Close()
	w2, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Epoch() != 1 {
		t.Fatalf("epoch after reopen = %d, want 1", w2.Epoch())
	}
}

// TestWALTornTail simulates a crash at every possible byte boundary of the
// final record: however much of the last append survives, recovery must
// yield exactly the statements fully committed before it.
func TestWALTornTail(t *testing.T) {
	committed := []string{"CREATE TABLE r (a, b)", "DROP COLUMN b FROM r"}
	last := "ADD COLUMN c TO r DEFAULT 'v'"

	ref := t.TempDir()
	appendAll(t, ref, committed...)
	refSize := fileSize(t, walPath(ref))
	appendAll(t, ref, last)
	fullSize := fileSize(t, walPath(ref))
	full, err := os.ReadFile(walPath(ref))
	if err != nil {
		t.Fatal(err)
	}

	for cut := refSize; cut < fullSize; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(walPath(dir), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replay(t, dir)
		if len(got) != len(committed) {
			t.Fatalf("cut at %d/%d: replayed %d statements, want %d (%v)", cut, fullSize, len(got), len(committed), got)
		}
	}

	// A torn tail must also not break appending: reopening truncates it,
	// and the next record lands cleanly.
	dir := t.TempDir()
	if err := os.WriteFile(walPath(dir), full[:fullSize-3], 0o644); err != nil {
		t.Fatal(err)
	}
	appendAll(t, dir, "RENAME TABLE r TO s")
	got := replay(t, dir)
	want := append(append([]string(nil), committed...), "RENAME TABLE r TO s")
	if len(got) != len(want) {
		t.Fatalf("after torn-tail reopen: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALTornHeader simulates a crash during Reset, at every byte
// boundary of the header: OpenWAL must rebuild the log at createEpoch
// with no statements, never error.
func TestWALTornHeader(t *testing.T) {
	ref := t.TempDir()
	appendAll(t, ref, "CREATE TABLE r (a)")
	full, err := os.ReadFile(walPath(ref))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < walHeaderSize; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(walPath(dir), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, 7)
		if err != nil {
			t.Fatalf("cut at %d: OpenWAL: %v", cut, err)
		}
		if w.Epoch() != 7 || len(w.Statements()) != 0 {
			t.Fatalf("cut at %d: epoch %d stmts %v, want 7 and none", cut, w.Epoch(), w.Statements())
		}
		w.Close()
	}
}

// TestWALCorruptPayload flips a byte inside a committed record's payload;
// the checksum must stop replay at the record before it.
func TestWALCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, "CREATE TABLE r (a)", "CREATE TABLE s (b)")
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replay(t, dir)
	if len(got) != 1 || got[0] != "CREATE TABLE r (a)" {
		t.Fatalf("replay with corrupt tail record = %v, want just the first statement", got)
	}
}

func TestWALBadHeader(t *testing.T) {
	dir := t.TempDir()
	garbage := []byte("this is definitely not a wal file at all")
	if len(garbage) < walHeaderSize {
		t.Fatal("garbage must cover the full header to be a format error")
	}
	if err := os.WriteFile(walPath(dir), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayWAL(dir); !errors.Is(err, ErrWALFormat) {
		t.Fatalf("replay of garbage log: err = %v, want ErrWALFormat", err)
	}
	if _, err := OpenWAL(dir, 0); !errors.Is(err, ErrWALFormat) {
		t.Fatalf("open of garbage log: err = %v, want ErrWALFormat", err)
	}
}

func TestWALAppendAllBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"CREATE TABLE r (a, b)",
		"ADD COLUMN c TO r DEFAULT 'x'",
		"RENAME TABLE r TO s",
	}
	if err := w.AppendAll(stmts); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAll(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replay(t, dir)
	if len(got) != len(stmts) {
		t.Fatalf("replayed %v, want %v", got, stmts)
	}
	for i := range stmts {
		if got[i] != stmts[i] {
			t.Fatalf("replayed[%d] = %q, want %q", i, got[i], stmts[i])
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// The log lives inside the catalog directory next to the snapshots; pin
// the name so they stay co-located.
func TestWALPathInsideDir(t *testing.T) {
	if walPath("d") != filepath.Join("d", "wal.log") {
		t.Fatal("unexpected wal path")
	}
}

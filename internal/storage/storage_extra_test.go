package storage

import (
	"os"
	"path/filepath"
	"testing"

	"cods/internal/colstore"
	"cods/internal/workload"
)

func TestLoadRejectsTruncatedColumn(t *testing.T) {
	dir := t.TempDir()
	emp, err := workload.EmployeeTable("E")
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, []*colstore.Table{emp}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "E", "seg-0000", "1.col")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadRejectsMissingColumnFile(t *testing.T) {
	dir := t.TempDir()
	emp, _ := workload.EmployeeTable("E")
	if err := Save(dir, []*colstore.Table{emp}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "E", "seg-0000", "2.col")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestLoadRejectsRowCountMismatch(t *testing.T) {
	dir := t.TempDir()
	emp, _ := workload.EmployeeTable("E")
	if err := Save(dir, []*colstore.Table{emp}); err != nil {
		t.Fatal(err)
	}
	// Swap in a column file with a different row count under the same
	// column name.
	other := colstore.NewColumnFromValues("Employee", []string{"only-one"})
	f, err := os.Create(filepath.Join(dir, "E", "seg-0000", "0.col"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(dir); err == nil {
		t.Fatal("expected row-count mismatch error")
	}
}

func TestLoadRejectsColumnNameMismatch(t *testing.T) {
	dir := t.TempDir()
	emp, _ := workload.EmployeeTable("E")
	if err := Save(dir, []*colstore.Table{emp}); err != nil {
		t.Fatal(err)
	}
	renamed := colstore.NewColumnFromValues("Wrong", make([]string, 7))
	f, err := os.Create(filepath.Join(dir, "E", "seg-0000", "0.col"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := renamed.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(dir); err == nil {
		t.Fatal("expected column-name mismatch error")
	}
}

func TestSaveEmptyCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, nil); err != nil {
		t.Fatal(err)
	}
	tables, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 0 {
		t.Fatalf("tables=%d", len(tables))
	}
}

// Package storage persists a CODS catalog to a directory: a JSON catalog
// file describing the tables plus one binary file per column holding the
// dictionary and compressed bitmaps. Columns are written and read in their
// compressed form; saving and loading never decompresses data.
//
// Alongside the snapshot, a write-ahead log (WAL, ReplayWAL) records each
// SMO statement applied after the snapshot, fsync'd and checksummed, so a
// crash loses nothing: recovery loads the snapshot and replays the log.
//
// Two snapshot layouts exist. Plain Save/Load use a flat directory — the
// explicit, non-crash-safe persistence path:
//
//	<dir>/catalog.json
//	<dir>/<table>/<n>.col      one file per column, in schema order
//
// Durable catalogs checkpoint with SaveSnapshot/LoadSnapshot, which keep
// each snapshot generation in its own epoch subdirectory published by an
// atomically swapped CURRENT pointer (crashing mid-checkpoint can never
// damage the previous generation), with the statement log beside them:
//
//	<dir>/CURRENT              "snap-<epoch>", renamed into place
//	<dir>/snap-<epoch>/...     a flat Save layout per generation
//	<dir>/wal.log              statement log since snapshot <epoch>
package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cods/internal/colstore"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

// catalogName is the snapshot's manifest file inside a catalog directory.
const catalogName = "catalog.json"

type catalogFile struct {
	Format int            `json:"format"`
	Tables []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Key     []string `json:"key,omitempty"`
	Rows    uint64   `json:"rows"`
}

// Save writes the given tables to dir, creating it if needed. Existing
// contents of dir are replaced.
func Save(dir string, tables []*colstore.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	cat := catalogFile{Format: FormatVersion}
	for _, t := range tables {
		cat.Tables = append(cat.Tables, catalogTable{
			Name:    t.Name(),
			Columns: t.ColumnNames(),
			Key:     t.Key(),
			Rows:    t.NumRows(),
		})
		tdir := filepath.Join(dir, t.Name())
		if err := os.RemoveAll(tdir); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		for i := 0; i < t.NumColumns(); i++ {
			if err := writeColumnFile(filepath.Join(tdir, fmt.Sprintf("%d.col", i)), t.ColumnAt(i)); err != nil {
				return err
			}
		}
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	// The manifest is written last, fsync'd, and renamed into place so a
	// crash mid-save never leaves a manifest describing half-written
	// tables. (In-place Save still overwrites column data first — the
	// crash-safe path for durable catalogs is SaveSnapshot, which writes
	// into a fresh epoch directory and swaps a pointer.)
	tmp := filepath.Join(dir, catalogName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, catalogName)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

func writeColumnFile(path string, c *colstore.Column) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := c.WriteTo(w); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: flushing %s: %w", path, err)
	}
	// Durability callers (checkpointing) truncate the WAL on the strength
	// of this snapshot, so the data must be on disk, not in page cache.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads all tables from a directory written by Save.
func Load(dir string) ([]*colstore.Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogName))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var cat catalogFile
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("storage: parsing catalog: %w", err)
	}
	if cat.Format != FormatVersion {
		return nil, fmt.Errorf("storage: unsupported format %d (supported: %d)", cat.Format, FormatVersion)
	}
	var tables []*colstore.Table
	for _, ct := range cat.Tables {
		cols := make([]*colstore.Column, len(ct.Columns))
		for i := range ct.Columns {
			c, err := readColumnFile(filepath.Join(dir, ct.Name, fmt.Sprintf("%d.col", i)))
			if err != nil {
				return nil, err
			}
			if c.Name() != ct.Columns[i] {
				return nil, fmt.Errorf("storage: table %q column %d is %q on disk, catalog says %q", ct.Name, i, c.Name(), ct.Columns[i])
			}
			cols[i] = c
		}
		t, err := colstore.NewTable(ct.Name, cols, ct.Key)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		if t.NumRows() != ct.Rows {
			return nil, fmt.Errorf("storage: table %q has %d rows on disk, catalog says %d", ct.Name, t.NumRows(), ct.Rows)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func readColumnFile(path string) (*colstore.Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	c, err := colstore.ReadColumn(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", path, err)
	}
	return c, nil
}

// Package storage persists a CODS catalog to a directory: a JSON catalog
// file describing the tables plus one binary file per column holding the
// dictionary and compressed bitmaps. Columns are written and read in their
// compressed form; saving and loading never decompresses data.
//
// Alongside the snapshot, a write-ahead log (WAL, ReplayWAL) records each
// SMO statement applied after the snapshot, fsync'd and checksummed, so a
// crash loses nothing: recovery loads the snapshot and replays the log.
//
// Two snapshot layouts exist. Plain Save/Load use a flat directory — the
// explicit, non-crash-safe persistence path. Format 2 mirrors the
// segmented column store: each table directory holds one subdirectory per
// row segment, and the catalog manifest records the segment row counts in
// order:
//
//	<dir>/catalog.json
//	<dir>/<table>/seg-<k>/<n>.col   one file per column of segment k
//
// Format 1 (the pre-segmentation layout, <dir>/<table>/<n>.col) is still
// read, loading each table as a single segment.
//
// Durable catalogs checkpoint with SaveSnapshot/LoadSnapshot, which keep
// each snapshot generation in its own epoch subdirectory published by an
// atomically swapped CURRENT pointer (crashing mid-checkpoint can never
// damage the previous generation), with the statement log beside them:
//
//	<dir>/CURRENT              "snap-<epoch>", renamed into place
//	<dir>/snap-<epoch>/...     a flat Save layout per generation
//	<dir>/wal.log              statement log since snapshot <epoch>
package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cods/internal/colstore"
)

// FormatVersion identifies the on-disk layout: 2 is the segmented layout
// (per-segment column files plus segment row counts in the manifest).
const FormatVersion = 2

// formatFlat is the pre-segmentation layout, still accepted by Load.
const formatFlat = 1

// catalogName is the snapshot's manifest file inside a catalog directory.
const catalogName = "catalog.json"

// CrashPoint, when non-nil, is called at named barriers inside the
// checkpoint write path so crash-recovery tests can kill the process
// between durability steps and assert recovery lands on exactly the
// pre- or post-checkpoint state, never a hybrid. Points, in write order:
//
//	"segment-written"  segment column files durable, manifest not written
//	"manifest-written" snapshot complete, CURRENT not yet swapped
//	"current-swapped"  CURRENT durably republished, WAL not yet reset
//
// Production code never sets it.
var CrashPoint func(point string)

func crashPoint(point string) {
	if CrashPoint != nil {
		CrashPoint(point)
	}
}

type catalogFile struct {
	Format int            `json:"format"`
	Tables []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Key     []string `json:"key,omitempty"`
	Rows    uint64   `json:"rows"`
	// Segments lists the per-segment row counts in row order (format 2).
	Segments []uint64 `json:"segments,omitempty"`
}

func segDirName(k int) string { return fmt.Sprintf("seg-%04d", k) }

// Save writes the given tables to dir, creating it if needed. Existing
// contents of dir are replaced. Each row segment is written to its own
// subdirectory, so an overlay flush followed by a checkpoint writes only
// segment-sized files — the manifest splice, not the data, is what
// changes for untouched segments (the files are still rewritten here;
// avoiding that requires cross-generation sharing, which the epoch
// layout deliberately forgoes for recovery simplicity).
func Save(dir string, tables []*colstore.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	cat := catalogFile{Format: FormatVersion}
	for _, t := range tables {
		cat.Tables = append(cat.Tables, catalogTable{
			Name:     t.Name(),
			Columns:  t.ColumnNames(),
			Key:      t.Key(),
			Rows:     t.NumRows(),
			Segments: t.SegmentRows(),
		})
		tdir := filepath.Join(dir, t.Name())
		if err := os.RemoveAll(tdir); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		for k, seg := range t.Segments() {
			sdir := filepath.Join(tdir, segDirName(k))
			if err := os.MkdirAll(sdir, 0o755); err != nil {
				return fmt.Errorf("storage: %w", err)
			}
			for i := 0; i < seg.NumColumns(); i++ {
				if err := writeColumnFile(filepath.Join(sdir, fmt.Sprintf("%d.col", i)), seg.ColumnAt(i)); err != nil {
					return err
				}
			}
		}
	}
	crashPoint("segment-written")
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	// The manifest is written last, fsync'd, and renamed into place so a
	// crash mid-save never leaves a manifest describing half-written
	// tables. (In-place Save still overwrites column data first — the
	// crash-safe path for durable catalogs is SaveSnapshot, which writes
	// into a fresh epoch directory and swaps a pointer.)
	tmp := filepath.Join(dir, catalogName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, catalogName)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

func writeColumnFile(path string, c *colstore.Column) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := c.WriteTo(w); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: flushing %s: %w", path, err)
	}
	// Durability callers (checkpointing) truncate the WAL on the strength
	// of this snapshot, so the data must be on disk, not in page cache.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads all tables from a directory written by Save, accepting both
// the segmented layout (format 2) and the flat pre-segmentation layout
// (format 1, loaded as single-segment tables).
func Load(dir string) ([]*colstore.Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, catalogName))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var cat catalogFile
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("storage: parsing catalog: %w", err)
	}
	if cat.Format != FormatVersion && cat.Format != formatFlat {
		return nil, fmt.Errorf("storage: unsupported format %d (supported: %d, %d)", cat.Format, formatFlat, FormatVersion)
	}
	var tables []*colstore.Table
	for _, ct := range cat.Tables {
		var t *colstore.Table
		var err error
		if cat.Format == formatFlat {
			t, err = loadFlatTable(dir, ct)
		} else {
			t, err = loadSegmentedTable(dir, ct)
		}
		if err != nil {
			return nil, err
		}
		if t.NumRows() != ct.Rows {
			return nil, fmt.Errorf("storage: table %q has %d rows on disk, catalog says %d", ct.Name, t.NumRows(), ct.Rows)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// loadFlatTable reads a format-1 table (<table>/<n>.col) as one segment.
func loadFlatTable(dir string, ct catalogTable) (*colstore.Table, error) {
	cols, err := readSegmentColumns(filepath.Join(dir, ct.Name), ct)
	if err != nil {
		return nil, err
	}
	t, err := colstore.NewTable(ct.Name, cols, ct.Key)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return t, nil
}

// loadSegmentedTable reads a format-2 table: one subdirectory per row
// segment, reassembled in manifest order.
func loadSegmentedTable(dir string, ct catalogTable) (*colstore.Table, error) {
	segs := make([]*colstore.Segment, len(ct.Segments))
	for k, rows := range ct.Segments {
		cols, err := readSegmentColumns(filepath.Join(dir, ct.Name, segDirName(k)), ct)
		if err != nil {
			return nil, err
		}
		seg, err := colstore.NewSegment(cols)
		if err != nil {
			return nil, fmt.Errorf("storage: table %q segment %d: %w", ct.Name, k, err)
		}
		if seg.NumRows() != rows {
			return nil, fmt.Errorf("storage: table %q segment %d has %d rows on disk, catalog says %d", ct.Name, k, seg.NumRows(), rows)
		}
		segs[k] = seg
	}
	t, err := colstore.NewSegmented(ct.Name, ct.Columns, segs, ct.Key)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return t, nil
}

// readSegmentColumns reads one directory of column files in schema order,
// verifying on-disk names against the catalog.
func readSegmentColumns(sdir string, ct catalogTable) ([]*colstore.Column, error) {
	cols := make([]*colstore.Column, len(ct.Columns))
	for i := range ct.Columns {
		c, err := readColumnFile(filepath.Join(sdir, fmt.Sprintf("%d.col", i)))
		if err != nil {
			return nil, err
		}
		if c.Name() != ct.Columns[i] {
			return nil, fmt.Errorf("storage: table %q column %d is %q on disk, catalog says %q", ct.Name, i, c.Name(), ct.Columns[i])
		}
		cols[i] = c
	}
	return cols, nil
}

func readColumnFile(path string) (*colstore.Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	c, err := colstore.ReadColumn(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", path, err)
	}
	return c, nil
}

// Package storage persists a CODS catalog to a directory: a JSON catalog
// file describing the tables plus one binary file per column holding the
// dictionary and compressed bitmaps. Columns are written and read in their
// compressed form; saving and loading never decompresses data.
//
// Layout:
//
//	<dir>/catalog.json
//	<dir>/<table>/<n>.col      one file per column, in schema order
package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cods/internal/colstore"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

type catalogFile struct {
	Format int            `json:"format"`
	Tables []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Key     []string `json:"key,omitempty"`
	Rows    uint64   `json:"rows"`
}

// Save writes the given tables to dir, creating it if needed. Existing
// contents of dir are replaced.
func Save(dir string, tables []*colstore.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	cat := catalogFile{Format: FormatVersion}
	for _, t := range tables {
		cat.Tables = append(cat.Tables, catalogTable{
			Name:    t.Name(),
			Columns: t.ColumnNames(),
			Key:     t.Key(),
			Rows:    t.NumRows(),
		})
		tdir := filepath.Join(dir, t.Name())
		if err := os.RemoveAll(tdir); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		for i := 0; i < t.NumColumns(); i++ {
			if err := writeColumnFile(filepath.Join(tdir, fmt.Sprintf("%d.col", i)), t.ColumnAt(i)); err != nil {
				return err
			}
		}
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

func writeColumnFile(path string, c *colstore.Column) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := c.WriteTo(w); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: flushing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads all tables from a directory written by Save.
func Load(dir string) ([]*colstore.Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var cat catalogFile
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, fmt.Errorf("storage: parsing catalog: %w", err)
	}
	if cat.Format != FormatVersion {
		return nil, fmt.Errorf("storage: unsupported format %d (supported: %d)", cat.Format, FormatVersion)
	}
	var tables []*colstore.Table
	for _, ct := range cat.Tables {
		cols := make([]*colstore.Column, len(ct.Columns))
		for i := range ct.Columns {
			c, err := readColumnFile(filepath.Join(dir, ct.Name, fmt.Sprintf("%d.col", i)))
			if err != nil {
				return nil, err
			}
			if c.Name() != ct.Columns[i] {
				return nil, fmt.Errorf("storage: table %q column %d is %q on disk, catalog says %q", ct.Name, i, c.Name(), ct.Columns[i])
			}
			cols[i] = c
		}
		t, err := colstore.NewTable(ct.Name, cols, ct.Key)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		if t.NumRows() != ct.Rows {
			return nil, fmt.Errorf("storage: table %q has %d rows on disk, catalog says %d", ct.Name, t.NumRows(), ct.Rows)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func readColumnFile(path string) (*colstore.Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	c, err := colstore.ReadColumn(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", path, err)
	}
	return c, nil
}

package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cods/internal/colstore"
	"cods/internal/evolve"
)

// buildSegmented constructs a three-segment table with overlapping
// dictionaries across segments.
func buildSegmented(t *testing.T) *colstore.Table {
	t.Helper()
	seg := func(lo, hi int) *colstore.Segment {
		var ks, vs []string
		for i := lo; i < hi; i++ {
			ks = append(ks, fmt.Sprintf("k%03d", i))
			vs = append(vs, fmt.Sprintf("v%d", i%5))
		}
		s, err := colstore.NewSegment([]*colstore.Column{
			colstore.NewColumnFromValues("K", ks),
			colstore.NewColumnFromValues("V", vs),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	tbl, err := colstore.NewSegmented("S", []string{"K", "V"},
		[]*colstore.Segment{seg(0, 40), seg(40, 47), seg(47, 50)}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSaveLoadSegmentedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tbl := buildSegmented(t)
	if err := Save(dir, []*colstore.Table{tbl}); err != nil {
		t.Fatal(err)
	}
	// The on-disk layout must keep one directory per segment.
	for k := 0; k < 3; k++ {
		if _, err := os.Stat(filepath.Join(dir, "S", segDirName(k), "0.col")); err != nil {
			t.Fatalf("segment %d missing: %v", k, err)
		}
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d tables", len(got))
	}
	lt := got[0]
	if lt.NumSegments() != 3 {
		t.Fatalf("segments=%d after load", lt.NumSegments())
	}
	a, _ := tbl.Rows(0, 0)
	b, _ := lt.Rows(0, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rows differ across save/load")
	}
	if !reflect.DeepEqual(lt.Key(), []string{"K"}) {
		t.Fatalf("key lost: %v", lt.Key())
	}
	if err := lt.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadFlatFormatCompat writes a format-1 (pre-segmentation) layout by
// hand and checks Load still reads it as a single-segment table.
func TestLoadFlatFormatCompat(t *testing.T) {
	dir := t.TempDir()
	tdir := filepath.Join(dir, "F")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	cols := []*colstore.Column{
		colstore.NewColumnFromValues("A", []string{"x", "y", "x"}),
		colstore.NewColumnFromValues("B", []string{"1", "2", "3"}),
	}
	for i, c := range cols {
		if err := writeColumnFile(filepath.Join(tdir, fmt.Sprintf("%d.col", i)), c); err != nil {
			t.Fatal(err)
		}
	}
	cat := catalogFile{Format: formatFlat, Tables: []catalogTable{{
		Name: "F", Columns: []string{"A", "B"}, Rows: 3,
	}}}
	data, err := json.Marshal(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, catalogName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	tables, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].NumSegments() != 1 || tables[0].NumRows() != 3 {
		t.Fatalf("flat load: %v", tables)
	}
	row, err := tables[0].Row(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, []string{"x", "3"}) {
		t.Fatalf("row = %v", row)
	}
}

func TestLoadRejectsSegmentRowMismatch(t *testing.T) {
	dir := t.TempDir()
	tbl := buildSegmented(t)
	if err := Save(dir, []*colstore.Table{tbl}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest's per-segment row counts (keeping the total) —
	// Load must notice the disagreement with the segment files.
	path := filepath.Join(dir, catalogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cat catalogFile
	if err := json.Unmarshal(data, &cat); err != nil {
		t.Fatal(err)
	}
	cat.Tables[0].Segments = []uint64{39, 8, 3}
	data, err = json.Marshal(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("segment row mismatch not detected")
	}
}

func TestSnapshotSegmentedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tbl := buildSegmented(t)
	published, err := SaveSnapshot(dir, []*colstore.Table{tbl}, 4)
	if err != nil || !published {
		t.Fatalf("published=%v err=%v", published, err)
	}
	tables, epoch, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 || len(tables) != 1 || tables[0].NumSegments() != 3 {
		t.Fatalf("epoch=%d tables=%d", epoch, len(tables))
	}
	a, _ := tbl.Rows(0, 0)
	b, _ := tables[0].Rows(0, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rows differ across snapshot round trip")
	}
}

// TestCrashPointHook checks each barrier fires exactly once per
// checkpoint, in write order.
func TestCrashPointHook(t *testing.T) {
	dir := t.TempDir()
	var seen []string
	CrashPoint = func(p string) { seen = append(seen, p) }
	defer func() { CrashPoint = nil }()
	if _, err := SaveSnapshot(dir, []*colstore.Table{buildSegmented(t)}, 1); err != nil {
		t.Fatal(err)
	}
	want := []string{"segment-written", "manifest-written", "current-swapped"}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("crash points fired: %v, want %v", seen, want)
	}
}

// TestEvolutionOutputRoundTrip persists multi-segment evolution outputs
// through the existing format-2 manifest unchanged: a segment-wise UNION
// (segment adoption) and a segment-wise key–FK MERGE both save and load
// with their segment layout and exact row sequences intact.
func TestEvolutionOutputRoundTrip(t *testing.T) {
	dir := t.TempDir()

	mkSeg := func(rows [][]string) *colstore.Segment {
		var ks, vs []string
		for _, r := range rows {
			ks, vs = append(ks, r[0]), append(vs, r[1])
		}
		s, err := colstore.NewSegment([]*colstore.Column{
			colstore.NewColumnFromValues("K", ks),
			colstore.NewColumnFromValues("V", vs),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, err := colstore.NewSegmented("A", []string{"K", "V"}, []*colstore.Segment{
		mkSeg([][]string{{"k1", "v1"}, {"k2", "v2"}}),
		mkSeg([][]string{{"k3", "v1"}}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := colstore.NewSegmented("B", []string{"K", "V"}, []*colstore.Segment{
		mkSeg([][]string{{"k4", "v3"}}),
		mkSeg([][]string{{"k5", "v2"}, {"k6", "v1"}}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	union, err := evolve.Union(a, b, "U", evolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dim, err := colstore.NewSegmented("D", []string{"V", "Label"}, []*colstore.Segment{
		func() *colstore.Segment {
			s, err := colstore.NewSegment([]*colstore.Column{
				colstore.NewColumnFromValues("V", []string{"v1", "v2"}),
				colstore.NewColumnFromValues("Label", []string{"one", "two"}),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}(),
		func() *colstore.Segment {
			s, err := colstore.NewSegment([]*colstore.Column{
				colstore.NewColumnFromValues("V", []string{"v3"}),
				colstore.NewColumnFromValues("Label", []string{"three"}),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}(),
	}, []string{"V"})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := evolve.MergeKeyFK(union, dim, "M", evolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if union.NumSegments() < 2 || merged.Table.NumSegments() < 2 {
		t.Fatalf("evolution outputs not multi-segment: union=%d merged=%d",
			union.NumSegments(), merged.Table.NumSegments())
	}

	if err := Save(dir, []*colstore.Table{union, merged.Table}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d tables", len(loaded))
	}
	for i, want := range []*colstore.Table{union, merged.Table} {
		got := loaded[i]
		if got.NumSegments() != want.NumSegments() {
			t.Fatalf("%s: segments=%d after load, want %d", want.Name(), got.NumSegments(), want.NumSegments())
		}
		gr, _ := got.Rows(0, 0)
		wr, _ := want.Rows(0, 0)
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("%s: rows differ across round trip", want.Name())
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

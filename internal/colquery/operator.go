package colquery

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"

	"cods/internal/colstore"
	"cods/internal/dict"
	"cods/internal/expr"
	"cods/internal/par"
	"cods/internal/wah"
)

// Operator is a Volcano-style iterator over batches of materialized rows.
// Constructors validate their inputs and fix the output schema up front,
// so Columns is callable before Open; Open acquires resources (a hash
// join drains its build side there), Next returns the next non-empty
// batch or nil at exhaustion, and Close releases the tree. A batch
// boundary carries no meaning — leaves emit one batch per storage
// segment, everything else preserves whatever batching its input chose.
type Operator interface {
	// Columns returns the output column names, fixed at construction.
	Columns() []string
	Open() error
	// Next returns the next batch, nil once exhausted. Returned batches
	// are owned by the caller.
	Next() ([][]string, error)
	Close() error
}

// Collect drains an operator tree into a materialized result set.
func Collect(op Operator) (*ResultSet, error) {
	if err := op.Open(); err != nil {
		_ = op.Close()
		return nil, err
	}
	rs := &ResultSet{Columns: op.Columns()}
	for {
		batch, err := op.Next()
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if batch == nil {
			break
		}
		rs.Rows = append(rs.Rows, batch...)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return rs, nil
}

// TableScan is the leaf operator: a segment-aware scan of a stored table
// with an optional pre-computed predicate bitmap. Each segment yields one
// batch: the mask is sliced along segment boundaries, segments with no
// selected rows are skipped without any data operation, and only the
// projected columns are bitmap-filtered and decoded.
type TableScan struct {
	t           *colstore.Table
	cols        []string
	mask        *wah.Bitmap
	parallelism int

	segs    []*colstore.Segment
	offsets []uint64
	seg     int
}

// NewTableScan returns a scan of t projecting cols (empty = all columns)
// over the rows selected by mask (nil = all rows, otherwise mask must
// have t's row count).
func NewTableScan(t *colstore.Table, cols []string, mask *wah.Bitmap, parallelism int) (*TableScan, error) {
	if len(cols) == 0 {
		cols = t.ColumnNames()
	}
	for _, c := range cols {
		if !t.HasColumn(c) {
			return nil, fmt.Errorf("colstore: table %q has no column %q", t.Name(), c)
		}
	}
	if mask != nil && mask.Len() != t.NumRows() {
		return nil, fmt.Errorf("colquery: scan mask has %d bits, table %q has %d rows", mask.Len(), t.Name(), t.NumRows())
	}
	ts := &TableScan{t: t, cols: append([]string(nil), cols...), mask: mask, parallelism: parallelism}
	ts.segs = t.Segments()
	ts.offsets = make([]uint64, len(ts.segs))
	var off uint64
	for i, s := range ts.segs {
		ts.offsets[i] = off
		off += s.NumRows()
	}
	return ts, nil
}

// Columns implements Operator.
func (ts *TableScan) Columns() []string { return ts.cols }

// Open implements Operator.
func (ts *TableScan) Open() error { ts.seg = 0; return nil }

// Close implements Operator.
func (ts *TableScan) Close() error { return nil }

// Next implements Operator: one batch per segment with selected rows.
func (ts *TableScan) Next() ([][]string, error) {
	for ts.seg < len(ts.segs) {
		s, off := ts.segs[ts.seg], ts.offsets[ts.seg]
		ts.seg++
		// Project before filtering: bitmap filtering costs one compressed
		// Filter per distinct value per column, so unprojected columns
		// must not pay it.
		proj, err := projectSegment(s, ts.cols)
		if err != nil {
			return nil, err
		}
		if ts.mask != nil {
			sub := ts.mask.Slice(off, off+s.NumRows())
			if !sub.Any() {
				continue
			}
			if proj, err = proj.Filter(sub, ts.parallelism); err != nil {
				return nil, err
			}
		}
		if proj.NumRows() == 0 {
			continue
		}
		batch := make([][]string, proj.NumRows())
		for r := range batch {
			batch[r] = make([]string, len(ts.cols))
		}
		for j := range ts.cols {
			col := proj.ColumnAt(j)
			ids := col.RowIDRange(0, proj.NumRows())
			d := col.Dict()
			for r, id := range ids {
				batch[r][j] = d.Value(id)
			}
		}
		return batch, nil
	}
	return nil, nil
}

// projectSegment assembles a segment holding the named columns of s, in
// order, sharing column data. A repeated name shares the same column.
func projectSegment(s *colstore.Segment, cols []string) (*colstore.Segment, error) {
	picked := make([]*colstore.Column, len(cols))
	for i, name := range cols {
		c, err := s.Column(name)
		if err != nil {
			return nil, err
		}
		picked[i] = c
		for j := 0; j < i; j++ {
			if cols[j] == name {
				// NewSegment rejects duplicate names; alias the repeat so
				// SELECT a, a still projects (values are shared either way).
				picked[i] = c.Renamed(fmt.Sprintf("%s#%d", name, i))
			}
		}
	}
	return colstore.NewSegment(picked)
}

// RowFilter keeps the input rows satisfying a row-wise predicate. It is
// the residual filter of the planner: predicates that could be pushed
// into a table scan's bitmap never reach it, only cross-table conjuncts
// evaluated after a join.
type RowFilter struct {
	in   Operator
	pred expr.Node
	idx  map[string]int
}

// NewRowFilter wraps in with a predicate over its output columns.
func NewRowFilter(in Operator, pred expr.Node) (*RowFilter, error) {
	idx := columnIndex(in.Columns())
	for _, c := range pred.Columns(nil) {
		if _, ok := idx[c]; !ok {
			return nil, fmt.Errorf("colquery: filter column %q not in input %v", c, in.Columns())
		}
	}
	return &RowFilter{in: in, pred: pred, idx: idx}, nil
}

// Columns implements Operator.
func (f *RowFilter) Columns() []string { return f.in.Columns() }

// Open implements Operator.
func (f *RowFilter) Open() error { return f.in.Open() }

// Close implements Operator.
func (f *RowFilter) Close() error { return f.in.Close() }

// Next implements Operator.
func (f *RowFilter) Next() ([][]string, error) {
	for {
		batch, err := f.in.Next()
		if err != nil || batch == nil {
			return nil, err
		}
		out := batch[:0]
		for _, row := range batch {
			keep, err := f.pred.EvalRow(func(col string) (string, bool) {
				i, ok := f.idx[col]
				if !ok {
					return "", false
				}
				return row[i], true
			})
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

// HashJoin is an equi-join on identically named columns of both sides
// (USING-style, which is how DECOMPOSE outputs share their common
// attributes). Open drains the build side into a hash table keyed on the
// join values; Next streams the probe side through it, emitting probe
// columns followed by the build side's non-key columns — the key appears
// once, so joining two DECOMPOSE outputs reproduces the original schema.
type HashJoin struct {
	probe, build Operator
	on           []string
	cols         []string

	probeKey   []int
	buildKey   []int
	buildExtra []int
	ht         map[string][][]string
}

// NewHashJoin joins probe against build on the shared column names in
// on. Non-key build columns must not collide with probe columns.
func NewHashJoin(probe, build Operator, on []string) (*HashJoin, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("colquery: join needs at least one ON column")
	}
	pIdx := columnIndex(probe.Columns())
	bIdx := columnIndex(build.Columns())
	j := &HashJoin{probe: probe, build: build, on: append([]string(nil), on...)}
	onSet := make(map[string]bool, len(on))
	for _, c := range on {
		pi, pok := pIdx[c]
		bi, bok := bIdx[c]
		if !pok || !bok {
			return nil, fmt.Errorf("colquery: ON column %q must be in both join sides (%v, %v)", c, probe.Columns(), build.Columns())
		}
		j.probeKey = append(j.probeKey, pi)
		j.buildKey = append(j.buildKey, bi)
		onSet[c] = true
	}
	j.cols = append(j.cols, probe.Columns()...)
	for i, c := range build.Columns() {
		if onSet[c] {
			continue
		}
		if _, clash := pIdx[c]; clash {
			return nil, fmt.Errorf("colquery: join column %q is ambiguous (in both sides outside ON)", c)
		}
		j.buildExtra = append(j.buildExtra, i)
		j.cols = append(j.cols, c)
	}
	return j, nil
}

// Columns implements Operator.
func (j *HashJoin) Columns() []string { return j.cols }

// Open implements Operator: it drains the build side into the hash
// table. An empty build side leaves the table empty and the join emits
// nothing.
func (j *HashJoin) Open() error {
	if err := j.probe.Open(); err != nil {
		return err
	}
	if err := j.build.Open(); err != nil {
		return err
	}
	j.ht = make(map[string][][]string)
	for {
		batch, err := j.build.Next()
		if err != nil {
			return err
		}
		if batch == nil {
			return nil
		}
		for _, row := range batch {
			key := joinKey(row, j.buildKey)
			extra := make([]string, len(j.buildExtra))
			for i, bi := range j.buildExtra {
				extra[i] = row[bi]
			}
			j.ht[key] = append(j.ht[key], extra)
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	err := j.probe.Close()
	if cerr := j.build.Close(); err == nil {
		err = cerr
	}
	j.ht = nil
	return err
}

// Next implements Operator.
func (j *HashJoin) Next() ([][]string, error) {
	for {
		batch, err := j.probe.Next()
		if err != nil || batch == nil {
			return nil, err
		}
		var out [][]string
		for _, row := range batch {
			matches := j.ht[joinKey(row, j.probeKey)]
			for _, extra := range matches {
				joined := make([]string, 0, len(j.cols))
				joined = append(joined, row...)
				joined = append(joined, extra...)
				out = append(out, joined)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func joinKey(row []string, idx []int) string {
	if len(idx) == 1 {
		return row[idx[0]]
	}
	n := 0
	for _, i := range idx {
		n += len(row[i]) + 1
	}
	key := make([]byte, 0, n)
	for _, i := range idx {
		key = append(key, row[i]...)
		key = append(key, 0)
	}
	return string(key)
}

// SharedLineage reports whether two columns draw values from the same
// dictionary id space: the same *dict.Dict (DECOMPOSE's reused output
// shares column data with its input by pointer), or dictionaries with
// identical values in identical order (the deduplicated output re-interns
// in first-appearance order, which a value-wise comparison recognizes in
// O(distinct)). When it holds, a join key can be matched by dictionary id
// without decoding any row.
func SharedLineage(a, b *colstore.Column) bool {
	return sameDict(a.Dict(), b.Dict())
}

func sameDict(a, b *dict.Dict) bool {
	if a == b {
		return true
	}
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Value(uint32(i)) != b.Value(uint32(i)) {
			return false
		}
	}
	return true
}

// SemiJoinMask computes the bitmap of fact rows whose fact-column value
// occurs in the dim column among the rows selected by dimMask (nil = all
// dim rows) — the semi-join reduction a planner ANDs into the fact
// scan's mask before a hash join. Work is per distinct value on
// compressed bitmaps: one And+Any per dim value to find the occupied
// ids, one dictionary probe per occupied value (skipped entirely when
// the columns share dictionary lineage), and one compressed OR fan-in
// over the matching fact bitmaps. No row is ever decoded.
func SemiJoinMask(fact, dim *colstore.Column, dimMask *wah.Bitmap, parallelism int) *wah.Bitmap {
	fb := fact.ToBitmapEncoding()
	db := dim.ToBitmapEncoding()
	occupied := par.Map(db.DistinctCount(), parallelism, func(id int) bool {
		bm := db.BitmapForID(uint32(id))
		if dimMask != nil {
			return wah.And(bm, dimMask).Any()
		}
		return bm.Any()
	})
	shared := sameDict(fb.Dict(), db.Dict())
	var maps []*wah.Bitmap
	for id, occ := range occupied {
		if !occ {
			continue
		}
		fid := uint32(id)
		if !shared {
			fid = fb.Dict().Lookup(db.Dict().Value(uint32(id)))
			if fid == dict.NoID {
				continue
			}
		}
		maps = append(maps, fb.BitmapForID(fid))
	}
	if len(maps) == 0 {
		out := wah.New()
		out.Extend(fact.NumRows())
		return out
	}
	out := wah.OrAllP(maps, parallelism)
	out.Extend(fact.NumRows())
	return out
}

// GroupAgg aggregates an operator's output rows, optionally grouped by
// one column. It is the row-wise counterpart of the bitmap-based
// aggregation Run uses for stored tables — join output has no bitmap
// index, so groups accumulate in a hash of first-appearance order, which
// is exactly the dictionary id order the bitmap path emits (dictionaries
// intern in first-appearance order), and the numeric kernels (exact
// 128-bit SUM/AVG, the shared total order for MIN/MAX) are the same, so
// both paths produce byte-identical results.
type GroupAgg struct {
	in      Operator
	groupBy string
	aggs    []Agg
	cols    []string

	groupIdx int
	aggIdx   []int
	done     bool
}

// NewGroupAgg aggregates in's rows, grouped by groupBy when non-empty.
func NewGroupAgg(in Operator, groupBy string, aggs []Agg) (*GroupAgg, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("colquery: GROUP BY requires aggregates")
	}
	idx := columnIndex(in.Columns())
	g := &GroupAgg{in: in, groupBy: groupBy, aggs: append([]Agg(nil), aggs...), groupIdx: -1}
	if groupBy != "" {
		gi, ok := idx[groupBy]
		if !ok {
			return nil, fmt.Errorf("colquery: GROUP BY column %q not in input %v", groupBy, in.Columns())
		}
		g.groupIdx = gi
		g.cols = append(g.cols, groupBy)
	}
	for _, a := range aggs {
		ai := -1
		if a.Func != Count {
			i, ok := idx[a.Column]
			if !ok {
				return nil, fmt.Errorf("colquery: aggregate column %q not in input %v", a.Column, in.Columns())
			}
			ai = i
		}
		g.aggIdx = append(g.aggIdx, ai)
		g.cols = append(g.cols, a.name())
	}
	return g, nil
}

// Columns implements Operator.
func (g *GroupAgg) Columns() []string { return g.cols }

// Open implements Operator.
func (g *GroupAgg) Open() error { g.done = false; return g.in.Open() }

// Close implements Operator.
func (g *GroupAgg) Close() error { return g.in.Close() }

// aggState accumulates one aggregate over one group, matching the bitmap
// path's arithmetic exactly (see aggregate): SUM/AVG run in 128 bits so
// only a total exceeding int64 errors, MIN/MAX use the shared total
// order.
type aggState struct {
	rows     uint64
	distinct map[string]struct{}
	best     string
	found    bool
	sumHi    int64
	sumLo    uint64
}

func (st *aggState) add(a Agg, v string) error {
	switch a.Func {
	case Count:
		st.rows++
	case CountDistinct:
		if st.distinct == nil {
			st.distinct = make(map[string]struct{})
		}
		st.distinct[v] = struct{}{}
	case Min, Max:
		if !st.found {
			st.best, st.found = v, true
			return nil
		}
		if a.Func == Min && valueLess(v, st.best) || a.Func == Max && valueLess(st.best, v) {
			st.best = v
		}
	case Sum, Avg:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("colquery: %s over non-numeric value %q in %s", a.Func, v, a.Column)
		}
		var carry uint64
		st.sumLo, carry = bits.Add64(st.sumLo, uint64(n), 0)
		st.sumHi += (n >> 63) + int64(carry)
		st.rows++
	}
	return nil
}

func (st *aggState) result(a Agg) (string, error) {
	switch a.Func {
	case Count:
		return strconv.FormatUint(st.rows, 10), nil
	case CountDistinct:
		return strconv.Itoa(len(st.distinct)), nil
	case Min, Max:
		return st.best, nil
	case Sum, Avg:
		if st.sumHi != int64(st.sumLo)>>63 {
			return "", fmt.Errorf("colquery: %s over %s overflows int64", a.Func, a.Column)
		}
		sum := int64(st.sumLo)
		if a.Func == Sum {
			return strconv.FormatInt(sum, 10), nil
		}
		if st.rows == 0 {
			return "", nil
		}
		return strconv.FormatFloat(float64(sum)/float64(st.rows), 'g', -1, 64), nil
	}
	return "", fmt.Errorf("colquery: unknown aggregate %v", a.Func)
}

// Next implements Operator: the whole result arrives as one batch.
func (g *GroupAgg) Next() ([][]string, error) {
	if g.done {
		return nil, nil
	}
	g.done = true
	groupOf := make(map[string]int)
	var keys []string
	var states [][]aggState
	group := func(key string) []aggState {
		gi, ok := groupOf[key]
		if !ok {
			gi = len(states)
			groupOf[key] = gi
			keys = append(keys, key)
			states = append(states, make([]aggState, len(g.aggs)))
		}
		return states[gi]
	}
	if g.groupIdx < 0 {
		// A global aggregate has exactly one group, rows or not — COUNT of
		// an empty input is "0", same as the bitmap path.
		group("")
	}
	for {
		batch, err := g.in.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		for _, row := range batch {
			key := ""
			if g.groupIdx >= 0 {
				key = row[g.groupIdx]
			}
			sts := group(key)
			for i, a := range g.aggs {
				v := ""
				if g.aggIdx[i] >= 0 {
					v = row[g.aggIdx[i]]
				}
				if err := sts[i].add(a, v); err != nil {
					return nil, err
				}
			}
		}
	}
	out := make([][]string, 0, len(states))
	for gi, sts := range states {
		row := make([]string, 0, len(g.cols))
		if g.groupIdx >= 0 {
			row = append(row, keys[gi])
		}
		for i, a := range g.aggs {
			v, err := sts[i].result(a)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out = append(out, row)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// Project reorders (or narrows) the input columns — the planner's final
// step when join reordering or an explicit select list leaves the stream
// in a different column order than the query asks for.
type Project struct {
	in   Operator
	cols []string
	idx  []int
}

// NewProject projects in to cols, which must all be input columns.
func NewProject(in Operator, cols []string) (*Project, error) {
	idx := columnIndex(in.Columns())
	p := &Project{in: in, cols: append([]string(nil), cols...)}
	for _, c := range cols {
		i, ok := idx[c]
		if !ok {
			return nil, fmt.Errorf("colquery: projected column %q not in input %v", c, in.Columns())
		}
		p.idx = append(p.idx, i)
	}
	return p, nil
}

// Columns implements Operator.
func (p *Project) Columns() []string { return p.cols }

// Open implements Operator.
func (p *Project) Open() error { return p.in.Open() }

// Close implements Operator.
func (p *Project) Close() error { return p.in.Close() }

// Next implements Operator.
func (p *Project) Next() ([][]string, error) {
	batch, err := p.in.Next()
	if err != nil || batch == nil {
		return nil, err
	}
	out := make([][]string, len(batch))
	for r, row := range batch {
		nr := make([]string, len(p.idx))
		for i, ci := range p.idx {
			nr[i] = row[ci]
		}
		out[r] = nr
	}
	return out, nil
}

// OrderLimit sorts the input by one output column (the shared total
// order, stable) and/or caps the row count. With no order column it
// streams, counting rows; with one it materializes the input first.
type OrderLimit struct {
	in      Operator
	orderBy string
	desc    bool
	limit   int

	idx     int
	emitted int
	sorted  [][]string
	served  bool
}

// NewOrderLimit wraps in with ORDER BY orderBy (empty = input order)
// and LIMIT limit (0 = unlimited).
func NewOrderLimit(in Operator, orderBy string, desc bool, limit int) (*OrderLimit, error) {
	o := &OrderLimit{in: in, orderBy: orderBy, desc: desc, limit: limit, idx: -1}
	if orderBy != "" {
		for i, c := range in.Columns() {
			if c == orderBy {
				o.idx = i
				break
			}
		}
		if o.idx < 0 {
			return nil, fmt.Errorf("colquery: ORDER BY column %q not in output %v", orderBy, in.Columns())
		}
	}
	return o, nil
}

// Columns implements Operator.
func (o *OrderLimit) Columns() []string { return o.in.Columns() }

// Open implements Operator.
func (o *OrderLimit) Open() error {
	o.emitted, o.sorted, o.served = 0, nil, false
	return o.in.Open()
}

// Close implements Operator.
func (o *OrderLimit) Close() error { return o.in.Close() }

// Next implements Operator.
func (o *OrderLimit) Next() ([][]string, error) {
	if o.idx < 0 {
		// Pure LIMIT: stream until the cap.
		if o.limit > 0 && o.emitted >= o.limit {
			return nil, nil
		}
		batch, err := o.in.Next()
		if err != nil || batch == nil {
			return nil, err
		}
		if o.limit > 0 && o.emitted+len(batch) > o.limit {
			batch = batch[:o.limit-o.emitted]
		}
		o.emitted += len(batch)
		return batch, nil
	}
	if o.served {
		return nil, nil
	}
	o.served = true
	for {
		batch, err := o.in.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		o.sorted = append(o.sorted, batch...)
	}
	rows := o.sorted
	sort.SliceStable(rows, func(a, b int) bool {
		if o.desc {
			return valueLess(rows[b][o.idx], rows[a][o.idx])
		}
		return valueLess(rows[a][o.idx], rows[b][o.idx])
	})
	if o.limit > 0 && len(rows) > o.limit {
		rows = rows[:o.limit]
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows, nil
}

// tableAggregate is the leaf operator for aggregates over one stored
// table: it keeps the bitmap path — COUNT as a pure compressed popcount,
// per-distinct-value AND+popcount for everything else (see aggregate and
// runGrouped) — and emits the whole result as a single batch.
type tableAggregate struct {
	t    *colstore.Table
	q    Query
	mask *wah.Bitmap
	cols []string
	done bool
}

func newTableAggregate(t *colstore.Table, q Query, mask *wah.Bitmap) (*tableAggregate, error) {
	ta := &tableAggregate{t: t, q: q, mask: mask}
	if q.GroupBy != "" {
		ta.cols = append([]string{q.GroupBy}, aggColumns(q.Aggregates)...)
	} else {
		ta.cols = aggColumns(q.Aggregates)
	}
	return ta, nil
}

func (ta *tableAggregate) Columns() []string { return ta.cols }
func (ta *tableAggregate) Open() error       { ta.done = false; return nil }
func (ta *tableAggregate) Close() error      { return nil }

func (ta *tableAggregate) Next() ([][]string, error) {
	if ta.done {
		return nil, nil
	}
	ta.done = true
	var rs *ResultSet
	var err error
	if ta.q.GroupBy != "" {
		rs, err = runGrouped(ta.t, ta.q, ta.mask)
	} else {
		rs, err = runAggregates(ta.t, ta.q, ta.mask)
	}
	if err != nil {
		return nil, err
	}
	return rs.Rows, nil
}

func columnIndex(cols []string) map[string]int {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if _, dup := idx[c]; !dup {
			idx[c] = i
		}
	}
	return idx
}

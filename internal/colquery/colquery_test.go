package colquery

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"cods/internal/colstore"
)

func salesTable(t *testing.T) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder("Sales", []string{"Region", "Product", "Amount"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"east", "pen", "10"},
		{"east", "ink", "30"},
		{"west", "pen", "20"},
		{"west", "pen", "5"},
		{"east", "pen", "40"},
		{"north", "ink", "7"},
	}
	for _, r := range rows {
		tb.AppendRow(r)
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSelectWhereProjection(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{Select: []string{"Product", "Amount"}, Where: "Region = 'east'"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Columns, []string{"Product", "Amount"}) {
		t.Fatalf("columns=%v", rs.Columns)
	}
	want := [][]string{{"pen", "10"}, {"ink", "30"}, {"pen", "40"}}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows=%v", rs.Rows)
	}
}

func TestSelectAllColumnsNoWhere(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 6 || len(rs.Columns) != 3 {
		t.Fatalf("shape %dx%d", len(rs.Rows), len(rs.Columns))
	}
}

func TestAggregatesWithoutGroup(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		Where: "Product = 'pen'",
		Aggregates: []Agg{
			{Func: Count},
			{Func: Sum, Column: "Amount"},
			{Func: Min, Column: "Amount"},
			{Func: Max, Column: "Amount"},
			{Func: Avg, Column: "Amount", As: "avg_amount"},
			{Func: CountDistinct, Column: "Region"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows=%v", rs.Rows)
	}
	got := rs.Rows[0]
	want := []string{"4", "75", "5", "40", "18.75", "2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregates=%v want %v", got, want)
	}
	if rs.Columns[4] != "avg_amount" {
		t.Fatalf("alias lost: %v", rs.Columns)
	}
}

func TestGroupBy(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		GroupBy: "Region",
		Aggregates: []Agg{
			{Func: Count},
			{Func: Sum, Column: "Amount"},
		},
		OrderBy: "Region",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"east", "3", "80"},
		{"north", "1", "7"},
		{"west", "2", "25"},
	}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows=%v", rs.Rows)
	}
}

func TestGroupByWithWhereSkipsEmptyGroups(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		Where:      "Product = 'ink'",
		GroupBy:    "Region",
		Aggregates: []Agg{{Func: Count}},
		OrderBy:    "Region",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only east and north sell ink; west must not appear.
	if len(rs.Rows) != 2 || rs.Rows[0][0] != "east" || rs.Rows[1][0] != "north" {
		t.Fatalf("rows=%v", rs.Rows)
	}
}

func TestOrderByNumericAndLimit(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		Select:  []string{"Amount"},
		OrderBy: "Amount",
		Desc:    true,
		Limit:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Numeric ordering: 40, 30, 20 (not lexicographic "7" > "40").
	want := [][]string{{"40"}, {"30"}, {"20"}}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows=%v", rs.Rows)
	}
}

func TestErrors(t *testing.T) {
	tab := salesTable(t)
	if _, err := Run(tab, Query{Where: "bogus ~"}); err == nil {
		t.Fatal("bad predicate should fail")
	}
	if _, err := Run(tab, Query{Select: []string{"Nope"}}); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := Run(tab, Query{GroupBy: "Region"}); err == nil {
		t.Fatal("GROUP BY without aggregates should fail")
	}
	if _, err := Run(tab, Query{GroupBy: "Nope", Aggregates: []Agg{{Func: Count}}}); err == nil {
		t.Fatal("unknown group column should fail")
	}
	if _, err := Run(tab, Query{Aggregates: []Agg{{Func: Sum, Column: "Product"}}}); err == nil {
		t.Fatal("SUM over non-numeric should fail")
	}
	if _, err := Run(tab, Query{OrderBy: "Nope"}); err == nil {
		t.Fatal("unknown order column should fail")
	}
}

func TestEmptyResultAggregates(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		Where:      "Region = 'south'",
		Aggregates: []Agg{{Func: Count}, {Func: Min, Column: "Amount"}, {Func: Avg, Column: "Amount"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != "0" || rs.Rows[0][1] != "" || rs.Rows[0][2] != "" {
		t.Fatalf("empty aggregates=%v", rs.Rows[0])
	}
}

func TestAgainstNaiveReference(t *testing.T) {
	// Property: grouped COUNT/SUM match a naive row-scan computation.
	rng := rand.New(rand.NewSource(3))
	tb, _ := colstore.NewTableBuilder("T", []string{"G", "V"}, nil)
	counts := map[string]int{}
	sums := map[string]int{}
	for i := 0; i < 2000; i++ {
		g := fmt.Sprintf("g%d", rng.Intn(17))
		v := rng.Intn(100)
		tb.AppendRow([]string{g, strconv.Itoa(v)})
		counts[g]++
		sums[g] += v
	}
	tab, _ := tb.Finish()
	rs, err := Run(tab, Query{
		GroupBy:    "G",
		Aggregates: []Agg{{Func: Count}, {Func: Sum, Column: "V"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(counts) {
		t.Fatalf("groups=%d want %d", len(rs.Rows), len(counts))
	}
	for _, row := range rs.Rows {
		if row[1] != strconv.Itoa(counts[row[0]]) {
			t.Fatalf("group %s count=%s want %d", row[0], row[1], counts[row[0]])
		}
		if row[2] != strconv.Itoa(sums[row[0]]) {
			t.Fatalf("group %s sum=%s want %d", row[0], row[2], sums[row[0]])
		}
	}
}

func TestExplain(t *testing.T) {
	tab := salesTable(t)
	out := Explain(tab, Query{
		Where:      "Region = 'east'",
		GroupBy:    "Product",
		Aggregates: []Agg{{Func: Count}},
		OrderBy:    "Product",
		Limit:      5,
	})
	for _, want := range []string{"bitmap-index scan", "popcount", "group by Product", "limit 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

// Package colquery is a small query processor over the bitmap-indexed
// column store: projection, predicate filtering, grouping and aggregation,
// ordering and limits. It exists because evolved schemas need to be
// queried to be useful (the paper's demo displays and inspects tables, §3),
// and because it shows the same storage property the evolution algorithms
// exploit: most operations run once per distinct value on compressed
// bitmaps, not once per row. COUNT aggregates in particular are pure
// compressed popcounts and never touch row data.
package colquery

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"cods/internal/colstore"
	"cods/internal/expr"
	"cods/internal/par"
	"cods/internal/wah"
)

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota // COUNT(*)
	CountDistinct
	Min
	Max
	Sum
	Avg
)

var aggNames = map[AggFunc]string{
	Count: "count", CountDistinct: "count_distinct",
	Min: "min", Max: "max", Sum: "sum", Avg: "avg",
}

func (f AggFunc) String() string { return aggNames[f] }

// Agg is one aggregate in the select list. Column is ignored for Count.
type Agg struct {
	Func   AggFunc
	Column string
	// As names the output column; default "<func>(<column>)".
	As string
}

func (a Agg) name() string {
	if a.As != "" {
		return a.As
	}
	if a.Func == Count {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Column)
}

// Query describes a single-table query.
type Query struct {
	// Select lists projected columns; empty selects all columns (ignored
	// when Aggregates is non-empty).
	Select []string
	// Where is an optional predicate (package expr syntax).
	Where string
	// GroupBy optionally groups by one column; requires Aggregates.
	GroupBy string
	// Aggregates computes aggregate columns (with or without GroupBy).
	Aggregates []Agg
	// OrderBy optionally sorts by one output column (numeric when all
	// values parse as integers).
	OrderBy string
	// Desc reverses the order.
	Desc bool
	// Limit caps the number of output rows; 0 means no limit.
	Limit int
	// Parallelism bounds the worker pool for per-distinct-value work
	// (predicate evaluation, group masks, aggregate popcounts); 0 means
	// GOMAXPROCS, 1 forces serial execution. Results are deterministic at
	// any setting.
	Parallelism int
}

// ResultSet is a materialized query result.
type ResultSet struct {
	Columns []string
	Rows    [][]string
}

// Run executes a query against a table by assembling and draining the
// operator tree: a bitmap-aggregation leaf when aggregates are present
// (COUNT stays a pure popcount), otherwise a segment-aware TableScan of
// the WHERE mask, topped by OrderLimit when the query sorts or caps.
func Run(t *colstore.Table, q Query) (*ResultSet, error) {
	mask, err := whereMask(t, q.Where, q.Parallelism)
	if err != nil {
		return nil, err
	}
	var root Operator
	switch {
	case len(q.Aggregates) > 0:
		root, err = newTableAggregate(t, q, mask)
	case q.GroupBy != "":
		return nil, fmt.Errorf("colquery: GROUP BY requires aggregates")
	default:
		root, err = NewTableScan(t, q.Select, mask, q.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	if q.OrderBy != "" || q.Limit > 0 {
		if root, err = NewOrderLimit(root, q.OrderBy, q.Desc, q.Limit); err != nil {
			return nil, err
		}
	}
	rs, err := Collect(root)
	if err != nil {
		return nil, err
	}
	if len(q.Aggregates) == 0 && rs.Rows == nil {
		rs.Rows = [][]string{}
	}
	return rs, nil
}

func whereMask(t *colstore.Table, where string, parallelism int) (*wah.Bitmap, error) {
	if where == "" {
		all := wah.New()
		all.AppendRun(1, t.NumRows())
		return all, nil
	}
	pred, err := expr.Parse(where)
	if err != nil {
		return nil, err
	}
	return pred.EvalP(t, parallelism)
}

// resolveAggColumns bitmap-encodes each aggregated column once up front, so
// per-group aggregation never repeats the (potentially O(rows), for RLE
// columns) conversion inside a fan-out.
func resolveAggColumns(t *colstore.Table, aggs []Agg) (map[string]*colstore.Column, error) {
	cols := make(map[string]*colstore.Column)
	for _, a := range aggs {
		if a.Func == Count || cols[a.Column] != nil {
			continue
		}
		col, err := t.Column(a.Column)
		if err != nil {
			return nil, err
		}
		cols[a.Column] = col.ToBitmapEncoding()
	}
	return cols, nil
}

// runAggregates computes aggregates over the single group selected by the
// mask.
func runAggregates(t *colstore.Table, q Query, mask *wah.Bitmap) (*ResultSet, error) {
	cols, err := resolveAggColumns(t, q.Aggregates)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{}
	var row []string
	for _, a := range q.Aggregates {
		rs.Columns = append(rs.Columns, a.name())
		v, err := aggregate(cols[a.Column], a, mask, q.Parallelism)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	rs.Rows = [][]string{row}
	return rs, nil
}

// runGrouped computes one output row per distinct group-column value with
// at least one selected row. The group mask is And(value bitmap, where
// mask) — one compressed AND per distinct value, each an independent task.
// Groups compute in parallel and assemble in dictionary id order, so output
// order does not depend on scheduling.
func runGrouped(t *colstore.Table, q Query, mask *wah.Bitmap) (*ResultSet, error) {
	gcol, err := t.Column(q.GroupBy)
	if err != nil {
		return nil, err
	}
	gb := gcol.ToBitmapEncoding()
	cols, err := resolveAggColumns(t, q.Aggregates)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: append([]string{q.GroupBy}, aggColumns(q.Aggregates)...)}
	rows := make([][]string, gb.DistinctCount())
	if err := par.ForEachErr(gb.DistinctCount(), q.Parallelism, func(id int) error {
		gm := wah.And(gb.BitmapForID(uint32(id)), mask)
		if !gm.Any() {
			return nil
		}
		row := []string{gb.Dict().Value(uint32(id))}
		for _, a := range q.Aggregates {
			// Serial per-value aggregation: the group fan-out above already
			// occupies the worker budget.
			v, err := aggregate(cols[a.Column], a, gm, 1)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		rows[id] = row
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows {
		if row != nil {
			rs.Rows = append(rs.Rows, row)
		}
	}
	return rs, nil
}

func aggColumns(aggs []Agg) []string {
	out := make([]string, len(aggs))
	for i, a := range aggs {
		out[i] = a.name()
	}
	return out
}

// aggregate evaluates one aggregate over the rows selected by mask. bc is
// the aggregated column, already bitmap-encoded by resolveAggColumns (nil
// for Count). Count is a popcount; the others visit each distinct value of
// the column once, intersecting its bitmap with the mask. The per-value
// compressed ANDs — the dominant cost — fan out over a worker pool; the
// cheap fold over per-value results stays serial in id order, so results
// are deterministic at any parallelism.
func aggregate(bc *colstore.Column, a Agg, mask *wah.Bitmap, parallelism int) (string, error) {
	if a.Func == Count {
		return strconv.FormatUint(mask.Count(), 10), nil
	}
	switch a.Func {
	case CountDistinct:
		n := par.MapReduce(bc.DistinctCount(), parallelism, func(id int) uint64 {
			if wah.And(bc.BitmapForID(uint32(id)), mask).Any() {
				return 1
			}
			return 0
		}, func(a, b uint64) uint64 { return a + b })
		return strconv.FormatUint(n, 10), nil
	case Min, Max:
		hit := par.Map(bc.DistinctCount(), parallelism, func(id int) bool {
			return wah.And(bc.BitmapForID(uint32(id)), mask).Any()
		})
		best := ""
		found := false
		for id, h := range hit {
			if !h {
				continue
			}
			v := bc.Dict().Value(uint32(id))
			if !found {
				best, found = v, true
				continue
			}
			if a.Func == Min && valueLess(v, best) || a.Func == Max && valueLess(best, v) {
				best = v
			}
		}
		if !found {
			return "", nil
		}
		return best, nil
	case Sum, Avg:
		counts := par.Map(bc.DistinctCount(), parallelism, func(id int) uint64 {
			return wah.And(bc.BitmapForID(uint32(id)), mask).Count()
		})
		// Products and the running sum are computed exactly in 128 bits
		// (two's complement hi:lo), so neither a transient mid-fold
		// overflow nor one huge value×count product can reject a total
		// that is representable: the result depends only on the multiset
		// of values, never on dictionary-id order, and the one error is
		// the final total exceeding int64. The accumulator itself cannot
		// overflow: Σ|value|·count ≤ MaxInt64+1 times the table's row
		// count, which is below 2^127.
		var sumHi int64
		var sumLo uint64
		var rows uint64
		for id, n := range counts {
			if n == 0 {
				continue
			}
			v, err := strconv.ParseInt(bc.Dict().Value(uint32(id)), 10, 64)
			if err != nil {
				return "", fmt.Errorf("colquery: %s over non-numeric value %q in %s", a.Func, bc.Dict().Value(uint32(id)), a.Column)
			}
			mag := uint64(v)
			if v < 0 {
				mag = -mag // two's complement magnitude, MinInt64-safe
			}
			hi, lo := bits.Mul64(mag, n)
			if v < 0 {
				lo = ^lo + 1
				hi = ^hi
				if lo == 0 {
					hi++
				}
			}
			var carry uint64
			sumLo, carry = bits.Add64(sumLo, lo, 0)
			sumHi += int64(hi) + int64(carry)
			rows += n
		}
		if sumHi != int64(sumLo)>>63 {
			return "", fmt.Errorf("colquery: %s over %s overflows int64", a.Func, a.Column)
		}
		sum := int64(sumLo)
		if a.Func == Sum {
			return strconv.FormatInt(sum, 10), nil
		}
		if rows == 0 {
			return "", nil
		}
		return strconv.FormatFloat(float64(sum)/float64(rows), 'g', -1, 64), nil
	}
	return "", fmt.Errorf("colquery: unknown aggregate %v", a.Func)
}

// valueLess orders values by the predicate language's total order
// (expr.Compare): integers numerically and before all non-integers,
// non-integers lexicographically. Sharing the comparator keeps ORDER BY,
// MIN/MAX and WHERE mutually consistent; a previous local rule ("numeric
// only when both sides parse") was not transitive on mixed values
// ("9" < "10" < "10x" < "9"), leaving sort results undefined.
func valueLess(a, b string) bool {
	return expr.Compare(a, b) < 0
}

// Explain renders a human-readable description of how a query will
// execute — which parts run per distinct value on compressed bitmaps.
func Explain(t *colstore.Table, q Query) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scan %s (%d rows)\n", t.Name(), t.NumRows())
	if q.Where != "" {
		fmt.Fprintf(&sb, "  where %s  -- bitmap-index scan, once per distinct value\n", q.Where)
	}
	if q.GroupBy != "" {
		gcol, err := t.Column(q.GroupBy)
		if err == nil {
			fmt.Fprintf(&sb, "  group by %s  -- %d compressed AND+popcount groups\n", q.GroupBy, gcol.DistinctCount())
		}
	}
	for _, a := range q.Aggregates {
		if a.Func == Count {
			fmt.Fprintf(&sb, "  %s  -- popcount only, no row access\n", a.name())
		} else {
			fmt.Fprintf(&sb, "  %s  -- per distinct value of %s\n", a.name(), a.Column)
		}
	}
	if len(q.Aggregates) == 0 {
		fmt.Fprintf(&sb, "  project %v  -- bitmap filtering\n", q.Select)
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&sb, "  order by %s desc=%v\n", q.OrderBy, q.Desc)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "  limit %d\n", q.Limit)
	}
	return sb.String()
}

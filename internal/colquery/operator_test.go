package colquery

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"cods/internal/colstore"
	"cods/internal/expr"
	"cods/internal/wah"
)

// segTable builds a table with one storage segment per rows slice, so
// operator tests can pin segment-boundary behavior.
func segTable(t *testing.T, name string, cols []string, segs ...[][]string) *colstore.Table {
	t.Helper()
	build := func(rows [][]string) []*colstore.Column {
		out := make([]*colstore.Column, len(cols))
		for i, c := range cols {
			vals := make([]string, len(rows))
			for r, row := range rows {
				vals[r] = row[i]
			}
			out[i] = colstore.NewColumnFromValues(c, vals)
		}
		return out
	}
	tab, err := colstore.NewTable(name, build(segs[0]), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range segs[1:] {
		seg, err := colstore.NewSegment(build(rows))
		if err != nil {
			t.Fatal(err)
		}
		if tab, err = tab.WithTailSegment(seg); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func mask(t *testing.T, n uint64, positions ...uint64) *wah.Bitmap {
	t.Helper()
	m, err := wah.FromPositions(positions, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// rowsOp serves fixed batches — a stand-in for any operator input.
type rowsOp struct {
	cols    []string
	batches [][][]string
	next    int
}

func (r *rowsOp) Columns() []string { return r.cols }
func (r *rowsOp) Open() error       { r.next = 0; return nil }
func (r *rowsOp) Close() error      { return nil }
func (r *rowsOp) Next() ([][]string, error) {
	if r.next >= len(r.batches) {
		return nil, nil
	}
	b := r.batches[r.next]
	r.next++
	return b, nil
}

func collectRows(t *testing.T, op Operator) [][]string {
	t.Helper()
	rs, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return rs.Rows
}

func TestTableScanMultiSegment(t *testing.T) {
	tab := segTable(t, "T", []string{"K", "V"},
		[][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}},
		[][]string{{"d", "4"}, {"e", "5"}},
		[][]string{{"f", "6"}},
	)
	scan, err := NewTableScan(tab, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	// One batch per segment, in storage order.
	var sizes []int
	var all [][]string
	for {
		b, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, len(b))
		all = append(all, b...)
	}
	if !reflect.DeepEqual(sizes, []int{3, 2, 1}) {
		t.Fatalf("batch sizes = %v, want one batch per segment", sizes)
	}
	want := [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}, {"e", "5"}, {"f", "6"}}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("rows = %v", all)
	}
}

func TestTableScanMaskAcrossSegments(t *testing.T) {
	tab := segTable(t, "T", []string{"K", "V"},
		[][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}},
		[][]string{{"d", "4"}, {"e", "5"}},
		[][]string{{"f", "6"}},
	)
	// Rows 1 and 4 straddle a segment boundary; the middle of segment 2
	// and all of segment 3 are masked out.
	scan, err := NewTableScan(tab, []string{"V"}, mask(t, 6, 1, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, scan)
	if want := [][]string{{"2"}, {"5"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	// A fully masked-out segment is skipped, not decoded into an empty batch.
	scan, err = NewTableScan(tab, nil, mask(t, 6, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	b, err := scan.Next()
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"f", "6"}}; !reflect.DeepEqual(b, want) {
		t.Fatalf("first batch = %v, want %v", b, want)
	}
}

func TestTableScanDuplicateColumn(t *testing.T) {
	tab := segTable(t, "T", []string{"K", "V"}, [][]string{{"a", "1"}, {"b", "2"}})
	scan, err := NewTableScan(tab, []string{"V", "V", "K"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, scan)
	if want := [][]string{{"1", "1", "a"}, {"2", "2", "b"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestTableScanErrors(t *testing.T) {
	tab := segTable(t, "T", []string{"K"}, [][]string{{"a"}})
	if _, err := NewTableScan(tab, []string{"Nope"}, nil, 0); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := NewTableScan(tab, nil, mask(t, 2), 0); err == nil {
		t.Fatal("wrong-length mask accepted")
	}
}

func TestRowFilter(t *testing.T) {
	in := &rowsOp{cols: []string{"A", "B"}, batches: [][][]string{
		{{"x", "1"}, {"y", "2"}},
		{{"x", "3"}},
	}}
	pred, err := expr.Parse("A = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewRowFilter(in, pred)
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, f)
	if want := [][]string{{"x", "1"}, {"x", "3"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	bad, err := expr.Parse("C = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRowFilter(in, bad); err == nil || !strings.Contains(err.Error(), `"C"`) {
		t.Fatalf("filter on missing column: err = %v", err)
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	probe := &rowsOp{cols: []string{"K", "F"}, batches: [][][]string{
		{{"a", "f1"}, {"b", "f2"}, {"a", "f3"}, {"z", "f4"}},
	}}
	build := &rowsOp{cols: []string{"K", "D"}, batches: [][][]string{
		{{"a", "d1"}, {"a", "d2"}, {"b", "d3"}},
	}}
	j, err := NewHashJoin(probe, build, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j.Columns(), []string{"K", "F", "D"}) {
		t.Fatalf("columns = %v", j.Columns())
	}
	got := collectRows(t, j)
	// Probe order outer, build insertion order inner; 'z' has no match.
	want := [][]string{
		{"a", "f1", "d1"}, {"a", "f1", "d2"},
		{"b", "f2", "d3"},
		{"a", "f3", "d1"}, {"a", "f3", "d2"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestHashJoinEmptyStringKey(t *testing.T) {
	// Empty strings are ordinary values, and a multi-column key must not
	// confuse ("ab","") with ("a","b") or ("","ab").
	probe := &rowsOp{cols: []string{"K1", "K2"}, batches: [][][]string{
		{{"ab", ""}, {"a", "b"}, {"", "ab"}, {"", ""}},
	}}
	build := &rowsOp{cols: []string{"K1", "K2", "D"}, batches: [][][]string{
		{{"a", "b", "split"}, {"", "", "empty"}},
	}}
	j, err := NewHashJoin(probe, build, []string{"K1", "K2"})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, j)
	want := [][]string{{"a", "b", "split"}, {"", "", "empty"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestHashJoinEmptyBuildSide(t *testing.T) {
	probe := &rowsOp{cols: []string{"K"}, batches: [][][]string{{{"a"}, {"b"}}}}
	build := &rowsOp{cols: []string{"K", "D"}}
	j, err := NewHashJoin(probe, build, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, j)
	if len(got) != 0 {
		t.Fatalf("rows = %v, want none", got)
	}
}

func TestHashJoinErrors(t *testing.T) {
	probe := &rowsOp{cols: []string{"K", "X"}}
	build := &rowsOp{cols: []string{"K", "X"}}
	if _, err := NewHashJoin(probe, build, nil); err == nil {
		t.Fatal("empty ON accepted")
	}
	if _, err := NewHashJoin(probe, build, []string{"Missing"}); err == nil {
		t.Fatal("ON column absent from both sides accepted")
	}
	// X is in both sides but not in ON: ambiguous output column.
	if _, err := NewHashJoin(probe, build, []string{"K"}); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column: err = %v", err)
	}
}

func TestGroupAggParityWithBitmapPath(t *testing.T) {
	rows := [][]string{
		{"east", "10"}, {"west", "-3"}, {"east", "7"},
		{"north", "0"}, {"west", "-3"}, {"east", "10"},
	}
	tab := segTable(t, "T", []string{"G", "V"}, rows[:3], rows[3:])
	aggs := []Agg{
		{Func: Count},
		{Func: Sum, Column: "V"},
		{Func: Avg, Column: "V"},
		{Func: Min, Column: "V"},
		{Func: Max, Column: "V"},
		{Func: CountDistinct, Column: "V"},
	}
	for _, groupBy := range []string{"", "G"} {
		want, err := Run(tab, Query{GroupBy: groupBy, Aggregates: aggs})
		if err != nil {
			t.Fatal(err)
		}
		scan, err := NewTableScan(tab, nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGroupAgg(scan, groupBy, aggs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("groupBy=%q: row-wise %v %v, bitmap path %v %v",
				groupBy, got.Columns, got.Rows, want.Columns, want.Rows)
		}
	}
}

func TestGroupAggGlobalOnEmptyInput(t *testing.T) {
	in := &rowsOp{cols: []string{"V"}}
	g, err := NewGroupAgg(in, "", []Agg{{Func: Count}, {Func: Sum, Column: "V"}})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, g)
	if want := [][]string{{"0", "0"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestGroupAggSumOverflow(t *testing.T) {
	big := strconv.FormatInt(1<<62, 10)
	in := &rowsOp{cols: []string{"V"}, batches: [][][]string{
		{{big}, {big}, {big}},
	}}
	g, err := NewGroupAgg(in, "", []Agg{{Func: Sum, Column: "V"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(g); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("err = %v, want overflow", err)
	}

	// Mixed signs cancel back into range: 2^62 + 2^62 - 2^62 fits.
	in = &rowsOp{cols: []string{"V"}, batches: [][][]string{
		{{big}, {big}, {"-" + big}},
	}}
	g, err = NewGroupAgg(in, "", []Agg{{Func: Sum, Column: "V"}})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, g)
	if want := [][]string{{big}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestGroupAggErrors(t *testing.T) {
	in := &rowsOp{cols: []string{"G", "V"}}
	if _, err := NewGroupAgg(in, "G", nil); err == nil {
		t.Fatal("GROUP BY without aggregates accepted")
	}
	if _, err := NewGroupAgg(in, "Nope", []Agg{{Func: Count}}); err == nil {
		t.Fatal("unknown group column accepted")
	}
	if _, err := NewGroupAgg(in, "G", []Agg{{Func: Sum, Column: "Nope"}}); err == nil {
		t.Fatal("unknown aggregate column accepted")
	}
	bad := &rowsOp{cols: []string{"V"}, batches: [][][]string{{{"ten"}}}}
	g, err := NewGroupAgg(bad, "", []Agg{{Func: Sum, Column: "V"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(g); err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Fatalf("err = %v, want non-numeric", err)
	}
}

func TestProject(t *testing.T) {
	in := &rowsOp{cols: []string{"A", "B", "C"}, batches: [][][]string{
		{{"1", "2", "3"}, {"4", "5", "6"}},
	}}
	p, err := NewProject(in, []string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, p)
	if want := [][]string{{"3", "1"}, {"6", "4"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	if _, err := NewProject(in, []string{"D"}); err == nil {
		t.Fatal("unknown projected column accepted")
	}
}

func TestOrderLimit(t *testing.T) {
	in := func() *rowsOp {
		return &rowsOp{cols: []string{"V"}, batches: [][][]string{
			{{"10"}, {"2"}},
			{{"apple"}, {"10"}},
		}}
	}
	o, err := NewOrderLimit(in(), "V", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := collectRows(t, o)
	// The shared total order sorts numerics numerically before strings.
	if want := [][]string{{"2"}, {"10"}, {"10"}, {"apple"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	o, err = NewOrderLimit(in(), "V", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	got = collectRows(t, o)
	if want := [][]string{{"apple"}, {"10"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}

	// Pure LIMIT streams: the cap lands inside the first batch and the
	// second batch is never requested.
	src := in()
	o, err = NewOrderLimit(src, "", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	got = collectRows(t, o)
	if want := [][]string{{"10"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	if src.next != 1 {
		t.Fatalf("limit drained %d batches, want 1", src.next)
	}

	if _, err := NewOrderLimit(in(), "Nope", false, 0); err == nil {
		t.Fatal("unknown order column accepted")
	}
}

func TestSharedLineage(t *testing.T) {
	fact := colstore.NewColumnFromValues("K", []string{"a", "b", "a", "c"})
	if !SharedLineage(fact, fact) {
		t.Fatal("column does not share lineage with itself")
	}
	// Same values interned in the same first-appearance order: shared.
	same := colstore.NewColumnFromValues("K2", []string{"a", "b", "b", "c"})
	if !SharedLineage(fact, same) {
		t.Fatal("value-identical dictionaries not recognized")
	}
	// Different intern order: ids diverge, lineage does not hold.
	other := colstore.NewColumnFromValues("K3", []string{"b", "a", "c"})
	if SharedLineage(fact, other) {
		t.Fatal("reordered dictionary reported as shared")
	}
}

func TestSemiJoinMask(t *testing.T) {
	fact := colstore.NewColumnFromValues("K", []string{"a", "b", "c", "a", "d", "b"})
	positions := func(m *wah.Bitmap) []uint64 {
		var out []uint64
		m.Ones(func(p uint64) bool { out = append(out, p); return true })
		return out
	}

	t.Run("shared lineage", func(t *testing.T) {
		dim := colstore.NewColumnFromValues("K", []string{"a", "b"})
		m := SemiJoinMask(fact, dim, nil, 0)
		if got, want := positions(m), []uint64{0, 1, 3, 5}; !reflect.DeepEqual(got, want) {
			t.Fatalf("positions = %v, want %v", got, want)
		}
		if m.Len() != fact.NumRows() {
			t.Fatalf("mask length %d, want %d", m.Len(), fact.NumRows())
		}
	})

	t.Run("generic lookup", func(t *testing.T) {
		// Dim dict has its own order and values missing from fact ("x"),
		// forcing the per-value Lookup path.
		dim := colstore.NewColumnFromValues("K", []string{"x", "d", "a"})
		m := SemiJoinMask(fact, dim, nil, 0)
		if got, want := positions(m), []uint64{0, 3, 4}; !reflect.DeepEqual(got, want) {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	})

	t.Run("dim mask", func(t *testing.T) {
		dim := colstore.NewColumnFromValues("K", []string{"a", "b", "c"})
		m := SemiJoinMask(fact, dim, mask(t, 3, 1), 0) // only "b" survives
		if got, want := positions(m), []uint64{1, 5}; !reflect.DeepEqual(got, want) {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	})

	t.Run("no overlap", func(t *testing.T) {
		dim := colstore.NewColumnFromValues("K", []string{"x", "y"})
		m := SemiJoinMask(fact, dim, nil, 0)
		if m.Any() {
			t.Fatalf("positions = %v, want none", positions(m))
		}
		if m.Len() != fact.NumRows() {
			t.Fatalf("mask length %d, want %d", m.Len(), fact.NumRows())
		}
	})
}

package colquery

import (
	"reflect"
	"testing"
)

func TestOrderByOnAggregateColumn(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		GroupBy:    "Region",
		Aggregates: []Agg{{Func: Sum, Column: "Amount", As: "total"}},
		OrderBy:    "total",
		Desc:       true,
		Limit:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"east", "80"},
		{"west", "25"},
	}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows=%v", rs.Rows)
	}
}

func TestMinMaxNumericVsLexicographic(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		Aggregates: []Agg{
			{Func: Min, Column: "Amount"},
			{Func: Max, Column: "Amount"},
			{Func: Min, Column: "Region"},
			{Func: Max, Column: "Region"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Rows[0]
	// Numeric: min 5, max 40 (not lexicographic "10"/"7").
	// Lexicographic for strings: east..west.
	want := []string{"5", "40", "east", "west"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got=%v want %v", got, want)
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows=%d", len(rs.Rows))
	}
}

func TestGroupByRespectsRowlessTable(t *testing.T) {
	tab := salesTable(t)
	rs, err := Run(tab, Query{
		Where:      "Region = 'nowhere'",
		GroupBy:    "Region",
		Aggregates: []Agg{{Func: Count}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("rows=%v", rs.Rows)
	}
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{
		Count: "count", CountDistinct: "count_distinct",
		Min: "min", Max: "max", Sum: "sum", Avg: "avg",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%v.String()=%q want %q", int(f), f.String(), want)
		}
	}
}

package colquery

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"cods/internal/colstore"
)

func oneColumnTable(t *testing.T, name string, values []string) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder("T", []string{name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		tb.AppendRow([]string{v})
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// Mixed numeric and non-numeric values used to break strict weak
// ordering ("9" < "10" numeric, "10" < "10x" lex, "10x" < "9" lex), so
// ORDER BY results were whatever the sort happened to do and MIN/MAX
// depended on dictionary id order. The total order sorts integers
// numerically before all non-integers.
func TestOrderByMixedNumericAndStrings(t *testing.T) {
	tab := oneColumnTable(t, "V", []string{"10x", "9", "abc", "10", "2", "9z"})
	rs, err := Run(tab, Query{OrderBy: "V"})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rs.Rows {
		got = append(got, r[0])
	}
	want := []string{"2", "9", "10", "10x", "9z", "abc"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ORDER BY mixed = %v, want %v", got, want)
	}

	rs, err = Run(tab, Query{Aggregates: []Agg{
		{Func: Min, Column: "V"},
		{Func: Max, Column: "V"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Rows[0], []string{"2", "abc"}) {
		t.Fatalf("MIN/MAX mixed = %v, want [2 abc]", rs.Rows[0])
	}
}

// valueLess must be a strict weak ordering on any value mix: irreflexive,
// asymmetric, and transitive — exhaustively checked over a hostile pool.
func TestValueLessStrictWeakOrdering(t *testing.T) {
	pool := []string{"", "0", "-1", "9", "10", "10x", "9z", "abc", "-2x", "00", " 7"}
	for _, a := range pool {
		if valueLess(a, a) {
			t.Errorf("valueLess(%q, %q) must be false", a, a)
		}
		for _, b := range pool {
			if valueLess(a, b) && valueLess(b, a) {
				t.Errorf("valueLess asymmetry violated on %q, %q", a, b)
			}
			for _, c := range pool {
				if valueLess(a, b) && valueLess(b, c) && !valueLess(a, c) && a != c {
					t.Errorf("transitivity violated: %q < %q < %q but not %q < %q", a, b, c, a, c)
				}
			}
		}
	}
}

func TestSumAvgOverflow(t *testing.T) {
	big := fmt.Sprint(int64(math.MaxInt64))
	cases := []struct {
		name   string
		values []string
	}{
		{"two-max", []string{big, big}},           // total 2·MaxInt64
		{"max-plus-one", []string{big, "1"}},      // total MaxInt64+1
		{"repeated-max", []string{big, big, big}}, // product path (count 3)
		{"negative", []string{fmt.Sprint(int64(math.MinInt64)), "-1"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tab := oneColumnTable(t, "V", c.values)
			for _, f := range []AggFunc{Sum, Avg} {
				_, err := Run(tab, Query{Aggregates: []Agg{{Func: f, Column: "V"}}})
				if err == nil {
					t.Fatalf("%s over %v returned no error, want overflow", f, c.values)
				}
				if !strings.Contains(err.Error(), "overflow") {
					t.Fatalf("%s error = %v, want overflow", f, err)
				}
			}
		})
	}

	// The boundary itself is representable and must still work.
	tab := oneColumnTable(t, "V", []string{fmt.Sprint(int64(math.MaxInt64) - 1), "1"})
	rs, err := Run(tab, Query{Aggregates: []Agg{{Func: Sum, Column: "V"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rs.Rows[0][0], fmt.Sprint(int64(math.MaxInt64)); got != want {
		t.Fatalf("sum at boundary = %s, want %s", got, want)
	}

	// A transiently overflowing fold whose true total is representable
	// must succeed regardless of value order: the 128-bit accumulator
	// makes the result a function of the multiset, not of dictionary-id
	// assignment.
	for _, values := range [][]string{
		{big, "5", "-10"},
		{"-10", big, "5"},
		{fmt.Sprint(int64(math.MinInt64)), "-5", "10"},
		// Individual value×count products overflow int64 (MaxInt64 twice,
		// MinInt64 twice) but the 128-bit products cancel to -2.
		{big, big, fmt.Sprint(int64(math.MinInt64)), fmt.Sprint(int64(math.MinInt64))},
	} {
		tab := oneColumnTable(t, "V", values)
		rs, err := Run(tab, Query{Aggregates: []Agg{{Func: Sum, Column: "V"}}})
		if err != nil {
			t.Fatalf("sum over %v: %v (transient overflow must not error)", values, err)
		}
		var want int64
		for _, v := range values {
			n, _ := strconv.ParseInt(v, 10, 64)
			want += n
		}
		if got := rs.Rows[0][0]; got != fmt.Sprint(want) {
			t.Fatalf("sum over %v = %s, want %d", values, got, want)
		}
	}
}

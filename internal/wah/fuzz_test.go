package wah

import (
	"testing"
)

// The fuzz targets decode each input into bitmaps via a run-length
// interpretation of the bytes, so even random inputs produce the mix of
// fill words, literal words and partial active words that the WAH kernels
// branch on. Each target checks the kernel against a plain []bool
// reference model.

// bitmapFromBytes decodes data into a bitmap plus its []bool reference:
// each byte contributes a run of (b&0x3f)+1 bits of value b>>7; bit 6
// selects bit-at-a-time appends vs one AppendRun call, covering both
// construction paths.
func bitmapFromBytes(data []byte) (*Bitmap, []bool) {
	bm := New()
	var ref []bool
	for _, by := range data {
		bit := uint32(by >> 7)
		n := uint64(by&0x3f) + 1
		if by&0x40 != 0 {
			bm.AppendRun(bit, n)
		} else {
			for range n {
				bm.AppendBit(bit)
			}
		}
		for range n {
			ref = append(ref, bit == 1)
		}
	}
	return bm, ref
}

// splitInput cuts the fuzz payload into two bitmap encodings.
func splitInput(data []byte) (a, b []byte) {
	if len(data) == 0 {
		return nil, nil
	}
	cut := int(data[0]) % len(data)
	return data[1 : 1+cut], data[1+cut:]
}

func boolBinop(x, y []bool, f func(a, b bool) bool) []bool {
	n := max(len(x), len(y))
	out := make([]bool, n)
	for i := range out {
		var a, b bool
		if i < len(x) {
			a = x[i]
		}
		if i < len(y) {
			b = y[i]
		}
		out[i] = f(a, b)
	}
	return out
}

func checkAgainstRef(t *testing.T, name string, got *Bitmap, want []bool) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: invalid result: %v", name, err)
	}
	if got.Len() != uint64(len(want)) {
		t.Fatalf("%s: len=%d want %d", name, got.Len(), len(want))
	}
	count := uint64(0)
	for i, w := range want {
		if got.Get(uint64(i)) != w {
			t.Fatalf("%s: bit %d = %v want %v", name, i, got.Get(uint64(i)), w)
		}
		if w {
			count++
		}
	}
	if got.Count() != count {
		t.Fatalf("%s: Count=%d want %d", name, got.Count(), count)
	}
}

// FuzzBinop exercises the shared fill/literal-merging binop kernel behind
// And/Or/Xor/AndNot against the bool-slice model.
func FuzzBinop(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0xff, 0x01, 0x80, 0x3f})
	f.Add([]byte{5, 0xc0, 0xc0, 0x40, 0x40, 0x9f, 0x1f, 0xff, 0x00})
	f.Add([]byte{1, 0xfe, 0xfe, 0xfe, 0x7e, 0x7e})
	f.Fuzz(func(t *testing.T, data []byte) {
		da, db := splitInput(data)
		x, rx := bitmapFromBytes(da)
		y, ry := bitmapFromBytes(db)
		checkAgainstRef(t, "and", And(x, y), boolBinop(rx, ry, func(a, b bool) bool { return a && b }))
		checkAgainstRef(t, "or", Or(x, y), boolBinop(rx, ry, func(a, b bool) bool { return a || b }))
		checkAgainstRef(t, "xor", Xor(x, y), boolBinop(rx, ry, func(a, b bool) bool { return a != b }))
		checkAgainstRef(t, "andnot", AndNot(x, y), boolBinop(rx, ry, func(a, b bool) bool { return a && !b }))
	})
}

// FuzzOrAllP checks the parallel multi-way OR against both the sequential
// OrAll and the reference model, across worker counts.
func FuzzOrAllP(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 2, 0x80, 0x40, 1, 0xc5})
	f.Add([]byte{7, 7, 7, 7, 0x87, 0x87, 0x47, 0x47})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Chop the payload into up to 8 operand encodings.
		var ms []*Bitmap
		var want []bool
		for len(data) > 0 && len(ms) < 8 {
			n := int(data[0])%16 + 1
			data = data[1:]
			if n > len(data) {
				n = len(data)
			}
			bm, ref := bitmapFromBytes(data[:n])
			data = data[n:]
			ms = append(ms, bm)
			want = boolBinop(want, ref, func(a, b bool) bool { return a || b })
		}
		seq := OrAll(ms)
		checkAgainstRef(t, "orall", seq, want)
		for _, workers := range []int{1, 2, 3, 8} {
			par := OrAllP(ms, workers)
			if !Equal(seq, par) {
				t.Fatalf("OrAllP(%d workers) != OrAll", workers)
			}
		}
	})
}

// FuzzRunsDecode drives the run-skipping decoder paths: Runs must tile
// [0, Len) with alternating runs matching the reference, and the derived
// accessors (Ones, Count, Slice, Concat round trip) must agree.
func FuzzRunsDecode(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xff, 0x40, 0x80, 0x00}, uint16(3))
	f.Add([]byte{0x7f, 0x7f, 0xc3, 0x03, 0x83}, uint16(40))
	f.Fuzz(func(t *testing.T, data []byte, cut16 uint16) {
		bm, ref := bitmapFromBytes(data)
		if err := bm.Validate(); err != nil {
			t.Fatalf("construction: %v", err)
		}
		// Runs yields exactly the maximal 1-runs, in ascending order.
		var pos, covered uint64
		bm.Runs(func(start, length uint64) bool {
			if start < pos || length == 0 {
				t.Fatalf("run (%d,%d) out of order at %d", start, length, pos)
			}
			if start > 0 && ref[start-1] {
				t.Fatalf("run (%d,%d) is not left-maximal", start, length)
			}
			end := start + length
			if end > uint64(len(ref)) {
				t.Fatalf("run (%d,%d) exceeds length %d", start, length, len(ref))
			}
			for i := start; i < end; i++ {
				if !ref[i] {
					t.Fatalf("run covers zero bit %d", i)
				}
			}
			if end < uint64(len(ref)) && ref[end] {
				t.Fatalf("run (%d,%d) is not right-maximal", start, length)
			}
			pos = end
			covered += length
			return true
		})
		if covered != bm.Count() {
			t.Fatalf("runs cover %d bits, Count=%d", covered, bm.Count())
		}
		// Ones agrees with the reference.
		idx := 0
		var onesRef []uint64
		for i, v := range ref {
			if v {
				onesRef = append(onesRef, uint64(i))
			}
		}
		bm.Ones(func(p uint64) bool {
			if idx >= len(onesRef) || onesRef[idx] != p {
				t.Fatalf("Ones yields %d at index %d", p, idx)
			}
			idx++
			return true
		})
		if idx != len(onesRef) {
			t.Fatalf("Ones yielded %d positions, want %d", idx, len(onesRef))
		}
		// Slice + Concat reproduce the original at an arbitrary cut.
		var cut uint64
		if bm.Len() > 0 {
			cut = uint64(cut16) % (bm.Len() + 1)
		}
		left, right := bm.Slice(0, cut), bm.Slice(cut, bm.Len())
		joined := left.Clone()
		joined.Concat(right)
		joined.Extend(bm.Len())
		if !Equal(joined, bm) {
			t.Fatalf("slice at %d + concat != original", cut)
		}
	})
}

package wah

import (
	"math/rand"
	"testing"
)

// refSlice extracts bits [start, end) of ref (clamped to len(ref)).
func refSlice(ref []bool, start, end uint64) []bool {
	if end > uint64(len(ref)) {
		end = uint64(len(ref))
	}
	if start >= end {
		return nil
	}
	return ref[start:end]
}

func TestSliceAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(400)
		ref := make([]bool, n)
		bm := New()
		// Mix of long runs and noise, to exercise fills and literals.
		dense := rng.Float64()
		for i := 0; i < n; i++ {
			ref[i] = rng.Float64() < dense
			if ref[i] {
				bm.AppendBit(1)
			} else {
				bm.AppendBit(0)
			}
		}
		for k := 0; k < 20; k++ {
			a := uint64(rng.Intn(n + 40))
			b := uint64(rng.Intn(n + 40))
			got := bm.Slice(a, b)
			want := refSlice(ref, a, b)
			if got.Len() != uint64(len(want)) {
				// Slice clamps end to Len and yields empty for a >= end.
				if !(a >= b || a >= uint64(n)) || got.Len() != 0 {
					t.Fatalf("trial %d: Slice(%d,%d) len=%d want %d", trial, a, b, got.Len(), len(want))
				}
			}
			for i, w := range want {
				if got.Get(uint64(i)) != w {
					t.Fatalf("trial %d: Slice(%d,%d) bit %d = %v want %v", trial, a, b, i, got.Get(uint64(i)), w)
				}
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: Slice(%d,%d): %v", trial, a, b, err)
			}
		}
	}
}

func TestSliceConcatInverse(t *testing.T) {
	// Slicing at a boundary and concatenating the parts must reproduce
	// the original bitmap.
	bm := New()
	bm.AppendRun(0, 100)
	bm.AppendRun(1, 64)
	bm.AppendBit(0)
	bm.AppendBit(1)
	bm.AppendRun(0, 31)
	for _, cut := range []uint64{0, 1, 31, 62, 100, 163, 196, bm.Len()} {
		left, right := bm.Slice(0, cut), bm.Slice(cut, bm.Len())
		joined := left.Clone()
		joined.Concat(right)
		joined.Extend(bm.Len())
		if !Equal(joined, bm) {
			t.Fatalf("cut %d: slice+concat != original", cut)
		}
	}
}

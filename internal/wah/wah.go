// Package wah implements Word-Aligned Hybrid (WAH) compressed bitmaps as
// described by Wu, Otoo and Shoshani ("Optimizing Bitmap Indices with
// Efficient Compression", ACM TODS 31(1), 2006), the compression scheme
// adopted by CODS for column bitmap indexes.
//
// A bitmap is a sequence of bits addressed by position 0..n-1. The encoded
// form is a slice of 32-bit words. A word is either
//
//   - a literal word: most significant bit 0, low 31 bits carry one 31-bit
//     group of the bitmap (LSB = lowest position), or
//   - a fill word: most significant bit 1, bit 30 is the fill value, and
//     the low 30 bits count how many consecutive 31-bit groups consist
//     entirely of that value.
//
// The final partial group (fewer than 31 bits) is held outside the word
// stream in the active word.
//
// All operations in this package — logical AND/OR/XOR/ANDNOT, complement,
// filtering (shrink by mask), concatenation, counting and position
// iteration — run directly on the compressed representation. No operation
// materializes an uncompressed bit array, which is the property CODS
// relies on for data-level evolution (paper §2.1–§2.2).
package wah

import (
	"fmt"
	"math/bits"
)

// GroupBits is the number of bitmap bits carried by one literal word.
const GroupBits = 31

const (
	fillFlag      = uint32(1) << 31 // word is a fill word
	fillValueBit  = uint32(1) << 30 // fill value (0 or 1)
	fillCountMask = fillValueBit - 1
	maxFillCount  = uint64(fillCountMask)
	allOnes       = uint32(1)<<GroupBits - 1 // literal group of 31 one bits
)

// Bitmap is a WAH-compressed bitmap. The zero value is an empty bitmap
// ready for use. Bits are appended with Add, AppendBit and AppendRun;
// appends must be in increasing position order. A Bitmap is not safe for
// concurrent mutation; concurrent reads are safe. Published bitmaps are
// immutable (enforced by codslint): once a bitmap is reachable from a
// catalog snapshot nothing may append to it.
//
// cods:immutable
type Bitmap struct {
	words   []uint32
	active  uint32 // pending partial group, zero above nactive
	nactive uint32 // number of valid bits in active, 0..30
	nbits   uint64 // total number of bits
}

// New returns an empty bitmap. Equivalent to &Bitmap{} but reads better at
// call sites.
func New() *Bitmap { return &Bitmap{} }

// FromBools builds a bitmap from an explicit bit slice. Intended for tests
// and small inputs.
func FromBools(bs []bool) *Bitmap {
	b := New()
	for _, v := range bs {
		if v {
			b.AppendBit(1)
		} else {
			b.AppendBit(0)
		}
	}
	return b
}

// FromPositions builds a bitmap of length n with ones at the given
// positions. Positions must be strictly increasing and < n.
func FromPositions(positions []uint64, n uint64) (*Bitmap, error) {
	b := New()
	for _, p := range positions {
		if p < b.nbits {
			return nil, fmt.Errorf("wah: position %d out of order (already at %d bits)", p, b.nbits)
		}
		if p >= n {
			return nil, fmt.Errorf("wah: position %d beyond bitmap length %d", p, n)
		}
		b.Add(p)
	}
	b.Extend(n)
	return b, nil
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() uint64 { return b.nbits }

// Words returns the number of compressed words (excluding the active
// word). Useful for measuring compression.
func (b *Bitmap) Words() int { return len(b.words) }

// SizeBytes returns the approximate in-memory size of the compressed
// bitmap in bytes.
func (b *Bitmap) SizeBytes() uint64 { return uint64(len(b.words))*4 + 16 }

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := *b
	c.words = append([]uint32(nil), b.words...)
	return &c
}

// Reset empties the bitmap, retaining allocated capacity.
func (b *Bitmap) Reset() {
	b.words = b.words[:0]
	b.active, b.nactive, b.nbits = 0, 0, 0
}

// appendFillGroups appends n whole groups of the given bit value (0 or 1).
// The active word must be empty.
func (b *Bitmap) appendFillGroups(bit uint32, n uint64) {
	if n == 0 {
		return
	}
	b.nbits += n * GroupBits
	// Coalesce with a preceding fill of the same value.
	if len(b.words) > 0 {
		last := b.words[len(b.words)-1]
		if last&fillFlag != 0 && (last&fillValueBit != 0) == (bit != 0) {
			room := maxFillCount - uint64(last&fillCountMask)
			take := min(n, room)
			b.words[len(b.words)-1] = last + uint32(take)
			n -= take
		} else if last == 0 && bit == 0 {
			// Literal all-zero word degrades to a fill of one group.
			b.words[len(b.words)-1] = fillFlag | 2
			n--
			b.appendMoreFills(bit, n)
			return
		} else if last == allOnes && bit == 1 {
			b.words[len(b.words)-1] = fillFlag | fillValueBit | 2
			n--
			b.appendMoreFills(bit, n)
			return
		}
	}
	b.appendMoreFills(bit, n)
}

func (b *Bitmap) appendMoreFills(bit uint32, n uint64) {
	for n > 0 {
		take := min(n, maxFillCount)
		w := fillFlag | uint32(take)
		if bit != 0 {
			w |= fillValueBit
		}
		b.words = append(b.words, w)
		n -= take
	}
}

// appendGroupWord appends one whole 31-bit group given as a literal word.
// The active word must be empty.
func (b *Bitmap) appendGroupWord(w uint32) {
	switch w {
	case 0:
		b.appendFillGroups(0, 1)
	case allOnes:
		b.appendFillGroups(1, 1)
	default:
		b.words = append(b.words, w)
		b.nbits += GroupBits
	}
}

// AppendBit appends a single bit (0 or 1) at position Len().
func (b *Bitmap) AppendBit(bit uint32) {
	if bit != 0 {
		b.active |= 1 << b.nactive
	}
	b.nactive++
	b.nbits++
	if b.nactive == GroupBits {
		w := b.active
		b.active, b.nactive = 0, 0
		b.nbits -= GroupBits // appendGroupWord re-adds
		b.appendGroupWord(w)
	}
}

// AppendRun appends count copies of bit at the end of the bitmap.
func (b *Bitmap) AppendRun(bit uint32, count uint64) {
	if count == 0 {
		return
	}
	// Fill the active word to a group boundary.
	if b.nactive > 0 {
		take := min(count, uint64(GroupBits-b.nactive))
		if bit != 0 {
			// take consecutive ones starting at nactive
			b.active |= ((uint32(1) << take) - 1) << b.nactive
		}
		b.nactive += uint32(take)
		b.nbits += take
		count -= take
		if b.nactive == GroupBits {
			w := b.active
			b.active, b.nactive = 0, 0
			b.nbits -= GroupBits
			b.appendGroupWord(w)
		}
		if count == 0 {
			return
		}
	}
	// Whole groups.
	if g := count / GroupBits; g > 0 {
		b.appendFillGroups(uint32(bit&1), g)
		count -= g * GroupBits
	}
	// Remainder into the active word.
	if count > 0 {
		if bit != 0 {
			b.active = (uint32(1) << count) - 1
		}
		b.nactive = uint32(count)
		b.nbits += count
	}
}

// appendBits appends the low k bits of w (LSB first). w must be zero above
// bit k-1.
func (b *Bitmap) appendBits(w uint32, k uint32) {
	if k == 0 {
		return
	}
	if b.nactive == 0 && k == GroupBits {
		b.appendGroupWord(w)
		return
	}
	b.active |= (w << b.nactive) & allOnes
	taken := min(k, GroupBits-b.nactive)
	b.nactive += taken
	b.nbits += uint64(taken)
	if b.nactive == GroupBits {
		full := b.active
		b.active, b.nactive = 0, 0
		b.nbits -= GroupBits
		b.appendGroupWord(full)
	}
	if rest := k - taken; rest > 0 {
		b.appendBits(w>>taken, rest)
	}
}

// Add appends a one bit at position pos, padding the gap since the current
// end with zeros. pos must be >= Len(); Add panics otherwise, since
// compressed bitmaps are append-only builders.
func (b *Bitmap) Add(pos uint64) {
	if pos < b.nbits {
		panic(fmt.Sprintf("wah: Add(%d) out of order, bitmap already has %d bits", pos, b.nbits))
	}
	if gap := pos - b.nbits; gap > 0 {
		b.AppendRun(0, gap)
	}
	b.AppendBit(1)
}

// Extend pads the bitmap with zeros so that Len() == n. It does nothing if
// the bitmap is already at least n bits long.
func (b *Bitmap) Extend(n uint64) {
	if n > b.nbits {
		b.AppendRun(0, n-b.nbits)
	}
}

// Get reports whether the bit at position pos is set. It walks the
// compressed words and costs O(words); use iteration for bulk access.
func (b *Bitmap) Get(pos uint64) bool {
	if pos >= b.nbits {
		return false
	}
	g := pos / GroupBits
	off := pos % GroupBits
	var seen uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			n := uint64(w & fillCountMask)
			if g < seen+n {
				return w&fillValueBit != 0
			}
			seen += n
		} else {
			if g == seen {
				return w&(1<<off) != 0
			}
			seen++
		}
	}
	return b.active&(1<<off) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			if w&fillValueBit != 0 {
				c += uint64(w&fillCountMask) * GroupBits
			}
		} else {
			c += uint64(bits.OnesCount32(w))
		}
	}
	return c + uint64(bits.OnesCount32(b.active))
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w&fillFlag != 0 {
			if w&fillValueBit != 0 {
				return true
			}
		} else if w != 0 {
			return true
		}
	}
	return b.active != 0
}

// FirstOne returns the position of the first set bit. ok is false when the
// bitmap has no set bits. It stops at the first set bit, skipping leading
// zero fills in O(1) per fill word — the fast path behind the paper's
// "distinction" step.
func (b *Bitmap) FirstOne() (pos uint64, ok bool) {
	var base uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			n := uint64(w & fillCountMask)
			if w&fillValueBit != 0 {
				return base, true
			}
			base += n * GroupBits
		} else {
			if w != 0 {
				return base + uint64(bits.TrailingZeros32(w)), true
			}
			base += GroupBits
		}
	}
	if b.active != 0 {
		return base + uint64(bits.TrailingZeros32(b.active)), true
	}
	return 0, false
}

// Equal reports whether two bitmaps have identical length and identical
// bit content (regardless of how runs happen to be encoded).
func Equal(a, b *Bitmap) bool {
	if a.nbits != b.nbits {
		return false
	}
	da, db := newDecoder(a), newDecoder(b)
	remaining := a.nbits / GroupBits
	for remaining > 0 {
		va, na := da.peek()
		vb, nb := db.peek()
		if va != vb {
			return false
		}
		n := min(na, nb, remaining)
		da.consume(n)
		db.consume(n)
		remaining -= n
	}
	if rem := a.nbits % GroupBits; rem > 0 {
		va, _ := da.peek()
		vb, _ := db.peek()
		mask := (uint32(1) << rem) - 1
		return va&mask == vb&mask
	}
	return true
}

// Validate checks internal invariants of the compressed representation and
// returns an error describing the first violation.
func (b *Bitmap) Validate() error {
	var groups uint64
	for i, w := range b.words {
		if w&fillFlag != 0 {
			n := uint64(w & fillCountMask)
			if n == 0 {
				return fmt.Errorf("wah: word %d is a fill with zero count", i)
			}
			groups += n
		} else {
			groups++
		}
	}
	if b.nactive >= GroupBits {
		return fmt.Errorf("wah: active word has %d bits", b.nactive)
	}
	if b.nactive > 0 && b.active>>b.nactive != 0 {
		return fmt.Errorf("wah: active word has bits above nactive")
	}
	if want := groups*GroupBits + uint64(b.nactive); want != b.nbits {
		return fmt.Errorf("wah: words encode %d bits but nbits is %d", want, b.nbits)
	}
	return nil
}

// String renders a short diagnostic description.
func (b *Bitmap) String() string {
	return fmt.Sprintf("wah.Bitmap{bits=%d ones=%d words=%d}", b.nbits, b.Count(), len(b.words))
}

package wah

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary layout of an encoded bitmap:
//
//	u64  nbits
//	u32  nactive
//	u32  active
//	u32  word count
//	u32* words
//
// All fields little-endian. The format is stable and versioned by the
// enclosing storage container, not here.

// EncodedSize returns the number of bytes WriteTo will produce.
func (b *Bitmap) EncodedSize() int { return 8 + 4 + 4 + 4 + 4*len(b.words) }

// WriteTo writes the bitmap in its binary format.
func (b *Bitmap) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 0, b.EncodedSize())
	buf = binary.LittleEndian.AppendUint64(buf, b.nbits)
	buf = binary.LittleEndian.AppendUint32(buf, b.nactive)
	buf = binary.LittleEndian.AppendUint32(buf, b.active)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.words)))
	for _, word := range b.words {
		buf = binary.LittleEndian.AppendUint32(buf, word)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom reads a bitmap previously written with WriteTo, replacing the
// receiver's contents.
func (b *Bitmap) ReadFrom(r io.Reader) (int64, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("wah: reading header: %w", err)
	}
	nbits := binary.LittleEndian.Uint64(hdr[0:8])
	nactive := binary.LittleEndian.Uint32(hdr[8:12])
	active := binary.LittleEndian.Uint32(hdr[12:16])
	nwords := binary.LittleEndian.Uint32(hdr[16:20])
	if nactive >= GroupBits {
		return 20, fmt.Errorf("wah: corrupt bitmap: nactive=%d", nactive)
	}
	body := make([]byte, 4*int(nwords))
	if _, err := io.ReadFull(r, body); err != nil {
		return 20, fmt.Errorf("wah: reading %d words: %w", nwords, err)
	}
	words := make([]uint32, nwords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(body[4*i:])
	}
	b.words, b.active, b.nactive, b.nbits = words, active, nactive, nbits
	if err := b.Validate(); err != nil {
		return 20 + int64(len(body)), err
	}
	return 20 + int64(len(body)), nil
}

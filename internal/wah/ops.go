package wah

import (
	"math/bits"
	"sort"

	"cods/internal/par"
)

// decoder walks a compressed bitmap as a stream of 31-bit groups. Once the
// encoded words and the active word are exhausted it yields zero fills
// forever, which gives all binary operations implicit zero-padding
// semantics for bitmaps of unequal length.
type decoder struct {
	words      []uint32
	i          int
	active     uint32
	nactive    uint32
	usedActive bool

	isFill bool
	val    uint32 // 0 or allOnes for fills, the word itself for literals
	n      uint64 // groups remaining in the current run
}

func newDecoder(b *Bitmap) *decoder {
	return &decoder{words: b.words, active: b.active, nactive: b.nactive}
}

func (d *decoder) load() {
	if d.n > 0 {
		return
	}
	if d.i < len(d.words) {
		w := d.words[d.i]
		d.i++
		if w&fillFlag != 0 {
			d.isFill = true
			d.n = uint64(w & fillCountMask)
			if w&fillValueBit != 0 {
				d.val = allOnes
			} else {
				d.val = 0
			}
		} else {
			d.isFill = false
			d.val = w
			d.n = 1
		}
		return
	}
	if !d.usedActive && d.nactive > 0 {
		d.usedActive = true
		d.isFill = false
		d.val = d.active
		d.n = 1
		return
	}
	// Implicit zero padding beyond the end.
	d.isFill = true
	d.val = 0
	d.n = 1 << 62
}

// peek returns the value of the current group and how many identical
// groups are available (1 for literals).
func (d *decoder) peek() (val uint32, n uint64) {
	d.load()
	return d.val, d.n
}

// consume advances past n groups, which must not exceed the run length
// returned by peek.
func (d *decoder) consume(n uint64) { d.n -= n }

// skip advances past n groups regardless of run boundaries.
func (d *decoder) skip(n uint64) {
	for n > 0 {
		d.load()
		take := min(n, d.n)
		d.n -= take
		n -= take
	}
}

// absorbing reports whether an operand group value v forces the operator's
// result regardless of the other operand: f(v, 0) and f(v, allOnes) agree and
// are a pure fill value. Zero fills absorb under AND, one fills under OR.
func absorbing(r0, r1 uint32) (bit uint32, ok bool) {
	r0 &= allOnes
	r1 &= allOnes
	if r0 == r1 && (r0 == 0 || r0 == allOnes) {
		return r0 & 1, true
	}
	return 0, false
}

func binop(x, y *Bitmap, f func(a, b uint32) uint32) *Bitmap {
	n := max(x.nbits, y.nbits)
	out := New()
	dx, dy := newDecoder(x), newDecoder(y)
	remaining := n / GroupBits
	for remaining > 0 {
		vx, nx := dx.peek()
		vy, ny := dy.peek()
		// Run-vs-run fast path: when one operand sits in a fill whose value
		// determines the result on its own (zero fill under AND, ones fill
		// under OR), emit a single output fill spanning the whole run and
		// skip the other operand across its run boundaries, instead of
		// combining word at a time.
		if dx.isFill {
			if bit, ok := absorbing(f(vx, 0), f(vx, allOnes)); ok {
				take := min(nx, remaining)
				out.appendFillGroups(bit, take)
				dx.consume(take)
				dy.skip(take)
				remaining -= take
				continue
			}
		}
		if dy.isFill {
			if bit, ok := absorbing(f(0, vy), f(allOnes, vy)); ok {
				take := min(ny, remaining)
				out.appendFillGroups(bit, take)
				dy.consume(take)
				dx.skip(take)
				remaining -= take
				continue
			}
		}
		take := min(nx, ny, remaining)
		v := f(vx, vy) & allOnes
		if dx.isFill && dy.isFill {
			switch v {
			case 0:
				out.appendFillGroups(0, take)
			case allOnes:
				out.appendFillGroups(1, take)
			default:
				// Cannot happen: fills only combine to fills.
				for i := uint64(0); i < take; i++ {
					out.appendGroupWord(v)
				}
			}
		} else {
			take = 1
			out.appendGroupWord(v)
		}
		dx.consume(take)
		dy.consume(take)
		remaining -= take
	}
	if rem := n % GroupBits; rem > 0 {
		vx, _ := dx.peek()
		vy, _ := dy.peek()
		mask := (uint32(1) << rem) - 1
		out.active = f(vx, vy) & mask
		out.nactive = uint32(rem)
		out.nbits += uint64(rem)
	}
	return out
}

// Or returns the bitwise OR of the two bitmaps. If lengths differ the
// shorter operand is zero-padded; the result has the longer length.
func Or(x, y *Bitmap) *Bitmap { return binop(x, y, func(a, b uint32) uint32 { return a | b }) }

// And returns the bitwise AND of the two bitmaps (zero-padding the shorter
// operand).
func And(x, y *Bitmap) *Bitmap { return binop(x, y, func(a, b uint32) uint32 { return a & b }) }

// Xor returns the bitwise XOR of the two bitmaps.
func Xor(x, y *Bitmap) *Bitmap { return binop(x, y, func(a, b uint32) uint32 { return a ^ b }) }

// AndNot returns x AND NOT y.
func AndNot(x, y *Bitmap) *Bitmap { return binop(x, y, func(a, b uint32) uint32 { return a &^ b }) }

// Not returns the complement of b within its length.
func (b *Bitmap) Not() *Bitmap {
	out := New()
	out.words = make([]uint32, 0, len(b.words))
	for _, w := range b.words {
		if w&fillFlag != 0 {
			out.words = append(out.words, w^fillValueBit)
			out.nbits += uint64(w&fillCountMask) * GroupBits
		} else {
			out.appendGroupWordRaw(^w & allOnes)
		}
	}
	if b.nactive > 0 {
		out.active = ^b.active & ((uint32(1) << b.nactive) - 1)
		out.nactive = b.nactive
		out.nbits += uint64(b.nactive)
	}
	return out
}

// appendGroupWordRaw appends a literal group during Not without the
// fill-conversion bookkeeping of appendGroupWord (complemented literals
// are never all-zero or all-one: those would have been fills).
func (b *Bitmap) appendGroupWordRaw(w uint32) {
	b.words = append(b.words, w)
	b.nbits += GroupBits
}

// OrAll returns the OR of all bitmaps using balanced pairwise merging,
// which keeps intermediate results small when many sparse vectors are
// combined (key–foreign-key mergence, paper §2.5.1).
func OrAll(ms []*Bitmap) *Bitmap {
	switch len(ms) {
	case 0:
		return New()
	case 1:
		return ms[0].Clone()
	}
	work := make([]*Bitmap, len(ms))
	copy(work, ms)
	for len(work) > 1 {
		var next []*Bitmap
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, Or(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// OrAllP is OrAll with tree-structured parallelism: the vector list is split
// into contiguous chunks, each chunk is OR-combined by one worker with
// balanced pairwise merging, and the at-most-`parallelism` chunk partials are
// merged in chunk order. OR is associative, so the result is bit-identical to
// OrAll at any parallelism. parallelism <= 0 means GOMAXPROCS.
func OrAllP(ms []*Bitmap, parallelism int) *Bitmap {
	// Below two vectors per worker the spawn overhead cannot pay off.
	workers := min(par.Workers(parallelism), len(ms)/2)
	if workers <= 1 {
		return OrAll(ms)
	}
	partials := par.Map(workers, workers, func(w int) *Bitmap {
		return OrAll(ms[w*len(ms)/workers : (w+1)*len(ms)/workers])
	})
	return OrAll(partials)
}

// Filter implements the paper's "bitmap filtering" primitive (§2.4 step
// 2): it returns the bitmap consisting of b's bits at the positions where
// mask is set, renumbered consecutively. The result length equals
// mask.Count(). Zero-fill regions of the mask skip whole regions of b on
// the compressed form, so sparse masks (few distinct values in many rows)
// filter in time proportional to the compressed size, not the row count.
//
// b is implicitly zero-padded to the mask's length when shorter.
func Filter(b, mask *Bitmap) *Bitmap {
	out := New()
	db, dm := newDecoder(b), newDecoder(mask)
	remaining := (mask.nbits + GroupBits - 1) / GroupBits
	tailBits := mask.nbits % GroupBits
	for remaining > 0 {
		mv, mn := dm.peek()
		bv, bn := db.peek()
		isLastGroup := remaining == 1 && tailBits > 0
		switch {
		case dm.isFill && mv == 0:
			take := min(mn, bn, remaining)
			dm.consume(take)
			db.skip(take)
			remaining -= take
		case dm.isFill && mv == allOnes && !isLastGroup:
			if db.isFill {
				take := min(mn, bn, remaining)
				out.AppendRun(bv&1, take*GroupBits)
				dm.consume(take)
				db.consume(take)
				remaining -= take
			} else {
				out.appendBits(bv, GroupBits)
				dm.consume(1)
				db.consume(1)
				remaining--
			}
		default:
			// Mask literal (or the final partial group): select bits one
			// by one.
			m := mv
			if isLastGroup {
				m &= (uint32(1) << tailBits) - 1
			}
			w := bv
			for m != 0 {
				o := uint32(bits.TrailingZeros32(m))
				out.AppendBit((w >> o) & 1)
				m &= m - 1
			}
			dm.consume(1)
			db.consume(1)
			remaining--
		}
	}
	return out
}

// FilterPositions is the position-list form of bitmap filtering (§2.4:
// "we shrink their bitmap in R by only taking the bits specified in the
// position list"): it returns a bitmap of length len(positions) whose i-th
// bit is b's bit at positions[i]. positions must be sorted ascending.
//
// The implementation merges b's one-runs against the position list with a
// galloping search, so the cost is O(runs(b)·log d + matches) rather than
// O(v·r) across a column's values — this is what keeps decomposition flat
// as the distinct count grows.
func FilterPositions(b *Bitmap, positions []uint64) *Bitmap {
	out := New()
	lo := 0
	b.Runs(func(start, length uint64) bool {
		rest := positions[lo:]
		lo += sort.Search(len(rest), func(k int) bool { return rest[k] >= start })
		for lo < len(positions) && positions[lo] < start+length {
			out.Add(uint64(lo))
			lo++
		}
		return lo < len(positions)
	})
	out.Extend(uint64(len(positions)))
	return out
}

// Concat appends the entire contents of other after the current end of b,
// in place. This is the storage-level operation behind UNION TABLES: the
// second table's bitmap vectors are appended at a row offset without
// decompression.
func (b *Bitmap) Concat(other *Bitmap) {
	if b.nactive == 0 {
		// Word-aligned fast path: splice the word stream.
		for _, w := range other.words {
			if w&fillFlag != 0 {
				bit := uint32(0)
				if w&fillValueBit != 0 {
					bit = 1
				}
				b.appendFillGroups(bit, uint64(w&fillCountMask))
			} else {
				b.appendGroupWord(w)
			}
		}
		if other.nactive > 0 {
			b.active = other.active
			b.nactive = other.nactive
			b.nbits += uint64(other.nactive)
		}
		return
	}
	d := newDecoder(other)
	remaining := other.nbits / GroupBits
	for remaining > 0 {
		v, n := d.peek()
		if d.isFill {
			take := min(n, remaining)
			b.AppendRun(v&1, take*GroupBits)
			d.consume(take)
			remaining -= take
		} else {
			b.appendBits(v, GroupBits)
			d.consume(1)
			remaining--
		}
	}
	if rem := other.nbits % GroupBits; rem > 0 {
		v, _ := d.peek()
		b.appendBits(v&((uint32(1)<<rem)-1), uint32(rem))
	}
}

// Ones calls yield for each set bit position in ascending order, stopping
// early if yield returns false. With Go 1.23 range-over-func this supports
// `for p := range bm.Ones`.
func (b *Bitmap) Ones(yield func(uint64) bool) {
	var base uint64
	for _, w := range b.words {
		if w&fillFlag != 0 {
			n := uint64(w&fillCountMask) * GroupBits
			if w&fillValueBit != 0 {
				for p := base; p < base+n; p++ {
					if !yield(p) {
						return
					}
				}
			}
			base += n
		} else {
			for m := w; m != 0; m &= m - 1 {
				if !yield(base + uint64(bits.TrailingZeros32(m))) {
					return
				}
			}
			base += GroupBits
		}
	}
	for m := b.active; m != 0; m &= m - 1 {
		if !yield(base + uint64(bits.TrailingZeros32(m))) {
			return
		}
	}
}

// Runs calls yield once per maximal run of consecutive set bits with its
// start position and length, in ascending order.
func (b *Bitmap) Runs(yield func(start, length uint64) bool) {
	var base, runStart, runLen uint64
	inRun := false
	flush := func() bool {
		if inRun {
			inRun = false
			return yield(runStart, runLen)
		}
		return true
	}
	emitGroup := func(w uint32, nbits uint64) bool {
		for i := uint64(0); i < nbits; i++ {
			if w&(1<<i) != 0 {
				if !inRun {
					inRun, runStart, runLen = true, base+i, 1
				} else {
					runLen++
				}
			} else if !flush() {
				return false
			}
		}
		base += nbits
		return true
	}
	for _, w := range b.words {
		if w&fillFlag != 0 {
			n := uint64(w&fillCountMask) * GroupBits
			if w&fillValueBit != 0 {
				if !inRun {
					inRun, runStart, runLen = true, base, n
				} else {
					runLen += n
				}
			} else if !flush() {
				return
			}
			base += n
		} else {
			if !emitGroup(w, GroupBits) {
				return
			}
		}
	}
	if b.nactive > 0 && !emitGroup(b.active, uint64(b.nactive)) {
		return
	}
	flush()
}

// Slice returns a new bitmap of length end-start whose bit i is b's bit
// start+i. end is clamped to Len(); start >= end yields an empty bitmap.
// This is Concat's inverse at the storage level: it re-bases a vertical
// stripe of a bitmap vector so a table can be split into row segments
// without decompressing to positions. Cost is O(set runs overlapping the
// window) plus the compressed output size.
func (b *Bitmap) Slice(start, end uint64) *Bitmap {
	out := New()
	if end > b.nbits {
		end = b.nbits
	}
	if start >= end {
		return out
	}
	b.Runs(func(rs, rl uint64) bool {
		re := rs + rl
		if re <= start {
			return true
		}
		if rs >= end {
			return false
		}
		lo, hi := max(rs, start), min(re, end)
		out.Extend(lo - start)
		out.AppendRun(1, hi-lo)
		return re < end
	})
	out.Extend(end - start)
	return out
}

// AppendPositionsTo appends all set bit positions to dst and returns the
// extended slice.
func (b *Bitmap) AppendPositionsTo(dst []uint64) []uint64 {
	b.Ones(func(p uint64) bool {
		dst = append(dst, p)
		return true
	})
	return dst
}

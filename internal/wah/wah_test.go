package wah

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// refBits is the uncompressed reference model used to validate every
// compressed-form operation.
type refBits []bool

func (r refBits) count() uint64 {
	var c uint64
	for _, b := range r {
		if b {
			c++
		}
	}
	return c
}

func (r refBits) bitmap() *Bitmap { return FromBools(r) }

func randBits(rng *rand.Rand, n int, density float64) refBits {
	r := make(refBits, n)
	for i := range r {
		r[i] = rng.Float64() < density
	}
	return r
}

// runnyBits generates bit vectors with long runs, the shape WAH is
// designed for.
func runnyBits(rng *rand.Rand, n int) refBits {
	r := make(refBits, 0, n)
	cur := rng.Intn(2) == 1
	for len(r) < n {
		runLen := 1 + rng.Intn(200)
		if rng.Intn(3) == 0 {
			runLen = 1 + rng.Intn(5)
		}
		for i := 0; i < runLen && len(r) < n; i++ {
			r = append(r, cur)
		}
		cur = !cur
	}
	return r
}

func checkSame(t *testing.T, ref refBits, b *Bitmap, label string) {
	t.Helper()
	if err := b.Validate(); err != nil {
		t.Fatalf("%s: invalid bitmap: %v", label, err)
	}
	if b.Len() != uint64(len(ref)) {
		t.Fatalf("%s: Len=%d want %d", label, b.Len(), len(ref))
	}
	if b.Count() != ref.count() {
		t.Fatalf("%s: Count=%d want %d", label, b.Count(), ref.count())
	}
	for i, want := range ref {
		if got := b.Get(uint64(i)); got != want {
			t.Fatalf("%s: bit %d = %v want %v", label, i, got, want)
		}
	}
}

func TestEmptyBitmap(t *testing.T) {
	b := New()
	if b.Len() != 0 || b.Count() != 0 || b.Any() {
		t.Fatalf("empty bitmap not empty: %v", b)
	}
	if _, ok := b.FirstOne(); ok {
		t.Fatal("FirstOne on empty bitmap returned ok")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 30, 31, 32, 61, 62, 63, 100, 1000, 12345} {
		for _, d := range []float64{0, 0.01, 0.5, 0.99, 1} {
			ref := randBits(rng, n, d)
			checkSame(t, ref, ref.bitmap(), "AppendBit")
		}
	}
}

func TestAppendRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var ref refBits
		b := New()
		for len(ref) < 500 {
			bit := uint32(rng.Intn(2))
			count := uint64(rng.Intn(120))
			b.AppendRun(bit, count)
			for i := uint64(0); i < count; i++ {
				ref = append(ref, bit == 1)
			}
		}
		checkSame(t, ref, b, "AppendRun")
	}
}

func TestAppendRunLong(t *testing.T) {
	b := New()
	b.AppendRun(0, 1_000_000)
	b.AppendRun(1, 2_000_000)
	b.AppendRun(0, 7)
	if b.Len() != 3_000_007 {
		t.Fatalf("Len=%d", b.Len())
	}
	if b.Count() != 2_000_000 {
		t.Fatalf("Count=%d", b.Count())
	}
	if b.Words() > 4 {
		t.Fatalf("long runs should compress to a few words, got %d", b.Words())
	}
	if got := b.Get(999_999); got {
		t.Fatal("bit 999999 should be 0")
	}
	if got := b.Get(1_000_000); !got {
		t.Fatal("bit 1000000 should be 1")
	}
	if p, ok := b.FirstOne(); !ok || p != 1_000_000 {
		t.Fatalf("FirstOne=%d,%v", p, ok)
	}
}

func TestAddAndExtend(t *testing.T) {
	b := New()
	positions := []uint64{0, 5, 31, 62, 1000, 1001, 50000}
	for _, p := range positions {
		b.Add(p)
	}
	b.Extend(60000)
	if b.Len() != 60000 {
		t.Fatalf("Len=%d", b.Len())
	}
	if b.Count() != uint64(len(positions)) {
		t.Fatalf("Count=%d", b.Count())
	}
	got := b.AppendPositionsTo(nil)
	for i, p := range positions {
		if got[i] != p {
			t.Fatalf("position %d: got %d want %d", i, got[i], p)
		}
	}
}

func TestAddOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := New()
	b.Add(10)
	b.Add(5)
}

func TestFromPositions(t *testing.T) {
	b, err := FromPositions([]uint64{3, 7, 100}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 200 || b.Count() != 3 {
		t.Fatalf("bad bitmap %v", b)
	}
	if _, err := FromPositions([]uint64{7, 3}, 200); err == nil {
		t.Fatal("expected out-of-order error")
	}
	if _, err := FromPositions([]uint64{300}, 200); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func naiveOp(x, y refBits, f func(a, b bool) bool) refBits {
	n := max(len(x), len(y))
	out := make(refBits, n)
	for i := range out {
		var a, b bool
		if i < len(x) {
			a = x[i]
		}
		if i < len(y) {
			b = y[i]
		}
		out[i] = f(a, b)
	}
	return out
}

func TestBinaryOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := []struct {
		name string
		wah  func(a, b *Bitmap) *Bitmap
		ref  func(a, b bool) bool
	}{
		{"Or", Or, func(a, b bool) bool { return a || b }},
		{"And", And, func(a, b bool) bool { return a && b }},
		{"Xor", Xor, func(a, b bool) bool { return a != b }},
		{"AndNot", AndNot, func(a, b bool) bool { return a && !b }},
	}
	for trial := 0; trial < 60; trial++ {
		nx, ny := rng.Intn(400), rng.Intn(400)
		var x, y refBits
		if trial%2 == 0 {
			x, y = randBits(rng, nx, rng.Float64()), randBits(rng, ny, rng.Float64())
		} else {
			x, y = runnyBits(rng, nx), runnyBits(rng, ny)
		}
		bx, by := x.bitmap(), y.bitmap()
		for _, op := range ops {
			checkSame(t, naiveOp(x, y, op.ref), op.wah(bx, by), op.name)
		}
	}
}

func TestBinaryOpsLargeRuns(t *testing.T) {
	// Two bitmaps of 10M bits with huge fills must combine in
	// microseconds and stay tiny.
	a, b := New(), New()
	a.AppendRun(0, 4_000_000)
	a.AppendRun(1, 6_000_000)
	b.AppendRun(1, 5_000_000)
	b.AppendRun(0, 5_000_000)
	or := Or(a, b)
	if or.Count() != 4_000_000+6_000_000 {
		t.Fatalf("Or count=%d", or.Count())
	}
	and := And(a, b)
	if and.Count() != 1_000_000 {
		t.Fatalf("And count=%d", and.Count())
	}
	if or.Words() > 4 || and.Words() > 6 {
		t.Fatalf("results not compressed: or=%d and=%d words", or.Words(), and.Words())
	}
}

func TestNot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		ref := runnyBits(rng, rng.Intn(500))
		want := make(refBits, len(ref))
		for i := range ref {
			want[i] = !ref[i]
		}
		checkSame(t, want, ref.bitmap().Not(), "Not")
	}
}

func TestNotInvolution(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randBits(rng, int(n%2000), 0.3)
		b := ref.bitmap()
		return Equal(b, b.Not().Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := runnyBits(rng, 300)
	a := ref.bitmap()
	// Build the same content differently: bit by bit vs via runs.
	b := New()
	i := 0
	for i < len(ref) {
		j := i
		for j < len(ref) && ref[j] == ref[i] {
			j++
		}
		bit := uint32(0)
		if ref[i] {
			bit = 1
		}
		b.AppendRun(bit, uint64(j-i))
		i = j
	}
	if !Equal(a, b) {
		t.Fatal("equal content compared unequal")
	}
	b.AppendBit(1)
	if Equal(a, b) {
		t.Fatal("different lengths compared equal")
	}
	c := ref.bitmap()
	// Flip one bit.
	ref[137] = !ref[137]
	d := ref.bitmap()
	if Equal(c, d) {
		t.Fatal("different content compared equal")
	}
}

func TestOrAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 700
	var refs []refBits
	var bms []*Bitmap
	union := make(refBits, n)
	for i := 0; i < 13; i++ {
		r := randBits(rng, n, 0.05)
		refs = append(refs, r)
		bms = append(bms, r.bitmap())
		for j, v := range r {
			union[j] = union[j] || v
		}
	}
	_ = refs
	checkSame(t, union, OrAll(bms), "OrAll")
	if got := OrAll(nil); got.Len() != 0 {
		t.Fatal("OrAll(nil) not empty")
	}
	single := OrAll(bms[:1])
	if !Equal(single, bms[0]) {
		t.Fatal("OrAll of one bitmap differs")
	}
	single.AppendBit(1) // must not alias the input
	if bms[0].Len() == single.Len() {
		t.Fatal("OrAll aliased its input")
	}
}

func naiveFilter(b, mask refBits) refBits {
	var out refBits
	for i, m := range mask {
		if m {
			v := false
			if i < len(b) {
				v = b[i]
			}
			out = append(out, v)
		}
	}
	return out
}

func TestFilterAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(600)
		var b, m refBits
		switch trial % 3 {
		case 0:
			b, m = randBits(rng, n, rng.Float64()), randBits(rng, n, rng.Float64())
		case 1:
			b, m = runnyBits(rng, n), runnyBits(rng, n)
		default:
			b, m = runnyBits(rng, n), randBits(rng, n, 0.02) // sparse mask: the distinction shape
		}
		got := Filter(b.bitmap(), m.bitmap())
		checkSame(t, naiveFilter(b, m), got, "Filter")
	}
}

func TestFilterSparseMaskIsCompressed(t *testing.T) {
	// 10M-bit column, mask selecting 100 distinct representatives: the
	// result must be built without touching most of the input.
	b := New()
	b.AppendRun(1, 5_000_000)
	b.AppendRun(0, 5_000_000)
	var positions []uint64
	for i := uint64(0); i < 100; i++ {
		positions = append(positions, i*100_000)
	}
	mask, err := FromPositions(positions, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	got := Filter(b, mask)
	if got.Len() != 100 {
		t.Fatalf("filtered length=%d", got.Len())
	}
	if got.Count() != 50 {
		t.Fatalf("filtered count=%d", got.Count())
	}
}

func TestFilterPositionsMatchesFilter(t *testing.T) {
	// Property: FilterPositions(b, positions(mask)) == Filter(b, mask).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(800)
		var b, m refBits
		switch trial % 3 {
		case 0:
			b, m = randBits(rng, n, rng.Float64()), randBits(rng, n, rng.Float64())
		case 1:
			b, m = runnyBits(rng, n), runnyBits(rng, n)
		default:
			b, m = runnyBits(rng, n), randBits(rng, n, 0.03)
		}
		bb, mb := b.bitmap(), m.bitmap()
		positions := mb.AppendPositionsTo(nil)
		got := FilterPositions(bb, positions)
		want := Filter(bb, mb)
		if !Equal(got, want) {
			t.Fatalf("trial %d: FilterPositions disagrees with Filter", trial)
		}
	}
}

func TestFilterPositionsEmptyAndFull(t *testing.T) {
	b := New()
	b.AppendRun(1, 100)
	if got := FilterPositions(b, nil); got.Len() != 0 {
		t.Fatalf("empty positions: len=%d", got.Len())
	}
	all := make([]uint64, 100)
	for i := range all {
		all[i] = uint64(i)
	}
	if got := FilterPositions(b, all); got.Count() != 100 {
		t.Fatalf("full positions: count=%d", got.Count())
	}
	// A bitmap shorter than the position range reads as zeros.
	short := New()
	short.AppendRun(1, 10)
	got := FilterPositions(short, []uint64{5, 50})
	if got.Len() != 2 || !got.Get(0) || got.Get(1) {
		t.Fatalf("short bitmap: %v", got)
	}
}

func TestFilterMaskAllOnesIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := runnyBits(rng, 400)
	b := ref.bitmap()
	mask := New()
	mask.AppendRun(1, uint64(len(ref)))
	if !Equal(Filter(b, mask), b) {
		t.Fatal("filter by all-ones mask is not identity")
	}
}

func TestConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		a := runnyBits(rng, rng.Intn(300))
		b := runnyBits(rng, rng.Intn(300))
		ba := a.bitmap()
		ba.Concat(b.bitmap())
		checkSame(t, append(append(refBits{}, a...), b...), ba, "Concat")
	}
}

func TestConcatWordAligned(t *testing.T) {
	a := New()
	a.AppendRun(1, 31*10)
	b := New()
	b.AppendRun(0, 31*5)
	b.AppendBit(1)
	a.Concat(b)
	if a.Len() != 31*15+1 {
		t.Fatalf("Len=%d", a.Len())
	}
	if a.Count() != 31*10+1 {
		t.Fatalf("Count=%d", a.Count())
	}
}

func TestOnesEarlyStop(t *testing.T) {
	b := New()
	b.AppendRun(1, 1000)
	var seen int
	b.Ones(func(p uint64) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		ref := runnyBits(rng, rng.Intn(500))
		b := ref.bitmap()
		var got []uint64
		b.Runs(func(start, length uint64) bool {
			got = append(got, start, length)
			return true
		})
		var want []uint64
		i := 0
		for i < len(ref) {
			if !ref[i] {
				i++
				continue
			}
			j := i
			for j < len(ref) && ref[j] {
				j++
			}
			want = append(want, uint64(i), uint64(j-i))
			i = j
		}
		if len(got) != len(want) {
			t.Fatalf("runs: got %v want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("runs: got %v want %v", got, want)
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		ref := runnyBits(rng, rng.Intn(1000))
		b := ref.bitmap()
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != b.EncodedSize() {
			t.Fatalf("EncodedSize=%d wrote %d", b.EncodedSize(), buf.Len())
		}
		var got Bitmap
		if _, err := got.ReadFrom(&buf); err != nil {
			t.Fatal(err)
		}
		if !Equal(b, &got) {
			t.Fatal("codec round trip changed content")
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	b := New()
	b.AppendRun(1, 100)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xFF // corrupt nbits
	var got Bitmap
	if _, err := got.ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New()
	a.AppendRun(1, 100)
	c := a.Clone()
	c.AppendRun(0, 50)
	if a.Len() != 100 || c.Len() != 150 {
		t.Fatalf("clone not independent: a=%d c=%d", a.Len(), c.Len())
	}
}

func TestQuickFilterComposition(t *testing.T) {
	// Property: Count(Filter(b, m)) == Count(And(b, m)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		b := runnyBits(rng, n).bitmap()
		m := randBits(rng, n, 0.1).bitmap()
		return Filter(b, m).Count() == And(b, m).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// Property: NOT(a OR b) == NOT a AND NOT b (same lengths).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1500)
		a := runnyBits(rng, n).bitmap()
		b := randBits(rng, n, 0.4).bitmap()
		return Equal(Or(a, b).Not(), And(a.Not(), b.Not()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConcatCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := runnyBits(rng, rng.Intn(1000))
		b := runnyBits(rng, rng.Intn(1000))
		ba, bb := a.bitmap(), b.bitmap()
		wantCount := ba.Count() + bb.Count()
		wantLen := ba.Len() + bb.Len()
		ba.Concat(bb)
		return ba.Count() == wantCount && ba.Len() == wantLen && ba.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package wah

import (
	"math/rand"
	"testing"
)

// binopRef computes the reference result of a binary op with zero-padding.
func binopRef(x, y refBits, f func(a, b bool) bool) refBits {
	n := max(len(x), len(y))
	out := make(refBits, n)
	at := func(r refBits, i int) bool { return i < len(r) && r[i] }
	for i := range out {
		out[i] = f(at(x, i), at(y, i))
	}
	return out
}

// TestBinopFillFastPaths drives the absorbing-fill shortcut in binop: one
// operand holding long fills (zero fills for AND, one fills for OR) while the
// other is literal-heavy, across unequal lengths and tail sizes.
func TestBinopFillFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fillHeavy := func(n int) refBits {
		r := make(refBits, 0, n)
		for len(r) < n {
			bit := rng.Intn(2) == 1
			runLen := 31 * (1 + rng.Intn(40)) // whole groups → encoded as fills
			if rng.Intn(4) == 0 {
				runLen = 1 + rng.Intn(10)
			}
			for i := 0; i < runLen && len(r) < n; i++ {
				r = append(r, bit)
			}
		}
		return r
	}
	ops := []struct {
		name string
		op   func(a, b *Bitmap) *Bitmap
		ref  func(a, b bool) bool
	}{
		{"And", And, func(a, b bool) bool { return a && b }},
		{"Or", Or, func(a, b bool) bool { return a || b }},
		{"Xor", Xor, func(a, b bool) bool { return a != b }},
		{"AndNot", AndNot, func(a, b bool) bool { return a && !b }},
	}
	for trial := 0; trial < 60; trial++ {
		nx := rng.Intn(31 * 200)
		ny := rng.Intn(31 * 200)
		rx, ry := fillHeavy(nx), randBits(rng, ny, 0.4)
		bx, by := rx.bitmap(), ry.bitmap()
		for _, o := range ops {
			checkSame(t, binopRef(rx, ry, o.ref), o.op(bx, by), o.name+"/fill-vs-literal")
			checkSame(t, binopRef(ry, rx, func(a, b bool) bool { return o.ref(a, b) }), o.op(by, bx), o.name+"/literal-vs-fill")
		}
		// Fill-vs-fill with misaligned run boundaries.
		rx2, ry2 := fillHeavy(nx), fillHeavy(ny)
		bx2, by2 := rx2.bitmap(), ry2.bitmap()
		for _, o := range ops {
			checkSame(t, binopRef(rx2, ry2, o.ref), o.op(bx2, by2), o.name+"/fill-vs-fill")
		}
	}
}

// TestBinopAbsorbingExtremes checks the degenerate all-fill inputs the fast
// path handles in O(1) per run.
func TestBinopAbsorbingExtremes(t *testing.T) {
	const n = 31 * 100000
	zeros, ones := New(), New()
	zeros.AppendRun(0, n)
	ones.AppendRun(1, n)
	sparse := New()
	sparse.Add(5)
	sparse.Add(31 * 50000)
	sparse.Extend(n)

	if got := And(zeros, sparse); got.Any() || got.Len() != n {
		t.Fatalf("And(zeros, x) = %v", got)
	}
	if got := And(sparse, zeros); got.Any() || got.Len() != n {
		t.Fatalf("And(x, zeros) = %v", got)
	}
	if got := Or(ones, sparse); got.Count() != n || got.Len() != n {
		t.Fatalf("Or(ones, x) = %v", got)
	}
	if got := AndNot(sparse, ones); got.Any() {
		t.Fatalf("AndNot(x, ones) = %v", got)
	}
	if got := And(ones, sparse); !Equal(got, sparse) {
		t.Fatalf("And(ones, x) != x: %v", got)
	}
	// The absorbing results must stay maximally compressed.
	if got := And(zeros, sparse); got.Words() > 2 {
		t.Fatalf("And(zeros, x) not re-compressed: %d words", got.Words())
	}
}

func TestOrAllPMatchesOrAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, count := range []int{0, 1, 2, 3, 8, 57} {
		var ms []*Bitmap
		for i := 0; i < count; i++ {
			ms = append(ms, runnyBits(rng, 31*(10+rng.Intn(90))).bitmap())
		}
		want := OrAll(ms)
		for _, parallelism := range []int{0, 1, 2, 5, 16} {
			got := OrAllP(ms, parallelism)
			if !Equal(want, got) {
				t.Fatalf("count=%d parallelism=%d: OrAllP differs from OrAll", count, parallelism)
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

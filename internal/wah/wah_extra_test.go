package wah

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGetBeyondLength(t *testing.T) {
	b := New()
	b.AppendRun(1, 10)
	if b.Get(10) || b.Get(1000) {
		t.Fatal("bits beyond the end must read as zero")
	}
}

func TestReset(t *testing.T) {
	b := New()
	b.AppendRun(1, 1000)
	b.Reset()
	if b.Len() != 0 || b.Count() != 0 {
		t.Fatalf("reset left %d bits", b.Len())
	}
	b.AppendBit(1)
	if b.Len() != 1 || b.Count() != 1 {
		t.Fatal("bitmap unusable after reset")
	}
}

func TestStringAndSize(t *testing.T) {
	b := New()
	b.AppendRun(1, 100)
	s := b.String()
	if !strings.Contains(s, "bits=100") || !strings.Contains(s, "ones=100") {
		t.Fatalf("String()=%q", s)
	}
	if b.SizeBytes() == 0 || b.EncodedSize() <= 16 {
		t.Fatalf("sizes: mem=%d enc=%d", b.SizeBytes(), b.EncodedSize())
	}
}

func TestAppendRunZeroCount(t *testing.T) {
	b := New()
	b.AppendRun(1, 0)
	b.AppendRun(0, 0)
	if b.Len() != 0 {
		t.Fatalf("len=%d", b.Len())
	}
}

func TestFillCoalescing(t *testing.T) {
	// Many adjacent same-value runs must coalesce into one fill word.
	b := New()
	for i := 0; i < 100; i++ {
		b.AppendRun(0, 31)
	}
	if b.Words() != 1 {
		t.Fatalf("words=%d want 1 coalesced fill", b.Words())
	}
	if b.Len() != 3100 {
		t.Fatalf("len=%d", b.Len())
	}
}

func TestAlternatingWorstCase(t *testing.T) {
	// Alternating bits cannot compress; the representation must still be
	// correct and bounded by ~one word per group.
	b := New()
	for i := 0; i < 31*20; i++ {
		b.AppendBit(uint32(i % 2))
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Words() != 20 {
		t.Fatalf("words=%d want 20 literals", b.Words())
	}
	if b.Count() != 31*20/2 {
		t.Fatalf("count=%d", b.Count())
	}
}

func TestOpsAssociativityAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 500
	a := runnyBits(rng, n).bitmap()
	b := randBits(rng, n, 0.3).bitmap()
	c := runnyBits(rng, n).bitmap()
	if !Equal(Or(Or(a, b), c), Or(a, Or(b, c))) {
		t.Fatal("OR not associative")
	}
	if !Equal(And(And(a, b), c), And(a, And(b, c))) {
		t.Fatal("AND not associative")
	}
	zero := New()
	zero.Extend(uint64(n))
	if !Equal(Or(a, zero), a) {
		t.Fatal("OR identity broken")
	}
	if And(a, zero).Count() != 0 {
		t.Fatal("AND annihilator broken")
	}
	if !Equal(Xor(a, a), zero) {
		t.Fatal("XOR self-inverse broken")
	}
	if !Equal(AndNot(a, zero), a) {
		t.Fatal("ANDNOT identity broken")
	}
}

func TestDistributivity(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 700
	a := runnyBits(rng, n).bitmap()
	b := randBits(rng, n, 0.4).bitmap()
	c := runnyBits(rng, n).bitmap()
	// a AND (b OR c) == (a AND b) OR (a AND c)
	if !Equal(And(a, Or(b, c)), Or(And(a, b), And(a, c))) {
		t.Fatal("distributivity broken")
	}
}

func TestUnequalLengthZeroPadding(t *testing.T) {
	short := New()
	short.AppendRun(1, 10)
	long := New()
	long.AppendRun(0, 100)
	long.AppendRun(1, 100)
	or := Or(short, long)
	if or.Len() != 200 {
		t.Fatalf("len=%d", or.Len())
	}
	if or.Count() != 110 {
		t.Fatalf("count=%d", or.Count())
	}
	and := And(short, long)
	if and.Len() != 200 || and.Count() != 0 {
		t.Fatalf("and len=%d count=%d", and.Len(), and.Count())
	}
}

func TestFirstOneAfterLongZeroFill(t *testing.T) {
	b := New()
	b.AppendRun(0, 50_000_000)
	b.AppendBit(1)
	p, ok := b.FirstOne()
	if !ok || p != 50_000_000 {
		t.Fatalf("FirstOne=%d,%v", p, ok)
	}
	// The scan must not have needed to expand the fill: it is 3 words.
	if b.Words() > 3 {
		t.Fatalf("words=%d", b.Words())
	}
}

func TestFilterPositionsDenseRuns(t *testing.T) {
	// A bitmap that is one giant one-run filtered by every 7th position.
	b := New()
	b.AppendRun(1, 10_000)
	var positions []uint64
	for p := uint64(0); p < 10_000; p += 7 {
		positions = append(positions, p)
	}
	got := FilterPositions(b, positions)
	if got.Len() != uint64(len(positions)) || got.Count() != uint64(len(positions)) {
		t.Fatalf("len=%d count=%d want %d", got.Len(), got.Count(), len(positions))
	}
}

package rowstore

import (
	"encoding/binary"
	"sort"
)

// maxKeys is the fan-out of B+tree nodes.
const maxKeys = 64

// BTree is an in-memory B+tree with string keys and opaque byte payloads.
// Duplicate keys are allowed and preserved in insertion order. It backs
// both secondary indexes (key = column value, payload = RowID) and
// B-tree-clustered table storage in the SQLite-like profile (key = rowid,
// payload = tuple bytes).
type BTree struct {
	root *bnode
	size int
}

type bnode struct {
	leaf     bool
	keys     []string
	vals     [][]byte // leaf payloads, parallel to keys
	children []*bnode // internal: len(children) == len(keys)+1
	next     *bnode   // leaf chain
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &bnode{leaf: true}}
}

// Len returns the number of stored entries.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *BTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds an entry. Duplicate keys are kept.
func (t *BTree) Insert(key string, val []byte) {
	sep, right := t.insert(t.root, key, val)
	if right != nil {
		t.root = &bnode{keys: []string{sep}, children: []*bnode{t.root, right}}
	}
	t.size++
}

// insert descends into n; on child split it absorbs the separator, and
// when n itself overflows it returns the new right sibling.
func (t *BTree) insert(n *bnode, key string, val []byte) (string, *bnode) {
	if n.leaf {
		// Upper bound keeps duplicate insertion order stable.
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return t.maybeSplit(n)
	}
	ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	sep, right := t.insert(n.children[ci], key, val)
	if right != nil {
		n.keys = append(n.keys, "")
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
	}
	return t.maybeSplit(n)
}

func (t *BTree) maybeSplit(n *bnode) (string, *bnode) {
	if len(n.keys) <= maxKeys {
		return "", nil
	}
	mid := len(n.keys) / 2
	if n.leaf {
		right := &bnode{leaf: true, next: n.next}
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = right
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right := &bnode{}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// seekLeaf returns the leaf that may contain the first entry >= key and
// the entry index within it.
func (t *BTree) seekLeaf(key string) (*bnode, int) {
	n := t.root
	for !n.leaf {
		// First child whose subtree can contain entries >= key. Because
		// duplicates equal to a separator may remain in the left sibling,
		// descend left of an equal separator and walk forward via the
		// leaf chain.
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		n = n.children[ci]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	return n, i
}

// AscendGE calls yield for every entry with key >= from, in key order
// (duplicates in insertion order), until yield returns false.
func (t *BTree) AscendGE(from string, yield func(key string, val []byte) bool) {
	n, i := t.seekLeaf(from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !yield(n.keys[i], n.vals[i]) {
				return
			}
		}
		n, i = n.next, 0
	}
}

// Ascend calls yield for every entry in key order.
func (t *BTree) Ascend(yield func(key string, val []byte) bool) {
	t.AscendGE("", yield)
}

// Lookup calls yield for every entry with exactly the given key.
func (t *BTree) Lookup(key string, yield func(val []byte) bool) {
	t.AscendGE(key, func(k string, v []byte) bool {
		if k != key {
			return false
		}
		return yield(v)
	})
}

// Contains reports whether at least one entry has the given key.
func (t *BTree) Contains(key string) bool {
	found := false
	t.Lookup(key, func([]byte) bool {
		found = true
		return false
	})
	return found
}

// Delete removes the first entry matching key whose payload equals val
// (nil matches any payload) and reports whether an entry was removed.
// Leaves are not rebalanced: deletions are rare in evolution workloads and
// an underfull leaf only costs space, not correctness.
func (t *BTree) Delete(key string, val []byte) bool {
	n, i := t.seekLeaf(key)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i] != key {
				return false
			}
			if val == nil || string(n.vals[i]) == string(val) {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				t.size--
				return true
			}
		}
		n, i = n.next, 0
	}
	return false
}

// EncodeRowID fixes a RowID into a sortable 6-byte payload.
func EncodeRowID(id RowID) []byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], id.Page)
	binary.BigEndian.PutUint16(b[4:6], id.Slot)
	return b[:]
}

// DecodeRowID reverses EncodeRowID.
func DecodeRowID(b []byte) RowID {
	return RowID{Page: binary.BigEndian.Uint32(b[0:4]), Slot: binary.BigEndian.Uint16(b[4:6])}
}

// OrderedRowKey encodes a sequence number as a fixed-width sortable string
// key, used by B-tree-clustered table storage.
func OrderedRowKey(seq uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	return string(b[:])
}

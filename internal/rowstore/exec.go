package rowstore

import (
	"fmt"
	"sort"
	"strings"
)

// Iterator is a pull-based (volcano-style) tuple iterator. Next returns
// the next tuple or ok=false at end of stream.
type Iterator interface {
	Next() (tuple []string, ok bool, err error)
}

// seqScan streams a table's tuples with a page/slot (or leaf) cursor,
// decoding one tuple per Next call.
type seqScan struct {
	heap *Heap
	page int
	slot int

	leaf    *bnode
	leafIdx int
}

// NewSeqScan returns a full-table scan over t.
func NewSeqScan(t *Table) Iterator {
	s := &seqScan{}
	switch t.kind {
	case HeapStorage:
		s.heap = t.heap
	case BTreeStorage:
		s.leaf, s.leafIdx = t.tree.seekLeaf("")
	}
	return s
}

func (s *seqScan) Next() ([]string, bool, error) {
	if s.heap != nil {
		for s.page < len(s.heap.pages) {
			p := s.heap.pages[s.page]
			if s.slot >= p.numSlots() {
				s.page++
				s.slot = 0
				continue
			}
			rec, err := p.record(s.slot)
			if err != nil {
				return nil, false, err
			}
			s.slot++
			tuple, err := DecodeTuple(rec)
			return tuple, err == nil, err
		}
		return nil, false, nil
	}
	for s.leaf != nil {
		if s.leafIdx >= len(s.leaf.keys) {
			s.leaf, s.leafIdx = s.leaf.next, 0
			continue
		}
		rec := s.leaf.vals[s.leafIdx]
		s.leafIdx++
		tuple, err := DecodeTuple(rec)
		return tuple, err == nil, err
	}
	return nil, false, nil
}

// project narrows tuples to a subset of fields.
type project struct {
	in   Iterator
	idxs []int
}

// NewProject returns an iterator emitting only the fields at idxs, in that
// order.
func NewProject(in Iterator, idxs []int) Iterator { return &project{in: in, idxs: idxs} }

func (p *project) Next() ([]string, bool, error) {
	t, ok, err := p.in.Next()
	if !ok || err != nil {
		return nil, ok, err
	}
	out := make([]string, len(p.idxs))
	for i, idx := range p.idxs {
		out[i] = t[idx]
	}
	return out, true, nil
}

// filter drops tuples failing pred.
type filter struct {
	in   Iterator
	pred func([]string) bool
}

// NewFilter returns an iterator keeping only tuples satisfying pred.
func NewFilter(in Iterator, pred func([]string) bool) Iterator {
	return &filter{in: in, pred: pred}
}

func (f *filter) Next() ([]string, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if !ok || err != nil {
			return nil, ok, err
		}
		if f.pred(t) {
			return t, true, nil
		}
	}
}

// hashDistinct deduplicates with a hash set — the commercial profile's
// DISTINCT.
type hashDistinct struct {
	in   Iterator
	seen map[string]bool
}

// NewHashDistinct returns a hash-based duplicate-eliminating iterator.
func NewHashDistinct(in Iterator) Iterator {
	return &hashDistinct{in: in, seen: make(map[string]bool)}
}

func (d *hashDistinct) Next() ([]string, bool, error) {
	for {
		t, ok, err := d.in.Next()
		if !ok || err != nil {
			return nil, ok, err
		}
		k := strings.Join(t, "\x00")
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t, true, nil
	}
}

// sortDistinct deduplicates by sorting the full input first — SQLite's
// temp-B-tree DISTINCT, slower and fully blocking.
type sortDistinct struct {
	in     Iterator
	sorted [][]string
	pos    int
	primed bool
}

// NewSortDistinct returns a sort-based duplicate-eliminating iterator.
func NewSortDistinct(in Iterator) Iterator { return &sortDistinct{in: in} }

func (d *sortDistinct) prime() error {
	var all [][]string
	for {
		t, ok, err := d.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		all = append(all, t)
	}
	sort.Slice(all, func(a, b int) bool {
		for i := range all[a] {
			if all[a][i] != all[b][i] {
				return all[a][i] < all[b][i]
			}
		}
		return false
	})
	for i, t := range all {
		if i == 0 || !equalTuple(t, all[i-1]) {
			d.sorted = append(d.sorted, t)
		}
	}
	d.primed = true
	return nil
}

func equalTuple(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (d *sortDistinct) Next() ([]string, bool, error) {
	if !d.primed {
		if err := d.prime(); err != nil {
			return nil, false, err
		}
	}
	if d.pos >= len(d.sorted) {
		return nil, false, nil
	}
	t := d.sorted[d.pos]
	d.pos++
	return t, true, nil
}

// hashJoin is a classic build/probe equi-join: build a hash table on the
// right input, probe with the left, emit combined tuples.
type hashJoin struct {
	left           Iterator
	leftKeys       []int
	build          map[string][][]string
	combine        func(l, r []string) []string
	pendingL       []string
	pendingMatches [][]string
	pendingIdx     int
}

// NewHashJoin joins left and right on the given key field positions.
// combine merges a matching pair into an output tuple.
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []int, combine func(l, r []string) []string) (Iterator, error) {
	build := make(map[string][][]string)
	for {
		t, ok, err := right.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		k := joinKey(t, rightKeys)
		build[k] = append(build[k], t)
	}
	return &hashJoin{left: left, leftKeys: leftKeys, build: build, combine: combine}, nil
}

func joinKey(t []string, keys []int) string {
	if len(keys) == 1 {
		return t[keys[0]]
	}
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(t[k])
		sb.WriteByte(0)
	}
	return sb.String()
}

func (j *hashJoin) Next() ([]string, bool, error) {
	for {
		if j.pendingIdx < len(j.pendingMatches) {
			r := j.pendingMatches[j.pendingIdx]
			j.pendingIdx++
			return j.combine(j.pendingL, r), true, nil
		}
		l, ok, err := j.left.Next()
		if !ok || err != nil {
			return nil, ok, err
		}
		j.pendingL = l
		j.pendingMatches = j.build[joinKey(l, j.leftKeys)]
		j.pendingIdx = 0
	}
}

// indexNestedLoopJoin probes a B+tree index on the inner table once per
// outer tuple — the SQLite-like join strategy.
type indexNestedLoopJoin struct {
	outer          Iterator
	outerKeys      []int
	inner          *Table
	innerCols      []string
	combine        func(o, i []string) []string
	pendingO       []string
	pendingMatches [][]string
	pendingIdx     int
}

// NewIndexNestedLoopJoin joins outer tuples against inner via an index on
// innerCols, which is built on demand when absent (SQLite's automatic
// index).
func NewIndexNestedLoopJoin(outer Iterator, outerKeys []int, inner *Table, innerCols []string, combine func(o, i []string) []string) (Iterator, error) {
	if !inner.HasIndex(innerCols...) {
		if err := inner.BuildIndex(innerCols...); err != nil {
			return nil, err
		}
	}
	return &indexNestedLoopJoin{outer: outer, outerKeys: outerKeys, inner: inner, innerCols: innerCols, combine: combine}, nil
}

func (j *indexNestedLoopJoin) Next() ([]string, bool, error) {
	for {
		if j.pendingIdx < len(j.pendingMatches) {
			r := j.pendingMatches[j.pendingIdx]
			j.pendingIdx++
			return j.combine(j.pendingO, r), true, nil
		}
		o, ok, err := j.outer.Next()
		if !ok || err != nil {
			return nil, ok, err
		}
		values := make([]string, len(j.outerKeys))
		for i, k := range j.outerKeys {
			values[i] = o[k]
		}
		j.pendingO = o
		j.pendingMatches = j.pendingMatches[:0]
		err = j.inner.IndexLookup(j.innerCols, values, func(t []string) bool {
			j.pendingMatches = append(j.pendingMatches, t)
			return true
		})
		if err != nil {
			return nil, false, err
		}
		j.pendingIdx = 0
	}
}

// InsertInto drains it into table t, returning the number of tuples
// inserted.
func InsertInto(t *Table, it Iterator) (uint64, error) {
	var n uint64
	for {
		tuple, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		if err := t.Insert(tuple); err != nil {
			return n, fmt.Errorf("rowstore: inserting into %q: %w", t.Name(), err)
		}
		n++
	}
}

// Collect drains an iterator into a slice; a test and tooling helper.
func Collect(it Iterator) ([][]string, error) {
	var out [][]string
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

package rowstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTupleCodec(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"a"},
		{"hello", "world", ""},
		{"with\x00nul", "ünïcødé", strings.Repeat("x", 300)},
	}
	for _, fields := range cases {
		got, err := DecodeTuple(EncodeTuple(fields))
		if err != nil {
			t.Fatalf("%v: %v", fields, err)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Fatalf("round trip: got %v want %v", got, fields)
		}
	}
}

func TestDecodeTupleCorrupt(t *testing.T) {
	for _, rec := range [][]byte{{}, {5}, {1, 0, 10, 0, 'x'}} {
		if _, err := DecodeTuple(rec); err == nil {
			t.Fatalf("corrupt record %v decoded without error", rec)
		}
	}
}

func TestHeapInsertGetScan(t *testing.T) {
	h := NewHeap()
	var ids []RowID
	const n = 5000
	for i := 0; i < n; i++ {
		id, err := h.Insert(EncodeTuple([]string{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)}))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if h.Count() != n {
		t.Fatalf("count=%d", h.Count())
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	// Random access.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		rec, err := h.Get(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		tuple, err := DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		if tuple[0] != fmt.Sprintf("k%d", i) {
			t.Fatalf("Get(%d)=%v", i, tuple)
		}
	}
	// Scan order matches insert order.
	var seen int
	h.Scan(func(id RowID, rec []byte) bool {
		tuple, err := DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		if tuple[0] != fmt.Sprintf("k%d", seen) {
			t.Fatalf("scan out of order at %d: %v", seen, tuple)
		}
		seen++
		return true
	})
	if seen != n {
		t.Fatalf("scan visited %d", seen)
	}
}

func TestHeapRejectsOversizedRecord(t *testing.T) {
	h := NewHeap()
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestBTreeSortedIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := NewBTree()
	n := 10000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", rng.Intn(100000))
		tree.Insert(keys[i], []byte(keys[i]))
	}
	if tree.Len() != n {
		t.Fatalf("len=%d", tree.Len())
	}
	if tree.Height() < 2 {
		t.Fatalf("height=%d, tree did not split", tree.Height())
	}
	sort.Strings(keys)
	var got []string
	tree.Ascend(func(k string, v []byte) bool {
		if k != string(v) {
			t.Fatalf("payload mismatch at %q", k)
		}
		got = append(got, k)
		return true
	})
	if !reflect.DeepEqual(got, keys) {
		t.Fatal("iteration order is not sorted insert set")
	}
}

func TestBTreeDuplicatesStableOrder(t *testing.T) {
	tree := NewBTree()
	for i := 0; i < 500; i++ {
		tree.Insert("dup", []byte(fmt.Sprintf("%06d", i)))
		tree.Insert(fmt.Sprintf("other-%d", i), []byte("x"))
	}
	var vals []string
	tree.Lookup("dup", func(v []byte) bool {
		vals = append(vals, string(v))
		return true
	})
	if len(vals) != 500 {
		t.Fatalf("found %d duplicates", len(vals))
	}
	for i, v := range vals {
		if v != fmt.Sprintf("%06d", i) {
			t.Fatalf("duplicate order broken at %d: %s", i, v)
		}
	}
}

func TestBTreeAscendGE(t *testing.T) {
	tree := NewBTree()
	for i := 0; i < 1000; i += 2 {
		tree.Insert(fmt.Sprintf("%04d", i), nil)
	}
	var first string
	tree.AscendGE("0501", func(k string, v []byte) bool {
		first = k
		return false
	})
	if first != "0502" {
		t.Fatalf("AscendGE gave %q want 0502", first)
	}
}

func TestBTreeDelete(t *testing.T) {
	tree := NewBTree()
	for i := 0; i < 300; i++ {
		tree.Insert(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	if !tree.Delete("k100", nil) {
		t.Fatal("delete failed")
	}
	if tree.Delete("k100", nil) {
		t.Fatal("double delete succeeded")
	}
	if tree.Contains("k100") {
		t.Fatal("deleted key still present")
	}
	if tree.Len() != 299 {
		t.Fatalf("len=%d", tree.Len())
	}
	// Delete by payload among duplicates.
	tree.Insert("dup", []byte("a"))
	tree.Insert("dup", []byte("b"))
	if !tree.Delete("dup", []byte("b")) {
		t.Fatal("payload delete failed")
	}
	var vals []string
	tree.Lookup("dup", func(v []byte) bool { vals = append(vals, string(v)); return true })
	if len(vals) != 1 || vals[0] != "a" {
		t.Fatalf("after payload delete: %v", vals)
	}
}

func TestQuickBTreeMatchesSortedSlice(t *testing.T) {
	f := func(raw []uint16) bool {
		tree := NewBTree()
		keys := make([]string, len(raw))
		for i, r := range raw {
			keys[i] = fmt.Sprintf("%05d", r%3000)
			tree.Insert(keys[i], nil)
		}
		sort.Strings(keys)
		got := make([]string, 0, len(keys))
		tree.Ascend(func(k string, v []byte) bool { got = append(got, k); return true })
		return reflect.DeepEqual(got, keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRowIDCodec(t *testing.T) {
	id := RowID{Page: 123456, Slot: 789}
	if got := DecodeRowID(EncodeRowID(id)); got != id {
		t.Fatalf("got %v want %v", got, id)
	}
}

func TestOrderedRowKeySorts(t *testing.T) {
	prev := OrderedRowKey(0)
	for _, seq := range []uint64{1, 2, 255, 256, 65535, 1 << 32} {
		k := OrderedRowKey(seq)
		if !(prev < k) {
			t.Fatalf("OrderedRowKey not monotone at %d", seq)
		}
		prev = k
	}
}

func makeTable(t *testing.T, kind StorageKind, n int, distinct int) *Table {
	t.Helper()
	tab, err := NewTable("R", []string{"A", "B", "C"}, kind)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		k := rng.Intn(distinct)
		err := tab.Insert([]string{fmt.Sprintf("a%d", k), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", k)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestTableInsertScanBothStorages(t *testing.T) {
	for _, kind := range []StorageKind{HeapStorage, BTreeStorage} {
		tab := makeTable(t, kind, 2000, 50)
		if tab.NumRows() != 2000 {
			t.Fatalf("%v: rows=%d", kind, tab.NumRows())
		}
		var count int
		first := true
		err := tab.Scan(func(tuple []string) bool {
			if first && tuple[1] != "b0" {
				t.Fatalf("%v: scan order broken: %v", kind, tuple)
			}
			first = false
			count++
			return true
		})
		if err != nil || count != 2000 {
			t.Fatalf("%v: scan count=%d err=%v", kind, count, err)
		}
	}
}

func TestTableIndexLookup(t *testing.T) {
	for _, kind := range []StorageKind{HeapStorage, BTreeStorage} {
		tab := makeTable(t, kind, 1000, 10)
		if err := tab.BuildIndex("A"); err != nil {
			t.Fatal(err)
		}
		if !tab.HasIndex("A") {
			t.Fatal("index not registered")
		}
		var viaIndex int
		err := tab.IndexLookup([]string{"A"}, []string{"a3"}, func(tuple []string) bool {
			if tuple[0] != "a3" {
				t.Fatalf("%v: index returned %v", kind, tuple)
			}
			viaIndex++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		var viaScan int
		tab.Scan(func(tuple []string) bool {
			if tuple[0] == "a3" {
				viaScan++
			}
			return true
		})
		if viaIndex != viaScan {
			t.Fatalf("%v: index found %d rows, scan found %d", kind, viaIndex, viaScan)
		}
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tab, _ := NewTable("T", []string{"K", "V"}, HeapStorage)
	if err := tab.BuildIndex("K"); err != nil {
		t.Fatal(err)
	}
	tab.Insert([]string{"x", "1"})
	tab.Insert([]string{"x", "2"})
	var got []string
	tab.IndexLookup([]string{"K"}, []string{"x"}, func(tuple []string) bool {
		got = append(got, tuple[1])
		return true
	})
	if len(got) != 2 {
		t.Fatalf("index missed inserts: %v", got)
	}
}

func TestExecutorPipeline(t *testing.T) {
	tab := makeTable(t, HeapStorage, 500, 5)
	// SELECT DISTINCT A, C FROM R WHERE A != 'a0'
	idxs, _ := tab.ColumnIndexes([]string{"A", "C"})
	it := NewHashDistinct(NewProject(NewFilter(NewSeqScan(tab), func(tu []string) bool { return tu[0] != "a0" }), idxs))
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // a1..a4, each with its functionally dependent c
		t.Fatalf("distinct rows=%d: %v", len(rows), rows)
	}
	// Sort-based distinct agrees.
	it2 := NewSortDistinct(NewProject(NewFilter(NewSeqScan(tab), func(tu []string) bool { return tu[0] != "a0" }), idxs))
	rows2, err := Collect(it2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != len(rows) {
		t.Fatalf("sort distinct %d vs hash distinct %d", len(rows2), len(rows))
	}
}

func joinReference(s, t *Table, common []string) map[string]int {
	sKeys, _ := s.ColumnIndexes(common)
	tKeys, _ := t.ColumnIndexes(common)
	isCommon := map[string]bool{}
	for _, c := range common {
		isCommon[c] = true
	}
	var tExtraIdx []int
	for i, c := range t.Columns() {
		if !isCommon[c] {
			tExtraIdx = append(tExtraIdx, i)
		}
	}
	out := map[string]int{}
	s.Scan(func(st []string) bool {
		t.Scan(func(tt []string) bool {
			for i := range sKeys {
				if st[sKeys[i]] != tt[tKeys[i]] {
					return true
				}
			}
			row := append([]string{}, st...)
			for _, i := range tExtraIdx {
				row = append(row, tt[i])
			}
			out[strings.Join(row, "\x00")]++
			return true
		})
		return true
	})
	return out
}

func collectMultiset(t *testing.T, it Iterator) map[string]int {
	t.Helper()
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, r := range rows {
		out[strings.Join(r, "\x00")]++
	}
	return out
}

func TestJoinsAgreeWithReference(t *testing.T) {
	s, _ := NewTable("S", []string{"K", "B"}, HeapStorage)
	tt, _ := NewTable("T", []string{"K", "C"}, HeapStorage)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		s.Insert([]string{fmt.Sprintf("k%d", rng.Intn(20)), fmt.Sprintf("b%d", i)})
	}
	for i := 0; i < 40; i++ {
		tt.Insert([]string{fmt.Sprintf("k%d", rng.Intn(25)), fmt.Sprintf("c%d", i)})
	}
	want := joinReference(s, tt, []string{"K"})
	combine := func(l, r []string) []string { return append(append([]string{}, l...), r[1]) }

	hj, err := NewHashJoin(NewSeqScan(s), NewSeqScan(tt), []int{0}, []int{0}, combine)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectMultiset(t, hj); !reflect.DeepEqual(got, want) {
		t.Fatalf("hash join mismatch: %d vs %d tuples", len(got), len(want))
	}

	inlj, err := NewIndexNestedLoopJoin(NewSeqScan(s), []int{0}, tt, []string{"K"}, combine)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectMultiset(t, inlj); !reflect.DeepEqual(got, want) {
		t.Fatalf("index join mismatch")
	}
}

func TestDecomposeQueryLevelAllProfiles(t *testing.T) {
	for _, profile := range []Profile{ProfileCommercial, ProfileCommercialIndexed, ProfileSQLiteLike} {
		db := NewDB()
		r, err := db.Create("R", []string{"A", "B", "C"}, profile.storage())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		cOf := map[string]string{}
		for i := 0; i < 800; i++ {
			a := fmt.Sprintf("a%d", rng.Intn(40))
			if _, ok := cOf[a]; !ok {
				cOf[a] = fmt.Sprintf("c%d", rng.Intn(7))
			}
			r.Insert([]string{a, fmt.Sprintf("b%d", i), cOf[a]})
		}
		stats, err := DecomposeQueryLevel(db, "R", "S", []string{"A", "B"}, "T", []string{"A", "C"}, []string{"A"}, profile)
		if err != nil {
			t.Fatalf("%v: %v", profile, err)
		}
		s, _ := db.Get("S")
		tt, _ := db.Get("T")
		if s.NumRows() != 800 {
			t.Fatalf("%v: S rows=%d", profile, s.NumRows())
		}
		if tt.NumRows() != uint64(len(cOf)) {
			t.Fatalf("%v: T rows=%d want %d", profile, tt.NumRows(), len(cOf))
		}
		if stats.RowsRead != 1600 || stats.RowsWritten != 800+uint64(len(cOf)) {
			t.Fatalf("%v: stats=%+v", profile, stats)
		}
		if profile == ProfileCommercialIndexed {
			if !s.HasIndex("A") || !tt.HasIndex("A") {
				t.Fatalf("%v: indexes not built", profile)
			}
			if stats.IndexBuilds != 2 {
				t.Fatalf("%v: index builds=%d", profile, stats.IndexBuilds)
			}
		}

		// Merge back and compare with the original tuple multiset.
		if _, err := MergeQueryLevel(db, "S", "T", "R2", []string{"A"}, profile); err != nil {
			t.Fatalf("%v: %v", profile, err)
		}
		r2, _ := db.Get("R2")
		if r2.NumRows() != 800 {
			t.Fatalf("%v: merged rows=%d", profile, r2.NumRows())
		}
		orig := map[string]int{}
		r.Scan(func(tu []string) bool { orig[strings.Join(tu, "\x00")]++; return true })
		back := map[string]int{}
		r2.Scan(func(tu []string) bool { back[strings.Join(tu, "\x00")]++; return true })
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("%v: round trip lost tuples", profile)
		}
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	if _, err := db.Create("T", []string{"A"}, HeapStorage); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("T", []string{"A"}, HeapStorage); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if _, err := db.Get("missing"); err == nil {
		t.Fatal("get of missing table should fail")
	}
	if err := db.Drop("T"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("T"); err == nil {
		t.Fatal("double drop should fail")
	}
}

// Package rowstore implements a row-oriented storage engine: slotted-page
// heap files, B+tree indexes, and a volcano-style executor. It is the
// behavioral stand-in for the paper's query-level baselines — the
// commercial row-store RDBMS ("C", "C+I") and SQLite ("S") in Figure 3 —
// so that query-level data evolution (materialize query results, reload,
// rebuild indexes) is measured against a real storage path: every tuple is
// encoded into pages on insert and decoded on scan.
package rowstore

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of a slotted page in bytes.
const PageSize = 8192

const pageHeaderSize = 4 // u16 slot count, u16 free-space offset
const slotSize = 4       // u16 record offset, u16 record length

// page is a slotted page: records grow from the header towards the end,
// the slot directory grows from the end backwards.
//
//	[ header | record 0 | record 1 | ... free ... | slot 1 | slot 0 ]
type page struct {
	buf []byte
}

func newPage() *page {
	p := &page{buf: make([]byte, PageSize)}
	p.setNumSlots(0)
	p.setFreeStart(pageHeaderSize)
	return p
}

func (p *page) numSlots() int      { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n)) }

func (p *page) slotOffset(i int) int { return PageSize - (i+1)*slotSize }

// freeSpace returns the bytes available for one more record plus its slot.
func (p *page) freeSpace() int {
	return p.slotOffset(p.numSlots()) - p.freeStart()
}

// insert stores a record and returns its slot number. Returns false when
// the page cannot hold it.
func (p *page) insert(rec []byte) (int, bool) {
	if len(rec)+slotSize > p.freeSpace() {
		return 0, false
	}
	off := p.freeStart()
	copy(p.buf[off:], rec)
	slot := p.numSlots()
	so := p.slotOffset(slot)
	binary.LittleEndian.PutUint16(p.buf[so:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[so+2:], uint16(len(rec)))
	p.setNumSlots(slot + 1)
	p.setFreeStart(off + len(rec))
	return slot, true
}

// record returns the bytes of the record in the given slot. The returned
// slice aliases the page buffer.
func (p *page) record(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, fmt.Errorf("rowstore: slot %d out of range (%d slots)", slot, p.numSlots())
	}
	so := p.slotOffset(slot)
	off := int(binary.LittleEndian.Uint16(p.buf[so:]))
	length := int(binary.LittleEndian.Uint16(p.buf[so+2:]))
	return p.buf[off : off+length], nil
}

// EncodeTuple serializes field values as length-prefixed byte strings.
func EncodeTuple(fields []string) []byte {
	size := 2
	for _, f := range fields {
		size += 2 + len(f)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fields)))
	for _, f := range fields {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f)))
		buf = append(buf, f...)
	}
	return buf
}

// DecodeTuple parses a record produced by EncodeTuple.
func DecodeTuple(rec []byte) ([]string, error) {
	if len(rec) < 2 {
		return nil, fmt.Errorf("rowstore: record too short (%d bytes)", len(rec))
	}
	n := int(binary.LittleEndian.Uint16(rec[0:2]))
	out := make([]string, 0, n)
	pos := 2
	for i := 0; i < n; i++ {
		if pos+2 > len(rec) {
			return nil, fmt.Errorf("rowstore: truncated field %d header", i)
		}
		l := int(binary.LittleEndian.Uint16(rec[pos:]))
		pos += 2
		if pos+l > len(rec) {
			return nil, fmt.Errorf("rowstore: truncated field %d body", i)
		}
		out = append(out, string(rec[pos:pos+l]))
		pos += l
	}
	return out, nil
}

// RowID addresses a record in a heap file.
type RowID struct {
	Page uint32
	Slot uint16
}

// Heap is an append-only slotted-page heap file.
type Heap struct {
	pages []*page
	count uint64
}

// NewHeap returns an empty heap file.
func NewHeap() *Heap { return &Heap{} }

// Count returns the number of stored records.
func (h *Heap) Count() uint64 { return h.count }

// NumPages returns the number of allocated pages.
func (h *Heap) NumPages() int { return len(h.pages) }

// Insert appends a record and returns its RowID.
func (h *Heap) Insert(rec []byte) (RowID, error) {
	if len(rec)+slotSize+pageHeaderSize > PageSize {
		return RowID{}, fmt.Errorf("rowstore: record of %d bytes exceeds page size", len(rec))
	}
	if n := len(h.pages); n > 0 {
		if slot, ok := h.pages[n-1].insert(rec); ok {
			h.count++
			return RowID{Page: uint32(n - 1), Slot: uint16(slot)}, nil
		}
	}
	p := newPage()
	slot, _ := p.insert(rec)
	h.pages = append(h.pages, p)
	h.count++
	return RowID{Page: uint32(len(h.pages) - 1), Slot: uint16(slot)}, nil
}

// Get returns the record at the given RowID. The returned slice aliases
// page memory; callers must not modify it.
func (h *Heap) Get(id RowID) ([]byte, error) {
	if int(id.Page) >= len(h.pages) {
		return nil, fmt.Errorf("rowstore: page %d out of range (%d pages)", id.Page, len(h.pages))
	}
	return h.pages[id.Page].record(int(id.Slot))
}

// Scan calls yield for every record in storage order, stopping early when
// yield returns false.
func (h *Heap) Scan(yield func(id RowID, rec []byte) bool) {
	for pi, p := range h.pages {
		for s := 0; s < p.numSlots(); s++ {
			rec, err := p.record(s)
			if err != nil {
				return
			}
			if !yield(RowID{Page: uint32(pi), Slot: uint16(s)}, rec) {
				return
			}
		}
	}
}

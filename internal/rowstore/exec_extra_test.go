package rowstore

import (
	"fmt"
	"testing"
)

func TestFilterIterator(t *testing.T) {
	tab, _ := NewTable("T", []string{"K"}, HeapStorage)
	for i := 0; i < 100; i++ {
		tab.Insert([]string{fmt.Sprintf("%03d", i)})
	}
	it := NewFilter(NewSeqScan(tab), func(tu []string) bool { return tu[0] < "010" })
	rows, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestProjectReorders(t *testing.T) {
	tab, _ := NewTable("T", []string{"A", "B", "C"}, HeapStorage)
	tab.Insert([]string{"1", "2", "3"})
	rows, err := Collect(NewProject(NewSeqScan(tab), []int{2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "3" || rows[0][1] != "1" {
		t.Fatalf("rows=%v", rows)
	}
}

func TestSeqScanBTreeStorage(t *testing.T) {
	tab, _ := NewTable("T", []string{"K"}, BTreeStorage)
	const n = 3000 // enough to split leaves
	for i := 0; i < n; i++ {
		tab.Insert([]string{fmt.Sprintf("%05d", i)})
	}
	rows, err := Collect(NewSeqScan(tab))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("rows=%d", len(rows))
	}
	// Insertion order preserved (clustered by rowid).
	for i, r := range rows {
		if r[0] != fmt.Sprintf("%05d", i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestHashJoinEmptyBuild(t *testing.T) {
	s, _ := NewTable("S", []string{"K"}, HeapStorage)
	s.Insert([]string{"x"})
	tt, _ := NewTable("T", []string{"K"}, HeapStorage)
	join, err := NewHashJoin(NewSeqScan(s), NewSeqScan(tt), []int{0}, []int{0},
		func(l, r []string) []string { return l })
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestIndexLookupWithoutIndexFails(t *testing.T) {
	tab, _ := NewTable("T", []string{"K"}, HeapStorage)
	tab.Insert([]string{"x"})
	err := tab.IndexLookup([]string{"K"}, []string{"x"}, func([]string) bool { return true })
	if err == nil {
		t.Fatal("expected no-index error")
	}
}

func TestBuildIndexUnknownColumn(t *testing.T) {
	tab, _ := NewTable("T", []string{"K"}, HeapStorage)
	if err := tab.BuildIndex("Nope"); err == nil {
		t.Fatal("expected unknown column error")
	}
}

func TestCompositeIndex(t *testing.T) {
	tab, _ := NewTable("T", []string{"A", "B", "V"}, HeapStorage)
	tab.Insert([]string{"x", "y", "1"})
	tab.Insert([]string{"x", "z", "2"})
	tab.Insert([]string{"x", "y", "3"})
	if err := tab.BuildIndex("A", "B"); err != nil {
		t.Fatal(err)
	}
	var got []string
	err := tab.IndexLookup([]string{"A", "B"}, []string{"x", "y"}, func(tu []string) bool {
		got = append(got, tu[2])
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "1" || got[1] != "3" {
		t.Fatalf("got=%v", got)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	tab, _ := NewTable("T", []string{"A", "B"}, HeapStorage)
	if err := tab.Insert([]string{"only-one"}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestTableAccessors(t *testing.T) {
	tab, err := NewTable("T", []string{"A", "B"}, BTreeStorage)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "T" || tab.StorageKind() != BTreeStorage {
		t.Fatal("accessors wrong")
	}
	if _, err := tab.ColumnIndex("Nope"); err == nil {
		t.Fatal("expected unknown column")
	}
	if _, err := NewTable("T", nil, HeapStorage); err == nil {
		t.Fatal("empty schema should fail")
	}
	if _, err := NewTable("T", []string{"A", "A"}, HeapStorage); err == nil {
		t.Fatal("duplicate column should fail")
	}
}

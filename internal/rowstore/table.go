package rowstore

import (
	"fmt"
	"strings"
)

// StorageKind selects the physical layout of a table.
type StorageKind int

const (
	// HeapStorage appends tuples to slotted pages — the layout of the
	// commercial row-store profiles.
	HeapStorage StorageKind = iota
	// BTreeStorage keeps tuples in a B-tree clustered by insertion order,
	// the way SQLite stores tables; every insert pays a tree descent.
	BTreeStorage
)

// Table is a row-oriented table with optional secondary B+tree indexes.
type Table struct {
	name    string
	columns []string
	byName  map[string]int
	kind    StorageKind
	heap    *Heap
	tree    *BTree
	seq     uint64
	indexes map[string]*BTree // indexed column set (joined names) -> index
}

// NewTable creates an empty table with the given physical layout.
func NewTable(name string, columns []string, kind StorageKind) (*Table, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("rowstore: table %q needs at least one column", name)
	}
	t := &Table{
		name:    name,
		columns: append([]string(nil), columns...),
		byName:  make(map[string]int, len(columns)),
		kind:    kind,
		indexes: make(map[string]*BTree),
	}
	for i, c := range columns {
		if _, dup := t.byName[c]; dup {
			return nil, fmt.Errorf("rowstore: table %q declares column %q twice", name, c)
		}
		t.byName[c] = i
	}
	switch kind {
	case HeapStorage:
		t.heap = NewHeap()
	case BTreeStorage:
		t.tree = NewBTree()
	default:
		return nil, fmt.Errorf("rowstore: unknown storage kind %d", kind)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in schema order.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// NumRows returns the number of stored tuples.
func (t *Table) NumRows() uint64 {
	if t.kind == HeapStorage {
		return t.heap.Count()
	}
	return uint64(t.tree.Len())
}

// StorageKind returns the physical layout.
func (t *Table) StorageKind() StorageKind { return t.kind }

// ColumnIndex returns the schema position of a column.
func (t *Table) ColumnIndex(name string) (int, error) {
	if i, ok := t.byName[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("rowstore: table %q has no column %q", t.name, name)
}

// ColumnIndexes resolves several column names at once.
func (t *Table) ColumnIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := t.ColumnIndex(n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// Insert stores one tuple, updating all existing indexes (the per-row
// index maintenance cost of loading into an indexed table).
func (t *Table) Insert(tuple []string) error {
	if len(tuple) != len(t.columns) {
		return fmt.Errorf("rowstore: tuple has %d fields, table %q has %d columns", len(tuple), t.name, len(t.columns))
	}
	rec := EncodeTuple(tuple)
	var ref []byte
	switch t.kind {
	case HeapStorage:
		id, err := t.heap.Insert(rec)
		if err != nil {
			return err
		}
		ref = EncodeRowID(id)
	case BTreeStorage:
		key := OrderedRowKey(t.seq)
		t.seq++
		t.tree.Insert(key, rec)
		ref = []byte(key)
	}
	for cols, idx := range t.indexes {
		idx.Insert(t.indexKey(strings.Split(cols, "\x1f"), tuple), ref)
	}
	return nil
}

func (t *Table) indexKey(cols []string, tuple []string) string {
	if len(cols) == 1 {
		return tuple[t.byName[cols[0]]]
	}
	var sb strings.Builder
	for _, c := range cols {
		sb.WriteString(tuple[t.byName[c]])
		sb.WriteByte(0)
	}
	return sb.String()
}

// Scan calls yield with every tuple in storage order. The tuple slice is
// freshly decoded per row; callers may keep it.
func (t *Table) Scan(yield func(tuple []string) bool) error {
	var decodeErr error
	switch t.kind {
	case HeapStorage:
		t.heap.Scan(func(_ RowID, rec []byte) bool {
			tuple, err := DecodeTuple(rec)
			if err != nil {
				decodeErr = err
				return false
			}
			return yield(tuple)
		})
	case BTreeStorage:
		t.tree.Ascend(func(_ string, rec []byte) bool {
			tuple, err := DecodeTuple(rec)
			if err != nil {
				decodeErr = err
				return false
			}
			return yield(tuple)
		})
	}
	return decodeErr
}

// fetch returns the tuple referenced by an index payload.
func (t *Table) fetch(ref []byte) ([]string, error) {
	switch t.kind {
	case HeapStorage:
		rec, err := t.heap.Get(DecodeRowID(ref))
		if err != nil {
			return nil, err
		}
		return DecodeTuple(rec)
	case BTreeStorage:
		var tuple []string
		var err error
		found := false
		t.tree.Lookup(string(ref), func(rec []byte) bool {
			tuple, err = DecodeTuple(rec)
			found = true
			return false
		})
		if !found {
			return nil, fmt.Errorf("rowstore: dangling row reference in table %q", t.name)
		}
		return tuple, err
	}
	return nil, fmt.Errorf("rowstore: unknown storage kind")
}

// BuildIndex creates a secondary B+tree index over the given columns by
// scanning the whole table — the "rebuild indexes from scratch" cost the
// paper charges to query-level evolution. Rebuilding an existing index
// replaces it.
func (t *Table) BuildIndex(columns ...string) error {
	for _, c := range columns {
		if _, ok := t.byName[c]; !ok {
			return fmt.Errorf("rowstore: table %q has no column %q", t.name, c)
		}
	}
	idx := NewBTree()
	name := strings.Join(columns, "\x1f")
	var err error
	switch t.kind {
	case HeapStorage:
		t.heap.Scan(func(id RowID, rec []byte) bool {
			var tuple []string
			tuple, err = DecodeTuple(rec)
			if err != nil {
				return false
			}
			idx.Insert(t.indexKey(columns, tuple), EncodeRowID(id))
			return true
		})
	case BTreeStorage:
		t.tree.Ascend(func(key string, rec []byte) bool {
			var tuple []string
			tuple, err = DecodeTuple(rec)
			if err != nil {
				return false
			}
			idx.Insert(t.indexKey(columns, tuple), []byte(key))
			return true
		})
	}
	if err != nil {
		return err
	}
	t.indexes[name] = idx
	return nil
}

// HasIndex reports whether an index exists over exactly the given columns.
func (t *Table) HasIndex(columns ...string) bool {
	_, ok := t.indexes[strings.Join(columns, "\x1f")]
	return ok
}

// IndexLookup calls yield with every tuple whose indexed columns equal the
// given values. The index must exist.
func (t *Table) IndexLookup(columns []string, values []string, yield func(tuple []string) bool) error {
	idx, ok := t.indexes[strings.Join(columns, "\x1f")]
	if !ok {
		return fmt.Errorf("rowstore: table %q has no index on %v", t.name, columns)
	}
	key := strings.Join(values, "\x00")
	if len(columns) > 1 {
		key += "\x00"
	} else {
		key = values[0]
	}
	var err error
	idx.Lookup(key, func(ref []byte) bool {
		var tuple []string
		tuple, err = t.fetch(ref)
		if err != nil {
			return false
		}
		return yield(tuple)
	})
	return err
}

// DB is a named collection of row-store tables.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Create adds a new empty table to the database.
func (db *DB) Create(name string, columns []string, kind StorageKind) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("rowstore: table %q already exists", name)
	}
	t, err := NewTable(name, columns, kind)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Get returns a table by name.
func (db *DB) Get(name string) (*Table, error) {
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("rowstore: no table %q", name)
}

// Drop removes a table.
func (db *DB) Drop(name string) error {
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("rowstore: no table %q", name)
	}
	delete(db.tables, name)
	return nil
}

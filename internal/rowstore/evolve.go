package rowstore

import (
	"fmt"
)

// Profile selects which paper baseline the query-level evolution emulates.
type Profile int

const (
	// ProfileCommercial emulates baseline "C": heap tables, hash
	// join/distinct, no index rebuild on the outputs.
	ProfileCommercial Profile = iota
	// ProfileCommercialIndexed emulates baseline "C+I": as Commercial,
	// plus B+tree index builds on the output tables' join columns (the
	// paper's "indexes have to be built from scratch on the new table").
	ProfileCommercialIndexed
	// ProfileSQLiteLike emulates baseline "S": tables stored in B-trees
	// (every insert descends the tree), sort-based DISTINCT, and
	// index-nested-loop joins.
	ProfileSQLiteLike
)

func (p Profile) String() string {
	switch p {
	case ProfileCommercial:
		return "commercial"
	case ProfileCommercialIndexed:
		return "commercial+indexes"
	case ProfileSQLiteLike:
		return "sqlite-like"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

func (p Profile) storage() StorageKind {
	if p == ProfileSQLiteLike {
		return BTreeStorage
	}
	return HeapStorage
}

// EvolveStats reports the work performed by a query-level evolution.
type EvolveStats struct {
	RowsRead    uint64
	RowsWritten uint64
	IndexBuilds int
}

// countingIter counts tuples flowing through an iterator.
type countingIter struct {
	in Iterator
	n  *uint64
}

func (c *countingIter) Next() ([]string, bool, error) {
	t, ok, err := c.in.Next()
	if ok {
		*c.n++
	}
	return t, ok, err
}

// DecomposeQueryLevel performs DECOMPOSE TABLE the way an RDBMS must:
//
//	INSERT INTO S SELECT sCols FROM input;
//	INSERT INTO T SELECT DISTINCT tCols FROM input;
//
// followed by index builds on the common column(s) for the indexed
// profile. Every tuple of the input is decoded, projected, re-encoded and
// written — twice.
func DecomposeQueryLevel(db *DB, input string, outS string, sCols []string, outT string, tCols []string, common []string, profile Profile) (EvolveStats, error) {
	var stats EvolveStats
	in, err := db.Get(input)
	if err != nil {
		return stats, err
	}
	sIdx, err := in.ColumnIndexes(sCols)
	if err != nil {
		return stats, err
	}
	tIdx, err := in.ColumnIndexes(tCols)
	if err != nil {
		return stats, err
	}

	s, err := db.Create(outS, sCols, profile.storage())
	if err != nil {
		return stats, err
	}
	scan1 := &countingIter{in: NewSeqScan(in), n: &stats.RowsRead}
	n, err := InsertInto(s, NewProject(scan1, sIdx))
	if err != nil {
		return stats, err
	}
	stats.RowsWritten += n

	t, err := db.Create(outT, tCols, profile.storage())
	if err != nil {
		return stats, err
	}
	scan2 := &countingIter{in: NewSeqScan(in), n: &stats.RowsRead}
	var distinct Iterator
	if profile == ProfileSQLiteLike {
		distinct = NewSortDistinct(NewProject(scan2, tIdx))
	} else {
		distinct = NewHashDistinct(NewProject(scan2, tIdx))
	}
	n, err = InsertInto(t, distinct)
	if err != nil {
		return stats, err
	}
	stats.RowsWritten += n

	if profile == ProfileCommercialIndexed {
		if err := s.BuildIndex(common...); err != nil {
			return stats, err
		}
		if err := t.BuildIndex(common...); err != nil {
			return stats, err
		}
		stats.IndexBuilds = 2
	}
	return stats, nil
}

// MergeQueryLevel performs MERGE TABLES the way an RDBMS must:
//
//	INSERT INTO out SELECT s.*, t.extra FROM s JOIN t ON common;
//
// with a hash join for the commercial profiles and an index-nested-loop
// join for the SQLite-like profile, plus an index build on the output for
// the indexed profile.
func MergeQueryLevel(db *DB, inS, inT, out string, common []string, profile Profile) (EvolveStats, error) {
	var stats EvolveStats
	s, err := db.Get(inS)
	if err != nil {
		return stats, err
	}
	t, err := db.Get(inT)
	if err != nil {
		return stats, err
	}
	sKeys, err := s.ColumnIndexes(common)
	if err != nil {
		return stats, err
	}
	tKeys, err := t.ColumnIndexes(common)
	if err != nil {
		return stats, err
	}
	isCommon := make(map[string]bool, len(common))
	for _, c := range common {
		isCommon[c] = true
	}
	var tExtra []string
	var tExtraIdx []int
	for i, c := range t.Columns() {
		if !isCommon[c] {
			tExtra = append(tExtra, c)
			tExtraIdx = append(tExtraIdx, i)
		}
	}
	outCols := append(s.Columns(), tExtra...)
	combine := func(l, r []string) []string {
		tuple := make([]string, 0, len(outCols))
		tuple = append(tuple, l...)
		for _, i := range tExtraIdx {
			tuple = append(tuple, r[i])
		}
		return tuple
	}

	outTable, err := db.Create(out, outCols, profile.storage())
	if err != nil {
		return stats, err
	}
	left := &countingIter{in: NewSeqScan(s), n: &stats.RowsRead}
	var join Iterator
	if profile == ProfileSQLiteLike {
		join, err = NewIndexNestedLoopJoin(left, sKeys, t, common, combine)
	} else {
		right := &countingIter{in: NewSeqScan(t), n: &stats.RowsRead}
		join, err = NewHashJoin(left, right, sKeys, tKeys, combine)
	}
	if err != nil {
		return stats, err
	}
	n, err := InsertInto(outTable, join)
	if err != nil {
		return stats, err
	}
	stats.RowsWritten = n

	if profile == ProfileCommercialIndexed {
		if err := outTable.BuildIndex(common...); err != nil {
			return stats, err
		}
		stats.IndexBuilds = 1
	}
	return stats, nil
}

package bench

import (
	"fmt"
	"io"
	"time"

	"cods/internal/colquery"
	"cods/internal/colstore"
	"cods/internal/evolve"
	"cods/internal/plan"
	"cods/internal/workload"
)

// Join mode keys in JoinResult.Modes.
const (
	JoinModeScan    = "scan-original"
	JoinModeSemi    = "join-semi"
	JoinModeGeneric = "join-generic"
)

// JoinConfig parameterizes the join benchmark: a generated table R(A, B,
// C) with FactRows rows and DimRows distinct keys (FD A → C) is
// decomposed into a FactRows-row fact S (A, B) and a DimRows-row
// dimension T (A, C); the same selective aggregate then runs three ways.
type JoinConfig struct {
	// FactRows is the fact-table size (the issue's scenario is 1M).
	FactRows int
	// DimRows is the dimension size — the distinct key count (10k).
	DimRows int
	// Parallelism bounds per-distinct-value fan-out (0 = GOMAXPROCS).
	Parallelism int
	// Seed makes the generated data reproducible.
	Seed int64
	// Progress, when non-nil, receives setup/run notes.
	Progress func(format string, args ...any)
}

// JoinModeRun is one timed execution of the benchmark query.
type JoinModeRun struct {
	// ElapsedMS is the query's wall time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Matched is the count(*) the query returned (identical across
	// modes — the built-in correctness check).
	Matched uint64 `json:"matched"`
	// FactRowsPerSec is FactRows / elapsed: the throughput a mode
	// achieves over the fact table, comparable across modes.
	FactRowsPerSec float64 `json:"fact_rows_per_sec"`
}

// JoinResult is one benchmark run, appended to BENCH_joins.json.
type JoinResult struct {
	Bench       string  `json:"bench"` // always "join-decomposed-vs-scan"
	FactRows    int     `json:"fact_rows"`
	DimRows     int     `json:"dim_rows"`
	Parallelism int     `json:"parallelism"`
	Seed        int64   `json:"seed"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	// SharedLineage records whether the decomposed key columns were
	// recognized as drawing from one dictionary id space — the
	// precondition for the id-only semi-join fast path.
	SharedLineage bool `json:"shared_lineage"`
	// Modes: "scan-original" (the pre-DECOMPOSE single-table scan),
	// "join-semi" (hash join with the WAH semi-join reduction), and
	// "join-generic" (hash join with the reduction disabled).
	Modes map[string]JoinModeRun `json:"modes"`
}

// RunJoins builds the workload, decomposes it, and times the query
// SELECT count(*) WHERE <dim predicate> in each mode once. Setup is
// excluded from the timings, matching the Figure 3 methodology.
func RunJoins(cfg JoinConfig) (*JoinResult, error) {
	if cfg.FactRows <= 0 {
		cfg.FactRows = 1_000_000
	}
	if cfg.DimRows <= 0 {
		cfg.DimRows = 10_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}

	spec := workload.Spec{Rows: cfg.FactRows, DistinctKeys: cfg.DimRows, Seed: cfg.Seed}
	progress("joins: building R (%s)", spec)
	r, err := workload.BuildColstore(spec, "R")
	if err != nil {
		return nil, err
	}
	progress("joins: decomposing into S (A, B) x T (A, C)")
	dec, err := evolve.Decompose(r, evolve.DecomposeSpec{
		OutS: "S", SColumns: []string{"A", "B"},
		OutT: "T", TColumns: []string{"A", "C"},
	}, evolve.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	res := &JoinResult{
		Bench: "join-decomposed-vs-scan", FactRows: cfg.FactRows, DimRows: cfg.DimRows,
		Parallelism: cfg.Parallelism, Seed: cfg.Seed,
		Modes: make(map[string]JoinModeRun),
	}
	sKey, err := dec.S.Column("A")
	if err != nil {
		return nil, err
	}
	tKey, err := dec.T.Column("A")
	if err != nil {
		return nil, err
	}
	res.SharedLineage = colquery.SharedLineage(sKey, tKey)

	resolve := func(name string) (*colstore.Table, error) {
		switch name {
		case "R":
			return r, nil
		case "S":
			return dec.S, nil
		case "T":
			return dec.T, nil
		}
		return nil, fmt.Errorf("bench: no table %q", name)
	}
	// The dimension predicate keeps ~1/DistinctC of the keys — selective
	// enough that the semi-join reduction has rows to prune.
	where := "C = 'c0000001'"
	queries := []struct {
		mode string
		q    plan.Query
	}{
		{JoinModeScan, plan.Query{
			From: "R", Where: where,
			Aggregates: []colquery.Agg{{Func: colquery.Count}},
		}},
		{JoinModeSemi, plan.Query{
			From: "S", Joins: []plan.Join{{Table: "T", On: []string{"A"}}}, Where: where,
			Aggregates: []colquery.Agg{{Func: colquery.Count}},
		}},
		{JoinModeGeneric, plan.Query{
			From: "S", Joins: []plan.Join{{Table: "T", On: []string{"A"}}}, Where: where,
			Aggregates:      []colquery.Agg{{Func: colquery.Count}},
			DisableSemiJoin: true,
		}},
	}
	var matched uint64
	for i, e := range queries {
		e.q.Parallelism = cfg.Parallelism
		start := time.Now()
		rs, err := plan.Run(resolve, e.q, nil)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.mode, err)
		}
		var n uint64
		if _, err := fmt.Sscan(rs.Rows[0][0], &n); err != nil {
			return nil, fmt.Errorf("bench: %s count %q: %w", e.mode, rs.Rows[0][0], err)
		}
		if i == 0 {
			matched = n
		} else if n != matched {
			return nil, fmt.Errorf("bench: %s matched %d rows, scan-original matched %d", e.mode, n, matched)
		}
		res.Modes[e.mode] = JoinModeRun{
			ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
			Matched:        n,
			FactRowsPerSec: float64(cfg.FactRows) / elapsed.Seconds(),
		}
		progress("joins: %s: %v (%d rows matched)", e.mode, elapsed, n)
	}
	return res, nil
}

// Format renders the run for a terminal.
func (r *JoinResult) Format(w io.Writer) {
	fmt.Fprintf(w, "# joins fact=%d dim=%d parallelism=%d shared-lineage=%v\n",
		r.FactRows, r.DimRows, r.Parallelism, r.SharedLineage)
	fmt.Fprintf(w, "%-16s %12s %14s %12s\n", "mode", "elapsed-ms", "fact-rows/s", "matched")
	for _, mode := range []string{JoinModeScan, JoinModeSemi, JoinModeGeneric} {
		m, ok := r.Modes[mode]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-16s %12.3f %14.0f %12d\n", mode, m.ElapsedMS, m.FactRowsPerSec, m.Matched)
	}
}

// HTAP workload driver: a YCSB-style mixed workload — zipfian point
// reads, analytic GROUP-BY scans, keyed DML, and a background schema-
// evolution cycle — executed by N concurrent workers against either an
// in-process cods.DB or a `cods serve` HTTP endpoint, with per-class
// log-bucketed latency histograms (internal/bench/hdr) merged at fan-in
// and optional latency SLOs for CI gating. This is the regression net
// the ROADMAP's scaling work is measured against; BENCHMARKS.md is the
// methodology document.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cods"
	"cods/internal/bench/hdr"
	"cods/internal/server"
	"cods/internal/workload"
)

// Operation classes of the HTAP mix; each gets its own histogram.
const (
	ClassRead  = "read"  // point read: WHERE A = '<zipfian key>'
	ClassScan  = "scan"  // analytic scan: GROUP BY C, COUNT(*)
	ClassWrite = "write" // keyed DML: INSERT / UPDATE / DELETE
	ClassSMO   = "smo"   // background evolution cycle statements
)

// Transports the driver can execute against.
const (
	TransportInproc = "inproc" // direct cods.DB calls
	TransportHTTP   = "http"   // POST /query + /exec via internal/server
)

// HTAPConfig is the declarative workload spec of one HTAP run.
type HTAPConfig struct {
	// Name labels the run in output and BENCH_htap.json.
	Name string
	// Table is the table under test (default "R"); the background SMO
	// cycle uses <Table>_smo scratch names.
	Table string
	// Rows is the initial table size; DistinctKeys the key space of the
	// key attribute A (default Rows/10). ZipfS > 1 skews both the data
	// and the point-read key choice.
	Rows         int
	DistinctKeys int
	ZipfS        float64
	// ReadPct/ScanPct/WritePct is the operation mix in percent; they
	// must sum to 100. The background SMO stream is not part of the mix:
	// SMOInterval > 0 runs one COPY → DECOMPOSE → MERGE → DROP cycle
	// immediately and then every interval, on a dedicated goroutine.
	ReadPct, ScanPct, WritePct int
	SMOInterval                time.Duration
	// Workers is the client concurrency; Duration the measured wall
	// time; TargetRate a total ops/sec pacing target across all workers
	// (0 = closed loop: each worker issues its next operation as soon as
	// the previous one returns).
	Workers    int
	Duration   time.Duration
	TargetRate float64
	// Seed fixes every generator (data, reads, DML, mix choice).
	Seed int64
	// Transport selects TransportInproc or TransportHTTP. With
	// TransportHTTP and an empty Addr the driver self-hosts an
	// internal/server over a loopback listener (table setup stays
	// in-process, only measured traffic pays HTTP); a non-empty Addr
	// drives an external `cods serve` — setup then also runs over
	// /exec, so keep Rows modest.
	Transport string
	Addr      string
	// Retain/AutoCompact/Parallelism configure the in-process (or
	// self-hosted) DB: cods.Config.RetainVersions, AutoCompactPending,
	// Parallelism. Ignored with an external Addr.
	Retain      int
	AutoCompact int
	Parallelism int
	// Progress, when non-nil, receives setup/run progress lines.
	Progress func(format string, args ...any)
}

func (c HTAPConfig) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

func (c HTAPConfig) withDefaults() HTAPConfig {
	if c.Name == "" {
		c.Name = fmt.Sprintf("htap-r%ds%dw%d", c.ReadPct, c.ScanPct, c.WritePct)
	}
	if c.Table == "" {
		c.Table = "R"
	}
	if c.DistinctKeys == 0 {
		c.DistinctKeys = c.Rows/10 + 1
	}
	if c.Transport == "" {
		c.Transport = TransportInproc
	}
	return c
}

func (c HTAPConfig) validate() error {
	if c.Rows <= 0 {
		return fmt.Errorf("htap: Rows must be positive, got %d", c.Rows)
	}
	if c.ReadPct < 0 || c.ScanPct < 0 || c.WritePct < 0 || c.ReadPct+c.ScanPct+c.WritePct != 100 {
		return fmt.Errorf("htap: mix read=%d scan=%d write=%d must be non-negative and sum to 100",
			c.ReadPct, c.ScanPct, c.WritePct)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("htap: Workers must be positive, got %d", c.Workers)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("htap: Duration must be positive, got %v", c.Duration)
	}
	if c.Transport != TransportInproc && c.Transport != TransportHTTP {
		return fmt.Errorf("htap: unknown transport %q (want %s or %s)", c.Transport, TransportInproc, TransportHTTP)
	}
	if c.Addr != "" && c.Transport != TransportHTTP {
		return fmt.Errorf("htap: Addr requires Transport %q", TransportHTTP)
	}
	return nil
}

// ClassStats summarizes one operation class of an HTAP run.
type ClassStats struct {
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// HTAPResult is one run's record — the schema of BENCH_htap.json entries.
type HTAPResult struct {
	Workload      string                `json:"workload"`
	Transport     string                `json:"transport"`
	Rows          int                   `json:"rows"`
	DistinctKeys  int                   `json:"distinct_keys"`
	ZipfS         float64               `json:"zipf_s"`
	Mix           map[string]int        `json:"mix"` // read/scan/write percentages
	SMOIntervalMS float64               `json:"smo_interval_ms,omitempty"`
	Workers       int                   `json:"workers"`
	DurationMS    float64               `json:"duration_ms"`
	TargetRate    float64               `json:"target_rate,omitempty"`
	Seed          int64                 `json:"seed"`
	Classes       map[string]ClassStats `json:"classes"`
	// Memory gauges sampled from DB.MemStats (or GET /stats) when the
	// run ends: is retention bounding versions, is auto-compaction
	// keeping the overlay small under the write stream?
	PendingRows      uint64 `json:"pending_rows"`
	RetainedVersions int    `json:"retained_versions"`
	Compactions      uint64 `json:"compactions"`
}

// htapConn is one transport to the system under test. Implementations
// must be safe for concurrent use.
type htapConn interface {
	exec(stmt string) error
	pointRead(table, cond string) error
	scan(table string) error
	memStats() (pending uint64, retained int, compactions uint64, err error)
}

// inprocConn drives a cods.DB directly — no serialization, no sockets:
// the engine-limit numbers.
type inprocConn struct{ db *cods.DB }

func (c inprocConn) exec(stmt string) error { _, err := c.db.Exec(stmt); return err }

func (c inprocConn) pointRead(table, cond string) error {
	_, err := c.db.Query(table, cond)
	return err
}

func (c inprocConn) scan(table string) error {
	_, err := c.db.RunQuery(table, cods.TableQuery{
		GroupBy:    workload.ScanColumn(),
		Aggregates: []cods.Agg{{Func: cods.Count, As: "n"}},
	})
	return err
}

func (c inprocConn) memStats() (uint64, int, uint64, error) {
	ms := c.db.MemStats()
	return ms.PendingRows, ms.RetainedVersions, ms.Compactions, nil
}

// httpConn drives a `cods serve` endpoint through internal/server's
// Client, so the measured latency includes JSON encoding, the admission
// queue and the socket — the server overhead itself becomes measurable
// by diffing against an inproc run of the same spec.
type httpConn struct{ c *server.Client }

func (c httpConn) exec(stmt string) error { _, err := c.c.Exec(stmt); return err }

func (c httpConn) pointRead(table, cond string) error {
	_, err := c.c.Query(server.QueryRequest{Table: table, Where: cond})
	return err
}

func (c httpConn) scan(table string) error {
	_, err := c.c.Query(server.QueryRequest{
		Table:      table,
		GroupBy:    workload.ScanColumn(),
		Aggregates: []server.AggSpec{{Func: "count", As: "n"}},
	})
	return err
}

func (c httpConn) memStats() (uint64, int, uint64, error) {
	st, err := c.c.Stats()
	if err != nil {
		return 0, 0, 0, err
	}
	return st.Memory.PendingRows, st.Memory.RetainedVersions, st.Memory.Compactions, nil
}

// workerStats is one worker's private recording state, merged at fan-in
// in worker-index order (hdr merging is associative, so the totals are
// identical at any concurrency).
type workerStats struct {
	hists  map[string]*hdr.Histogram
	errors map[string]int64
}

func newWorkerStats() *workerStats {
	return &workerStats{
		hists:  map[string]*hdr.Histogram{ClassRead: hdr.New(), ClassScan: hdr.New(), ClassWrite: hdr.New(), ClassSMO: hdr.New()},
		errors: make(map[string]int64),
	}
}

func (w *workerStats) record(class string, d time.Duration, err error) {
	w.hists[class].Record(d)
	if err != nil {
		w.errors[class]++
	}
}

// RunHTAP executes one HTAP workload run and returns its result. Errors
// are returned only for setup/teardown failures; operation-level errors
// during the measured window are counted per class instead (a saturated
// or degraded server is a data point, not a crash).
func RunHTAP(cfg HTAPConfig) (*HTAPResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spec := workload.Spec{Rows: cfg.Rows, DistinctKeys: cfg.DistinctKeys, ZipfS: cfg.ZipfS, Seed: cfg.Seed}

	conn, cleanup, err := connect(cfg, spec)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Workers: one goroutine per worker, each with its own generators
	// (reads seeded per worker, DML keys prefixed per worker so insert
	// key ranges are disjoint) and its own histograms.
	stats := make([]*workerStats, cfg.Workers)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats[w] = runWorker(cfg, spec, conn, w, start, deadline)
		}(w)
	}

	// The background evolution stream: COPY (flushes the table's pending
	// DML) → DECOMPOSE → MERGE back → DROP, exercising the snapshot-read
	// invariant (reads must stay flat while the writer mutex is held for
	// the whole cycle) and the delta-flush path under live writes.
	smoStats := newWorkerStats()
	if cfg.SMOInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runSMOCycles(cfg, conn, smoStats, deadline)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Fan-in: merge per-worker histograms in worker-index order.
	merged := newWorkerStats()
	for _, ws := range stats {
		for class, h := range ws.hists {
			merged.hists[class].Add(h)
		}
		for class, n := range ws.errors {
			merged.errors[class] += n
		}
	}
	for class, h := range smoStats.hists {
		merged.hists[class].Add(h)
	}
	for class, n := range smoStats.errors {
		merged.errors[class] += n
	}

	res := &HTAPResult{
		Workload:     cfg.Name,
		Transport:    cfg.Transport,
		Rows:         cfg.Rows,
		DistinctKeys: cfg.DistinctKeys,
		ZipfS:        cfg.ZipfS,
		Mix:          map[string]int{ClassRead: cfg.ReadPct, ClassScan: cfg.ScanPct, ClassWrite: cfg.WritePct},
		Workers:      cfg.Workers,
		DurationMS:   float64(elapsed.Microseconds()) / 1000,
		TargetRate:   cfg.TargetRate,
		Seed:         cfg.Seed,
		Classes:      make(map[string]ClassStats),
	}
	if cfg.SMOInterval > 0 {
		res.SMOIntervalMS = float64(cfg.SMOInterval.Microseconds()) / 1000
	}
	for class, h := range merged.hists {
		if h.Count() == 0 {
			continue
		}
		res.Classes[class] = ClassStats{
			Ops:       h.Count(),
			Errors:    merged.errors[class],
			OpsPerSec: float64(h.Count()) / elapsed.Seconds(),
			P50MS:     ms(h.Quantile(0.50)),
			P95MS:     ms(h.Quantile(0.95)),
			P99MS:     ms(h.Quantile(0.99)),
			MaxMS:     ms(h.Max()),
		}
	}
	if pending, retained, compactions, err := conn.memStats(); err == nil {
		res.PendingRows, res.RetainedVersions, res.Compactions = pending, retained, compactions
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// connect builds the table under test and returns the measured transport.
func connect(cfg HTAPConfig, spec workload.Spec) (htapConn, func(), error) {
	noop := func() {}
	if cfg.Addr != "" {
		// External server: setup runs over /exec too.
		client := &server.Client{Base: cfg.Addr}
		if _, err := client.Healthz(); err != nil {
			return nil, noop, fmt.Errorf("htap: probing %s: %w", cfg.Addr, err)
		}
		cfg.progress("loading %d rows into %s over HTTP (batched INSERT scripts)", cfg.Rows, cfg.Addr)
		if err := loadOverHTTP(client, cfg.Table, spec); err != nil {
			return nil, noop, err
		}
		cleanup := func() { client.Exec("DROP TABLE " + cfg.Table) } // best effort
		return httpConn{client}, cleanup, nil
	}

	// In-process DB, shared by both remaining transports.
	db := cods.Open(cods.Config{
		Parallelism:        cfg.Parallelism,
		RetainVersions:     cfg.Retain,
		AutoCompactPending: cfg.AutoCompact,
	})
	cfg.progress("building %s: %d rows, %d distinct keys", cfg.Table, cfg.Rows, cfg.DistinctKeys)
	var rows [][]string
	if err := workload.ForEachRow(spec, func(row []string) error {
		rows = append(rows, append([]string(nil), row...))
		return nil
	}); err != nil {
		return nil, noop, err
	}
	if err := db.CreateTableFromRows(cfg.Table, workload.Columns, nil, rows); err != nil {
		return nil, noop, err
	}
	if cfg.Transport == TransportInproc {
		return inprocConn{db}, noop, nil
	}

	// Self-hosted HTTP: serve the same DB over a loopback listener, so
	// the spec is identical to inproc and the diff isolates server cost.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, noop, err
	}
	srv := server.New(db, server.Config{})
	go srv.Serve(l)
	cfg.progress("self-hosted server on %s", l.Addr())
	cleanup := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return httpConn{&server.Client{Base: "http://" + l.Addr().String()}}, cleanup, nil
}

// loadOverHTTP creates and populates the table on an external server in
// batched INSERT scripts (one /exec round trip and one WAL fsync per
// batch, not per row).
func loadOverHTTP(client *server.Client, table string, spec workload.Spec) error {
	if _, err := client.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", table, strings.Join(workload.Columns, ", "))); err != nil {
		return fmt.Errorf("htap: creating %s: %w", table, err)
	}
	const batch = 500
	var stmts []string
	flush := func() error {
		if len(stmts) == 0 {
			return nil
		}
		if _, err := client.ExecScript(strings.Join(stmts, "\n")); err != nil {
			return fmt.Errorf("htap: loading %s: %w", table, err)
		}
		stmts = stmts[:0]
		return nil
	}
	err := workload.ForEachRow(spec, func(row []string) error {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO %s VALUES ('%s', '%s', '%s')", table, row[0], row[1], row[2]))
		if len(stmts) == batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// runWorker issues the read/scan/write mix until the deadline. With
// TargetRate set the worker paces operations on a fixed schedule and
// measures latency from the *scheduled* start (coordinated-omission
// corrected: a stalled server accrues queueing delay into the recorded
// latency); in closed-loop mode it measures service time.
func runWorker(cfg HTAPConfig, spec workload.Spec, conn htapConn, w int, start, deadline time.Time) *workerStats {
	ws := newWorkerStats()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*1_000_003))
	reads := workload.NewReads(spec, cfg.Seed+int64(w)*7_000_003)
	dml := workload.NewDMLGen(spec, cfg.Table, fmt.Sprintf("w%d-", w))

	var interval time.Duration
	if cfg.TargetRate > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Workers) / cfg.TargetRate)
	}
	scheduled := start

	for {
		t0 := time.Now()
		if interval > 0 {
			if scheduled.After(deadline) {
				return ws
			}
			if d := time.Until(scheduled); d > 0 {
				time.Sleep(d)
			}
			t0 = scheduled
			scheduled = scheduled.Add(interval)
		} else if !t0.Before(deadline) {
			return ws
		}

		var class string
		var err error
		switch p := rng.Intn(100); {
		case p < cfg.ReadPct:
			class = ClassRead
			err = conn.pointRead(cfg.Table, reads.PointCondition())
		case p < cfg.ReadPct+cfg.ScanPct:
			class = ClassScan
			err = conn.scan(cfg.Table)
		default:
			class = ClassWrite
			err = conn.exec(dml.Next())
		}
		ws.record(class, time.Since(t0), err)
	}
}

// runSMOCycles runs the background evolution cycle: immediately once,
// then every SMOInterval until the deadline. Each statement is timed
// into the smo class individually. A failed statement aborts the cycle
// and best-effort drops the scratch tables so the next cycle starts
// clean.
func runSMOCycles(cfg HTAPConfig, conn htapConn, ws *workerStats, deadline time.Time) {
	t := cfg.Table
	scratch := []string{t + "_smo", t + "_smo_s", t + "_smo_t"}
	cycle := []string{
		fmt.Sprintf("COPY TABLE %s TO %s_smo", t, t),
		fmt.Sprintf("DECOMPOSE TABLE %s_smo INTO %s_smo_s (A, B), %s_smo_t (A, C)", t, t, t),
		fmt.Sprintf("MERGE TABLES %s_smo_s, %s_smo_t INTO %s_smo", t, t, t),
		fmt.Sprintf("DROP TABLE %s_smo", t),
	}
	for {
		ok := true
		for _, stmt := range cycle {
			t0 := time.Now()
			err := conn.exec(stmt)
			ws.record(ClassSMO, time.Since(t0), err)
			if err != nil {
				ok = false
				break
			}
		}
		if !ok {
			for _, name := range scratch {
				conn.exec("DROP TABLE " + name) // best effort, untimed
			}
		}
		if time.Now().Add(cfg.SMOInterval).After(deadline) {
			return
		}
		time.Sleep(cfg.SMOInterval)
	}
}

// CheckSLOs evaluates per-class p99 SLO thresholds against the result,
// returning one violation message per breached threshold (empty = all
// SLOs met). A threshold on a class the run never exercised is itself a
// violation — a gate that silently gates nothing is worse than a failing
// one. cmd/codsbench turns violations into a nonzero exit for CI.
func (r *HTAPResult) CheckSLOs(p99 map[string]time.Duration) []string {
	var out []string
	classes := make([]string, 0, len(p99))
	for class := range p99 {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		limit := p99[class]
		if limit <= 0 {
			continue
		}
		cs, ok := r.Classes[class]
		if !ok {
			out = append(out, fmt.Sprintf("slo: class %q has a p99 threshold (%v) but the run issued no %s operations", class, limit, class))
			continue
		}
		if got := time.Duration(cs.P99MS * float64(time.Millisecond)); got > limit {
			out = append(out, fmt.Sprintf("slo: %s p99 = %.3fms exceeds %v", class, cs.P99MS, limit))
		}
	}
	return out
}

// Format renders the result as a human-readable table.
func (r *HTAPResult) Format(w io.Writer) {
	fmt.Fprintf(w, "# htap workload=%s transport=%s rows=%d keys=%d zipf=%.2f workers=%d duration=%.1fs",
		r.Workload, r.Transport, r.Rows, r.DistinctKeys, r.ZipfS, r.Workers, r.DurationMS/1000)
	fmt.Fprintf(w, " mix read=%d/scan=%d/write=%d", r.Mix[ClassRead], r.Mix[ClassScan], r.Mix[ClassWrite])
	if r.SMOIntervalMS > 0 {
		fmt.Fprintf(w, " smo-every=%.1fs", r.SMOIntervalMS/1000)
	}
	if r.TargetRate > 0 {
		fmt.Fprintf(w, " rate=%.0f/s", r.TargetRate)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %10s %7s %10s %10s %10s %10s %10s\n",
		"class", "ops", "err", "ops/s", "p50ms", "p95ms", "p99ms", "maxms")
	for _, class := range []string{ClassRead, ClassScan, ClassWrite, ClassSMO} {
		cs, ok := r.Classes[class]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-8s %10d %7d %10.1f %10.3f %10.3f %10.3f %10.3f\n",
			class, cs.Ops, cs.Errors, cs.OpsPerSec, cs.P50MS, cs.P95MS, cs.P99MS, cs.MaxMS)
	}
	fmt.Fprintf(w, "# memory: pending_rows=%d retained_versions=%d compactions=%d\n",
		r.PendingRows, r.RetainedVersions, r.Compactions)
}

// AppendResult appends an HTAP run to its series file (BENCH_htap.json).
func AppendResult(path string, r *HTAPResult) error {
	return AppendSeries(path, r)
}

// AppendSeries appends one JSON-marshalable entry to a JSON-array series
// file (BENCH_htap.json, BENCH_joins.json): read-modify-write with a
// temp-file rename, so a crash mid-write never truncates the accumulated
// trajectory.
func AppendSeries(path string, e any) error {
	var series []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &series); err != nil {
			return fmt.Errorf("bench: %s exists but is not a JSON array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entry, err := json.Marshal(e)
	if err != nil {
		return err
	}
	series = append(series, entry)
	out, err := json.MarshalIndent(series, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

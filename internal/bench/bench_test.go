package bench

import (
	"bytes"
	"strings"
	"testing"
)

func smallConfig(systems []System) Config {
	return Config{
		Rows:           4000,
		DistinctCounts: []int{10, 100, 10000 /* skipped: > rows */},
		Systems:        systems,
		Seed:           1,
	}
}

func TestRunDecomposeAllSystems(t *testing.T) {
	res, err := RunDecompose(smallConfig(Figure3aSystems))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distincts) != 2 {
		t.Fatalf("distincts=%v (10000 should be skipped)", res.Distincts)
	}
	if len(res.Points) != 2*len(Figure3aSystems) {
		t.Fatalf("points=%d", len(res.Points))
	}
	// Every system must produce the same output cardinality: rows(S) +
	// rows(T) = rows + distinct-drawn.
	for _, d := range res.Distincts {
		var want uint64
		for _, sys := range Figure3aSystems {
			p := res.point(sys, d)
			if p == nil {
				t.Fatalf("missing point %s d=%d", sys, d)
			}
			if want == 0 {
				want = p.OutputRows
			}
			if p.OutputRows != want {
				t.Fatalf("d=%d: %s wrote %d rows, others wrote %d", d, sys, p.OutputRows, want)
			}
		}
	}
}

func TestRunMergeAllSystems(t *testing.T) {
	res, err := RunMerge(smallConfig(Figure3bSystems))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Distincts {
		for _, sys := range Figure3bSystems {
			p := res.point(sys, d)
			if p == nil || p.OutputRows != 4000 {
				t.Fatalf("merge %s d=%d: %+v", sys, d, p)
			}
		}
	}
}

func TestRunGeneralMergeAllSystems(t *testing.T) {
	res, err := RunGeneralMerge(smallConfig([]System{SystemCODS, SystemCommercial, SystemMonet}))
	if err != nil {
		t.Fatal(err)
	}
	// Every join value has two dimension rows: output = 2x input rows.
	for _, d := range res.Distincts {
		for _, sys := range []System{SystemCODS, SystemCommercial, SystemMonet} {
			p := res.point(sys, d)
			if p == nil || p.OutputRows != 8000 {
				t.Fatalf("general merge %s d=%d: %+v", sys, d, p)
			}
		}
	}
}

func TestFormatAndSpeedups(t *testing.T) {
	res, err := RunDecompose(Config{
		Rows:           2000,
		DistinctCounts: []int{50},
		Systems:        []System{SystemCODS, SystemCommercial},
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	out := buf.String()
	for _, want := range []string{"#distinct", "D", "C", "50", "decompose"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
	sp := res.Speedups()
	if _, ok := sp[50]; !ok {
		t.Fatalf("speedups=%v", sp)
	}
}

func TestProgressCallback(t *testing.T) {
	var lines int
	cfg := Config{
		Rows:           1000,
		DistinctCounts: []int{10},
		Systems:        []System{SystemCODS},
		Seed:           3,
		Progress:       func(format string, args ...any) { lines++ },
	}
	if _, err := RunDecompose(cfg); err != nil {
		t.Fatal(err)
	}
	if lines != 1 {
		t.Fatalf("progress lines=%d", lines)
	}
}

func TestRunScale(t *testing.T) {
	cfg := Config{Systems: []System{SystemCODS, SystemCommercial}, Seed: 5}
	res, err := RunScale(cfg, []int{500, 1000}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points=%d", len(res.Points))
	}
	for _, rows := range []int{500, 1000} {
		p := res.point(SystemCODS, rows)
		if p == nil {
			t.Fatalf("missing point rows=%d", rows)
		}
		// decompose outputs: rows(S)=rows plus rows(T)=distinct drawn.
		if p.OutputRows < uint64(rows) {
			t.Fatalf("rows=%d output=%d", rows, p.OutputRows)
		}
	}
}

func TestUnknownSystem(t *testing.T) {
	cfg := Config{Rows: 100, DistinctCounts: []int{10}, Systems: []System{"Z"}, Seed: 4}
	if _, err := RunDecompose(cfg); err == nil {
		t.Fatal("unknown system should fail")
	}
	if _, err := RunMerge(cfg); err == nil {
		t.Fatal("unknown system should fail")
	}
	if _, err := RunGeneralMerge(cfg); err == nil {
		t.Fatal("unknown system should fail")
	}
}

// Package bench is the harness that regenerates the paper's evaluation
// (Figure 3): it builds the synthetic workloads, runs each system's data
// evolution path, times the evolution step only (input loading is
// excluded, as in the paper), and renders the series the figure plots.
//
// Systems, keyed as in the figure caption:
//
//	D    CODS data-level evolution (internal/evolve)
//	C    commercial row-store RDBMS, query level (internal/rowstore)
//	C+I  commercial row-store RDBMS with index rebuilds
//	S    SQLite-like row store (B-tree tables, sort distinct)
//	M    column store, query level (internal/queryevolve)
package bench

import (
	"fmt"
	"io"
	"time"

	"cods/internal/colstore"
	"cods/internal/evolve"
	"cods/internal/queryevolve"
	"cods/internal/rowstore"
	"cods/internal/workload"
)

// System identifies one line of Figure 3.
type System string

// The systems of Figure 3.
const (
	SystemCODS          System = "D"
	SystemCommercial    System = "C"
	SystemCommercialIdx System = "C+I"
	SystemSQLite        System = "S"
	SystemMonet         System = "M"
)

var systemNames = map[System]string{
	SystemCODS:          "CODS (data-level)",
	SystemCommercial:    "commercial row RDBMS",
	SystemCommercialIdx: "commercial row RDBMS + indexes",
	SystemSQLite:        "SQLite-like row store",
	SystemMonet:         "column store, query-level (MonetDB-like)",
}

// Name returns the long description of a system key.
func (s System) Name() string { return systemNames[s] }

// Figure3aSystems are the decomposition panel's lines.
var Figure3aSystems = []System{SystemCODS, SystemCommercial, SystemCommercialIdx, SystemSQLite, SystemMonet}

// Figure3bSystems are the mergence panel's lines (the paper omits S).
var Figure3bSystems = []System{SystemCODS, SystemCommercial, SystemCommercialIdx, SystemMonet}

// Point is one measurement: one system at one distinct-value count.
type Point struct {
	System     System
	Distinct   int
	Elapsed    time.Duration
	OutputRows uint64
}

// Config parameterizes an experiment run.
type Config struct {
	// Rows is the input size (the paper uses 10M; the harness default is
	// smaller so a full sweep fits laptop memory).
	Rows int
	// DistinctCounts is the x-axis; counts above Rows are skipped.
	DistinctCounts []int
	// Systems selects the lines to run.
	Systems []System
	// Seed fixes workload generation.
	Seed int64
	// ZipfS skews key frequencies when > 1.
	ZipfS float64
	// Progress, when non-nil, receives one line per measurement.
	Progress func(format string, args ...any)
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// Result is a full experiment: a grid of points.
type Result struct {
	Experiment string
	Rows       int
	Systems    []System
	Distincts  []int
	Points     []Point
}

func (r *Result) point(sys System, distinct int) *Point {
	for i := range r.Points {
		if r.Points[i].System == sys && r.Points[i].Distinct == distinct {
			return &r.Points[i]
		}
	}
	return nil
}

// Format renders the result as the figure's data grid: one row per
// distinct count, one column per system, times in seconds.
func (r *Result) Format(w io.Writer) {
	fmt.Fprintf(w, "# %s, %d input rows (paper Figure 3 shape: time vs #distinct values)\n", r.Experiment, r.Rows)
	fmt.Fprintf(w, "%12s", "#distinct")
	for _, s := range r.Systems {
		fmt.Fprintf(w, " %12s", string(s))
	}
	fmt.Fprintln(w)
	for _, d := range r.Distincts {
		fmt.Fprintf(w, "%12d", d)
		for _, s := range r.Systems {
			if p := r.point(s, d); p != nil {
				fmt.Fprintf(w, " %12.3f", p.Elapsed.Seconds())
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "# columns: ")
	for i, s := range r.Systems {
		if i > 0 {
			fmt.Fprintf(w, "; ")
		}
		fmt.Fprintf(w, "%s = %s", string(s), s.Name())
	}
	fmt.Fprintln(w)
}

// Speedups returns, per distinct count, the ratio of the slowest non-CODS
// system to CODS — the paper's "orders of magnitude" claim quantified.
func (r *Result) Speedups() map[int]float64 {
	out := make(map[int]float64)
	for _, d := range r.Distincts {
		cods := r.point(SystemCODS, d)
		if cods == nil || cods.Elapsed <= 0 {
			continue
		}
		var worst time.Duration
		for _, s := range r.Systems {
			if s == SystemCODS {
				continue
			}
			if p := r.point(s, d); p != nil && p.Elapsed > worst {
				worst = p.Elapsed
			}
		}
		if worst > 0 {
			out[d] = worst.Seconds() / cods.Elapsed.Seconds()
		}
	}
	return out
}

func (c Config) distincts() []int {
	var out []int
	for _, d := range c.DistinctCounts {
		if d <= c.Rows {
			out = append(out, d)
		}
	}
	return out
}

// RunDecompose regenerates Figure 3(a): decompose R(A,B,C) into S(A,B) and
// T(A,C) at each distinct-value count, on each system.
func RunDecompose(cfg Config) (*Result, error) {
	res := &Result{Experiment: "decompose", Rows: cfg.Rows, Systems: cfg.Systems, Distincts: cfg.distincts()}
	for _, d := range res.Distincts {
		spec := workload.Spec{Rows: cfg.Rows, DistinctKeys: d, Seed: cfg.Seed, ZipfS: cfg.ZipfS}
		for _, sys := range cfg.Systems {
			p, err := runDecomposeOn(sys, spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: decompose %s d=%d: %w", sys, d, err)
			}
			res.Points = append(res.Points, p)
			cfg.progress("decompose d=%-8d %-4s %10.3fs", d, sys, p.Elapsed.Seconds())
		}
	}
	return res, nil
}

func runDecomposeOn(sys System, spec workload.Spec, cfg Config) (Point, error) {
	point := Point{System: sys, Distinct: spec.DistinctKeys}
	switch sys {
	case SystemCODS, SystemMonet:
		r, err := workload.BuildColstore(spec, "R")
		if err != nil {
			return point, err
		}
		start := time.Now()
		if sys == SystemCODS {
			res, err := evolve.Decompose(r, evolve.DecomposeSpec{
				OutS: "S", SColumns: []string{"A", "B"},
				OutT: "T", TColumns: []string{"A", "C"},
			}, evolve.Options{})
			if err != nil {
				return point, err
			}
			point.OutputRows = res.S.NumRows() + res.T.NumRows()
		} else {
			s, t, err := queryevolve.Decompose(r, "S", []string{"A", "B"}, "T", []string{"A", "C"})
			if err != nil {
				return point, err
			}
			point.OutputRows = s.NumRows() + t.NumRows()
		}
		point.Elapsed = time.Since(start)
	case SystemCommercial, SystemCommercialIdx, SystemSQLite:
		profile := profileOf(sys)
		db := rowstore.NewDB()
		if _, err := workload.BuildRowstore(spec, db, "R", profile.Storage()); err != nil {
			return point, err
		}
		start := time.Now()
		stats, err := rowstore.DecomposeQueryLevel(db, "R", "S", []string{"A", "B"}, "T", []string{"A", "C"}, []string{"A"}, profile.Profile())
		if err != nil {
			return point, err
		}
		point.Elapsed = time.Since(start)
		point.OutputRows = stats.RowsWritten
	default:
		return point, fmt.Errorf("unknown system %q", sys)
	}
	return point, nil
}

// RunMerge regenerates Figure 3(b): merge S(A,B) with T(A,C) (key–foreign
// key) back into R at each distinct-value count, on each system.
func RunMerge(cfg Config) (*Result, error) {
	res := &Result{Experiment: "merge", Rows: cfg.Rows, Systems: cfg.Systems, Distincts: cfg.distincts()}
	for _, d := range res.Distincts {
		spec := workload.Spec{Rows: cfg.Rows, DistinctKeys: d, Seed: cfg.Seed, ZipfS: cfg.ZipfS}
		for _, sys := range cfg.Systems {
			p, err := runMergeOn(sys, spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: merge %s d=%d: %w", sys, d, err)
			}
			res.Points = append(res.Points, p)
			cfg.progress("merge     d=%-8d %-4s %10.3fs", d, sys, p.Elapsed.Seconds())
		}
	}
	return res, nil
}

func runMergeOn(sys System, spec workload.Spec, cfg Config) (Point, error) {
	point := Point{System: sys, Distinct: spec.DistinctKeys}
	switch sys {
	case SystemCODS, SystemMonet:
		s, t, err := workload.BuildColstoreST(spec, "S", "T")
		if err != nil {
			return point, err
		}
		start := time.Now()
		if sys == SystemCODS {
			res, err := evolve.MergeKeyFK(s, t, "R", evolve.Options{})
			if err != nil {
				return point, err
			}
			point.OutputRows = res.Table.NumRows()
		} else {
			r, err := queryevolve.Merge(s, t, "R")
			if err != nil {
				return point, err
			}
			point.OutputRows = r.NumRows()
		}
		point.Elapsed = time.Since(start)
	case SystemCommercial, SystemCommercialIdx, SystemSQLite:
		profile := profileOf(sys)
		db := rowstore.NewDB()
		if err := workload.BuildRowstoreST(spec, db, "S", "T", profile.Storage()); err != nil {
			return point, err
		}
		start := time.Now()
		stats, err := rowstore.MergeQueryLevel(db, "S", "T", "R", []string{"A"}, profile.Profile())
		if err != nil {
			return point, err
		}
		point.Elapsed = time.Since(start)
		point.OutputRows = stats.RowsWritten
	default:
		return point, fmt.Errorf("unknown system %q", sys)
	}
	return point, nil
}

// RunGeneralMerge exercises the two-pass general mergence (§2.5.2, no
// figure in the demo paper — the companion technical report's experiment):
// join S(A,B) with T2(A,C) where A is a key of neither input. T2 carries
// two rows per distinct join value, so the output is about twice the input.
func RunGeneralMerge(cfg Config) (*Result, error) {
	res := &Result{Experiment: "general-merge", Rows: cfg.Rows, Systems: cfg.Systems, Distincts: cfg.distincts()}
	for _, d := range res.Distincts {
		spec := workload.Spec{Rows: cfg.Rows, DistinctKeys: d, Seed: cfg.Seed, ZipfS: cfg.ZipfS}
		for _, sys := range cfg.Systems {
			p, err := runGeneralMergeOn(sys, spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: general-merge %s d=%d: %w", sys, d, err)
			}
			res.Points = append(res.Points, p)
			cfg.progress("general   d=%-8d %-4s %10.3fs", d, sys, p.Elapsed.Seconds())
		}
	}
	return res, nil
}

// RunScale measures decomposition time as the row count grows at a fixed
// distinct-value count — the scalability axis of the paper's title,
// complementing Figure 3's distinct-value axis. Results are reported as
// Points with Distinct carrying the row count.
func RunScale(cfg Config, rowCounts []int, distinct int) (*Result, error) {
	res := &Result{Experiment: "scale (x-axis = rows)", Rows: distinct, Systems: cfg.Systems, Distincts: rowCounts}
	for _, rows := range rowCounts {
		spec := workload.Spec{Rows: rows, DistinctKeys: min(distinct, rows), Seed: cfg.Seed, ZipfS: cfg.ZipfS}
		for _, sys := range cfg.Systems {
			p, err := runDecomposeOn(sys, spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: scale %s rows=%d: %w", sys, rows, err)
			}
			p.Distinct = rows
			res.Points = append(res.Points, p)
			cfg.progress("scale     n=%-8d %-4s %10.3fs", rows, sys, p.Elapsed.Seconds())
		}
	}
	return res, nil
}

// doubleDim duplicates every row of a (A, C) table with a second distinct
// C value, so the join attribute A stops being a key: exactly the shape
// that forces general mergence.
func doubleDim(t1 *colstore.Table) (*colstore.Table, error) {
	tb, err := colstore.NewTableBuilder("T", []string{"A", "C"}, nil)
	if err != nil {
		return nil, err
	}
	rows, err := t1.Rows(0, 0)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := tb.AppendRow(row); err != nil {
			return nil, err
		}
		if err := tb.AppendRow([]string{row[0], row[1] + "x"}); err != nil {
			return nil, err
		}
	}
	return tb.Finish()
}

func runGeneralMergeOn(sys System, spec workload.Spec, cfg Config) (Point, error) {
	point := Point{System: sys, Distinct: spec.DistinctKeys}
	switch sys {
	case SystemCODS, SystemMonet:
		s, t1, err := workload.BuildColstoreST(spec, "S", "T1")
		if err != nil {
			return point, err
		}
		// Duplicate T's rows with a second C value so A stops being a key.
		t2, err := doubleDim(t1)
		if err != nil {
			return point, err
		}
		start := time.Now()
		if sys == SystemCODS {
			r, err := evolve.MergeGeneral(s, t2, "R", evolve.Options{})
			if err != nil {
				return point, err
			}
			point.OutputRows = r.NumRows()
		} else {
			r, err := queryevolve.Merge(s, t2, "R")
			if err != nil {
				return point, err
			}
			point.OutputRows = r.NumRows()
		}
		point.Elapsed = time.Since(start)
	case SystemCommercial, SystemCommercialIdx, SystemSQLite:
		profile := profileOf(sys)
		db := rowstore.NewDB()
		if err := workload.BuildRowstoreST(spec, db, "S", "T1", profile.Storage()); err != nil {
			return point, err
		}
		t1, err := db.Get("T1")
		if err != nil {
			return point, err
		}
		t2, err := db.Create("T", []string{"A", "C"}, profile.Storage())
		if err != nil {
			return point, err
		}
		err = t1.Scan(func(row []string) bool {
			t2.Insert(row)
			t2.Insert([]string{row[0], row[1] + "x"})
			return true
		})
		if err != nil {
			return point, err
		}
		start := time.Now()
		stats, err := rowstore.MergeQueryLevel(db, "S", "T", "R", []string{"A"}, profile.Profile())
		if err != nil {
			return point, err
		}
		point.Elapsed = time.Since(start)
		point.OutputRows = stats.RowsWritten
	default:
		return point, fmt.Errorf("unknown system %q", sys)
	}
	return point, nil
}

// profileKind pairs a row-store profile with its storage kind.
type profileKind struct{ p rowstore.Profile }

func profileOf(sys System) profileKind {
	switch sys {
	case SystemCommercialIdx:
		return profileKind{rowstore.ProfileCommercialIndexed}
	case SystemSQLite:
		return profileKind{rowstore.ProfileSQLiteLike}
	default:
		return profileKind{rowstore.ProfileCommercial}
	}
}

func (pk profileKind) Profile() rowstore.Profile { return pk.p }

// Storage returns the storage kind matching the profile.
func (pk profileKind) Storage() rowstore.StorageKind {
	if pk.p == rowstore.ProfileSQLiteLike {
		return rowstore.BTreeStorage
	}
	return rowstore.HeapStorage
}

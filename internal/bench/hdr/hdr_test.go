package hdr

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"time"
)

// TestBucketBoundaries checks the log-linear layout directly: bucket
// indexes are monotonic in the value, exact below 2^subBits, and a
// bucket's upper bound is at most 1/2^subBits above any value it holds —
// the advertised relative-error bound.
func TestBucketBoundaries(t *testing.T) {
	// Exact unit buckets below the sub-bucket threshold.
	for ns := int64(0); ns < subCount; ns++ {
		if got := bucketOf(ns); got != int(ns) {
			t.Fatalf("bucketOf(%d) = %d, want %d (unit bucket)", ns, got, ns)
		}
		if ub := upperBound(int(ns)); ub != ns {
			t.Fatalf("upperBound(%d) = %d, want %d", ns, ub, ns)
		}
	}
	// Around every power of two: indexes monotonic, bounds tight.
	var probes []int64
	for exp := 0; exp < 62; exp++ {
		probes = append(probes, 1<<exp-1, 1<<exp, 1<<exp+1)
	}
	slices.Sort(probes)
	prev := -1
	for _, ns := range probes {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d: not monotonic", ns, b, prev)
		}
		prev = b
		ub := upperBound(b)
		if ub < ns {
			t.Fatalf("upperBound(bucketOf(%d)) = %d < value", ns, ub)
		}
		if ns >= subCount && ub-ns > ns>>subBits {
			t.Fatalf("bucket error for %d: upper bound %d exceeds %d%% relative error",
				ns, ub, 100/subCount)
		}
	}
	// The largest representable value must not index out of range.
	if b := bucketOf(math.MaxInt64); b < 0 || b >= numBuckets {
		t.Fatalf("bucketOf(MaxInt64) = %d, out of [0, %d)", b, numBuckets)
	}
}

// TestSingleValueQuantile records one value and checks every quantile
// reports it within the bucket error bound (and exactly for min/max).
func TestSingleValueQuantile(t *testing.T) {
	for _, ns := range []int64{0, 1, 17, 31, 32, 33, 1000, 123456, 5e9} {
		h := New()
		h.Record(time.Duration(ns))
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			got := int64(h.Quantile(q))
			if got != ns {
				t.Errorf("Quantile(%v) after Record(%d) = %d, want exact (single value clamps to min/max)", q, ns, got)
			}
		}
		if h.Min() != time.Duration(ns) || h.Max() != time.Duration(ns) || h.Mean() != time.Duration(ns) {
			t.Errorf("min/max/mean after Record(%d): %v %v %v", ns, h.Min(), h.Max(), h.Mean())
		}
	}
}

// TestMergeAssociativity splits one stream across three histograms and
// checks (a+b)+c, a+(b+c) and the unsplit histogram agree bucket-for-
// bucket and on every derived statistic.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	one := New()
	parts := []*Histogram{New(), New(), New()}
	for i := 0; i < 30_000; i++ {
		d := time.Duration(rng.Int63n(int64(3 * time.Second)))
		one.Record(d)
		parts[rng.Intn(3)].Record(d)
	}

	ab := New()
	ab.Add(parts[0])
	ab.Add(parts[1])
	abc := New()
	abc.Add(ab)
	abc.Add(parts[2])

	bc := New()
	bc.Add(parts[1])
	bc.Add(parts[2])
	acb := New()
	acb.Add(parts[0])
	acb.Add(bc)

	for name, m := range map[string]*Histogram{"(a+b)+c": abc, "a+(b+c)": acb} {
		if m.counts != one.counts {
			t.Fatalf("%s: bucket counts differ from unsplit histogram", name)
		}
		if m.Count() != one.Count() || m.Min() != one.Min() || m.Max() != one.Max() || m.Mean() != one.Mean() {
			t.Fatalf("%s: stats differ: count %d/%d min %v/%v max %v/%v mean %v/%v",
				name, m.Count(), one.Count(), m.Min(), one.Min(), m.Max(), one.Max(), m.Mean(), one.Mean())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			if m.Quantile(q) != one.Quantile(q) {
				t.Fatalf("%s: Quantile(%v) = %v, unsplit %v", name, q, m.Quantile(q), one.Quantile(q))
			}
		}
	}
}

// TestQuantileMonotonic checks Quantile never decreases as q grows, stays
// within [Min, Max], and lands near the true order statistic of the
// recorded stream.
func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New()
	for i := 0; i < 10_000; i++ {
		// Mixed magnitudes: microseconds to seconds, heavy low tail.
		ns := rng.Int63n(1000) * (1 << uint(rng.Intn(21)))
		h.Record(time.Duration(ns))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at previous q (%v)", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
}

// TestQuantileAccuracy checks reported quantiles against exact order
// statistics: never below the true value, never more than the bucket
// width above it.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := New()
	values := make([]int64, 0, 20_000)
	for i := 0; i < 20_000; i++ {
		ns := rng.Int63n(int64(time.Second))
		values = append(values, ns)
		h.Record(time.Duration(ns))
	}
	slices.Sort(values)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rank := int(math.Ceil(q*float64(len(values)))) - 1
		exact := values[rank]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact order statistic %d", q, got, exact)
		}
		if slack := exact >> subBits; got > exact+slack+1 {
			t.Errorf("Quantile(%v) = %d exceeds exact %d by more than the bucket width %d", q, got, exact, slack)
		}
	}
}

// TestEmptyAndNegative covers the degenerate inputs.
func TestEmptyAndNegative(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5 * time.Second) // clock skew clamps to zero
	if h.Count() != 1 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative record should clamp to zero: count %d max %v", h.Count(), h.Max())
	}
	h.Add(nil) // merging nil is a no-op
	if h.Count() != 1 {
		t.Fatal("Add(nil) changed the histogram")
	}
}

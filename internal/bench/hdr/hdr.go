// Package hdr provides log-bucketed latency histograms for the HTAP
// workload harness: constant-space recording of operation latencies with
// bounded relative error, mergeable across workers so per-class
// percentiles can be fanned in deterministically (internal/par style:
// each worker owns a histogram, fan-in adds them in worker-index order —
// addition is associative and commutative, so the merged result is
// identical at any parallelism).
//
// The bucket layout is log-linear, the scheme HdrHistogram popularized:
// values below 2^subBits nanoseconds get exact unit buckets; above that,
// every power-of-two range is split into 2^subBits equal sub-buckets, so
// the relative error of any reported quantile is bounded by 1/2^subBits
// (~3% at subBits=5) while the whole histogram stays under 2000 buckets
// regardless of range. Quantiles report a bucket's upper bound (clamped
// to the recorded min/max), so they never under-estimate a latency.
package hdr

import (
	"math"
	"math/bits"
	"time"
)

// subBits sets the sub-bucket resolution: 2^subBits sub-buckets per
// power-of-two range, bounding quantile relative error by 1/2^subBits.
const subBits = 5

const subCount = 1 << subBits
const subMask = subCount - 1

// numBuckets spans every representable non-negative int64 nanosecond
// value: 63 is the highest exponent of a positive int64.
const numBuckets = (63-subBits+1)<<subBits + subCount

// Histogram records non-negative durations into log-linear buckets. The
// zero value is not ready to use; call New. A Histogram is not safe for
// concurrent use — give each worker its own and Add them at fan-in.
type Histogram struct {
	counts [numBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < subCount {
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1 // 2^exp <= ns < 2^(exp+1), exp >= subBits
	return (exp-subBits+1)<<subBits + int((ns>>(exp-subBits))&subMask)
}

// upperBound returns the largest nanosecond value a bucket can hold.
func upperBound(b int) int64 {
	if b < subCount {
		return int64(b)
	}
	octave := b >> subBits // >= 1
	sub := int64(b & subMask)
	lo := (int64(subCount) + sub) << (octave - 1)
	width := int64(1) << (octave - 1)
	return lo + width - 1
}

// Record adds one latency observation. Negative durations (clock skew)
// clamp to zero rather than corrupting the layout.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)]++
	h.total++
	h.sum += ns
	if ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Add merges other into h (bucket-wise addition). Merging is associative
// and commutative, so fanning worker histograms in yields the same result
// in any grouping or order.
func (h *Histogram) Add(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Max returns the largest recorded latency (exact, not bucketed); zero
// when empty.
func (h *Histogram) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Min returns the smallest recorded latency (exact); zero when empty.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Mean returns the arithmetic mean of recorded latencies (exact — the
// sum is tracked outside the buckets); zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns the latency at quantile q in [0, 1]: the smallest
// bucket upper bound such that at least ceil(q*Count) observations fall
// at or below it, clamped into [Min, Max] so q=1 reports the exact
// maximum and no quantile under-runs the minimum. Quantile is monotonic
// in q. Returns zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < numBuckets; b++ {
		cum += h.counts[b]
		if cum >= rank {
			ns := upperBound(b)
			if ns > h.max {
				ns = h.max
			}
			if ns < h.min {
				ns = h.min
			}
			return time.Duration(ns)
		}
	}
	return time.Duration(h.max) // unreachable: cum reaches total
}

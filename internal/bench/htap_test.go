package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyHTAP is a deterministic, fast HTAP spec for tests: fixed seed,
// small table, short measured window, one immediate SMO cycle.
func tinyHTAP() HTAPConfig {
	return HTAPConfig{
		Name:        "test-tiny",
		Rows:        2_000,
		ReadPct:     60,
		ScanPct:     10,
		WritePct:    30,
		SMOInterval: time.Hour, // fires once at start, never again
		Workers:     2,
		Duration:    200 * time.Millisecond,
		Seed:        7,
		Retain:      4,
		AutoCompact: 1024,
	}
}

// TestRunHTAPInproc runs the full driver end to end in-process and
// checks the result is internally consistent: every mix class plus smo
// appears, ops are positive, no operation errored, percentiles are
// ordered, and the memory gauges reflect the configured retention.
func TestRunHTAPInproc(t *testing.T) {
	res, err := RunHTAP(tinyHTAP())
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != TransportInproc {
		t.Fatalf("transport = %q, want %q", res.Transport, TransportInproc)
	}
	for _, class := range []string{ClassRead, ClassScan, ClassWrite, ClassSMO} {
		cs, ok := res.Classes[class]
		if !ok {
			t.Fatalf("class %q missing from result", class)
		}
		if cs.Ops <= 0 {
			t.Fatalf("class %q: ops = %d, want > 0", class, cs.Ops)
		}
		if cs.Errors != 0 {
			t.Fatalf("class %q: %d operation errors", class, cs.Errors)
		}
		if cs.P50MS > cs.P95MS || cs.P95MS > cs.P99MS || cs.P99MS > cs.MaxMS {
			t.Fatalf("class %q: percentiles not monotonic: %+v", class, cs)
		}
	}
	if res.Classes[ClassSMO].Ops != 4 {
		t.Fatalf("smo ops = %d, want exactly one 4-statement cycle", res.Classes[ClassSMO].Ops)
	}
	if res.RetainedVersions == 0 {
		t.Fatal("retained_versions gauge not sampled")
	}
}

// TestRunHTAPHTTP runs the same tiny spec over the self-hosted HTTP
// transport: same consistency checks, exercising the server round trip.
func TestRunHTAPHTTP(t *testing.T) {
	cfg := tinyHTAP()
	cfg.Transport = TransportHTTP
	res, err := RunHTAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != TransportHTTP {
		t.Fatalf("transport = %q, want %q", res.Transport, TransportHTTP)
	}
	for _, class := range []string{ClassRead, ClassScan, ClassWrite, ClassSMO} {
		cs, ok := res.Classes[class]
		if !ok {
			t.Fatalf("class %q missing from result", class)
		}
		if cs.Errors != 0 {
			t.Fatalf("class %q: %d operation errors over HTTP", class, cs.Errors)
		}
	}
}

// TestHTAPResultSchema locks the BENCH_htap.json entry schema: the field
// names BENCHMARKS.md documents must all be present in the emitted JSON.
func TestHTAPResultSchema(t *testing.T) {
	res, err := RunHTAP(tinyHTAP())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var entry map[string]any
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"workload", "transport", "rows", "distinct_keys", "zipf_s", "mix",
		"workers", "duration_ms", "seed", "classes",
		"pending_rows", "retained_versions", "compactions",
	} {
		if _, ok := entry[field]; !ok {
			t.Errorf("emitted JSON missing documented field %q", field)
		}
	}
	classes, ok := entry["classes"].(map[string]any)
	if !ok {
		t.Fatal("classes is not an object")
	}
	read, ok := classes[ClassRead].(map[string]any)
	if !ok {
		t.Fatal("classes.read is not an object")
	}
	for _, field := range []string{"ops", "errors", "ops_per_sec", "p50_ms", "p95_ms", "p99_ms", "max_ms"} {
		if _, ok := read[field]; !ok {
			t.Errorf("per-class JSON missing documented field %q", field)
		}
	}
}

// TestAppendResult checks the series file accumulates entries across
// appends and survives a pre-existing file, and that a corrupt file is
// reported rather than clobbered.
func TestAppendResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_htap.json")
	res := &HTAPResult{Workload: "a", Classes: map[string]ClassStats{}}
	if err := AppendResult(path, res); err != nil {
		t.Fatal(err)
	}
	res.Workload = "b"
	if err := AppendResult(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var series []HTAPResult
	if err := json.Unmarshal(data, &series); err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Workload != "a" || series[1].Workload != "b" {
		t.Fatalf("series = %+v, want [a b]", series)
	}

	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendResult(path, res); err == nil {
		t.Fatal("append to a corrupt series file must error, not clobber")
	}
	if data, _ := os.ReadFile(path); string(data) != "not json" {
		t.Fatal("corrupt series file was modified")
	}
}

// TestCheckSLOs covers pass, breach, and the threshold-on-missing-class
// case (which must violate: a gate that gates nothing is a bug).
func TestCheckSLOs(t *testing.T) {
	res := &HTAPResult{Classes: map[string]ClassStats{
		ClassRead: {Ops: 100, P99MS: 5.0},
	}}
	if v := res.CheckSLOs(map[string]time.Duration{ClassRead: 10 * time.Millisecond}); len(v) != 0 {
		t.Fatalf("p99 5ms under 10ms limit must pass, got %v", v)
	}
	v := res.CheckSLOs(map[string]time.Duration{ClassRead: 2 * time.Millisecond})
	if len(v) != 1 || !strings.Contains(v[0], "read") {
		t.Fatalf("p99 5ms over 2ms limit must violate, got %v", v)
	}
	if v := res.CheckSLOs(map[string]time.Duration{ClassWrite: time.Second}); len(v) != 1 {
		t.Fatalf("threshold on a class with no ops must violate, got %v", v)
	}
	if v := res.CheckSLOs(map[string]time.Duration{ClassRead: 0}); len(v) != 0 {
		t.Fatalf("zero threshold must be ignored, got %v", v)
	}
}

// TestHTAPValidation rejects malformed specs.
func TestHTAPValidation(t *testing.T) {
	bad := []HTAPConfig{
		{Rows: 0, ReadPct: 100, Workers: 1, Duration: time.Second},
		{Rows: 10, ReadPct: 50, ScanPct: 10, WritePct: 10, Workers: 1, Duration: time.Second}, // sums to 70
		{Rows: 10, ReadPct: 100, Workers: 0, Duration: time.Second},
		{Rows: 10, ReadPct: 100, Workers: 1, Duration: 0},
		{Rows: 10, ReadPct: 100, Workers: 1, Duration: time.Second, Transport: "carrier-pigeon"},
		{Rows: 10, ReadPct: 100, Workers: 1, Duration: time.Second, Addr: "http://x"}, // addr without http transport
	}
	for i, cfg := range bad {
		if _, err := RunHTAP(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

package advisor

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cods/internal/colstore"
	"cods/internal/evolve"
	"cods/internal/workload"
)

func build(t *testing.T, name string, columns []string, rows [][]string) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder(name, columns, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		tb.AppendRow(r)
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDiscoverFDsFigure1(t *testing.T) {
	r, err := workload.EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	fds, err := DiscoverFDs(r, false)
	if err != nil {
		t.Fatal(err)
	}
	// Employee -> Address holds; Address -> nothing (two employees per
	// address with different skills); Skill determines nothing.
	var found []string
	for _, fd := range fds {
		found = append(found, fd.Det+"->"+fd.Dep)
	}
	joined := strings.Join(found, ",")
	if !strings.Contains(joined, "Employee->Address") {
		t.Fatalf("missing Employee->Address: %v", found)
	}
	if strings.Contains(joined, "Address->Employee") {
		t.Fatalf("bogus Address->Employee: %v", found)
	}
	for _, fd := range fds {
		if fd.Det == "Employee" && fd.Dep == "Address" {
			if fd.DetDistinct != 4 || fd.RedundantCells != 3 {
				t.Fatalf("fd stats: %+v", fd)
			}
		}
	}
}

func TestDiscoverSkipsKeyDeterminant(t *testing.T) {
	r := build(t, "R", []string{"ID", "V"}, [][]string{
		{"1", "a"}, {"2", "b"}, {"3", "a"},
	})
	fds, err := DiscoverFDs(r, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range fds {
		if fd.Det == "ID" {
			t.Fatalf("key determinant reported: %v", fd)
		}
	}
	withKeys, err := DiscoverFDs(r, true)
	if err != nil {
		t.Fatal(err)
	}
	var sawID bool
	for _, fd := range withKeys {
		if fd.Det == "ID" && fd.Dep == "V" {
			sawID = true
		}
	}
	if !sawID {
		t.Fatal("includeKeyDet did not report ID->V")
	}
}

func TestSuggestProducesExecutableDecomposition(t *testing.T) {
	r, err := workload.EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	suggestions, err := Suggest(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no suggestions for Figure 1's table")
	}
	s := suggestions[0]
	if s.Op.Table != "R" || s.SavedCells == 0 {
		t.Fatalf("suggestion: %+v", s)
	}
	// The suggested operator must actually execute losslessly.
	res, err := evolve.Decompose(r, evolve.DecomposeSpec{
		OutS: s.Op.OutS, SColumns: s.Op.SColumns,
		OutT: s.Op.OutT, TColumns: s.Op.TColumns,
	}, evolve.Options{ValidateFD: true})
	if err != nil {
		t.Fatalf("suggested decomposition failed: %v (op: %s)", err, s.Op.String())
	}
	merged, err := evolve.MergeKeyFK(res.S, res.T, "R2", evolve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Table.NumRows() != r.NumRows() {
		t.Fatal("suggested decomposition is lossy")
	}
}

func TestSuggestRanksBySavedCells(t *testing.T) {
	// K1 determines C1 with lots of redundancy; K2 determines C2 with
	// little. Both should be suggested, K1 first.
	rng := rand.New(rand.NewSource(4))
	var rows [][]string
	for i := 0; i < 1000; i++ {
		k1 := fmt.Sprintf("k%d", rng.Intn(5)) // 5 distinct -> 995 redundant
		k2 := fmt.Sprintf("q%d", rng.Intn(400))
		rows = append(rows, []string{k1, "c-" + k1, k2, "d-" + k2, fmt.Sprintf("b%d", i)})
	}
	r := build(t, "R", []string{"K1", "C1", "K2", "C2", "B"}, rows)
	suggestions, err := Suggest(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) < 3 {
		t.Fatalf("suggestions=%d", len(suggestions))
	}
	// K1 and C1 are a bijection, so either may lead, but the
	// high-redundancy family (995 saved cells) must outrank the
	// low-redundancy K2 family.
	first := suggestions[0]
	if first.Op.OutT != "R_K1_dim" && first.Op.OutT != "R_C1_dim" {
		t.Fatalf("first suggestion %q, want the K1/C1 family", first.Op.OutT)
	}
	if first.SavedCells != 995 {
		t.Fatalf("first saved=%d want 995", first.SavedCells)
	}
	last := suggestions[len(suggestions)-1]
	if first.SavedCells <= last.SavedCells {
		t.Fatalf("not ranked: first %d, last %d", first.SavedCells, last.SavedCells)
	}
}

func TestNoSuggestionsWithoutFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var rows [][]string
	for i := 0; i < 300; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("a%d", rng.Intn(10)),
			fmt.Sprintf("b%d", rng.Intn(300)),
		})
	}
	r := build(t, "R", []string{"A", "B"}, rows)
	suggestions, err := Suggest(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range suggestions {
		// A -> B cannot hold with 10 determinants and ~300 dependents.
		for _, fd := range s.FDs {
			if fd.Det == "A" && fd.Dep == "B" {
				t.Fatalf("bogus FD: %v", fd)
			}
		}
	}
}

func TestMutualFDs(t *testing.T) {
	// A and B determine each other (bijection): both directions reported.
	r := build(t, "R", []string{"A", "B", "C"}, [][]string{
		{"a1", "b1", "x"},
		{"a2", "b2", "y"},
		{"a1", "b1", "z"},
	})
	fds, err := DiscoverFDs(r, false)
	if err != nil {
		t.Fatal(err)
	}
	var ab, ba bool
	for _, fd := range fds {
		if fd.Det == "A" && fd.Dep == "B" {
			ab = true
		}
		if fd.Det == "B" && fd.Dep == "A" {
			ba = true
		}
	}
	if !ab || !ba {
		t.Fatalf("bijection not discovered both ways: %v", fds)
	}
}

// Package advisor discovers evolution opportunities in stored tables. The
// paper motivates database evolution by "the availability of new knowledge
// of the database" (§1) — this package produces that knowledge: it
// discovers functional dependencies between attributes from the data and
// turns them into concrete DECOMPOSE TABLE operators, estimating the
// redundancy each decomposition would remove.
//
// Discovery runs on the bitmap index, not on tuples: attribute A
// functionally determines B exactly when every value-bitmap of A is
// "contained" in a single value-bitmap of B. The check runs once per
// distinct (a-value) with an early exit, and tables whose key side has
// high cardinality are checked via row-wise ids in a single scan.
package advisor

import (
	"fmt"
	"sort"

	"cods/internal/colstore"
	"cods/internal/smo"
)

// FD is a discovered single-attribute functional dependency Det -> Dep.
type FD struct {
	Det string
	Dep string
	// DetDistinct is the number of distinct determinant values (the row
	// count of the dimension table a decomposition would create).
	DetDistinct int
	// RedundantCells is the number of dependent-attribute cells the
	// current table stores beyond the necessary one-per-determinant.
	RedundantCells uint64
}

func (f FD) String() string {
	return fmt.Sprintf("%s -> %s (%d distinct, %d redundant cells)", f.Det, f.Dep, f.DetDistinct, f.RedundantCells)
}

// Suggestion is a decomposition the advisor recommends.
type Suggestion struct {
	// FDs lists the dependencies justifying the decomposition (same
	// determinant).
	FDs []FD
	// Op is the ready-to-execute operator.
	Op smo.DecomposeTable
	// SavedCells estimates the total redundant cells removed.
	SavedCells uint64
}

// DiscoverFDs finds all single-attribute functional dependencies in t. A
// trivial dependency (Det == Dep) is never reported; neither is one whose
// determinant is a key of the whole table (every attribute would qualify
// vacuously) unless includeKeyDet is set.
func DiscoverFDs(t *colstore.Table, includeKeyDet bool) ([]FD, error) {
	names := t.ColumnNames()
	var out []FD
	for _, det := range names {
		detCol, err := t.Column(det)
		if err != nil {
			return nil, err
		}
		detDistinct := detCol.DistinctCount()
		if uint64(detDistinct) == t.NumRows() && !includeKeyDet {
			continue // det is unique: determines everything trivially
		}
		detIDs := detCol.RowIDs()
		for _, dep := range names {
			if dep == det {
				continue
			}
			depCol, err := t.Column(dep)
			if err != nil {
				return nil, err
			}
			if holds, err := fdHoldsIDs(detIDs, depCol, detDistinct); err != nil {
				return nil, err
			} else if holds {
				out = append(out, FD{
					Det:            det,
					Dep:            dep,
					DetDistinct:    detDistinct,
					RedundantCells: t.NumRows() - uint64(detDistinct),
				})
			}
		}
	}
	return out, nil
}

// fdHoldsIDs checks det -> dep with one scan over the dependent column's
// row-wise ids, early-exiting on the first violation.
func fdHoldsIDs(detIDs []uint32, depCol *colstore.Column, detDistinct int) (bool, error) {
	depIDs := depCol.RowIDs()
	if len(depIDs) != len(detIDs) {
		return false, fmt.Errorf("advisor: column length mismatch")
	}
	const unset = ^uint32(0)
	mapped := make([]uint32, detDistinct)
	for i := range mapped {
		mapped[i] = unset
	}
	for row := range detIDs {
		d := detIDs[row]
		switch mapped[d] {
		case unset:
			mapped[d] = depIDs[row]
		case depIDs[row]:
		default:
			return false, nil
		}
	}
	return true, nil
}

// Suggest turns discovered FDs into decomposition suggestions, grouping
// dependencies by determinant and ranking by saved cells. Names of the
// proposed output tables derive from the input name.
func Suggest(t *colstore.Table) ([]Suggestion, error) {
	fds, err := DiscoverFDs(t, false)
	if err != nil {
		return nil, err
	}
	byDet := map[string][]FD{}
	for _, fd := range fds {
		byDet[fd.Det] = append(byDet[fd.Det], fd)
	}
	var out []Suggestion
	for det, group := range byDet {
		deps := make(map[string]bool, len(group))
		var saved uint64
		for _, fd := range group {
			deps[fd.Dep] = true
			saved += fd.RedundantCells
		}
		// Keep: everything not determined, plus the determinant. Move:
		// determinant plus its dependents.
		var keep, move []string
		move = append(move, det)
		for _, c := range t.ColumnNames() {
			if c == det {
				keep = append(keep, c)
				continue
			}
			if deps[c] {
				move = append(move, c)
			} else {
				keep = append(keep, c)
			}
		}
		if len(keep) < 2 {
			// Nothing left to keep besides the determinant: the
			// decomposition would just duplicate the table.
			continue
		}
		out = append(out, Suggestion{
			FDs: group,
			Op: smo.DecomposeTable{
				Table:    t.Name(),
				OutS:     t.Name() + "_main",
				SColumns: keep,
				OutT:     t.Name() + "_" + det + "_dim",
				TColumns: move,
			},
			SavedCells: saved,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SavedCells != out[b].SavedCells {
			return out[a].SavedCells > out[b].SavedCells
		}
		return out[a].Op.OutT < out[b].Op.OutT
	})
	return out, nil
}

package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedVisitsAll(t *testing.T) {
	for _, parallelism := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 31, 1000} {
			hits := make([]int32, n)
			ForEachIndexed(n, parallelism, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("parallelism=%d n=%d: index %d visited %d times", parallelism, n, i, h)
				}
			}
		}
	}
}

func TestForEachIndexedBoundsConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	ForEachIndexed(500, limit, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if got := peak.Load(); got > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", got, limit)
	}
}

func TestForEachIndexedPanicPropagates(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallelism=%d: panic not propagated", parallelism)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
					t.Fatalf("parallelism=%d: unexpected panic value %v", parallelism, r)
				}
			}()
			ForEachIndexed(100, parallelism, func(i int) {
				if i == 42 {
					panic("boom at 42")
				}
			})
		}()
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		err := ForEachErr(100, parallelism, func(i int) error {
			if i%30 == 17 { // fails at 17, 47, 77
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 17 failed" {
			t.Fatalf("parallelism=%d: got %v, want error of lowest failing index 17", parallelism, err)
		}
	}
}

func TestForEachErrNil(t *testing.T) {
	calls := int32(0)
	if err := ForEachErr(50, 4, func(i int) error {
		atomic.AddInt32(&calls, 1)
		return nil
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if calls != 50 {
		t.Fatalf("ran %d of 50 tasks", calls)
	}
}

func TestForEachErrStopsDispatching(t *testing.T) {
	// With one worker dispatch is in order, so a failure at index 0 must
	// prevent later tasks from starting.
	var calls int32
	err := ForEachErr(1000, 1, func(i int) error {
		atomic.AddInt32(&calls, 1)
		return errors.New("immediate")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("ran %d tasks after first failure, want 1", calls)
	}
}

func TestMapOrder(t *testing.T) {
	got := Map(64, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d, want %d", i, v, i*i)
		}
	}
}

// TestMapReduceMatchesSerialFold uses a non-commutative (but associative)
// reduction — string concatenation — to verify the ordered fan-in claim.
func TestMapReduceMatchesSerialFold(t *testing.T) {
	concat := func(a, b string) string { return a + b }
	elem := func(i int) string { return fmt.Sprintf("<%d>", i) }
	for _, n := range []int{0, 1, 2, 5, 100} {
		want := ""
		for i := 0; i < n; i++ {
			want += elem(i)
		}
		for _, parallelism := range []int{0, 1, 3, 16} {
			if got := MapReduce(n, parallelism, elem, concat); got != want {
				t.Fatalf("n=%d parallelism=%d: got %q, want %q", n, parallelism, got, want)
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("positive parallelism must be respected")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive parallelism must normalize to at least 1")
	}
}

// Package par is the shared parallel-execution layer for per-distinct-value
// bitmap work. The evolution algorithms (§2.4–§2.5), the query processor and
// the column builders all fan the same shape of work out: n independent tasks,
// one per distinct value (or per column), whose results land at known indexes.
// This package runs that shape on a bounded worker pool with deterministic,
// index-ordered fan-in, so callers get identical results at any parallelism.
//
// Conventions shared by every function:
//
//   - parallelism <= 0 means GOMAXPROCS;
//   - the effective worker count never exceeds n, and n <= 1 or an effective
//     single worker runs inline on the caller's goroutine (no spawn cost);
//   - a panic in fn is captured and re-raised on the caller's goroutine after
//     all workers have drained, so a crash inside a worker cannot leak
//     goroutines or deadlock the pool.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values <= 0 mean GOMAXPROCS.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// pool runs fn(i) for i in [0, n) across at most `parallelism` goroutines.
// Workers pull indexes from a shared atomic counter (dynamic load balancing:
// per-value bitmap costs are skewed, so static striping would idle workers).
// stop is polled between tasks for early exit; it may be nil.
func pool(n, parallelism int, stop *atomic.Bool, fn func(i int)) {
	workers := min(Workers(parallelism), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if stop != nil && stop.Load() {
				return
			}
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		once     sync.Once
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				if panicked.Load() || (stop != nil && stop.Load()) {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// ForEachIndexed runs fn(i) for every i in [0, n) on a bounded worker pool.
// fn must be safe for concurrent invocation on distinct indexes; writes to
// index i of a pre-sized result slice need no further synchronization.
func ForEachIndexed(n, parallelism int, fn func(i int)) {
	pool(n, parallelism, nil, fn)
}

// ForEachErr is ForEachIndexed for fallible tasks. It returns the error of
// the lowest failing index (deterministic regardless of scheduling) and stops
// dispatching new tasks once any task has failed; already-running tasks
// complete.
func ForEachErr(n, parallelism int, fn func(i int) error) error {
	errs := make([]error, n)
	var failed atomic.Bool
	pool(n, parallelism, &failed, func(i int) {
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Map runs fn over [0, n) and returns the results in index order.
func Map[T any](n, parallelism int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEachIndexed(n, parallelism, func(i int) { out[i] = fn(i) })
	return out
}

// MapReduce maps [0, n) and folds the results with reduce. Each worker folds
// a contiguous chunk of indexes left to right and the chunk partials are
// combined in chunk order, so the overall fold is the in-order sequence
// re-associated: reduce must be associative, but need not be commutative,
// for the result to be deterministic and equal to the serial fold. n == 0
// returns the zero T.
func MapReduce[T any](n, parallelism int, fn func(i int) T, reduce func(a, b T) T) T {
	var zero T
	if n == 0 {
		return zero
	}
	workers := min(Workers(parallelism), n)
	if workers <= 1 {
		acc := fn(0)
		for i := 1; i < n; i++ {
			acc = reduce(acc, fn(i))
		}
		return acc
	}
	partials := make([]T, workers)
	ForEachIndexed(workers, workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		acc := fn(lo)
		for i := lo + 1; i < hi; i++ {
			acc = reduce(acc, fn(i))
		}
		partials[w] = acc
	})
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = reduce(acc, p)
	}
	return acc
}

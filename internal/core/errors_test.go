package core

import (
	"testing"

	"cods/internal/smo"
	"cods/internal/workload"
)

// TestOperatorErrorPaths drives every operator's main failure mode through
// the engine and verifies the catalog stays intact.
func TestOperatorErrorPaths(t *testing.T) {
	e := New(Config{ValidateFD: true})
	r, err := workload.EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	e.Register(r)

	bad := []string{
		"CREATE TABLE R (X)",                            // name taken
		"DROP TABLE Nope",                               // unknown table
		"RENAME TABLE Nope TO X",                        // unknown source
		"COPY TABLE Nope TO X",                          // unknown source
		"COPY TABLE R TO R",                             // target taken
		"UNION TABLES R, Nope INTO U",                   // unknown input
		"PARTITION TABLE R WHERE Nope = 1 INTO A, B",    // unknown column
		"PARTITION TABLE R WHERE Skill = 'x' INTO A, A", // same outputs
		"DECOMPOSE TABLE Nope INTO S (A), T (B)",        // unknown input
		"MERGE TABLES R, Nope INTO M",                   // unknown input
		"ADD COLUMN Skill TO R DEFAULT 'x'",             // column exists
		"ADD COLUMN Z TO R FROM '/nonexistent/file'",    // unreadable file
		"DROP COLUMN Nope FROM R",                       // unknown column
		"RENAME COLUMN Nope TO X IN R",                  // unknown column
	}
	for _, text := range bad {
		op, err := smo.Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		if _, err := e.Apply(op); err == nil {
			t.Errorf("%q should have failed", text)
		}
	}
	// After all failures the catalog is exactly {R} at version 0.
	if got := e.Tables(); len(got) != 1 || got[0] != "R" {
		t.Fatalf("catalog=%v", got)
	}
	if e.Version() != 0 {
		t.Fatalf("version=%d", e.Version())
	}
	tab, err := e.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAfterOperators(t *testing.T) {
	e := New(Config{})
	r, _ := workload.EmployeeTable("R")
	e.Register(r)
	op, _ := smo.Parse("RENAME TABLE R TO R2")
	if _, err := e.Apply(op); err != nil {
		t.Fatal(err)
	}
	// Registering under the now-free name works and is snapshotted.
	r3, _ := workload.EmployeeTable("R")
	if err := e.Register(r3); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(1); err != nil {
		t.Fatal(err)
	}
	// Version 1 had R2 only (register of R came after and re-snapshotted
	// version 1; rollback targets the latest snapshot of that version).
	if _, err := e.Table("R2"); err != nil {
		t.Fatal("R2 missing after rollback")
	}
}

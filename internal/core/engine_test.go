package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cods/internal/smo"
	"cods/internal/workload"
)

func newEngineWithR(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{ValidateFD: true})
	r, err := workload.EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(r); err != nil {
		t.Fatal(err)
	}
	return e
}

func apply(t *testing.T, e *Engine, opText string) *Result {
	t.Helper()
	op, err := smo.Parse(opText)
	if err != nil {
		t.Fatalf("parse %q: %v", opText, err)
	}
	res, err := e.Apply(op)
	if err != nil {
		t.Fatalf("apply %q: %v", opText, err)
	}
	return res
}

func TestRegisterAndLookup(t *testing.T) {
	e := newEngineWithR(t)
	if _, err := e.Table("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table("missing"); err == nil {
		t.Fatal("lookup of missing table should fail")
	}
	r, _ := e.Table("R")
	if err := e.Register(r); err == nil {
		t.Fatal("duplicate register should fail")
	}
	if got := e.Tables(); len(got) != 1 || got[0] != "R" {
		t.Fatalf("Tables()=%v", got)
	}
}

func TestFullEvolutionScenario(t *testing.T) {
	e := newEngineWithR(t)

	// The paper's schema 1 -> schema 2 evolution.
	res := apply(t, e, "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	if !reflect.DeepEqual(res.Created, []string{"S", "T"}) || !reflect.DeepEqual(res.Dropped, []string{"R"}) {
		t.Fatalf("catalog delta: +%v -%v", res.Created, res.Dropped)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no status steps recorded")
	}
	if got := e.Tables(); !reflect.DeepEqual(got, []string{"S", "T"}) {
		t.Fatalf("catalog=%v", got)
	}

	// And back: schema 2 -> schema 1.
	apply(t, e, "MERGE TABLES S, T INTO R")
	r, err := e.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 7 {
		t.Fatalf("merged rows=%d", r.NumRows())
	}
	orig, _ := workload.EmployeeTable("R")
	if !reflect.DeepEqual(r.TupleMultiset(), orig.TupleMultiset()) {
		t.Fatal("round trip lost tuples")
	}
	if e.Version() != 2 {
		t.Fatalf("version=%d", e.Version())
	}
	hist := e.History()
	if len(hist) != 2 || hist[0].Kind != "DECOMPOSE TABLE" || hist[1].Kind != "MERGE TABLES" {
		t.Fatalf("history=%v", hist)
	}
}

func TestCatalogOnlyOperators(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "RENAME TABLE R TO People")
	if _, err := e.Table("R"); err == nil {
		t.Fatal("R should be gone after rename")
	}
	apply(t, e, "COPY TABLE People TO People2")
	p, _ := e.Table("People")
	p2, _ := e.Table("People2")
	if p.NumRows() != p2.NumRows() {
		t.Fatal("copy row count mismatch")
	}
	apply(t, e, "RENAME COLUMN Skill TO Talent IN People")
	p, _ = e.Table("People")
	if !p.HasColumn("Talent") {
		t.Fatal("column not renamed")
	}
	// The copy must be unaffected (no aliasing of schema metadata).
	p2, _ = e.Table("People2")
	if p2.HasColumn("Talent") {
		t.Fatal("rename leaked into the copy")
	}
	apply(t, e, "DROP TABLE People2")
	if _, err := e.Table("People2"); err == nil {
		t.Fatal("table not dropped")
	}
}

func TestCreateInsertlessTableAndColumnOps(t *testing.T) {
	e := New(Config{})
	apply(t, e, "CREATE TABLE Empty (A, B) KEY (A)")
	tab, _ := e.Table("Empty")
	if tab.NumRows() != 0 || tab.NumColumns() != 2 {
		t.Fatalf("shape: %v", tab)
	}
	if got := tab.Key(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("key=%v", got)
	}
}

func TestAddColumnDefaultAndDrop(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "ADD COLUMN Country TO R DEFAULT 'USA'")
	r, _ := e.Table("R")
	col, err := r.Column("Country")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := col.ValueAt(3)
	if v != "USA" {
		t.Fatalf("default=%q", v)
	}
	apply(t, e, "DROP COLUMN Country FROM R")
	r, _ = e.Table("R")
	if r.HasColumn("Country") {
		t.Fatal("column still present")
	}
}

func TestAddColumnFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grades.txt")
	if err := os.WriteFile(path, []byte("A\nB\nA\nC\nB\nA\nC\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := newEngineWithR(t)
	apply(t, e, "ADD COLUMN Grade TO R FROM '"+path+"'")
	r, _ := e.Table("R")
	col, err := r.Column("Grade")
	if err != nil {
		t.Fatal(err)
	}
	if col.DistinctCount() != 3 {
		t.Fatalf("distinct=%d", col.DistinctCount())
	}
}

func TestPartitionAndUnion(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "PARTITION TABLE R WHERE Address = '425 Grant Ave' INTO Grant, Rest")
	g, _ := e.Table("Grant")
	rest, _ := e.Table("Rest")
	if g.NumRows() != 4 || rest.NumRows() != 3 {
		t.Fatalf("partition sizes %d/%d", g.NumRows(), rest.NumRows())
	}
	apply(t, e, "UNION TABLES Grant, Rest INTO R")
	r, _ := e.Table("R")
	orig, _ := workload.EmployeeTable("R")
	if !reflect.DeepEqual(r.TupleMultiset(), orig.TupleMultiset()) {
		t.Fatal("partition+union lost tuples")
	}
}

func TestAtomicityOnFailure(t *testing.T) {
	e := newEngineWithR(t)
	op, _ := smo.Parse("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee)")
	if _, err := e.Apply(op); err == nil {
		t.Fatal("invalid decomposition should fail")
	}
	// Catalog untouched, version unchanged.
	if _, err := e.Table("R"); err != nil {
		t.Fatal("R lost after failed operator")
	}
	if _, err := e.Table("S"); err == nil {
		t.Fatal("S should not exist after failed operator")
	}
	if e.Version() != 0 {
		t.Fatalf("version=%d after failure", e.Version())
	}
}

func TestOutputNameConflicts(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "CREATE TABLE S (X)")
	op, _ := smo.Parse("DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	if _, err := e.Apply(op); err == nil {
		t.Fatal("output name conflict should fail")
	}
	// Reusing the input's own name is allowed (it is being dropped).
	apply(t, e, "DROP TABLE S")
	apply(t, e, "DECOMPOSE TABLE R INTO R (Employee, Skill), T (Employee, Address)")
	if _, err := e.Table("R"); err != nil {
		t.Fatal(err)
	}
}

func TestApplyScript(t *testing.T) {
	e := newEngineWithR(t)
	ops, err := smo.ParseScript(`
DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)
MERGE TABLES S, T INTO R
`)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.ApplyScript(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results=%d", len(results))
	}
	// A failing script stops early and reports prior results.
	ops2, _ := smo.ParseScript("DROP TABLE Nope\nDROP TABLE R")
	partial, err := e.ApplyScript(ops2)
	if err == nil {
		t.Fatal("expected failure")
	}
	if len(partial) != 0 {
		t.Fatalf("partial results=%d", len(partial))
	}
	if _, err := e.Table("R"); err != nil {
		t.Fatal("R must survive the failed script")
	}
}

func TestConcurrentReadersDuringApply(t *testing.T) {
	e := New(Config{})
	r, err := workload.BuildColstore(workload.Spec{Rows: 5000, DistinctKeys: 100, Seed: 1}, "R")
	if err != nil {
		t.Fatal(err)
	}
	e.Register(r)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				names := e.Tables()
				for _, n := range names {
					if tab, err := e.Table(n); err == nil {
						_ = tab.NumRows()
					}
				}
			}
		}()
	}
	apply(t, e, "DECOMPOSE TABLE R INTO S (A, B), T (A, C)")
	apply(t, e, "MERGE TABLES S, T INTO R")
	close(stop)
	wg.Wait()
}

func TestStatusCallback(t *testing.T) {
	var events []string
	e := New(Config{Status: func(s string) { events = append(events, s) }})
	r, _ := workload.EmployeeTable("R")
	e.Register(r)
	apply(t, e, "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	if len(events) == 0 {
		t.Fatal("no status events delivered")
	}
	all := strings.Join(events, "\n")
	if !strings.Contains(all, "distinction") {
		t.Fatalf("missing distinction event: %s", all)
	}
}

// TestDMLOverlayLifecycle covers the engine face of the delta overlay:
// DML statements version the catalog with dirty overlays, evolutions
// flush them (with a status step), and Compact retires them without
// changing content or version.
func TestDMLOverlayLifecycle(t *testing.T) {
	e := newEngineWithR(t)
	res := apply(t, e, "INSERT INTO R VALUES ('Nguyen', 'Sailing', '9 Pier Ln')")
	if len(res.Created) != 0 || len(res.Dropped) != 0 {
		t.Fatalf("DML reported created=%v dropped=%v", res.Created, res.Dropped)
	}
	apply(t, e, "DELETE FROM R WHERE Employee = 'Roberts'")

	cat := e.Catalog()
	ov, err := cat.Overlay("R")
	if err != nil {
		t.Fatal(err)
	}
	if !ov.Dirty() || ov.PendingAdded() != 1 || ov.PendingDeleted() != 1 {
		t.Fatalf("overlay state: dirty=%v added=%d deleted=%d", ov.Dirty(), ov.PendingAdded(), ov.PendingDeleted())
	}
	if n := ov.NumRows(); n != 7 {
		t.Fatalf("NumRows = %d, want 7 (7 seed + 1 - 1)", n)
	}
	version := cat.Version()
	rowsBefore, err := cat.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	before := rowsBefore.TupleMultiset()

	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	cat = e.Catalog()
	if got := cat.Version(); got != version {
		t.Fatalf("Compact changed version %d -> %d", version, got)
	}
	ov, err = cat.Overlay("R")
	if err != nil {
		t.Fatal(err)
	}
	if ov.Dirty() {
		t.Fatal("overlay still dirty after Compact")
	}
	tab, err := cat.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab.TupleMultiset(), before) {
		t.Fatal("Compact changed table content")
	}

	// An evolution over a dirty overlay flushes first and reports it.
	apply(t, e, "INSERT INTO R VALUES ('Park', 'Welding', '3 Dock Rd')")
	res = apply(t, e, "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	flushed := false
	for _, s := range res.Steps {
		if strings.HasPrefix(s, "delta flush: R") {
			flushed = true
		}
	}
	if !flushed {
		t.Fatalf("no delta-flush step in %v", res.Steps)
	}
	s, err := e.Catalog().Table("S")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range s.SortedTuples() {
		if row[0] == "Park" {
			found = true
		}
	}
	if !found {
		t.Fatal("decomposed S misses the inserted row")
	}
}

// TestCompactDoesNotAliasPublishedSnapshot is the regression for a map
// aliasing bug: Compact must give the writer working set and the
// stored/published snapshot distinct maps, or the next Apply mutates
// rollback history (and the published catalog) in place.
func TestCompactDoesNotAliasPublishedSnapshot(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "INSERT INTO R VALUES ('Nguyen', 'Sailing', '9 Pier Ln')")
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	compactedVersion := e.Version()

	apply(t, e, "DROP TABLE R")
	if _, err := e.Catalog().Overlay("R"); err == nil {
		t.Fatal("R still published after DROP")
	}
	if err := e.Rollback(compactedVersion); err != nil {
		t.Fatal(err)
	}
	tab, err := e.Catalog().Table("R")
	if err != nil {
		t.Fatalf("rollback to compacted version lost R: %v", err)
	}
	if n := tab.NumRows(); n != 8 {
		t.Fatalf("restored R has %d rows, want 8", n)
	}
}

// RENAME TABLE is metadata-only even with pending DML: the overlay
// carries over to the new name without a delta flush.
func TestRenameCarriesDeltaWithoutFlush(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "INSERT INTO R VALUES ('Nguyen', 'Sailing', '9 Pier Ln')")
	res := apply(t, e, "RENAME TABLE R TO R2")
	for _, s := range res.Steps {
		if strings.HasPrefix(s, "delta flush") {
			t.Fatalf("rename flushed the delta: %v", res.Steps)
		}
	}
	ov, err := e.Catalog().Overlay("R2")
	if err != nil {
		t.Fatal(err)
	}
	if !ov.Dirty() || ov.NumRows() != 8 {
		t.Fatalf("renamed overlay: dirty=%v rows=%d, want dirty with 8", ov.Dirty(), ov.NumRows())
	}
	if _, err := e.Catalog().Overlay("R"); err == nil {
		t.Fatal("old name still present")
	}
}

// Package core implements the CODS platform engine: a catalog of
// bitmap-indexed column-store tables, execution of Schema Modification
// Operators via the data-level evolution algorithms, schema version
// history, and step-by-step status tracking (the demo's "Data Evolution
// Status" panel, paper §3).
package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cods/internal/colstore"
	"cods/internal/delta"
	"cods/internal/evolve"
	"cods/internal/smo"
)

// ErrNoTable matches (via errors.Is) failures to look up a table that is
// not in the catalog. Servers use it to blame the right party: a query
// against a table a concurrent evolution just dropped is "not found", not
// a malformed request.
var ErrNoTable = errors.New("no table")

// Config parameterizes an Engine.
type Config struct {
	// Parallelism bounds per-value bitmap work; 0 means GOMAXPROCS.
	Parallelism int
	// ValidateFD makes DECOMPOSE verify losslessness (Property 2) before
	// evolving data.
	ValidateFD bool
	// Status, when non-nil, receives live evolution progress events.
	Status func(step string)
	// ValuesLoader resolves ADD COLUMN ... FROM 'file' into per-row
	// values. The default reads the file as one value per line.
	ValuesLoader func(path string) ([]string, error)
	// RetainVersions bounds how many previous schema versions stay
	// rollback-able: after every committed change the snapshot history is
	// pruned to the current version plus its RetainVersions predecessors.
	// 0 (the default) keeps every version — the pre-retention contract.
	RetainVersions int
	// AutoCompactPending, when positive, compacts delta overlays as soon
	// as a DML statement leaves a table with at least this many pending
	// rows (appended plus deletion marks), bounding overlay memory and
	// per-read merge cost on sustained write streams without an explicit
	// Compact or Checkpoint. 0 disables auto-compaction.
	AutoCompactPending int
	// SegmentMergeRatio tunes the tiered merge policy run after each
	// overlay flush: a tail run of segments is folded together whenever a
	// segment is at most ratio× the rows behind it (see
	// colstore.MergeTailPlan), keeping segment counts logarithmic and
	// per-row rewrite work amortized O(log n). 0 means the default ratio
	// (2); negative disables merging, letting flush-sealed tail segments
	// accumulate.
	SegmentMergeRatio int
	// BackgroundMerge moves tiered segment merges off the write path onto
	// a goroutine: the merge reads immutable segments without any lock and
	// publishes through the usual atomic catalog swap, but only after
	// verifying (pointer identity) that the segments it merged are still
	// exactly the ones in the current base — a concurrent flush or
	// evolution makes it a silent no-op, retried after the next flush.
	BackgroundMerge bool
	// RebuildFlush makes every overlay flush rebuild its table as one
	// monolithic segment — the pre-segmentation write path, kept as the
	// property-test oracle and the benchmark baseline.
	RebuildFlush bool
	// RebuildEvolve makes every evolution operator run its monolithic
	// algorithm over the stitched whole-table view and emit
	// single-segment outputs — the pre-segmentation evolution path, kept
	// as the correctness oracle and benchmark baseline for the
	// segment-wise default (mirroring RebuildFlush on the write path).
	RebuildEvolve bool
}

// mergeRatio resolves the configured segment merge ratio; ok is false
// when merging is disabled.
func (c Config) mergeRatio() (ratio int, ok bool) {
	switch {
	case c.SegmentMergeRatio < 0:
		return 0, false
	case c.SegmentMergeRatio == 0:
		return 2, true
	}
	return c.SegmentMergeRatio, true
}

// Engine is the CODS platform: it owns the table catalog and executes
// SMOs. Safe for concurrent use. Writers (Apply, Rollback, Register)
// serialize on an internal mutex, build the next catalog version off to
// the side, and publish it with one atomic pointer swap; readers (Table,
// Tables, Version, History, Catalog) load the published pointer and never
// block, even while an SMO is mid-execution.
type Engine struct {
	mu sync.Mutex // cods:writerlock serializes writers; readers never take it
	// tables maps each name to its delta.Overlay: the immutable base
	// table plus pending DML (appended rows, deletion bitmap). SMOs
	// consume the flushed table; DML derives a new overlay (copy on
	// write); readers merge base+delta through the overlay.
	tables  map[string]*delta.Overlay
	version int
	history []HistoryEntry
	// snapshots holds the catalog as of each schema version. Overlays are
	// immutable, so a snapshot is a map copy sharing all column data and
	// DML state — versioned schemas cost almost nothing, and any version
	// can be rolled back to (the "audibility" PRISM motivates; paper §1).
	snapshots map[int]map[string]*delta.Overlay
	// published is the current catalog as readers see it: an immutable
	// Catalog swapped in after each committed change (copy-on-write
	// publication). A reader that loaded it observes that whole schema
	// version for as long as it keeps the pointer.
	published atomic.Pointer[Catalog]
	// deferPublish, when positive, suppresses publication inside commits
	// (see DeferPublication): the facade uses it to make a change durable
	// (WAL fsync or checkpoint) before readers can observe it. A depth
	// counter, not a bool, so overlapping deferred spans compose: only
	// the outermost release publishes.
	deferPublish int
	// oldestRetained is the oldest schema version Rollback can restore;
	// pruning advances it and never moves it back. Guarded by mu; the
	// atomic gauges below mirror it (and the snapshot count and
	// compaction count) for lock-free MemStats.
	oldestRetained int
	retained       atomic.Int64
	oldestGauge    atomic.Int64
	compactions    atomic.Uint64
	// mergeWG tracks in-flight background segment merges (see
	// Config.BackgroundMerge); WaitBackgroundMerges joins them.
	mergeWG sync.WaitGroup
	merges  atomic.Uint64
	cfg     Config
}

// Catalog is an immutable view of the engine at one schema version: the
// table set, the version number, and the operator history up to it.
// Obtained lock-free from Engine.Catalog; safe to use concurrently and
// indefinitely (tables are immutable, the maps are never mutated after
// publication).
//
// cods:immutable
type Catalog struct {
	tables  map[string]*delta.Overlay
	version int
	history []HistoryEntry
}

// Table returns the named table with any pending DML flushed in, or an
// error wrapping ErrNoTable. The flush is computed at most once per
// overlay version and cached, so repeated reads of a DML'd table pay for
// the merge once; a table without pending DML is returned as-is.
func (c *Catalog) Table(name string) (*colstore.Table, error) {
	ov, err := c.Overlay(name)
	if err != nil {
		return nil, err
	}
	return ov.Table()
}

// Overlay returns the named table's delta overlay — the base table plus
// pending DML — or an error wrapping ErrNoTable. Read paths that can
// merge base and delta without flushing (counts, filtered row reads) use
// it to skip materialization.
func (c *Catalog) Overlay(name string) (*delta.Overlay, error) {
	if ov, ok := c.tables[name]; ok {
		return ov, nil
	}
	return nil, fmt.Errorf("core: %w %q", ErrNoTable, name)
}

// Tables returns the catalog's table names, sorted.
func (c *Catalog) Tables() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Version returns the catalog's schema version.
func (c *Catalog) Version() int { return c.version }

// History returns the executed-operator log up to this version as a
// fresh copy the caller may keep or mutate. O(statements) — use
// HistoryTail for polling paths (servers, REPL display) now that DML
// creates a version per statement.
func (c *Catalog) History() []HistoryEntry {
	return append([]HistoryEntry(nil), c.history...)
}

// HistoryLen returns the number of executed-operator log entries without
// copying the log.
func (c *Catalog) HistoryLen() int { return len(c.history) }

// HistoryTail returns the most recent limit entries (all of them when
// limit <= 0 or exceeds the log length) as a shared read-only view: the
// log is append-only and entries are never mutated after commit, so the
// tail costs O(1) regardless of how many statements ran. Callers must
// not modify the returned entries (enforced by codslint).
//
// cods:shared-view
func (c *Catalog) HistoryTail(limit int) []HistoryEntry {
	if limit <= 0 || limit > len(c.history) {
		limit = len(c.history)
	}
	return c.history[len(c.history)-limit:]
}

// HistoryEntry records one executed operator.
type HistoryEntry struct {
	Version int
	Op      string
	Kind    string
	Elapsed time.Duration
	Steps   []string
}

// Result reports one operator execution.
type Result struct {
	Op      smo.Op
	Version int
	Elapsed time.Duration
	// Steps are the data-evolution status events emitted while executing.
	Steps []string
	// Created and Dropped list catalog changes.
	Created []string
	Dropped []string
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.ValuesLoader == nil {
		cfg.ValuesLoader = loadValuesFile
	}
	e := &Engine{tables: make(map[string]*delta.Overlay), snapshots: make(map[int]map[string]*delta.Overlay), cfg: cfg}
	e.snapshots[0] = map[string]*delta.Overlay{}
	e.retained.Store(1)
	e.publish()
	return e
}

// snapshot records the current catalog under the current version and
// publishes it to readers. Writers call it with the mutex held as the
// last step of a committed change; until then readers keep loading the
// previous version, so a mid-flight SMO is never observable.
func (e *Engine) snapshot() {
	copied := make(map[string]*delta.Overlay, len(e.tables))
	for k, v := range e.tables {
		copied[k] = v
	}
	e.snapshots[e.version] = copied
	e.retained.Store(int64(len(e.snapshots)))
	e.publish()
}

// publish atomically swaps in the current version as the readers' catalog.
// The snapshot map is immutable from here on (Rollback copies it), and
// history is append-only, so the published Catalog never changes.
func (e *Engine) publish() {
	if e.deferPublish > 0 {
		return
	}
	e.published.Store(&Catalog{
		tables:  e.snapshots[e.version],
		version: e.version,
		history: e.history,
	})
}

// DeferPublication holds commits back from lock-free readers until the
// returned publish func runs. Spans nest: each call increments a depth
// counter and its publish decrements it, so an inner span's release
// cannot prematurely expose an outer span's not-yet-durable commits;
// calling the same publish func more than once is harmless. The durable
// facade paths use it so a change becomes durable (WAL fsync or
// checkpoint) before it becomes observable — readers never act on a
// schema version a crash could take back. The caller must serialize with
// other writers for the whole deferred span (the facade's writer mutex
// does) and must call publish even when durability fails: the change is
// then live in memory by contract, merely not yet durable.
func (e *Engine) DeferPublication() (publish func()) {
	e.mu.Lock()
	e.deferPublish++
	e.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.mu.Lock()
			e.deferPublish--
			e.publish()
			e.mu.Unlock()
		})
	}
}

// StagedCatalog returns the current catalog including commits whose
// publication is deferred. Checkpoints snapshot this — not the published
// catalog — so a deferred change is captured by the very checkpoint that
// makes it durable.
func (e *Engine) StagedCatalog() *Catalog {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Catalog{
		tables:  e.snapshots[e.version],
		version: e.version,
		history: e.history,
	}
}

// Catalog returns the current published catalog, lock-free. The result is
// immutable: callers may run any number of reads against it and always
// observe the same whole schema version, regardless of concurrent SMOs.
func (e *Engine) Catalog() *Catalog {
	return e.published.Load()
}

func loadValuesFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	return lines, nil
}

// Register adds an externally built table (data loading) to the catalog,
// wrapped in a clean delta overlay.
func (e *Engine) Register(t *colstore.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.tables[t.Name()]; exists {
		return fmt.Errorf("core: table %q already exists", t.Name())
	}
	e.tables[t.Name()] = e.wrapOne(t)
	e.snapshot()
	return nil
}

// Table returns the named table from the published catalog, lock-free.
func (e *Engine) Table(name string) (*colstore.Table, error) {
	return e.Catalog().Table(name)
}

// Tables returns the published catalog's table names, sorted, lock-free.
func (e *Engine) Tables() []string {
	return e.Catalog().Tables()
}

// Version returns the schema version, incremented by each applied SMO.
// Lock-free: it reads the published catalog.
func (e *Engine) Version() int {
	return e.Catalog().Version()
}

// History returns the executed-operator log. Lock-free: it reads the
// published catalog.
func (e *Engine) History() []HistoryEntry {
	return e.Catalog().History()
}

// Apply executes one SMO atomically: either the whole catalog change
// commits or the catalog is untouched.
//
// cods:stmt-dispatch — PRUNE is dispatched here by type assertion; every
// other statement kind falls through to execute's type switch. codslint
// (walreplay) checks the union covers every smo.Op implementer.
func (e *Engine) Apply(op smo.Op) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	if p, ok := op.(smo.Prune); ok {
		// PRUNE is catalog bookkeeping, not a catalog change: it retires
		// rollback snapshots without producing a new schema version or a
		// history entry, so it flows through Exec/scripts/WAL replay like
		// any statement but leaves the version sequence untouched.
		res := &Result{Op: op, Version: e.version}
		n := e.pruneLocked(p.Keep)
		step := fmt.Sprintf("prune: %d versions retired; rollback window [%d, %d]", n, e.oldestRetained, e.version)
		res.Steps = append(res.Steps, step)
		if e.cfg.Status != nil {
			e.cfg.Status(step)
		}
		return res, nil
	}

	res := &Result{Op: op}
	opts := evolve.Options{
		Parallelism: e.cfg.Parallelism,
		ValidateFD:  e.cfg.ValidateFD,
		Rebuild:     e.cfg.RebuildEvolve,
		Status: func(step string) {
			res.Steps = append(res.Steps, step)
			if e.cfg.Status != nil {
				e.cfg.Status(step)
			}
		},
	}

	start := time.Now()
	add, drop, err := e.execute(op, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", op.Kind(), err)
	}
	res.Elapsed = time.Since(start)

	// DML replaces a table's overlay under its own name: no catalog
	// create/drop to report, just the new version.
	dml := smo.IsDML(op)
	for _, name := range drop {
		delete(e.tables, name)
		res.Dropped = append(res.Dropped, name)
	}
	for _, ov := range add {
		e.tables[ov.Name()] = ov
		if !dml {
			res.Created = append(res.Created, ov.Name())
		}
	}
	e.version++
	res.Version = e.version
	e.history = append(e.history, HistoryEntry{
		Version: e.version,
		Op:      op.String(),
		Kind:    op.Kind(),
		Elapsed: res.Elapsed,
		Steps:   res.Steps,
	})
	e.snapshot()
	// Bounded-memory write path: a DML statement that left an overlay
	// past the pending-rows threshold triggers compaction now (readers
	// are unaffected — the same version republishes with the flushed
	// base), and the retention window is enforced after every commit, so
	// neither overlays nor rollback snapshots grow with statement count.
	if dml && e.cfg.AutoCompactPending > 0 {
		for _, ov := range add {
			pending := ov.PendingAdded() + int(ov.PendingDeleted())
			if pending < e.cfg.AutoCompactPending {
				continue
			}
			opts.Status(fmt.Sprintf("auto-compact: %s at %d pending rows (threshold %d)", ov.Name(), pending, e.cfg.AutoCompactPending))
			if err := e.compactTableLocked(ov.Name()); err != nil {
				// The statement is committed either way; a failed flush
				// just leaves the overlay pending for the next attempt.
				opts.Status(fmt.Sprintf("auto-compact failed (overlay stays pending): %v", err))
			}
			break
		}
	}
	if e.cfg.RetainVersions > 0 {
		e.pruneLocked(e.cfg.RetainVersions)
	}
	return res, nil
}

// Rollback restores the catalog to a previous schema version. The
// rollback itself is recorded as a new version; history is append-only.
// A version retired by the retention policy fails with a
// *VersionPrunedError naming the retained window; a version that never
// existed fails with a plain "no schema version" error — operators can
// tell a too-old target from a typo.
func (e *Engine) Rollback(version int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap, ok := e.snapshots[version]
	if !ok {
		if version >= 0 && version < e.oldestRetained {
			return &VersionPrunedError{Version: version, OldestRetained: e.oldestRetained, Newest: e.version}
		}
		return fmt.Errorf("core: no schema version %d (current: %d)", version, e.version)
	}
	restored := make(map[string]*delta.Overlay, len(snap))
	for k, v := range snap {
		restored[k] = v
	}
	e.tables = restored
	e.version++
	e.history = append(e.history, HistoryEntry{
		Version: e.version,
		Op:      fmt.Sprintf("ROLLBACK TO %d", version),
		Kind:    "ROLLBACK",
	})
	e.snapshot()
	if e.cfg.RetainVersions > 0 {
		e.pruneLocked(e.cfg.RetainVersions)
	}
	return nil
}

// ApplyScript executes a sequence of operators, stopping at the first
// failure.
func (e *Engine) ApplyScript(ops []smo.Op) ([]*Result, error) {
	var results []*Result
	for _, op := range ops {
		r, err := e.Apply(op)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// overlay looks a table's delta overlay up in the writer-side working
// set, under the already-held lock.
func (e *Engine) overlay(name string) (*delta.Overlay, error) {
	if ov, ok := e.tables[name]; ok {
		return ov, nil
	}
	return nil, fmt.Errorf("%w %q", ErrNoTable, name)
}

// wrap boxes operator outputs as clean overlays for the catalog.
func (e *Engine) wrap(ts ...*colstore.Table) []*delta.Overlay {
	out := make([]*delta.Overlay, len(ts))
	for i, t := range ts {
		out[i] = e.wrapOne(t)
	}
	return out
}

// wrapOne boxes one table as a clean overlay honoring the engine's flush
// mode.
func (e *Engine) wrapOne(t *colstore.Table) *delta.Overlay {
	ov := delta.Wrap(t, e.cfg.Parallelism)
	if e.cfg.RebuildFlush {
		ov = ov.WithRebuildFlush(true)
	}
	return ov
}

// wrapEvolved boxes segment-mapped evolution outputs, first running each
// through the tiered merge policy: operators emit one output segment per
// contributing input segment, so without this an evolution chain would
// balloon the segment count. The same policy (and the same background
// mode) as post-flush merging applies.
func (e *Engine) wrapEvolved(ts ...*colstore.Table) ([]*delta.Overlay, error) {
	out := make([]*delta.Overlay, len(ts))
	for i, t := range ts {
		mt, err := e.mergeAfterFlush(t)
		if err != nil {
			return nil, err
		}
		out[i] = e.wrapOne(mt)
	}
	return out, nil
}

// mergeAfterFlush applies the tiered merge policy to a freshly flushed
// table. In the default synchronous mode the merge runs inline and the
// merged table is returned; with BackgroundMerge the merge is scheduled
// on a goroutine (publishing later through the usual catalog swap) and t
// is returned unchanged.
func (e *Engine) mergeAfterFlush(t *colstore.Table) (*colstore.Table, error) {
	ratio, ok := e.cfg.mergeRatio()
	if !ok || t.NumSegments() < 2 {
		return t, nil
	}
	if !e.cfg.BackgroundMerge {
		nt, err := t.CompactSegments(ratio, e.cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		if nt != t {
			e.merges.Add(1)
		}
		return nt, nil
	}
	segs := t.Segments()
	start := colstore.MergeTailPlan(t.SegmentRows(), ratio)
	if start >= len(segs) {
		return t, nil
	}
	run, name := segs[start:], t.Name()
	e.mergeWG.Add(1)
	go func() {
		defer e.mergeWG.Done()
		// The run's segments are immutable, so the merge itself runs
		// without any lock; only the splice below needs the writer mutex.
		merged, err := colstore.MergeSegments(run, e.cfg.Parallelism)
		if err != nil {
			return
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		ov, ok := e.tables[name]
		if !ok {
			return
		}
		base, ok := ov.Base().WithSegmentsReplaced(start, run, merged)
		if !ok {
			// The base changed while we merged (another flush, an
			// evolution, a rollback): drop this merge — the policy re-fires
			// after the table's next flush.
			return
		}
		nov, err := ov.WithBase(base)
		if err != nil {
			return
		}
		e.tables[name] = nov
		e.merges.Add(1)
		// Republish the same version: row sets are identical, only the
		// physical segmentation changed — the same contract as Compact.
		e.snapshot()
	}()
	return t, nil
}

// WaitBackgroundMerges blocks until every scheduled background segment
// merge has completed or aborted. Callers that need a deterministic
// segment layout (tests, shutdown) join here; it must be called without
// holding the writer mutex.
func (e *Engine) WaitBackgroundMerges() { e.mergeWG.Wait() }

// SegmentMerges reports how many tiered segment merges have been applied
// (inline or background) since the engine started.
func (e *Engine) SegmentMerges() uint64 { return e.merges.Load() }

// Compact replaces every dirty overlay of the current version with its
// flushed base, republishing the same schema version (the tuple sets are
// identical — only the physical representation changes), and enforces
// the configured retention window. Checkpoint calls it after persisting
// a snapshot: the snapshot wrote the flushed tables, so keeping the
// in-memory deltas would let them grow without bound across truncations
// of the WAL that journaled them.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.RetainVersions > 0 {
		e.pruneLocked(e.cfg.RetainVersions)
	}
	return e.compactLocked()
}

// compactTableLocked retires one table's overlay, republishing the same
// version. Auto-compaction uses it instead of compactLocked so a hot
// table crossing the threshold never drags an unrelated table's (large,
// barely dirty) rebuild along — flush-everything is a checkpoint
// concern. e.tables is the writer-private working map (snapshots store
// copies), so the in-place entry swap is safe under the mutex.
func (e *Engine) compactTableLocked(name string) error {
	ov, ok := e.tables[name]
	if !ok || !ov.Dirty() {
		return nil
	}
	t, err := ov.Table()
	if err != nil {
		return err
	}
	if t, err = e.mergeAfterFlush(t); err != nil {
		return err
	}
	e.tables[name] = e.wrapOne(t)
	e.compactions.Add(1)
	e.snapshot()
	return nil
}

// compactLocked implements Compact under the writer mutex.
func (e *Engine) compactLocked() error {
	dirty := false
	for _, ov := range e.tables {
		if ov.Dirty() {
			dirty = true
			break
		}
	}
	if !dirty {
		return nil
	}
	compacted := make(map[string]*delta.Overlay, len(e.tables))
	for name, ov := range e.tables {
		if !ov.Dirty() {
			compacted[name] = ov
			continue
		}
		t, err := ov.Table()
		if err != nil {
			return err
		}
		if t, err = e.mergeAfterFlush(t); err != nil {
			return err
		}
		compacted[name] = e.wrapOne(t)
	}
	e.tables = compacted
	e.compactions.Add(1)
	// snapshot() re-freezes the working set under the current version
	// and republishes — same code path as a commit, so the "stored maps
	// are distinct from the writer working set" invariant lives in one
	// place. The version number is unchanged; only the representation
	// is.
	e.snapshot()
	return nil
}

// ensureFree fails when an output name is taken and not about to be
// dropped.
func (e *Engine) ensureFree(name string, dropping ...string) error {
	if _, exists := e.tables[name]; !exists {
		return nil
	}
	for _, d := range dropping {
		if d == name {
			return nil
		}
	}
	return fmt.Errorf("table %q already exists", name)
}

// execute computes an operator's outputs without touching the catalog.
// Evolution operators read tables through get, which flushes any pending
// DML into the base first — the delta overlay is an artifact of the write
// path, and the paper's algorithms must see one plain table. DML
// statements instead derive a new overlay from the current one.
//
// cods:stmt-dispatch — the main statement type switch; together with
// Apply's PRUNE assertion it must cover every smo.Op implementer, and
// codslint (walreplay) fails the build when a new operator is missing,
// so a statement can never parse from the WAL yet be unreplayable.
func (e *Engine) execute(op smo.Op, opts evolve.Options) (add []*delta.Overlay, drop []string, err error) {
	get := func(name string) (*colstore.Table, error) {
		ov, err := e.overlay(name)
		if err != nil {
			return nil, err
		}
		if ov.Dirty() {
			opts.Status(fmt.Sprintf("delta flush: %s (+%d appended, -%d deleted)",
				name, ov.PendingAdded(), ov.PendingDeleted()))
		}
		return ov.Table()
	}

	switch o := op.(type) {
	case smo.Insert:
		ov, err := e.overlay(o.Table)
		if err != nil {
			return nil, nil, err
		}
		nov, err := ov.Insert(o.Values)
		if err != nil {
			return nil, nil, err
		}
		opts.Status(fmt.Sprintf("insert: 1 row appended to delta overlay (%d pending)", nov.PendingAdded()))
		return []*delta.Overlay{nov}, nil, nil

	case smo.Delete:
		ov, err := e.overlay(o.Table)
		if err != nil {
			return nil, nil, err
		}
		nov, n, err := ov.Delete(o.Where)
		if err != nil {
			return nil, nil, err
		}
		opts.Status(fmt.Sprintf("delete: %d rows marked in deletion bitmap", n))
		return []*delta.Overlay{nov}, nil, nil

	case smo.Update:
		ov, err := e.overlay(o.Table)
		if err != nil {
			return nil, nil, err
		}
		nov, n, err := ov.Update(o.Column, o.Value, o.Where)
		if err != nil {
			return nil, nil, err
		}
		opts.Status(fmt.Sprintf("update: %d rows rewritten through delta overlay", n))
		return []*delta.Overlay{nov}, nil, nil

	case smo.CreateTable:
		if err := e.ensureFree(o.Table); err != nil {
			return nil, nil, err
		}
		tb, err := colstore.NewTableBuilder(o.Table, o.Columns, o.Key)
		if err != nil {
			return nil, nil, err
		}
		t, err := tb.Finish()
		if err != nil {
			return nil, nil, err
		}
		return e.wrap(t), nil, nil

	case smo.DropTable:
		// Existence check only — flushing a table about to be dropped
		// would be wasted work.
		if _, err := e.overlay(o.Table); err != nil {
			return nil, nil, err
		}
		return nil, []string{o.Table}, nil

	case smo.RenameTable:
		// Metadata-only: the overlay (pending DML included) carries over
		// under the new name, no flush.
		ov, err := e.overlay(o.From)
		if err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.To, o.From); err != nil {
			return nil, nil, err
		}
		return []*delta.Overlay{ov.WithName(o.To)}, []string{o.From}, nil

	case smo.CopyTable:
		t, err := get(o.From)
		if err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.To); err != nil {
			return nil, nil, err
		}
		out, err := evolve.Copy(t, o.To, opts)
		if err != nil {
			return nil, nil, err
		}
		return e.wrap(out), nil, nil

	case smo.UnionTables:
		a, err := get(o.A)
		if err != nil {
			return nil, nil, err
		}
		b, err := get(o.B)
		if err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.Out, o.A, o.B); err != nil {
			return nil, nil, err
		}
		u, err := evolve.Union(a, b, o.Out, opts)
		if err != nil {
			return nil, nil, err
		}
		add, err := e.wrapEvolved(u)
		if err != nil {
			return nil, nil, err
		}
		return add, []string{o.A, o.B}, nil

	case smo.PartitionTable:
		t, err := get(o.Table)
		if err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.OutYes, o.Table); err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.OutNo, o.Table); err != nil {
			return nil, nil, err
		}
		if o.OutYes == o.OutNo {
			return nil, nil, fmt.Errorf("partition outputs must differ")
		}
		yes, no, err := evolve.Partition(t, o.Condition, o.OutYes, o.OutNo, opts)
		if err != nil {
			return nil, nil, err
		}
		add, err := e.wrapEvolved(yes, no)
		if err != nil {
			return nil, nil, err
		}
		return add, []string{o.Table}, nil

	case smo.DecomposeTable:
		t, err := get(o.Table)
		if err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.OutS, o.Table); err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.OutT, o.Table); err != nil {
			return nil, nil, err
		}
		res, err := evolve.Decompose(t, evolve.DecomposeSpec{
			OutS: o.OutS, SColumns: o.SColumns,
			OutT: o.OutT, TColumns: o.TColumns,
		}, opts)
		if err != nil {
			return nil, nil, err
		}
		add, err := e.wrapEvolved(res.S, res.T)
		if err != nil {
			return nil, nil, err
		}
		return add, []string{o.Table}, nil

	case smo.MergeTables:
		a, err := get(o.A)
		if err != nil {
			return nil, nil, err
		}
		b, err := get(o.B)
		if err != nil {
			return nil, nil, err
		}
		if err := e.ensureFree(o.Out, o.A, o.B); err != nil {
			return nil, nil, err
		}
		res, err := evolve.Merge(a, b, o.Out, opts)
		if err != nil {
			return nil, nil, err
		}
		add, err := e.wrapEvolved(res.Table)
		if err != nil {
			return nil, nil, err
		}
		return add, []string{o.A, o.B}, nil

	case smo.AddColumn:
		t, err := get(o.Table)
		if err != nil {
			return nil, nil, err
		}
		var nt *colstore.Table
		if o.ValuesFile != "" {
			values, err := e.cfg.ValuesLoader(o.ValuesFile)
			if err != nil {
				return nil, nil, fmt.Errorf("loading column values: %w", err)
			}
			nt, err = evolve.AddColumnValues(t, o.Column, values, opts)
			if err != nil {
				return nil, nil, err
			}
		} else {
			nt, err = evolve.AddColumnDefault(t, o.Column, o.Default, opts)
			if err != nil {
				return nil, nil, err
			}
		}
		return e.wrap(nt), []string{o.Table}, nil

	case smo.DropColumn:
		t, err := get(o.Table)
		if err != nil {
			return nil, nil, err
		}
		nt, err := evolve.DropColumn(t, o.Column, opts)
		if err != nil {
			return nil, nil, err
		}
		return e.wrap(nt), []string{o.Table}, nil

	case smo.RenameColumn:
		t, err := get(o.Table)
		if err != nil {
			return nil, nil, err
		}
		nt, err := t.WithColumnRenamed(o.From, o.To)
		if err != nil {
			return nil, nil, err
		}
		return e.wrap(nt), []string{o.Table}, nil

	case smo.Select:
		// Read-only: a query mutates nothing, so it has no business in
		// the mutation path (or the WAL, which this dispatch replays).
		// Apply fails before journaling; the facade routes SELECT text
		// to the planner instead.
		return nil, nil, fmt.Errorf("SELECT is read-only; run it through the query API, not Apply")
	}
	return nil, nil, fmt.Errorf("unsupported operator %T", op)
}

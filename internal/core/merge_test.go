package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cods/internal/colstore"
)

// insertBatch appends n distinct rows to R and flushes them into a
// sealed tail segment via Compact.
func insertBatch(t *testing.T, e *Engine, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		apply(t, e, fmt.Sprintf("INSERT INTO R VALUES ('E%04d', 'Skill%d', '%d Main St')", i, i%3, i))
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
}

func baseR(t *testing.T, e *Engine) *colstore.Table {
	t.Helper()
	ov, err := e.Catalog().Overlay("R")
	if err != nil {
		t.Fatal(err)
	}
	return ov.Base()
}

func TestTieredMergeBoundsSegments(t *testing.T) {
	e := New(Config{})
	seedR(t, e)
	for b := 0; b < 12; b++ {
		insertBatch(t, e, b*10, 10)
	}
	base := baseR(t, e)
	// 12 flushes over a 7-row seed: without merging that is 13 segments;
	// the ratio-2 tier keeps it logarithmic.
	if n := base.NumSegments(); n > 5 {
		t.Fatalf("segments=%d after 12 flushes; tiered merge not engaging", n)
	}
	if e.SegmentMerges() == 0 {
		t.Fatal("no merges counted")
	}
	assertRContent(t, e, 7+120)
}

func TestMergeDisabledAccumulatesSegments(t *testing.T) {
	e := New(Config{SegmentMergeRatio: -1})
	seedR(t, e)
	for b := 0; b < 5; b++ {
		insertBatch(t, e, b*10, 10)
	}
	base := baseR(t, e)
	if n := base.NumSegments(); n != 6 {
		t.Fatalf("segments=%d, want 6 (seed + one per flush)", n)
	}
	if e.SegmentMerges() != 0 {
		t.Fatalf("merges=%d with merging disabled", e.SegmentMerges())
	}
	assertRContent(t, e, 7+50)
}

func TestRebuildFlushKeepsSingleSegment(t *testing.T) {
	e := New(Config{RebuildFlush: true})
	seedR(t, e)
	for b := 0; b < 5; b++ {
		insertBatch(t, e, b*10, 10)
	}
	base := baseR(t, e)
	if n := base.NumSegments(); n != 1 {
		t.Fatalf("segments=%d, want 1 under RebuildFlush", n)
	}
	assertRContent(t, e, 7+50)
}

func TestBackgroundMergeConverges(t *testing.T) {
	e := New(Config{BackgroundMerge: true})
	seedR(t, e)
	for b := 0; b < 12; b++ {
		insertBatch(t, e, b*10, 10)
	}
	e.WaitBackgroundMerges()
	if e.SegmentMerges() == 0 {
		t.Fatal("no background merges applied")
	}
	// Background merges that lost the race to a newer flush no-op, so the
	// final count may exceed the sync bound, but the last merge (nothing
	// racing it) must have landed.
	base := baseR(t, e)
	if n := base.NumSegments(); n > 7 {
		t.Fatalf("segments=%d after background merging settled", n)
	}
	assertRContent(t, e, 7+120)
}

// seedR registers the 7-row employee table as R.
func seedR(t *testing.T, e *Engine) {
	t.Helper()
	e2 := newEngineWithR(t)
	tab, err := e2.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(tab); err != nil {
		t.Fatal(err)
	}
}

// assertRContent checks R's merged view row count and that the segmented
// base agrees with itself via both read paths (tuples vs stitched rows).
func assertRContent(t *testing.T, e *Engine, want int) {
	t.Helper()
	tab, err := e.Catalog().Table("R")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(tab.NumRows()); got != want {
		t.Fatalf("rows=%d, want %d", got, want)
	}
	rows, err := tab.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want {
		t.Fatalf("Rows()=%d, want %d", len(rows), want)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both read paths over the same table must agree.
	st := tab.SortedTuples()
	again := append([][]string(nil), rows...)
	sort.Slice(again, func(a, b int) bool {
		for i := range again[a] {
			if again[a][i] != again[b][i] {
				return again[a][i] < again[b][i]
			}
		}
		return false
	})
	if !reflect.DeepEqual(st, again) {
		t.Fatal("SortedTuples and Rows disagree")
	}
}

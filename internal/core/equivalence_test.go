package core

import (
	"reflect"
	"strings"
	"testing"

	"cods/internal/rowstore"
	"cods/internal/smo"
	"cods/internal/workload"
)

// TestEngineMatchesQueryLevelRowStore drives the same evolution through
// the CODS engine and through the row-store query-level path and checks
// the resulting tuple multisets are identical — the full-stack version of
// the paper's Figure 2 equivalence.
func TestEngineMatchesQueryLevelRowStore(t *testing.T) {
	spec := workload.Spec{Rows: 5000, DistinctKeys: 120, Seed: 31}

	// CODS engine.
	e := New(Config{})
	r, err := workload.BuildColstore(spec, "R")
	if err != nil {
		t.Fatal(err)
	}
	e.Register(r)
	mustApply := func(text string) {
		op, err := smo.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	mustApply("DECOMPOSE TABLE R INTO S (A, B), T (A, C)")

	// Row-store query level.
	db := rowstore.NewDB()
	if _, err := workload.BuildRowstore(spec, db, "R", rowstore.HeapStorage); err != nil {
		t.Fatal(err)
	}
	if _, err := rowstore.DecomposeQueryLevel(db, "R", "S", []string{"A", "B"}, "T", []string{"A", "C"}, []string{"A"}, rowstore.ProfileCommercial); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"S", "T"} {
		colTab, err := e.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		rowTab, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]int{}
		rowTab.Scan(func(tuple []string) bool {
			want[strings.Join(tuple, "\x00")]++
			return true
		})
		if got := colTab.TupleMultiset(); !reflect.DeepEqual(got, want) {
			t.Fatalf("table %s: engine and query-level results differ (%d vs %d tuples)", name, len(got), len(want))
		}
	}

	// And the merge direction.
	mustApply("MERGE TABLES S, T INTO R")
	if _, err := rowstore.MergeQueryLevel(db, "S", "T", "R2", []string{"A"}, rowstore.ProfileCommercial); err != nil {
		t.Fatal(err)
	}
	colR, _ := e.Table("R")
	rowR, _ := db.Get("R2")
	want := map[string]int{}
	rowR.Scan(func(tuple []string) bool {
		want[strings.Join(tuple, "\x00")]++
		return true
	})
	if got := colR.TupleMultiset(); !reflect.DeepEqual(got, want) {
		t.Fatal("merged tables differ between engine and query level")
	}
}

func TestEngineRollbackSnapshotsAreIsolated(t *testing.T) {
	e := New(Config{})
	r, err := workload.EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	e.Register(r)
	op, _ := smo.Parse("RENAME TABLE R TO R2")
	if _, err := e.Apply(op); err != nil {
		t.Fatal(err)
	}
	// Mutating the catalog after a snapshot must not corrupt the snapshot.
	op, _ = smo.Parse("DROP TABLE R2")
	if _, err := e.Apply(op); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table("R2"); err != nil {
		t.Fatal("R2 missing after rollback to version 1")
	}
	if err := e.Rollback(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table("R"); err != nil {
		t.Fatal("R missing after rollback to version 0")
	}
}

package core

import (
	"errors"
	"testing"

	"cods/internal/colstore"
	"cods/internal/smo"
)

func buildTable(t *testing.T, name string, rows [][]string) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder(name, []string{"A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestCatalogPinsVersion checks copy-on-write publication: a Catalog taken
// before an SMO keeps showing the pre-SMO schema version forever, while a
// fresh Catalog sees the committed change.
func TestCatalogPinsVersion(t *testing.T) {
	e := New(Config{})
	if err := e.Register(buildTable(t, "R", [][]string{{"a1", "b1"}, {"a2", "b2"}})); err != nil {
		t.Fatal(err)
	}
	before := e.Catalog()
	if before.Version() != 0 {
		t.Fatalf("version before SMO = %d, want 0", before.Version())
	}

	op, err := smo.Parse("RENAME TABLE R TO R2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(op); err != nil {
		t.Fatal(err)
	}

	// The old snapshot is immutable: same version, same table set.
	if before.Version() != 0 {
		t.Fatalf("pinned snapshot version changed to %d", before.Version())
	}
	if _, err := before.Table("R"); err != nil {
		t.Fatalf("pinned snapshot lost table R: %v", err)
	}
	if _, err := before.Table("R2"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("pinned snapshot shows future table R2 (err = %v)", err)
	}
	if len(before.History()) != 0 {
		t.Fatalf("pinned snapshot history grew to %d entries", len(before.History()))
	}

	// A fresh snapshot sees the commit.
	after := e.Catalog()
	if after.Version() != 1 {
		t.Fatalf("version after SMO = %d, want 1", after.Version())
	}
	if _, err := after.Table("R2"); err != nil {
		t.Fatal(err)
	}
	if _, err := after.Table("R"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("renamed-away table still visible (err = %v)", err)
	}
	if h := after.History(); len(h) != 1 || h[0].Kind != "RENAME TABLE" {
		t.Fatalf("history = %+v", h)
	}
}

// TestDeferPublication checks the durability-before-visibility hook:
// while publication is deferred, commits stay invisible to lock-free
// readers (but visible to StagedCatalog, which checkpoints snapshot);
// the release func makes them observable.
func TestDeferPublication(t *testing.T) {
	e := New(Config{})
	if err := e.Register(buildTable(t, "R", [][]string{{"a1", "b1"}})); err != nil {
		t.Fatal(err)
	}

	publish := e.DeferPublication()
	op, err := smo.Parse("RENAME TABLE R TO R2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(op); err != nil {
		t.Fatal(err)
	}

	// Readers still see the pre-change catalog...
	if got := e.Catalog().Version(); got != 0 {
		t.Fatalf("published version during deferral = %d, want 0", got)
	}
	if _, err := e.Catalog().Table("R2"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("deferred commit visible to readers (err = %v)", err)
	}
	// ...while the staged catalog (what a checkpoint would persist)
	// carries the commit.
	staged := e.StagedCatalog()
	if staged.Version() != 1 {
		t.Fatalf("staged version = %d, want 1", staged.Version())
	}
	if _, err := staged.Table("R2"); err != nil {
		t.Fatalf("staged catalog missing the deferred commit: %v", err)
	}

	// Spans nest: an inner span's release must not expose the outer
	// span's commits.
	inner := e.DeferPublication()
	inner()
	if got := e.Catalog().Version(); got != 0 {
		t.Fatalf("inner release published outer deferred commit (version %d)", got)
	}

	publish()
	if got := e.Catalog().Version(); got != 1 {
		t.Fatalf("published version after release = %d, want 1", got)
	}
	if _, err := e.Catalog().Table("R2"); err != nil {
		t.Fatal(err)
	}
	// Releasing again is harmless, and later commits publish normally.
	publish()
	op, err = smo.Parse("RENAME TABLE R2 TO R3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(op); err != nil {
		t.Fatal(err)
	}
	if got := e.Catalog().Version(); got != 2 {
		t.Fatalf("version after deferral ended = %d, want 2", got)
	}
}

// TestErrNoTableSentinel checks that every table-lookup failure — reader
// and writer side — matches ErrNoTable via errors.Is, so servers can map
// it to "not found".
func TestErrNoTableSentinel(t *testing.T) {
	e := New(Config{})
	if _, err := e.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Engine.Table error %v does not match ErrNoTable", err)
	}
	if _, err := e.Catalog().Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Catalog.Table error %v does not match ErrNoTable", err)
	}
	op, err := smo.Parse("DROP TABLE nope")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(op); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Apply(DROP TABLE nope) error %v does not match ErrNoTable", err)
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrVersionPruned matches (via errors.Is) Rollback failures against a
// schema version that existed but was retired by the retention policy —
// distinct from a version that never existed. The concrete error is a
// *VersionPrunedError naming the retained window.
var ErrVersionPruned = errors.New("schema version pruned by retention")

// VersionPrunedError reports a Rollback to a version the retention
// policy already retired, naming the window that is still available. It
// matches ErrVersionPruned via errors.Is.
type VersionPrunedError struct {
	// Version is the requested (pruned) schema version.
	Version int
	// OldestRetained and Newest bound the retained rollback window,
	// inclusive.
	OldestRetained int
	Newest         int
}

func (e *VersionPrunedError) Error() string {
	return fmt.Sprintf("core: schema version %d pruned by retention; retained rollback window is [%d, %d]",
		e.Version, e.OldestRetained, e.Newest)
}

// Is makes errors.Is(err, ErrVersionPruned) match.
func (e *VersionPrunedError) Is(target error) bool { return target == ErrVersionPruned }

// Prune retires catalog snapshots older than the last keepLast versions,
// shrinking the retained rollback window to [version-keepLast, version]
// (the current version plus keepLast predecessors). It returns how many
// snapshots were retired. Rollback to a retired version fails with a
// *VersionPrunedError from then on — pruning is deliberate forgetting,
// never undone by a later wider setting. Published catalogs, running
// readers and the history log are unaffected: pruning frees the table
// maps (and the flushed tables and overlays only those versions pinned),
// not the operator record.
func (e *Engine) Prune(keepLast int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pruneLocked(keepLast)
}

// pruneLocked implements Prune under the writer mutex.
func (e *Engine) pruneLocked(keepLast int) int {
	if keepLast < 0 {
		keepLast = 0
	}
	oldest := e.version - keepLast
	if oldest <= e.oldestRetained {
		return 0
	}
	pruned := 0
	for v := e.oldestRetained; v < oldest; v++ {
		if _, ok := e.snapshots[v]; ok {
			delete(e.snapshots, v)
			pruned++
		}
	}
	e.oldestRetained = oldest
	e.retained.Store(int64(len(e.snapshots)))
	e.oldestGauge.Store(int64(oldest))
	return pruned
}

// MemStats is a lock-free gauge snapshot of the engine's memory-pressure
// sources: how many catalog versions are retained for Rollback, how many
// delta-overlay rows are pending compaction in the published catalog,
// and how many compactions have run (manual, checkpoint-driven, or
// automatic). Safe to call at any time — it never takes the writer
// mutex, so /stats answers even while an evolution is mid-operator.
type MemStats struct {
	// RetainedVersions counts catalog snapshots currently kept for
	// Rollback (the current version included).
	RetainedVersions int
	// OldestRetained is the oldest schema version Rollback can restore.
	OldestRetained int
	// PendingRows totals appended rows plus deletion marks across every
	// table's delta overlay in the published catalog.
	PendingRows uint64
	// Compactions counts overlay compactions since the engine started.
	Compactions uint64
	// SegmentMerges counts tiered segment merges since the engine started
	// (inline and background, post-flush and post-evolution).
	SegmentMerges uint64
	// Tables holds per-table segment gauges for the published catalog,
	// sorted by table name.
	Tables []TableSegments
}

// TableSegments is one table's segment-layout gauge: how many base
// segments it holds and how skewed their sizes are. A segment count that
// keeps growing (or a tiny MinRows against a huge MaxRows outside the
// normal tiered layout) means the merge policy is not keeping up.
type TableSegments struct {
	// Table is the table name.
	Table string
	// Segments is the number of base segments.
	Segments int
	// MinRows and MaxRows bound the per-segment row counts. Both are 0
	// for an empty table.
	MinRows, MaxRows uint64
}

// MemStats returns the current memory-pressure gauges, lock-free: the
// per-table segment gauges read each overlay's immutable base from the
// published catalog, so no writer lock is needed even mid-evolution.
func (e *Engine) MemStats() MemStats {
	ms := MemStats{
		RetainedVersions: int(e.retained.Load()),
		OldestRetained:   int(e.oldestGauge.Load()),
		Compactions:      e.compactions.Load(),
		SegmentMerges:    e.merges.Load(),
	}
	cat := e.Catalog()
	for name, ov := range cat.tables {
		ms.PendingRows += uint64(ov.PendingAdded()) + ov.PendingDeleted()
		ts := TableSegments{Table: name}
		rows := ov.Base().SegmentRows()
		ts.Segments = len(rows)
		for _, r := range rows {
			if ts.MinRows == 0 || r < ts.MinRows {
				ts.MinRows = r
			}
			if r > ts.MaxRows {
				ts.MaxRows = r
			}
		}
		ms.Tables = append(ms.Tables, ts)
	}
	sort.Slice(ms.Tables, func(i, j int) bool { return ms.Tables[i].Table < ms.Tables[j].Table })
	return ms
}

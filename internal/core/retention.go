package core

import (
	"errors"
	"fmt"
)

// ErrVersionPruned matches (via errors.Is) Rollback failures against a
// schema version that existed but was retired by the retention policy —
// distinct from a version that never existed. The concrete error is a
// *VersionPrunedError naming the retained window.
var ErrVersionPruned = errors.New("schema version pruned by retention")

// VersionPrunedError reports a Rollback to a version the retention
// policy already retired, naming the window that is still available. It
// matches ErrVersionPruned via errors.Is.
type VersionPrunedError struct {
	// Version is the requested (pruned) schema version.
	Version int
	// OldestRetained and Newest bound the retained rollback window,
	// inclusive.
	OldestRetained int
	Newest         int
}

func (e *VersionPrunedError) Error() string {
	return fmt.Sprintf("core: schema version %d pruned by retention; retained rollback window is [%d, %d]",
		e.Version, e.OldestRetained, e.Newest)
}

// Is makes errors.Is(err, ErrVersionPruned) match.
func (e *VersionPrunedError) Is(target error) bool { return target == ErrVersionPruned }

// Prune retires catalog snapshots older than the last keepLast versions,
// shrinking the retained rollback window to [version-keepLast, version]
// (the current version plus keepLast predecessors). It returns how many
// snapshots were retired. Rollback to a retired version fails with a
// *VersionPrunedError from then on — pruning is deliberate forgetting,
// never undone by a later wider setting. Published catalogs, running
// readers and the history log are unaffected: pruning frees the table
// maps (and the flushed tables and overlays only those versions pinned),
// not the operator record.
func (e *Engine) Prune(keepLast int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pruneLocked(keepLast)
}

// pruneLocked implements Prune under the writer mutex.
func (e *Engine) pruneLocked(keepLast int) int {
	if keepLast < 0 {
		keepLast = 0
	}
	oldest := e.version - keepLast
	if oldest <= e.oldestRetained {
		return 0
	}
	pruned := 0
	for v := e.oldestRetained; v < oldest; v++ {
		if _, ok := e.snapshots[v]; ok {
			delete(e.snapshots, v)
			pruned++
		}
	}
	e.oldestRetained = oldest
	e.retained.Store(int64(len(e.snapshots)))
	e.oldestGauge.Store(int64(oldest))
	return pruned
}

// MemStats is a lock-free gauge snapshot of the engine's memory-pressure
// sources: how many catalog versions are retained for Rollback, how many
// delta-overlay rows are pending compaction in the published catalog,
// and how many compactions have run (manual, checkpoint-driven, or
// automatic). Safe to call at any time — it never takes the writer
// mutex, so /stats answers even while an evolution is mid-operator.
type MemStats struct {
	// RetainedVersions counts catalog snapshots currently kept for
	// Rollback (the current version included).
	RetainedVersions int
	// OldestRetained is the oldest schema version Rollback can restore.
	OldestRetained int
	// PendingRows totals appended rows plus deletion marks across every
	// table's delta overlay in the published catalog.
	PendingRows uint64
	// Compactions counts overlay compactions since the engine started.
	Compactions uint64
}

// MemStats returns the current memory-pressure gauges, lock-free.
func (e *Engine) MemStats() MemStats {
	ms := MemStats{
		RetainedVersions: int(e.retained.Load()),
		OldestRetained:   int(e.oldestGauge.Load()),
		Compactions:      e.compactions.Load(),
	}
	cat := e.Catalog()
	for _, ov := range cat.tables {
		ms.PendingRows += uint64(ov.PendingAdded()) + ov.PendingDeleted()
	}
	return ms
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"cods/internal/smo"
	"cods/internal/workload"
)

func newKeyedEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	apply(t, e, "CREATE TABLE kv (K, V) KEY (K)")
	return e
}

func TestPruneRetiresRollbackTargets(t *testing.T) {
	e := newEngineWithR(t)
	for i := 0; i < 5; i++ {
		apply(t, e, fmt.Sprintf("ADD COLUMN C%d TO R DEFAULT 'x'", i))
		apply(t, e, fmt.Sprintf("DROP COLUMN C%d FROM R", i))
	}
	// Register snapshots under version 0; the ten statements take the
	// catalog to version 10.
	if e.Version() != 10 {
		t.Fatalf("version = %d, want 10", e.Version())
	}

	if n := e.Prune(3); n != 7 {
		t.Fatalf("Prune(3) retired %d versions, want 7 (0..6)", n)
	}
	ms := e.MemStats()
	if ms.RetainedVersions != 4 || ms.OldestRetained != 7 {
		t.Fatalf("MemStats after prune = %+v, want 4 retained from v7", ms)
	}
	// Re-pruning with a wider window must not resurrect anything and
	// must be a no-op.
	if n := e.Prune(100); n != 0 {
		t.Fatalf("wider re-prune retired %d versions, want 0", n)
	}

	// A pruned version fails with the typed error naming the window.
	err := e.Rollback(2)
	if !errors.Is(err, ErrVersionPruned) {
		t.Fatalf("Rollback(pruned) = %v, want ErrVersionPruned", err)
	}
	var pe *VersionPrunedError
	if !errors.As(err, &pe) {
		t.Fatalf("Rollback(pruned) error type = %T", err)
	}
	if pe.Version != 2 || pe.OldestRetained != 7 || pe.Newest != 10 {
		t.Fatalf("pruned-error window = %+v, want {2 7 10}", pe)
	}

	// A version that never existed is a plain lookup failure, not a
	// retention one.
	err = e.Rollback(99)
	if err == nil || errors.Is(err, ErrVersionPruned) {
		t.Fatalf("Rollback(never-existed) = %v, want plain no-such-version error", err)
	}
	if !strings.Contains(err.Error(), "no schema version 99") {
		t.Fatalf("Rollback(never-existed) message = %q", err)
	}

	// A retained version still rolls back.
	if err := e.Rollback(9); err != nil {
		t.Fatalf("Rollback(retained) = %v", err)
	}
}

// Config.RetainVersions enforces the window after every commit: the
// snapshot count stays at RetainVersions+1 no matter how many statements
// run — the tentpole's bounded-memory contract.
func TestRetainVersionsBoundsSnapshotsContinuously(t *testing.T) {
	e := newKeyedEngine(t, Config{RetainVersions: 2})
	for i := 0; i < 20; i++ {
		apply(t, e, fmt.Sprintf("INSERT INTO kv VALUES ('k%02d', 'v')", i))
		if got := e.MemStats().RetainedVersions; got > 3 {
			t.Fatalf("after statement %d: %d retained versions, want <= 3", i, got)
		}
	}
	if ms := e.MemStats(); ms.OldestRetained != e.Version()-2 {
		t.Fatalf("oldest retained = %d, want %d", ms.OldestRetained, e.Version()-2)
	}
	// Rollback inside the window works and the window slides with it.
	if err := e.Rollback(e.Version() - 1); err != nil {
		t.Fatal(err)
	}
	if got := e.MemStats().RetainedVersions; got > 3 {
		t.Fatalf("after rollback: %d retained versions, want <= 3", got)
	}
}

// The PRUNE statement flows through Apply like any other statement but
// produces no new schema version and no history entry.
func TestPruneStatementThroughApply(t *testing.T) {
	e := newEngineWithR(t)
	apply(t, e, "ADD COLUMN Z TO R DEFAULT 'v'")
	apply(t, e, "DROP COLUMN Z FROM R")
	v := e.Version()
	hist := len(e.History())

	res, err := e.Apply(smo.Prune{Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != v || e.Version() != v {
		t.Fatalf("PRUNE moved the version: res=%d engine=%d, want %d", res.Version, e.Version(), v)
	}
	if len(e.History()) != hist {
		t.Fatalf("PRUNE appended a history entry")
	}
	if len(res.Steps) == 0 || !strings.Contains(res.Steps[0], "rollback window") {
		t.Fatalf("PRUNE steps = %v", res.Steps)
	}
	if ms := e.MemStats(); ms.RetainedVersions != 2 || ms.OldestRetained != v-1 {
		t.Fatalf("MemStats after PRUNE KEEP 1 = %+v", ms)
	}
	if err := e.Rollback(0); !errors.Is(err, ErrVersionPruned) {
		t.Fatalf("Rollback(0) after PRUNE = %v, want ErrVersionPruned", err)
	}
}

// AutoCompactPending retires an overlay as soon as a DML statement
// leaves it past the threshold: the same version republishes with a
// clean (flushed) overlay, contents unchanged.
func TestAutoCompactionRetiresOverlays(t *testing.T) {
	e := newKeyedEngine(t, Config{AutoCompactPending: 3})
	for i := 0; i < 10; i++ {
		apply(t, e, fmt.Sprintf("INSERT INTO kv VALUES ('k%02d', 'v%d')", i, i))
		ov, err := e.Catalog().Overlay("kv")
		if err != nil {
			t.Fatal(err)
		}
		if pending := ov.PendingAdded() + int(ov.PendingDeleted()); pending >= 3 {
			t.Fatalf("after statement %d: %d pending rows survived the threshold", i, pending)
		}
	}
	ms := e.MemStats()
	if ms.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	tab, err := e.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 10 {
		t.Fatalf("rows after auto-compaction = %d, want 10", tab.NumRows())
	}
	if err := tab.ValidateKey(); err != nil {
		t.Fatal(err)
	}
	// Deletion marks count toward the threshold too.
	before := e.MemStats().Compactions
	apply(t, e, "DELETE FROM kv WHERE K < 'k05'")
	if e.MemStats().Compactions <= before {
		t.Fatal("bulk DELETE past the threshold did not compact")
	}
	tab, _ = e.Table("kv")
	if tab.NumRows() != 5 {
		t.Fatalf("rows after delete = %d, want 5", tab.NumRows())
	}
}

// Engine.Compact prunes to the configured retention window even when no
// overlay is dirty — checkpoints route through it, so a checkpoint alone
// must be enough to shrink a catalog that was opened with retention
// configured after the versions piled up.
func TestCompactEnforcesRetention(t *testing.T) {
	e := New(Config{RetainVersions: 1})
	r, err := workload.EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(r); err != nil {
		t.Fatal(err)
	}
	// Register path does not prune (it is not a statement commit), so
	// drive a few statements and then let Compact do the bookkeeping.
	apply(t, e, "ADD COLUMN Z TO R DEFAULT 'v'")
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if ms := e.MemStats(); ms.RetainedVersions > 2 {
		t.Fatalf("retained after Compact = %d, want <= 2", ms.RetainedVersions)
	}
}

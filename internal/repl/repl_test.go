package repl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cods"
)

func newRepl(t *testing.T) (*Repl, *bytes.Buffer) {
	t.Helper()
	db := cods.Open(cods.Config{ValidateFD: true})
	err := db.CreateTableFromRows("R",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"Jones", "Typing", "425 Grant Ave"},
			{"Jones", "Shorthand", "425 Grant Ave"},
			{"Roberts", "Light Cleaning", "747 Industrial Way"},
			{"Ellis", "Alchemy", "747 Industrial Way"},
			{"Jones", "Whittling", "425 Grant Ave"},
			{"Ellis", "Juggling", "747 Industrial Way"},
			{"Harrison", "Light Cleaning", "425 Grant Ave"},
		})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return &Repl{DB: db, Out: &out}, &out
}

func runLines(t *testing.T, rp *Repl, out *bytes.Buffer, lines ...string) string {
	t.Helper()
	out.Reset()
	for _, l := range lines {
		rp.Line(l)
	}
	return out.String()
}

func TestOperatorExecution(t *testing.T) {
	rp, out := newRepl(t)
	got := runLines(t, rp, out, "DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)")
	for _, want := range []string{"ok: DECOMPOSE TABLE", "created: S, T", "dropped: R"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestOperatorError(t *testing.T) {
	rp, out := newRepl(t)
	got := runLines(t, rp, out, "DROP TABLE Nope")
	if !strings.Contains(got, "error:") {
		t.Fatalf("missing error output: %s", got)
	}
}

func TestTablesAndDescribe(t *testing.T) {
	rp, out := newRepl(t)
	got := runLines(t, rp, out, `\tables`)
	if !strings.Contains(got, "R") || !strings.Contains(got, "7 rows") {
		t.Fatalf("tables output: %s", got)
	}
	got = runLines(t, rp, out, `\describe R`)
	for _, want := range []string{"table R: 7 rows", "Employee", "bitmap", "distinct"} {
		if !strings.Contains(got, want) {
			t.Fatalf("describe missing %q: %s", want, got)
		}
	}
}

func TestDisplayAndSelectAndCount(t *testing.T) {
	rp, out := newRepl(t)
	got := runLines(t, rp, out, `\display R 3`)
	if !strings.Contains(got, "(3 rows)") || !strings.Contains(got, "... 4 more rows") {
		t.Fatalf("display output: %s", got)
	}
	got = runLines(t, rp, out, `\select R Employee = 'Jones'`)
	if !strings.Contains(got, "(3 rows)") || !strings.Contains(got, "Whittling") {
		t.Fatalf("select output: %s", got)
	}
	got = runLines(t, rp, out, `\count R Address = '425 Grant Ave'`)
	if !strings.Contains(got, "4 rows") {
		t.Fatalf("count output: %s", got)
	}
}

func TestHistoryRollbackValidate(t *testing.T) {
	rp, out := newRepl(t)
	runLines(t, rp, out, "COPY TABLE R TO R2", "DROP TABLE R2")
	got := runLines(t, rp, out, `\history`)
	if !strings.Contains(got, "COPY TABLE R TO R2") || !strings.Contains(got, "DROP TABLE R2") {
		t.Fatalf("history: %s", got)
	}
	got = runLines(t, rp, out, `\rollback 1`, `\tables`)
	if !strings.Contains(got, "rolled back to schema version 1") || !strings.Contains(got, "R2") {
		t.Fatalf("rollback: %s", got)
	}
	got = runLines(t, rp, out, `\validate`)
	if !strings.Contains(got, "all tables validate") {
		t.Fatalf("validate: %s", got)
	}
	got = runLines(t, rp, out, `\rollback abc`)
	if !strings.Contains(got, "error") {
		t.Fatalf("bad rollback arg: %s", got)
	}
}

func TestAdviseCommand(t *testing.T) {
	rp, out := newRepl(t)
	got := runLines(t, rp, out, `\advise R`)
	if !strings.Contains(got, "DECOMPOSE TABLE R") || !strings.Contains(got, "Employee -> Address") {
		t.Fatalf("advise: %s", got)
	}
}

func TestLoadExportSave(t *testing.T) {
	rp, out := newRepl(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "r.csv")
	got := runLines(t, rp, out, `\export R `+csvPath)
	if strings.Contains(got, "error") {
		t.Fatalf("export: %s", got)
	}
	got = runLines(t, rp, out, `\load `+csvPath+` R2`)
	if !strings.Contains(got, "loaded 7 rows into R2") {
		t.Fatalf("load: %s", got)
	}
	dbDir := filepath.Join(dir, "db")
	got = runLines(t, rp, out, `\save `+dbDir)
	if !strings.Contains(got, "saved to") {
		t.Fatalf("save: %s", got)
	}
	if _, err := os.Stat(filepath.Join(dbDir, "catalog.json")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAndUsageAndComments(t *testing.T) {
	rp, out := newRepl(t)
	got := runLines(t, rp, out, `\frobnicate`)
	if !strings.Contains(got, "unknown command") {
		t.Fatalf("unknown: %s", got)
	}
	got = runLines(t, rp, out, `\describe`)
	if !strings.Contains(got, "usage:") {
		t.Fatalf("usage: %s", got)
	}
	got = runLines(t, rp, out, "", "-- comment", "# comment")
	if got != "" {
		t.Fatalf("comments produced output: %s", got)
	}
	got = runLines(t, rp, out, `\help`)
	if !strings.Contains(got, "DECOMPOSE TABLE") {
		t.Fatalf("help: %s", got)
	}
}

func TestRunLoopQuitAndPrompt(t *testing.T) {
	rp, out := newRepl(t)
	rp.Prompt = "cods> "
	in := strings.NewReader("\\tables\n\\quit\nDROP TABLE R\n")
	if err := rp.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "cods> ") {
		t.Fatalf("no prompt: %s", got)
	}
	// The line after \quit must not have executed.
	if !rp.DB.HasTable("R") {
		t.Fatal("input after \\quit was executed")
	}
}

// \history pages from the tail by default; \history 0 prints the full
// log; a bad argument is a usage error.
func TestHistoryPaging(t *testing.T) {
	rp, out := newRepl(t)
	var stmts []string
	for i := 0; i < 25; i++ {
		stmts = append(stmts, "COPY TABLE R TO C", "DROP TABLE C")
	}
	runLines(t, rp, out, stmts...)

	got := runLines(t, rp, out, `\history`)
	if !strings.Contains(got, "... 30 earlier entries") {
		t.Fatalf("default history page missing elision note: %s", got)
	}
	if strings.Count(got, "\n") > 25 {
		t.Fatalf("default history page too long:\n%s", got)
	}
	got = runLines(t, rp, out, `\history 2`)
	if !strings.Contains(got, "... 48 earlier entries") || strings.Count(got, "v") < 2 {
		t.Fatalf("history 2: %s", got)
	}
	got = runLines(t, rp, out, `\history 0`)
	if strings.Contains(got, "earlier entries") || strings.Count(got, "COPY TABLE R TO C") != 25 {
		t.Fatalf("history 0 should show everything: %s", got)
	}
	got = runLines(t, rp, out, `\history nope`)
	if !strings.Contains(got, "usage:") {
		t.Fatalf("bad history arg: %s", got)
	}
}

// \rollback to a pruned version explains the retained window; \memstats
// shows the gauges moving.
func TestRollbackPrunedAndMemstats(t *testing.T) {
	rp, out := newRepl(t)
	runLines(t, rp, out,
		"INSERT INTO R VALUES ('New', 'Welding', '1 Pier St')",
		"INSERT INTO R VALUES ('New2', 'Welding', '2 Pier St')",
		"PRUNE KEEP 1")
	got := runLines(t, rp, out, `\rollback 0`)
	if !strings.Contains(got, "pruned by retention") || !strings.Contains(got, "rollback now reaches versions 1..2") {
		t.Fatalf("pruned rollback message: %s", got)
	}
	got = runLines(t, rp, out, `\memstats`)
	for _, want := range []string{"retained versions:  2", "oldest rollback target: v1", "pending delta rows: 2"} {
		if !strings.Contains(got, want) {
			t.Fatalf("memstats missing %q: %s", want, got)
		}
	}
	// A never-existed version keeps the plain error path.
	got = runLines(t, rp, out, `\rollback 99`)
	if !strings.Contains(got, "no schema version 99") {
		t.Fatalf("never-existed rollback: %s", got)
	}
}

// Package repl implements the interactive CODS platform loop used by
// cmd/cods — the CLI counterpart of the paper's demo UI (§3, Figure 4). It
// is a separate package so the command surface (operators, meta commands,
// table display, status tracking) is tested like any other component.
package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cods"
)

// Repl drives a DB from a line-oriented input stream.
type Repl struct {
	DB  *cods.DB
	Out io.Writer
	// Prompt is written before each input line when non-empty.
	Prompt string
}

// Run processes lines from r until EOF or \quit.
func (rp *Repl) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if rp.Prompt != "" {
			fmt.Fprint(rp.Out, rp.Prompt)
		}
		if !sc.Scan() {
			return sc.Err()
		}
		if quit := rp.Line(strings.TrimSpace(sc.Text())); quit {
			return nil
		}
	}
}

// Line processes one input line and reports whether the loop should exit.
func (rp *Repl) Line(line string) (quit bool) {
	if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
		return false
	}
	if strings.HasPrefix(line, `\`) {
		return rp.meta(line)
	}
	if field := strings.Fields(line); len(field) > 0 && strings.EqualFold(field[0], "SELECT") {
		// SELECT is read-only and runs through the planner, not Exec —
		// the engine would reject it from the mutation path.
		rs, err := rp.DB.Select(line)
		if err != nil {
			fmt.Fprintln(rp.Out, "error:", err)
			return false
		}
		rp.printRows(rs.Columns, rs.Rows)
		return false
	}
	res, err := rp.DB.Exec(line)
	if err != nil {
		fmt.Fprintln(rp.Out, "error:", err)
		return false
	}
	fmt.Fprintf(rp.Out, "ok: %s in %v (schema version %d)\n", res.Kind, res.Elapsed, res.Version)
	if len(res.Created) > 0 {
		fmt.Fprintf(rp.Out, "  created: %s\n", strings.Join(res.Created, ", "))
	}
	if len(res.Dropped) > 0 {
		fmt.Fprintf(rp.Out, "  dropped: %s\n", strings.Join(res.Dropped, ", "))
	}
	return false
}

const helpText = `meta commands:
  \tables                     list tables
  \describe <table>           schema and storage statistics
  \display <table> [n]        show the first n rows (default 20)
  \select <table> <condition> show rows satisfying a condition
  \count <table> <condition>  count rows satisfying a condition
  \load <file.csv> <table>    load a CSV file
  \export <table> <file.csv>  write a table as CSV
  \save <dir>                 persist the database
  \history [n]                last n executed operators (default 20, 0 = all)
  \rollback <version>         restore an earlier schema version
  \memstats                   retention / delta-overlay / segment gauges
  \validate                   check table invariants
  \advise <table>             discover FDs and suggest decompositions
  \quit                       exit
operators: CREATE/DROP/RENAME/COPY TABLE, UNION TABLES, PARTITION TABLE,
DECOMPOSE TABLE, MERGE TABLES, ADD/DROP/RENAME COLUMN
DML: INSERT INTO t VALUES (...), DELETE FROM t [WHERE ...],
UPDATE t SET c = 'v' [WHERE ...]
queries: SELECT <list> FROM t [JOIN u ON (k, ...)]... [WHERE ...]
[GROUP BY g] [ORDER BY c [ASC|DESC]] [LIMIT n] — <list> is *, columns,
or aggregates (count(*), count_distinct/min/max/sum/avg(c))
retention: PRUNE KEEP n retires all but the current version's n
predecessors (n+1 versions stay rollback-able)`

func (rp *Repl) meta(line string) (quit bool) {
	db, out := rp.DB, rp.Out
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return true
	case `\help`:
		fmt.Fprintln(out, helpText)
	case `\tables`:
		for _, name := range db.Tables() {
			n, _ := db.NumRows(name)
			fmt.Fprintf(out, "  %-20s %10d rows\n", name, n)
		}
	case `\describe`:
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: \\describe <table>")
			return false
		}
		info, err := db.Describe(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintf(out, "table %s: %d rows, key %v\n", info.Name, info.Rows, info.Key)
		for _, c := range info.Columns {
			fmt.Fprintf(out, "  %-20s %-7s %8d distinct %12d bytes compressed\n",
				c.Name, c.Encoding, c.DistinctValues, c.CompressedBytes)
		}
	case `\display`:
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: \\display <table> [n]")
			return false
		}
		limit := uint64(20)
		if len(fields) > 2 {
			if n, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
				limit = n
			}
		}
		cols, err := db.Columns(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		rows, err := db.Rows(fields[1], 0, limit)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		rp.printRows(cols, rows)
		total, _ := db.NumRows(fields[1])
		if uint64(len(rows)) < total {
			fmt.Fprintf(out, "  ... %d more rows\n", total-uint64(len(rows)))
		}
	case `\select`:
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: \\select <table> <condition>")
			return false
		}
		cols, err := db.Columns(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		rows, err := db.Query(fields[1], strings.Join(fields[2:], " "))
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		rp.printRows(cols, rows)
	case `\count`:
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: \\count <table> <condition>")
			return false
		}
		n, err := db.Count(fields[1], strings.Join(fields[2:], " "))
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintf(out, "%d rows\n", n)
	case `\load`:
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: \\load <file.csv> <table>")
			return false
		}
		if err := db.LoadCSV(fields[1], fields[2]); err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		n, _ := db.NumRows(fields[2])
		fmt.Fprintf(out, "loaded %d rows into %s\n", n, fields[2])
	case `\export`:
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: \\export <table> <file.csv>")
			return false
		}
		if err := db.SaveCSV(fields[2], fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case `\save`:
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: \\save <dir>")
			return false
		}
		if err := db.Save(fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "saved to", fields[1])
		}
	case `\history`:
		// Paged by default: with DML journaled per statement the full log
		// is O(statements), far too long (and too slow to copy) to dump
		// on a busy catalog. \history 0 still prints everything.
		limit := 20
		if len(fields) > 1 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				fmt.Fprintln(out, "usage: \\history [n]   (n = 0 shows all)")
				return false
			}
			limit = n
		}
		snap := db.Snapshot()
		tail := snap.HistoryTail(limit)
		if elided := snap.HistoryLen() - len(tail); elided > 0 {
			fmt.Fprintf(out, "  ... %d earlier entries (\\history 0 shows all)\n", elided)
		}
		for _, h := range tail {
			fmt.Fprintf(out, "  v%-3d %-40s %v\n", h.Version, h.Op, h.Elapsed)
		}
	case `\rollback`:
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: \\rollback <version>")
			return false
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error: version must be a number")
			return false
		}
		if err := db.Rollback(v); err != nil {
			var pe *cods.VersionPrunedError
			if errors.As(err, &pe) {
				// Spell the retained window out for the operator: the
				// requested version existed but retention retired it.
				fmt.Fprintf(out, "error: schema version %d was pruned by retention; rollback now reaches versions %d..%d\n",
					pe.Version, pe.OldestRetained, pe.Newest)
				return false
			}
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintf(out, "rolled back to schema version %d (now at version %d)\n", v, db.Version())
	case `\memstats`:
		ms := db.MemStats()
		fmt.Fprintf(out, "retained versions:  %d (oldest rollback target: v%d)\n", ms.RetainedVersions, ms.OldestRetainedVersion)
		fmt.Fprintf(out, "pending delta rows: %d\n", ms.PendingRows)
		fmt.Fprintf(out, "compactions:        %d\n", ms.Compactions)
		fmt.Fprintf(out, "segment merges:     %d\n", ms.SegmentMerges)
		for _, t := range ms.Tables {
			fmt.Fprintf(out, "  %s: %d segment(s), rows/segment %d..%d\n", t.Table, t.Segments, t.MinRows, t.MaxRows)
		}
	case `\validate`:
		if err := db.Validate(); err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintln(out, "all tables validate")
	case `\advise`:
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: \\advise <table>")
			return false
		}
		suggestions, err := db.Advise(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		if len(suggestions) == 0 {
			fmt.Fprintln(out, "no decomposition opportunities found")
			return false
		}
		for i, s := range suggestions {
			fmt.Fprintf(out, "%d. %s\n", i+1, s.Operator)
			for _, fd := range s.FDs {
				fmt.Fprintf(out, "     because %s\n", fd)
			}
			fmt.Fprintf(out, "     removes ~%d redundant cells\n", s.SavedCells)
		}
	default:
		fmt.Fprintln(out, "unknown command; try \\help")
	}
	return false
}

func (rp *Repl) printRows(cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, v := range r {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	for i, c := range cols {
		fmt.Fprintf(rp.Out, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(rp.Out)
	for _, r := range rows {
		for i, v := range r {
			fmt.Fprintf(rp.Out, "%-*s  ", widths[i], v)
		}
		fmt.Fprintln(rp.Out)
	}
	fmt.Fprintf(rp.Out, "(%d rows)\n", len(rows))
}

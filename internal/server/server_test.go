package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cods"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *cods.DB) {
	t.Helper()
	db := cods.Open(cods.Config{})
	if err := db.CreateTableFromRows("emp",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"alice", "go", "1 Main St"},
			{"bob", "sql", "2 Oak Ave"},
			{"carol", "go", "3 Pine Rd"},
		}); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, db
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var body map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)

	resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Table: "emp", Where: "Skill = 'go'"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 2 || len(qr.Rows) != 2 {
		t.Fatalf("row_count = %d, rows = %v", qr.RowCount, qr.Rows)
	}

	// Aggregate with grouping.
	resp, raw = postJSON(t, ts.URL+"/query", QueryRequest{
		Table:      "emp",
		GroupBy:    "Skill",
		Aggregates: []AggSpec{{Func: "count", As: "n"}},
		OrderBy:    "n",
		Desc:       true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 2 || qr.Rows[0][0] != "go" || qr.Rows[0][1] != "2" {
		t.Fatalf("aggregate rows = %v", qr.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"missing table", QueryRequest{}, http.StatusBadRequest},
		{"unknown table", QueryRequest{Table: "nope"}, http.StatusNotFound},
		{"bad where", QueryRequest{Table: "emp", Where: "Skill ="}, http.StatusBadRequest},
		{"bad aggregate", QueryRequest{Table: "emp", Aggregates: []AggSpec{{Func: "median"}}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"table": "emp", "nonsense": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, raw := postJSON(t, ts.URL+"/query", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, resp.StatusCode, c.want, raw)
		}
		var e map[string]string
		if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body = %s", c.name, raw)
		}
	}
}

func TestExecEndpoint(t *testing.T) {
	_, ts, db := newTestServer(t)

	resp, raw := postJSON(t, ts.URL+"/exec", ExecRequest{
		Op: "DECOMPOSE TABLE emp INTO skills (Employee, Skill), addrs (Employee, Address)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var er ExecResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 1 || er.Results[0].Kind != "DECOMPOSE TABLE" || er.Results[0].Version != 1 {
		t.Fatalf("results = %+v", er.Results)
	}
	if !db.HasTable("skills") || db.HasTable("emp") {
		t.Fatalf("catalog after exec = %v", db.Tables())
	}

	// A script runs multiple statements.
	resp, raw = postJSON(t, ts.URL+"/exec", ExecRequest{
		Script: "COPY TABLE skills TO s2; DROP TABLE s2",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("script status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 2 {
		t.Fatalf("script results = %+v", er.Results)
	}
}

func TestExecErrorMapping(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		name string
		req  ExecRequest
		want int
	}{
		{"unknown statement", ExecRequest{Op: "TRANSMOGRIFY emp"}, http.StatusBadRequest},
		{"parse error", ExecRequest{Op: "CREATE TABLE"}, http.StatusBadRequest},
		{"execution failure", ExecRequest{Op: "DROP TABLE nosuch"}, http.StatusUnprocessableEntity},
		{"neither op nor script", ExecRequest{}, http.StatusBadRequest},
		{"both op and script", ExecRequest{Op: "DROP TABLE a", Script: "DROP TABLE b"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, raw := postJSON(t, ts.URL+"/exec", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, resp.StatusCode, c.want, raw)
		}
	}
}

// A mid-script failure commits (and journals) the leading statements;
// the error response must carry them so the client knows what happened.
func TestExecScriptPartialFailureReportsResults(t *testing.T) {
	_, ts, db := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/exec", ExecRequest{
		Script: "COPY TABLE emp TO e2; DROP TABLE nosuch",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%s)", resp.StatusCode, raw)
	}
	var body struct {
		Error   string       `json:"error"`
		Results []ExecResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" {
		t.Fatalf("no error in body: %s", raw)
	}
	if len(body.Results) != 1 || body.Results[0].Kind != "COPY TABLE" {
		t.Fatalf("partial results = %+v, want the committed COPY TABLE", body.Results)
	}
	if !db.HasTable("e2") {
		t.Fatal("committed statement missing from catalog")
	}
}

func TestSchemaEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var sr SchemaResponse
	resp := getJSON(t, ts.URL+"/schema", &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(sr.Tables) != 1 || sr.Tables[0].Name != "emp" || sr.Tables[0].Rows != 3 {
		t.Fatalf("schema = %+v", sr)
	}
	if len(sr.Tables[0].Columns) != 3 {
		t.Fatalf("columns = %+v", sr.Tables[0].Columns)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/query", QueryRequest{Table: "emp"})
	postJSON(t, ts.URL+"/query", QueryRequest{Table: "nope"})

	var st StatsResponse
	resp := getJSON(t, ts.URL+"/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	q := st.Endpoints["/query"]
	if q.Requests != 2 || q.Errors != 1 {
		t.Fatalf("/query stats = %+v", q)
	}
	if st.MaxInFlight <= 0 {
		t.Fatalf("max_in_flight = %d", st.MaxInFlight)
	}
}

func TestCheckpointEndpointOnDurableDB(t *testing.T) {
	dir := t.TempDir()
	db, err := cods.OpenDurable(dir, cods.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/exec", ExecRequest{Op: "CREATE TABLE r (a)"})
	resp, raw := postJSON(t, ts.URL+"/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status = %d: %s", resp.StatusCode, raw)
	}

	// In-memory databases cannot checkpoint.
	_, ts2, _ := newTestServer(t)
	resp, _ = postJSON(t, ts2.URL+"/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("in-memory checkpoint status = %d", resp.StatusCode)
	}
}

// TestConcurrentQueriesVsExec hammers /query from many goroutines while
// /exec evolves the schema underneath them. Every query must see a whole
// schema version: either the old table or the new ones, never an error
// other than 404 (the old name disappearing is expected).
func TestConcurrentQueriesVsExec(t *testing.T) {
	_, ts, _ := newTestServer(t)

	const readers = 8
	const queriesPerReader = 30
	var wg sync.WaitGroup
	errs := make(chan string, readers*queriesPerReader)

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < queriesPerReader; j++ {
				// Either name may 404 while the evolution loop has the
				// other schema live; a successful response must always
				// show that name's complete schema — never a half-applied
				// decomposition.
				for table, wantCols := range map[string]int{"emp": 3, "skills": 2} {
					resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Table: table})
					switch resp.StatusCode {
					case http.StatusNotFound:
					case http.StatusOK:
						var qr QueryResponse
						if err := json.Unmarshal(raw, &qr); err != nil {
							errs <- fmt.Sprintf("%s: bad body %s", table, raw)
							continue
						}
						if len(qr.Columns) != wantCols || qr.RowCount != 3 {
							errs <- fmt.Sprintf("%s: saw %d columns, %d rows (want %d, 3): torn schema", table, len(qr.Columns), qr.RowCount, wantCols)
						}
					default:
						errs <- fmt.Sprintf("%s query status %d: %s", table, resp.StatusCode, raw)
					}
				}
			}
		}()
	}

	// Evolve mid-flight: decompose, then merge back, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 5; k++ {
			resp, raw := postJSON(t, ts.URL+"/exec", ExecRequest{
				Op: "DECOMPOSE TABLE emp INTO skills (Employee, Skill), addrs (Employee, Address)",
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("decompose: %d %s", resp.StatusCode, raw)
				return
			}
			resp, raw = postJSON(t, ts.URL+"/exec", ExecRequest{
				Op: "MERGE TABLES skills, addrs INTO emp",
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("merge: %d %s", resp.StatusCode, raw)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestMaxInFlightQueuesRequests runs many concurrent queries through a
// single request slot: all must succeed (queued, not rejected), and the
// stats gauge must never exceed the cap.
func TestMaxInFlightQueuesRequests(t *testing.T) {
	db := cods.Open(cods.Config{})
	if err := db.CreateTableFromRows("r", []string{"a"}, nil, [][]string{{"1"}}); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	var wg sync.WaitGroup
	statuses := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Table: "r"})
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("status = %d, want 200 (requests must queue, not fail)", code)
		}
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
}

func TestGracefulShutdown(t *testing.T) {
	db := cods.Open(cods.Config{})
	s := New(db, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	url := "http://" + l.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}

// TestShutdownBeforeServe: a server shut down before (or while) Serve
// starts must not serve — Serve returns a clean nil instead of running
// indefinitely past its own Shutdown.
func TestShutdownBeforeServe(t *testing.T) {
	db := cods.Open(cods.Config{})
	s := New(db, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after Shutdown: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve after Shutdown did not return")
	}
}

// TestProbesBypassAdmission: /healthz and /stats must answer while every
// request slot is held by slow queries, or an orchestrator mistakes a
// busy server for a dead one.
func TestProbesBypassAdmission(t *testing.T) {
	db := cods.Open(cods.Config{})
	s := New(db, Config{MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Saturate the only request slot.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	client := &http.Client{Timeout: 2 * time.Second}
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s while saturated: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while saturated: status %d", path, resp.StatusCode)
		}
	}
}

// TestExecOpDurabilityFailureReportsResult: a single op that commits
// but cannot be made durable (checkpoint blocked) must carry its result
// in the error body, like the script path, so the client does not retry
// a live statement.
func TestExecOpDurabilityFailureReportsResult(t *testing.T) {
	dir := t.TempDir()
	db, err := cods.OpenDurable(dir, cods.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTableFromRows("t", []string{"a"}, nil,
		[][]string{{"1"}, {"2"}}); err != nil {
		t.Fatal(err)
	}
	vals := filepath.Join(t.TempDir(), "vals.txt")
	if err := os.WriteFile(vals, []byte("p\nq\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Occupy the snapshot pointer's staging path so the op's checkpoint
	// (file-fed columns are non-replayable) fails after the op commits.
	if err := os.Mkdir(filepath.Join(dir, "CURRENT.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}

	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, raw := postJSON(t, ts.URL+"/exec",
		ExecRequest{Op: "ADD COLUMN c TO t FROM '" + vals + "'"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, raw)
	}
	var body struct {
		Error   string       `json:"error"`
		Results []ExecResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" {
		t.Fatal("missing error")
	}
	if len(body.Results) != 1 || body.Results[0].Kind != "ADD COLUMN" {
		t.Fatalf("results = %+v, want the committed ADD COLUMN", body.Results)
	}
}

// TestProbesAnswerDuringEvolution: /healthz and /stats must answer while
// an evolution holds the catalog's exclusive lock — which also blocks
// new readers — not just while the admission queue is full. The Status
// hook parks the evolution mid-flight with the lock held.
func TestProbesAnswerDuringEvolution(t *testing.T) {
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	db := cods.Open(cods.Config{Status: func(string) {
		once.Do(func() { close(entered) })
		<-gate
	}})
	if err := db.CreateTableFromRows("emp",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"alice", "go", "1 Main St"},
			{"bob", "sql", "2 Oak Ave"},
		}); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	execDone := make(chan error, 1)
	go func() {
		_, err := db.Exec("DECOMPOSE TABLE emp INTO s1 (Employee, Skill), s2 (Employee, Address)")
		execDone <- err
	}()
	<-entered // the evolution now holds the exclusive lock

	client := &http.Client{Timeout: 2 * time.Second}
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s during evolution: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s during evolution: status %d", path, resp.StatusCode)
		}
	}

	close(gate)
	if err := <-execDone; err != nil {
		t.Fatal(err)
	}
}

// TestProbesAndReadsDuringParkedEvolution parks an SMO mid-operator (via
// the facade's Status hook, while it owns the write path) and asserts
// that /healthz, /stats, /schema and /query all answer from the
// pre-evolution snapshot without waiting — no endpoint stalls behind a
// running evolution.
func TestProbesAndReadsDuringParkedEvolution(t *testing.T) {
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	db := cods.Open(cods.Config{Status: func(string) {
		once.Do(func() {
			close(parked)
			<-release
		})
	}})
	if err := db.CreateTableFromRows("emp",
		[]string{"Employee", "Skill", "Address"}, nil,
		[][]string{
			{"alice", "go", "1 Main St"},
			{"bob", "sql", "2 Oak Ave"},
			{"carol", "go", "3 Pine Rd"},
		}); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("DECOMPOSE TABLE emp INTO skills (Employee, Skill), addrs (Employee, Address)")
		done <- err
	}()
	<-parked

	// Only t.Errorf (never the t.Fatal-based helpers) inside the
	// goroutine: FailNow must run on the test goroutine.
	get := func(url string, v any) (int, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(v)
	}
	post := func(url string, body any) (int, []byte, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return 0, nil, err
		}
		return resp.StatusCode, buf.Bytes(), nil
	}
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var health struct {
			Status        string `json:"status"`
			SchemaVersion int    `json:"schema_version"`
		}
		if code, err := get(ts.URL+"/healthz", &health); err != nil || code != http.StatusOK {
			t.Errorf("healthz status = %d, err = %v", code, err)
		}
		if health.Status != "ok" || health.SchemaVersion != 0 {
			t.Errorf("healthz = %+v, want ok/version 0", health)
		}
		var stats StatsResponse
		if code, err := get(ts.URL+"/stats", &stats); err != nil || code != http.StatusOK {
			t.Errorf("stats status = %d, err = %v", code, err)
		}
		if stats.SchemaVersion != 0 {
			t.Errorf("stats schema_version = %d, want 0", stats.SchemaVersion)
		}
		var schema SchemaResponse
		if code, err := get(ts.URL+"/schema", &schema); err != nil || code != http.StatusOK {
			t.Errorf("schema status = %d, err = %v", code, err)
		}
		if schema.Version != 0 || len(schema.Tables) != 1 || schema.Tables[0].Name != "emp" {
			t.Errorf("schema during parked evolution = %+v, want version 0 with [emp]", schema)
		}
		code, raw, err := post(ts.URL+"/query", QueryRequest{Table: "emp"})
		if err != nil || code != http.StatusOK {
			t.Errorf("query status = %d, err = %v: %s", code, err, raw)
		}
		var qr QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Errorf("query body: %v", err)
		} else if qr.RowCount != 3 || len(qr.Columns) != 3 {
			t.Errorf("query saw %d rows, %d columns: torn or missed snapshot", qr.RowCount, len(qr.Columns))
		}
		// The decomposition outputs must not be visible yet.
		code, _, err = post(ts.URL+"/query", QueryRequest{Table: "skills"})
		if err != nil || code != http.StatusNotFound {
			t.Errorf("query of mid-flight output table = %d (err %v), want 404", code, err)
		}
	}()

	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("an endpoint blocked behind a parked evolution")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var schema SchemaResponse
	getJSON(t, ts.URL+"/schema", &schema)
	if schema.Version != 1 || len(schema.Tables) != 2 {
		t.Fatalf("schema after evolution = %+v, want version 1 with 2 tables", schema)
	}
}

// TestQueryErrorClassification is the TOCTOU regression: /query resolves
// the table inside RunQuery's snapshot (no pre-check), and classifies the
// error — 404 for a table the catalog lacks, 400 for a query the client
// got wrong.
func TestQueryErrorClassification(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Table: "ghost"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table status = %d (%s), want 404", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/query", QueryRequest{Table: "emp", Where: "NoSuchColumn = 'x'"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad predicate status = %d (%s), want 400", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/query", QueryRequest{Table: "emp", OrderBy: "NoSuchColumn"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad order-by status = %d (%s), want 400", resp.StatusCode, raw)
	}
}

// TestExecDML drives INSERT/UPDATE/DELETE through POST /exec and checks
// /query sees the merged delta overlay — the HTTP face of the DML
// subsystem.
func TestExecDML(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/exec", ExecRequest{
		Op: "INSERT INTO emp VALUES ('dave', 'go', '4 Elm St')",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d (%s)", resp.StatusCode, raw)
	}
	var er ExecResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 1 || er.Results[0].Kind != "INSERT" {
		t.Fatalf("insert results = %+v", er.Results)
	}
	if len(er.Results[0].Created) != 0 || len(er.Results[0].Dropped) != 0 {
		t.Fatalf("DML reported catalog changes: %+v", er.Results[0])
	}

	resp, raw = postJSON(t, ts.URL+"/exec", ExecRequest{
		Script: "UPDATE emp SET Skill = 'rust' WHERE Employee = 'dave'\nDELETE FROM emp WHERE Employee = 'bob'",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dml script status = %d (%s)", resp.StatusCode, raw)
	}

	resp, raw = postJSON(t, ts.URL+"/query", QueryRequest{Table: "emp", Where: "Skill = 'rust'"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d (%s)", resp.StatusCode, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 1 || qr.Rows[0][0] != "dave" {
		t.Fatalf("query rows = %v, want dave's updated row", qr.Rows)
	}

	// Aggregates run over the merged table too.
	resp, raw = postJSON(t, ts.URL+"/query", QueryRequest{
		Table:      "emp",
		Aggregates: []AggSpec{{Func: "count"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status = %d (%s)", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Rows[0][0] != "3" {
		t.Fatalf("count = %v, want 3 (3 seed + 1 insert - 1 delete)", qr.Rows)
	}

	// A DML statement the catalog cannot apply is the client's error.
	resp, raw = postJSON(t, ts.URL+"/exec", ExecRequest{Op: "INSERT INTO emp VALUES ('too', 'few')"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad arity status = %d (%s), want 422", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/exec", ExecRequest{Op: "DELETE FROM ghost"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown table status = %d (%s), want 422", resp.StatusCode, raw)
	}
}

// The /stats memory gauges must show the retention and compaction
// subsystems working: pending rows while an overlay is dirty, zero plus
// a compaction tick once auto-compaction fires, and a bounded retained
// version count under Config.RetainVersions.
func TestStatsMemoryGauges(t *testing.T) {
	db := cods.Open(cods.Config{RetainVersions: 2, AutoCompactPending: 4})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/exec", ExecRequest{Op: "CREATE TABLE kv (K, V) KEY (K)"})
	postJSON(t, ts.URL+"/exec", ExecRequest{Op: "INSERT INTO kv VALUES ('a', '1')"})
	postJSON(t, ts.URL+"/exec", ExecRequest{Op: "INSERT INTO kv VALUES ('b', '2')"})

	var st StatsResponse
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Memory.PendingRows != 2 {
		t.Fatalf("pending_rows = %d, want 2", st.Memory.PendingRows)
	}
	if st.Memory.RetainedVersions == 0 || st.Memory.RetainedVersions > 3 {
		t.Fatalf("retained_versions = %d, want 1..3", st.Memory.RetainedVersions)
	}

	// Two more inserts cross the threshold: the overlay compacts.
	postJSON(t, ts.URL+"/exec", ExecRequest{Op: "INSERT INTO kv VALUES ('c', '3')"})
	postJSON(t, ts.URL+"/exec", ExecRequest{Op: "INSERT INTO kv VALUES ('d', '4')"})
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Memory.PendingRows != 0 || st.Memory.Compactions == 0 {
		t.Fatalf("after threshold: memory = %+v, want 0 pending and >0 compactions", st.Memory)
	}
	if st.Memory.OldestRetainedVersion == 0 {
		t.Fatalf("oldest_retained_version = 0, want pruned forward (memory = %+v)", st.Memory)
	}
}

// GET /history pages the executed-operator log from the tail: the
// default page, an explicit limit, newest first, and a total that counts
// the whole log.
func TestHistoryEndpoint(t *testing.T) {
	_, ts, db := newTestServer(t)
	stmts := []string{
		"ADD COLUMN Grade TO emp DEFAULT 'junior'",
		"INSERT INTO emp VALUES ('dave', 'go', '4 Elm St', 'senior')",
		"DELETE FROM emp WHERE Employee = 'bob'",
	}
	for _, op := range stmts {
		if _, err := db.Exec(op); err != nil {
			t.Fatal(err)
		}
	}

	var hr HistoryResponse
	if resp := getJSON(t, ts.URL+"/history", &hr); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if hr.Total != 3 || len(hr.Entries) != 3 {
		t.Fatalf("history = %+v, want 3 entries", hr)
	}
	// Newest first, versions descending.
	if hr.Entries[0].Kind != "DELETE" || hr.Entries[0].Version != 3 || hr.Entries[2].Kind != "ADD COLUMN" {
		t.Fatalf("history order = %+v", hr.Entries)
	}

	if resp := getJSON(t, ts.URL+"/history?limit=2", &hr); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if hr.Total != 3 || len(hr.Entries) != 2 || hr.Entries[0].Kind != "DELETE" || hr.Entries[1].Kind != "INSERT" {
		t.Fatalf("paged history = %+v", hr)
	}

	for _, bad := range []string{"0", "-3", "x"} {
		if resp := getJSON(t, ts.URL+"/history?limit="+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("limit=%s status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// Client-side helpers for the HTTP/JSON API: a minimal typed client over
// the endpoint bodies this package already defines, shared by the HTAP
// workload driver (cmd/codsbench htap -transport http), tests, and any
// Go program that talks to a remote `cods serve`.

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a `cods serve` endpoint. Base is the server root
// (e.g. "http://127.0.0.1:8344"); HTTP defaults to http.DefaultClient.
// A Client is safe for concurrent use (it holds no mutable state beyond
// the underlying *http.Client, which is itself concurrency-safe).
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do posts body (or GETs when body is nil) and decodes the JSON response
// into out. Non-2xx statuses decode the server's {"error": ...} body and
// return it as an error; the rest of the body (e.g. the partial results
// of a failed script) is decoded into out first, so callers still see
// what committed.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if out != nil {
			_ = json.Unmarshal(raw, out) // partial results, best effort
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Exec executes one SMO or DML statement via POST /exec.
func (c *Client) Exec(op string) (*ExecResponse, error) {
	var out ExecResponse
	if err := c.do(http.MethodPost, "/exec", ExecRequest{Op: op}, &out); err != nil {
		return &out, err
	}
	return &out, nil
}

// ExecScript executes a statement script via POST /exec. On a mid-script
// failure the returned response still carries the committed statements.
func (c *Client) ExecScript(script string) (*ExecResponse, error) {
	var out ExecResponse
	if err := c.do(http.MethodPost, "/exec", ExecRequest{Script: script}, &out); err != nil {
		return &out, err
	}
	return &out, nil
}

// Query runs a query via POST /query.
func (c *Client) Query(req QueryRequest) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(http.MethodPost, "/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches GET /stats (per-endpoint counters plus the write path's
// memory gauges).
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(http.MethodGet, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes GET /healthz, returning the served schema version.
func (c *Client) Healthz() (int, error) {
	var out struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := c.do(http.MethodGet, "/healthz", nil, &out); err != nil {
		return 0, err
	}
	return out.SchemaVersion, nil
}

// Package server exposes a cods.DB over HTTP/JSON: online queries and
// schema evolution (SMO execution) against one shared catalog, the
// network face of the platform. Every read runs lock-free against the
// catalog snapshot published by the last committed change, so query
// traffic keeps flowing at full speed while an evolution executes —
// clients always observe whole schema versions (the version that was
// current when their request started), never a half-applied SMO and
// never a stall behind one. This is the paper's online-evolution promise
// at the network layer.
//
// Endpoints (all JSON; errors are {"error": "..."} with a 4xx/5xx status):
//
//	POST /query      run a query (filter/group/aggregate/order/limit)
//	POST /exec       execute SMO or DML statements (one op or a script)
//	POST /checkpoint snapshot a durable catalog and truncate its WAL
//	GET  /schema     catalog: schema version + every table's shape
//	GET  /history    executed-operator log, most recent first (?limit=n)
//	GET  /healthz    liveness probe
//	GET  /stats      request/error/latency counters per endpoint, plus
//	                 the write path's memory gauges (retained versions,
//	                 pending overlay rows, compaction count)
//
// The server bounds concurrently served requests (Config.MaxInFlight);
// excess requests queue until a slot frees or the client gives up, so a
// traffic burst degrades to queueing instead of unbounded goroutines.
// GET /healthz and GET /stats bypass the admission queue, so a server
// saturated with slow queries still answers liveness probes and an
// orchestrator never kills it for being busy.
//
// The package maps engine errors to HTTP statuses with errors.Is against
// the cods sentinels, so it is marked cods:boundary for codslint: error
// paths here must wrap sentinels with %w, never invent anonymous errors
// or compare errors with ==.
//
// cods:boundary
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cods"
)

// Config parameterizes a Server.
type Config struct {
	// MaxInFlight caps concurrently served requests; further requests
	// queue. 0 means 4×GOMAXPROCS.
	MaxInFlight int
	// Log, when non-nil, receives one line per served request.
	Log *log.Logger
}

// Server serves a cods.DB over HTTP. Create with New, mount via Handler
// (or run with Serve/ListenAndServe), stop with Shutdown.
type Server struct {
	db    *cods.DB
	cfg   Config
	sem   chan struct{}
	start time.Time

	inFlight atomic.Int64
	stats    map[string]*endpointStats

	// hs is created in New, never replaced: Shutdown before (or racing)
	// Serve still reaches the same http.Server, so a shut-down server
	// refuses to serve instead of running indefinitely.
	hs       *http.Server
	mux      *http.ServeMux
	done     chan struct{}
	doneOnce sync.Once
}

// endpointStats counts one endpoint's traffic. All fields are atomic;
// latency is tracked as a running total plus a max.
type endpointStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	totalNS   atomic.Int64
	maxNS     atomic.Int64
	lastIsErr atomic.Bool
}

func (s *endpointStats) record(d time.Duration, isErr bool) {
	s.requests.Add(1)
	if isErr {
		s.errors.Add(1)
	}
	s.lastIsErr.Store(isErr)
	ns := d.Nanoseconds()
	s.totalNS.Add(ns)
	for {
		cur := s.maxNS.Load()
		if ns <= cur || s.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// New returns a server over db. The db is shared: the caller may keep
// using it directly (and closing it after Shutdown is the caller's job).
func New(db *cods.DB, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	s := &Server{
		db:    db,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
		stats: make(map[string]*endpointStats),
		mux:   http.NewServeMux(),
		done:  make(chan struct{}),
	}
	// Probes bypass admission: they must answer while every request slot
	// is held by slow queries, or an orchestrator mistakes busy for dead.
	s.route("GET /healthz", s.handleHealthz, false)
	s.route("GET /stats", s.handleStats, false)
	s.route("GET /schema", s.handleSchema, true)
	s.route("GET /history", s.handleHistory, true)
	s.route("POST /query", s.handleQuery, true)
	s.route("POST /exec", s.handleExec, true)
	s.route("POST /checkpoint", s.handleCheckpoint, true)
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// route registers one "METHOD /path" pattern with the accounting
// middleware applied; admit additionally puts the request through the
// MaxInFlight admission queue.
func (s *Server) route(pattern string, h func(w http.ResponseWriter, r *http.Request) *httpError, admit bool) {
	path := pattern[strings.Index(pattern, " ")+1:]
	st := &endpointStats{}
	s.stats[path] = st
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if admit {
			// Admission: take a slot or queue until one frees; a client
			// that disconnects while queued costs nothing further.
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			case <-r.Context().Done():
				return
			}
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)

		begin := time.Now()
		herr := h(w, r)
		elapsed := time.Since(begin)
		if herr != nil {
			body := map[string]any{"error": herr.msg}
			for k, v := range herr.extra {
				body[k] = v
			}
			writeJSON(w, herr.status, body)
		}
		st.record(elapsed, herr != nil)
		if s.cfg.Log != nil {
			status := http.StatusOK
			if herr != nil {
				status = herr.status
			}
			s.cfg.Log.Printf("%s %s %d %s", r.Method, path, status, elapsed.Round(time.Microsecond))
		}
	})
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It blocks, returning
// nil after a clean shutdown — immediately, without serving, if Shutdown
// already ran.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		// Shutdown was called; wait for it to finish draining.
		<-s.done
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown stops accepting connections and waits (bounded by ctx) for
// in-flight requests to finish. Called before Serve, it prevents the
// server from ever serving.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	s.doneOnce.Do(func() { close(s.done) })
	return err
}

// httpError is a handler failure mapped to a status code and a JSON body
// of {"error": msg} plus any extra fields (e.g. the results committed
// before a mid-script failure).
type httpError struct {
	status int
	msg    string
	extra  map[string]any
}

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// classifyExecErr maps an Exec failure to a status: statements the
// client got wrong are 400, statements the catalog cannot apply are
// 422, and durability failures — the statement was fine, the storage
// layer is degraded — are 503 so clients and monitoring see a server
// problem, not a client one.
func classifyExecErr(err error) *httpError {
	if errors.Is(err, cods.ErrUnknownStatement) || errors.Is(err, cods.ErrParse) {
		return errf(http.StatusBadRequest, "%v", err)
	}
	if errors.Is(err, cods.ErrNotDurable) {
		return errf(http.StatusServiceUnavailable, "%v", err)
	}
	return errf(http.StatusUnprocessableEntity, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// readJSON decodes a request body, rejecting trailing garbage.
func readJSON(r *http.Request, v any) *httpError {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "invalid request body: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, "invalid request body: trailing data")
	}
	return nil
}

// --- /healthz ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) *httpError {
	// db.Version reads the published catalog snapshot without locking, so
	// the probe always answers — even while an evolution is mid-operator.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"schema_version": s.db.Version(),
	})
	return nil
}

// --- /schema ---

// SchemaResponse is GET /schema's body.
type SchemaResponse struct {
	Version int           `json:"version"`
	Tables  []SchemaTable `json:"tables"`
}

// SchemaTable describes one table.
type SchemaTable struct {
	Name    string         `json:"name"`
	Rows    uint64         `json:"rows"`
	Key     []string       `json:"key,omitempty"`
	Columns []SchemaColumn `json:"columns"`
}

// SchemaColumn describes one column.
type SchemaColumn struct {
	Name            string `json:"name"`
	Encoding        string `json:"encoding"`
	DistinctValues  int    `json:"distinct_values"`
	CompressedBytes uint64 `json:"compressed_bytes"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) *httpError {
	// One snapshot for the whole response: the version and every table
	// shape describe the same schema version, even while evolutions
	// commit concurrently.
	snap := s.db.Snapshot()
	resp := SchemaResponse{Version: snap.Version(), Tables: []SchemaTable{}}
	for _, name := range snap.Tables() {
		info, err := snap.Describe(name)
		if err != nil {
			// Unreachable within one snapshot; skip defensively.
			continue
		}
		st := SchemaTable{Name: info.Name, Rows: info.Rows, Key: info.Key}
		for _, c := range info.Columns {
			st.Columns = append(st.Columns, SchemaColumn{
				Name:            c.Name,
				Encoding:        c.Encoding,
				DistinctValues:  c.DistinctValues,
				CompressedBytes: c.CompressedBytes,
			})
		}
		resp.Tables = append(resp.Tables, st)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /history ---

// HistoryEntry is one executed operator in GET /history.
type HistoryEntry struct {
	Version   int     `json:"version"`
	Op        string  `json:"op"`
	Kind      string  `json:"kind"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// HistoryResponse is GET /history's body: the most recent entries,
// newest first, plus the full log length so clients can tell how much
// was elided.
type HistoryResponse struct {
	Version int            `json:"version"`
	Total   int            `json:"total"`
	Entries []HistoryEntry `json:"entries"`
}

// handleHistory serves the tail of the executed-operator log. The
// default page is 50 entries; ?limit=n asks for more (or fewer). Cost is
// O(page), not O(statements) — DML creates a version per statement, so
// the full log can be arbitrarily long on a write-heavy catalog.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) *httpError {
	limit := 50
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			return errf(http.StatusBadRequest, "limit must be a positive integer, got %q", q)
		}
		limit = n
	}
	snap := s.db.Snapshot()
	tail := snap.HistoryTail(limit)
	resp := HistoryResponse{Version: snap.Version(), Total: snap.HistoryLen(), Entries: []HistoryEntry{}}
	for i := len(tail) - 1; i >= 0; i-- {
		h := tail[i]
		resp.Entries = append(resp.Entries, HistoryEntry{
			Version:   h.Version,
			Op:        h.Op,
			Kind:      h.Kind,
			ElapsedMS: float64(h.Elapsed.Microseconds()) / 1000,
		})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /query ---

// AggSpec is one aggregate in a QueryRequest. Func is one of count,
// count_distinct, min, max, sum, avg.
type AggSpec struct {
	Func   string `json:"func"`
	Column string `json:"column,omitempty"`
	As     string `json:"as,omitempty"`
}

// JoinSpec is one inner-join step in a QueryRequest, mirroring
// cods.Join.
type JoinSpec struct {
	Table string   `json:"table"`
	On    []string `json:"on"`
}

// QueryRequest is POST /query's body. Either Stmt carries a full SELECT
// statement (text form), or Table is required and the remaining fields
// mirror cods.TableQuery; the two shapes cannot mix.
type QueryRequest struct {
	Stmt       string     `json:"stmt,omitempty"`
	Table      string     `json:"table,omitempty"`
	Select     []string   `json:"select,omitempty"`
	Joins      []JoinSpec `json:"joins,omitempty"`
	Where      string     `json:"where,omitempty"`
	GroupBy    string     `json:"group_by,omitempty"`
	Aggregates []AggSpec  `json:"aggregates,omitempty"`
	OrderBy    string     `json:"order_by,omitempty"`
	Desc       bool       `json:"desc,omitempty"`
	Limit      int        `json:"limit,omitempty"`
}

// QueryResponse is POST /query's body on success.
type QueryResponse struct {
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	RowCount  int        `json:"row_count"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

var aggFuncs = map[string]cods.AggFunc{
	"count":          cods.Count,
	"count_distinct": cods.CountDistinct,
	"min":            cods.Min,
	"max":            cods.Max,
	"sum":            cods.Sum,
	"avg":            cods.Avg,
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) *httpError {
	var req QueryRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	var rs *cods.ResultSet
	var err error
	begin := time.Now()
	if req.Stmt != "" {
		if req.Table != "" {
			return errf(http.StatusBadRequest, "set stmt or table, not both")
		}
		rs, err = s.db.Select(req.Stmt)
	} else {
		if req.Table == "" {
			return errf(http.StatusBadRequest, "missing table")
		}
		q := cods.TableQuery{
			Select:  req.Select,
			Where:   req.Where,
			GroupBy: req.GroupBy,
			OrderBy: req.OrderBy,
			Desc:    req.Desc,
			Limit:   req.Limit,
		}
		for _, j := range req.Joins {
			q.Joins = append(q.Joins, cods.Join{Table: j.Table, On: j.On})
		}
		for _, a := range req.Aggregates {
			f, ok := aggFuncs[strings.ToLower(a.Func)]
			if !ok {
				return errf(http.StatusBadRequest, "unknown aggregate function %q", a.Func)
			}
			q.Aggregates = append(q.Aggregates, cods.Agg{Func: f, Column: a.Column, As: a.As})
		}
		// No existence pre-check: it would race a concurrent evolution (the
		// table could vanish between the check and the query) and cost a
		// redundant catalog lookup. RunQuery resolves every table — root
		// and joins — in the same snapshot it queries; classify its error
		// instead.
		rs, err = s.db.RunQuery(req.Table, q)
	}
	if err != nil {
		if errors.Is(err, cods.ErrNoTable) {
			// An unknown table — queried directly or named in a JOIN —
			// is "not found", so clients do not retry it as written.
			return errf(http.StatusNotFound, "%v", err)
		}
		// The tables exist, so the failure is a malformed SELECT, bad
		// predicate, column, or query shape — the client's to fix.
		return errf(http.StatusBadRequest, "%v", err)
	}
	rows := rs.Rows
	if rows == nil {
		rows = [][]string{}
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Columns:   rs.Columns,
		Rows:      rows,
		RowCount:  len(rows),
		ElapsedMS: float64(time.Since(begin).Microseconds()) / 1000,
	})
	return nil
}

// --- /exec ---

// ExecRequest is POST /exec's body: exactly one of Op (a single SMO
// statement) or Script (newline/semicolon-separated statements).
type ExecRequest struct {
	Op     string `json:"op,omitempty"`
	Script string `json:"script,omitempty"`
}

// ExecResult reports one executed operator.
type ExecResult struct {
	Op        string   `json:"op"`
	Kind      string   `json:"kind"`
	Version   int      `json:"version"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Steps     []string `json:"steps,omitempty"`
	Created   []string `json:"created,omitempty"`
	Dropped   []string `json:"dropped,omitempty"`
}

// ExecResponse is POST /exec's body on success.
type ExecResponse struct {
	Results []ExecResult `json:"results"`
}

func toExecResult(r *cods.Result) ExecResult {
	return ExecResult{
		Op:        r.Op,
		Kind:      r.Kind,
		Version:   r.Version,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000,
		Steps:     r.Steps,
		Created:   r.Created,
		Dropped:   r.Dropped,
	}
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) *httpError {
	var req ExecRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	switch {
	case req.Op != "" && req.Script != "":
		return errf(http.StatusBadRequest, "set op or script, not both")
	case req.Op != "":
		res, err := s.db.Exec(req.Op)
		if err != nil {
			herr := classifyExecErr(err)
			if res != nil {
				// The statement committed but could not be made durable;
				// the client must see it or a retry re-applies a live
				// statement.
				herr.extra = map[string]any{"results": []ExecResult{toExecResult(res)}}
			}
			return herr
		}
		writeJSON(w, http.StatusOK, ExecResponse{Results: []ExecResult{toExecResult(res)}})
		return nil
	case req.Script != "":
		results, err := s.db.ExecScript(req.Script)
		execResults := []ExecResult{}
		for _, r := range results {
			execResults = append(execResults, toExecResult(r))
		}
		if err != nil {
			// Statements before the failure committed (and are durable);
			// the client must see them or a whole-script retry will fail
			// in new ways.
			herr := classifyExecErr(err)
			herr.extra = map[string]any{"results": execResults}
			return herr
		}
		writeJSON(w, http.StatusOK, ExecResponse{Results: execResults})
		return nil
	default:
		return errf(http.StatusBadRequest, "missing op or script")
	}
}

// --- /checkpoint ---

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) *httpError {
	if err := s.db.Checkpoint(); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, cods.ErrNotDurable) {
			// Same contract as /exec: durability failures are the
			// server's problem, not the client's.
			status = http.StatusServiceUnavailable
		}
		return errf(status, "%v", err)
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "schema_version": s.db.Version()})
	return nil
}

// --- /stats ---

// EndpointStats is one endpoint's counters in GET /stats.
type EndpointStats struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	TotalMS   float64 `json:"total_ms"`
	MeanMS    float64 `json:"mean_ms"`
	MaxMS     float64 `json:"max_ms"`
	LastError bool    `json:"last_error"`
}

// MemoryStats are the write path's memory-pressure gauges in GET /stats:
// how many schema versions retention keeps for Rollback, how many delta-
// overlay rows await compaction, how many compactions and tiered segment
// merges have run, and each table's segment layout. They come from
// DB.MemStats, which is lock-free, so the probe answers even while an
// evolution or checkpoint holds the write path.
type MemoryStats struct {
	RetainedVersions      int             `json:"retained_versions"`
	OldestRetainedVersion int             `json:"oldest_retained_version"`
	PendingRows           uint64          `json:"pending_rows"`
	Compactions           uint64          `json:"compactions"`
	SegmentMerges         uint64          `json:"segment_merges"`
	Tables                []TableSegments `json:"tables"`
}

// TableSegments is one table's segment-layout gauge in GET /stats.
type TableSegments struct {
	Table    string `json:"table"`
	Segments int    `json:"segments"`
	MinRows  uint64 `json:"min_rows"`
	MaxRows  uint64 `json:"max_rows"`
}

// TableColumnStats is one table's planner statistics in GET /stats:
// the row count plus each column's cardinality inputs (the numbers the
// query planner's join ordering and selectivity estimates run on).
type TableColumnStats struct {
	Table   string        `json:"table"`
	Rows    uint64        `json:"rows"`
	Columns []ColumnStats `json:"columns"`
}

// ColumnStats is one column's cardinality statistics in GET /stats,
// from colstore.Column.Stats: the dictionary's distinct count, and —
// when every distinct value parses as an int64 — the numeric bounds.
type ColumnStats struct {
	Name     string `json:"name"`
	Distinct int    `json:"distinct"`
	Integer  bool   `json:"integer,omitempty"`
	MinInt   int64  `json:"min_int,omitempty"`
	MaxInt   int64  `json:"max_int,omitempty"`
}

// StatsResponse is GET /stats's body.
type StatsResponse struct {
	UptimeMS      float64                  `json:"uptime_ms"`
	SchemaVersion int                      `json:"schema_version"`
	InFlight      int64                    `json:"in_flight"`
	MaxInFlight   int                      `json:"max_in_flight"`
	Memory        MemoryStats              `json:"memory"`
	TableStats    []TableColumnStats       `json:"table_stats,omitempty"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) *httpError {
	ms := s.db.MemStats()
	resp := StatsResponse{
		UptimeMS:      float64(time.Since(s.start).Microseconds()) / 1000,
		SchemaVersion: s.db.Version(),
		InFlight:      s.inFlight.Load(),
		MaxInFlight:   s.cfg.MaxInFlight,
		Memory: MemoryStats{
			RetainedVersions:      ms.RetainedVersions,
			OldestRetainedVersion: ms.OldestRetainedVersion,
			PendingRows:           ms.PendingRows,
			Compactions:           ms.Compactions,
			SegmentMerges:         ms.SegmentMerges,
		},
		Endpoints: make(map[string]EndpointStats, len(s.stats)),
	}
	for _, t := range ms.Tables {
		resp.Memory.Tables = append(resp.Memory.Tables, TableSegments{
			Table:    t.Table,
			Segments: t.Segments,
			MinRows:  t.MinRows,
			MaxRows:  t.MaxRows,
		})
	}
	// One snapshot for the whole listing, so the per-table statistics
	// describe a single schema version even under concurrent evolutions.
	snap := s.db.Snapshot()
	for _, name := range snap.Tables() {
		info, err := snap.Describe(name)
		if err != nil {
			continue
		}
		ts := TableColumnStats{Table: name, Rows: info.Rows}
		for _, c := range info.Columns {
			ts.Columns = append(ts.Columns, ColumnStats{
				Name:     c.Name,
				Distinct: c.DistinctValues,
				Integer:  c.Integer,
				MinInt:   c.MinInt,
				MaxInt:   c.MaxInt,
			})
		}
		resp.TableStats = append(resp.TableStats, ts)
	}
	for path, st := range s.stats {
		n := st.requests.Load()
		es := EndpointStats{
			Requests:  n,
			Errors:    st.errors.Load(),
			TotalMS:   float64(st.totalNS.Load()) / 1e6,
			MaxMS:     float64(st.maxNS.Load()) / 1e6,
			LastError: st.lastIsErr.Load(),
		}
		if n > 0 {
			es.MeanMS = es.TotalMS / float64(n)
		}
		resp.Endpoints[path] = es
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

package colstore

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cods/internal/wah"
)

// figure1R returns the paper's Figure 1 table R.
func figure1R(t *testing.T) *Table {
	t.Helper()
	tb, err := NewTableBuilder("R", []string{"Employee", "Skill", "Address"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"Jones", "Typing", "425 Grant Ave"},
		{"Jones", "Shorthand", "425 Grant Ave"},
		{"Roberts", "Light Cleaning", "747 Industrial Way"},
		{"Ellis", "Alchemy", "747 Industrial Way"},
		{"Jones", "Whittling", "425 Grant Ave"},
		{"Ellis", "Juggling", "747 Industrial Way"},
		{"Harrison", "Light Cleaning", "425 Grant Ave"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBuildAndReadBack(t *testing.T) {
	tab := figure1R(t)
	if tab.NumRows() != 7 || tab.NumColumns() != 3 {
		t.Fatalf("bad shape: %v", tab)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	rows, err := tab.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "Jones" || rows[0][1] != "Typing" {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if rows[6][0] != "Harrison" || rows[6][2] != "425 Grant Ave" {
		t.Fatalf("row 6 = %v", rows[6])
	}
	// Single row access agrees with bulk access.
	for i := uint64(0); i < tab.NumRows(); i++ {
		row, err := tab.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		for c := range row {
			if row[c] != rows[i][c] {
				t.Fatalf("Row(%d)[%d]=%q, Rows gave %q", i, c, row[c], rows[i][c])
			}
		}
	}
}

func TestColumnBitmaps(t *testing.T) {
	tab := figure1R(t)
	emp, err := tab.Column("Employee")
	if err != nil {
		t.Fatal(err)
	}
	if emp.DistinctCount() != 4 {
		t.Fatalf("Employee distinct=%d want 4", emp.DistinctCount())
	}
	jones := emp.BitmapFor("Jones")
	if jones.Count() != 3 {
		t.Fatalf("Jones count=%d want 3", jones.Count())
	}
	got := jones.AppendPositionsTo(nil)
	want := []uint64{0, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Jones rows=%v want %v", got, want)
		}
	}
	absent := emp.BitmapFor("Nobody")
	if absent.Count() != 0 || absent.Len() != 7 {
		t.Fatalf("absent value bitmap: %v", absent)
	}
}

func TestEqScanAndScanWhere(t *testing.T) {
	tab := figure1R(t)
	addr, _ := tab.Column("Address")
	grant := addr.EqScan("425 Grant Ave")
	if grant.Count() != 4 {
		t.Fatalf("EqScan count=%d want 4", grant.Count())
	}
	skill, _ := tab.Column("Skill")
	cleaning := skill.ScanWhere(func(v string) bool { return v == "Light Cleaning" })
	if cleaning.Count() != 2 {
		t.Fatalf("ScanWhere count=%d want 2", cleaning.Count())
	}
	// AND across columns: cleaners at Grant Ave.
	both := wah.And(grant, cleaning)
	if both.Count() != 1 {
		t.Fatalf("conjunction count=%d want 1", both.Count())
	}
	pos := both.AppendPositionsTo(nil)
	if pos[0] != 6 {
		t.Fatalf("conjunction row=%v want [6]", pos)
	}
}

func TestRangeScan(t *testing.T) {
	col := NewColumnFromValues("Age", []string{"30", "25", "41", "7", "30", "100"})
	cases := []struct {
		lo, hi string
		want   uint64
	}{
		{"", "", 6},       // unbounded
		{"25", "30", 3},   // 25, 30, 30 (numeric)
		{"7", "7", 1},     // point
		{"8", "24", 0},    // empty numeric gap
		{"", "30", 4},     // 7, 25, 30, 30
		{"41", "", 2},     // 41, 100
		{"200", "300", 0}, // above all
	}
	for _, c := range cases {
		got := col.RangeScan(c.lo, c.hi)
		if got.Len() != 6 {
			t.Fatalf("[%s,%s]: bitmap len=%d", c.lo, c.hi, got.Len())
		}
		if got.Count() != c.want {
			t.Errorf("[%s,%s]: count=%d want %d", c.lo, c.hi, got.Count(), c.want)
		}
	}
	// Lexicographic for non-numeric values.
	names := NewColumnFromValues("N", []string{"bob", "ann", "carol", "dave"})
	if got := names.RangeScan("b", "cz").Count(); got != 2 {
		t.Errorf("lexicographic range: count=%d want 2", got)
	}
	// RLE columns take the same path via conversion.
	rl := NewRLEColumn("S", []string{"10", "10", "20", "30"})
	if got := rl.RangeScan("10", "20").Count(); got != 3 {
		t.Errorf("rle range: count=%d want 3", got)
	}
}

func TestRowIDsMatchValues(t *testing.T) {
	tab := figure1R(t)
	for _, name := range tab.ColumnNames() {
		col, _ := tab.Column(name)
		ids := col.RowIDs()
		for i := uint64(0); i < col.NumRows(); i++ {
			want, err := col.ValueAt(i)
			if err != nil {
				t.Fatal(err)
			}
			if got := col.Dict().Value(ids[i]); got != want {
				t.Fatalf("column %s row %d: RowIDs gives %q, ValueAt gives %q", name, i, got, want)
			}
		}
	}
}

func TestSchemaOperations(t *testing.T) {
	tab := figure1R(t)

	renamed := tab.WithName("R2")
	if renamed.Name() != "R2" || renamed.NumRows() != 7 {
		t.Fatalf("WithName: %v", renamed)
	}

	rc, err := tab.WithColumnRenamed("Skill", "Talent")
	if err != nil {
		t.Fatal(err)
	}
	if !rc.HasColumn("Talent") || rc.HasColumn("Skill") {
		t.Fatalf("rename failed: %v", rc.ColumnNames())
	}
	if _, err := tab.WithColumnRenamed("Skill", "Employee"); err == nil {
		t.Fatal("rename onto existing column should fail")
	}
	if _, err := tab.WithColumnRenamed("Nope", "X"); err == nil {
		t.Fatal("rename of missing column should fail")
	}

	dropped, err := tab.WithColumnDropped("Address")
	if err != nil {
		t.Fatal(err)
	}
	if dropped.NumColumns() != 2 || dropped.HasColumn("Address") {
		t.Fatalf("drop failed: %v", dropped.ColumnNames())
	}
	// Original unchanged (immutability).
	if !tab.HasColumn("Address") {
		t.Fatal("drop mutated the source table")
	}

	extra := NewColumnFromValues("Grade", []string{"A", "B", "A", "C", "B", "A", "C"})
	added, err := tab.WithColumnAdded(extra)
	if err != nil {
		t.Fatal(err)
	}
	if added.NumColumns() != 4 {
		t.Fatalf("add failed: %v", added.ColumnNames())
	}
	short := NewColumnFromValues("Bad", []string{"x"})
	if _, err := tab.WithColumnAdded(short); err == nil {
		t.Fatal("adding a short column should fail")
	}
}

func TestProject(t *testing.T) {
	tab := figure1R(t)
	s, err := tab.Project("S", []string{"Employee", "Skill"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 2 || s.NumRows() != 7 {
		t.Fatalf("project shape: %v", s)
	}
	// Shared column object: projection is zero-copy.
	orig, _ := tab.Column("Employee")
	proj, _ := s.Column("Employee")
	if orig != proj {
		t.Fatal("Project copied column data; expected sharing")
	}
	if _, err := tab.Project("X", []string{"Missing"}, nil); err == nil {
		t.Fatal("projecting a missing column should fail")
	}
}

func TestFilterRows(t *testing.T) {
	tab := figure1R(t)
	// Keep rows of employees at 747 Industrial Way.
	addr, _ := tab.Column("Address")
	mask := addr.EqScan("747 Industrial Way")
	ft, err := tab.FilterRows("F", mask)
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumRows() != 3 {
		t.Fatalf("filtered rows=%d want 3", ft.NumRows())
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, row := range ft.SortedTuples() {
		if row[2] != "747 Industrial Way" {
			t.Fatalf("filter leaked row %v", row)
		}
	}
	// Dropped values must leave the dictionary.
	emp, _ := ft.Column("Employee")
	if emp.DistinctCount() != 2 { // Roberts, Ellis
		t.Fatalf("filtered Employee distinct=%d want 2", emp.DistinctCount())
	}
	short := wah.New()
	short.Extend(3)
	if _, err := tab.FilterRows("F", short); err == nil {
		t.Fatal("mask length mismatch should fail")
	}
}

func TestTableBuilderValidation(t *testing.T) {
	if _, err := NewTableBuilder("T", nil, nil); err == nil {
		t.Fatal("empty schema should fail")
	}
	if _, err := NewTableBuilder("T", []string{"A", "A"}, nil); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if _, err := NewTableBuilder("T", []string{"A"}, []string{"B"}); err == nil {
		t.Fatal("key outside schema should fail")
	}
	tb, err := NewTableBuilder("T", []string{"A", "B"}, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow([]string{"only-one"}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestValidateKey(t *testing.T) {
	tb, _ := NewTableBuilder("T", []string{"K", "V"}, []string{"K"})
	tb.AppendRow([]string{"a", "1"})
	tb.AppendRow([]string{"b", "2"})
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.ValidateKey(); err != nil {
		t.Fatal(err)
	}
	tb2, _ := NewTableBuilder("T", []string{"K", "V"}, []string{"K"})
	tb2.AppendRow([]string{"a", "1"})
	tb2.AppendRow([]string{"a", "2"})
	dup, _ := tb2.Finish()
	if err := dup.ValidateKey(); err == nil {
		t.Fatal("duplicate key should fail validation")
	}
}

func TestRLEConversionRoundTrip(t *testing.T) {
	values := []string{"a", "a", "a", "b", "b", "c", "a", "a"}
	bm := NewColumnFromValues("X", values)
	rl := bm.ToRLEEncoding()
	if rl.Encoding() != EncodingRLE {
		t.Fatal("not RLE encoded")
	}
	back := rl.ToBitmapEncoding()
	for i := range values {
		v1, _ := rl.ValueAt(uint64(i))
		v2, _ := back.ValueAt(uint64(i))
		if v1 != values[i] || v2 != values[i] {
			t.Fatalf("row %d: rle=%q bitmap=%q want %q", i, v1, v2, values[i])
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := rl.Validate(); err != nil {
		t.Fatal(err)
	}
	// EqScan agrees across encodings.
	if !wah.Equal(rl.EqScan("a"), bm.EqScan("a")) {
		t.Fatal("EqScan differs between encodings")
	}
	if !wah.Equal(rl.ScanWhere(func(v string) bool { return v >= "b" }), bm.ScanWhere(func(v string) bool { return v >= "b" })) {
		t.Fatal("ScanWhere differs between encodings")
	}
}

func TestColumnBuilderWithDict(t *testing.T) {
	src := NewColumnFromValues("X", []string{"p", "q", "p", "r"})
	b := NewColumnBuilderWithDict("Y", src.Dict())
	b.AppendRunID(src.Dict().Lookup("q"), 3)
	b.AppendRunID(src.Dict().Lookup("p"), 2)
	col := b.Finish()
	if col.NumRows() != 5 {
		t.Fatalf("rows=%d", col.NumRows())
	}
	v, _ := col.ValueAt(0)
	if v != "q" {
		t.Fatalf("row 0 = %q", v)
	}
	v, _ = col.ValueAt(4)
	if v != "p" {
		t.Fatalf("row 4 = %q", v)
	}
	// "r" never appended: dropped from the finished dictionary.
	if col.DistinctCount() != 2 {
		t.Fatalf("distinct=%d want 2", col.DistinctCount())
	}
}

func TestNewColumnFromBitmaps(t *testing.T) {
	b1, _ := wah.FromPositions([]uint64{0, 2}, 4)
	b2, _ := wah.FromPositions([]uint64{1, 3}, 4)
	col, err := NewColumnFromBitmaps("C", []string{"x", "y"}, []*wah.Bitmap{b1, b2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewColumnFromBitmaps("C", []string{"x"}, nil, 4); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := NewColumnFromBitmaps("C", []string{"x", "x"}, []*wah.Bitmap{b1, b2}, 4); err == nil {
		t.Fatal("duplicate value should fail")
	}
}

func TestStats(t *testing.T) {
	tab := figure1R(t)
	s := tab.Stats()
	if s.Rows != 7 || s.Columns != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if s.DistinctTotal != 4+6+2 {
		t.Fatalf("distinct total=%d", s.DistinctTotal)
	}
	if s.CompressedBytes == 0 {
		t.Fatal("compressed bytes should be nonzero")
	}
}

func TestQuickBuildValidate(t *testing.T) {
	// Property: any table built through the builder validates, and its
	// per-column bitmap counts sum to the row count.
	f := func(seed int64, n uint16, distinct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(n % 400)
		d := int(distinct%20) + 1
		tb, err := NewTableBuilder("T", []string{"A", "B"}, nil)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			tb.AppendRow([]string{
				fmt.Sprintf("a%d", rng.Intn(d)),
				fmt.Sprintf("b%d", rng.Intn(d*2)),
			})
		}
		tab, err := tb.Finish()
		if err != nil {
			return false
		}
		return tab.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFilterRowsPreservesContent(t *testing.T) {
	// Property: filtering with a random mask keeps exactly the masked
	// rows, in order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(300) + 1
		tb, _ := NewTableBuilder("T", []string{"A", "B"}, nil)
		var raw [][]string
		for i := 0; i < rows; i++ {
			r := []string{fmt.Sprintf("a%d", rng.Intn(5)), fmt.Sprintf("b%d", rng.Intn(50))}
			raw = append(raw, r)
			tb.AppendRow(r)
		}
		tab, _ := tb.Finish()
		mask := wah.New()
		var want [][]string
		for i := 0; i < rows; i++ {
			if rng.Intn(3) == 0 {
				mask.AppendBit(1)
				want = append(want, raw[i])
			} else {
				mask.AppendBit(0)
			}
		}
		ft, err := tab.FilterRows("F", mask)
		if err != nil || ft.Validate() != nil {
			return false
		}
		got, err := ft.Rows(0, 0)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRowsHugeLimit is a regression test: offset+limit used to be computed
// in uint64, so a huge limit wrapped, end underflowed below offset, and
// end-offset became an absurd allocation. Clamping must be overflow-safe.
func TestRowsHugeLimit(t *testing.T) {
	tab := figure1R(t)
	all, err := tab.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		offset, limit uint64
		want          int
	}{
		{0, math.MaxUint64, 7},
		{0, math.MaxUint64 - 1, 7},
		{3, math.MaxUint64, 4},
		{6, math.MaxUint64, 1},
		{7, math.MaxUint64, 0},
		{math.MaxUint64, math.MaxUint64, 0},
		{math.MaxUint64, 1, 0},
		{2, 2, 2},
	}
	for _, c := range cases {
		got, err := tab.Rows(c.offset, c.limit)
		if err != nil {
			t.Fatalf("Rows(%d, %d): %v", c.offset, c.limit, err)
		}
		if len(got) != c.want {
			t.Fatalf("Rows(%d, %d) returned %d rows, want %d", c.offset, c.limit, len(got), c.want)
		}
		for i, row := range got {
			wantRow := all[c.offset+uint64(i)]
			for j := range row {
				if row[j] != wantRow[j] {
					t.Fatalf("Rows(%d, %d)[%d] = %v, want %v", c.offset, c.limit, i, row, wantRow)
				}
			}
		}
	}
}

// TestRowIDRange checks the paged decode against the full decode on both
// encodings, including empty and clamped ranges.
func TestRowIDRange(t *testing.T) {
	tab := figure1R(t)
	for _, enc := range []string{"bitmap", "rle"} {
		for i := 0; i < tab.NumColumns(); i++ {
			col := tab.ColumnAt(i)
			if enc == "rle" {
				col = col.ToRLEEncoding()
			}
			full := col.RowIDs()
			n := col.NumRows()
			for start := uint64(0); start <= n; start++ {
				for end := start; end <= n+2; end++ {
					got := col.RowIDRange(start, end)
					wantEnd := end
					if wantEnd > n {
						wantEnd = n
					}
					if start >= wantEnd {
						if len(got) != 0 {
							t.Fatalf("%s %q [%d,%d): got %d ids, want 0", enc, col.Name(), start, end, len(got))
						}
						continue
					}
					if uint64(len(got)) != wantEnd-start {
						t.Fatalf("%s %q [%d,%d): got %d ids, want %d", enc, col.Name(), start, end, len(got), wantEnd-start)
					}
					for j, id := range got {
						if id != full[start+uint64(j)] {
							t.Fatalf("%s %q [%d,%d): id[%d] = %d, want %d", enc, col.Name(), start, end, j, id, full[start+uint64(j)])
						}
					}
				}
			}
		}
	}
}

// RangeScan must follow the system-wide CompareValues total order on
// mixed numeric/non-numeric values: the old split comparators (sort
// lexicographic, search numeric-when-both-parse) made the binary search
// non-monotonic and returned wrong row sets.
func TestRangeScanMixedValuesTotalOrder(t *testing.T) {
	col := NewColumnFromValues("V", []string{"10x", "9", "abc", "10", "2"})
	// Integers sort first: [2 9 10], then [10x abc].
	if got := col.RangeScan("10", "").Count(); got != 3 {
		t.Fatalf("RangeScan(10,∞) = %d rows, want 3 (10, 10x, abc; 9 and 2 excluded)", got)
	}
	if got := col.RangeScan("", "9").Count(); got != 2 {
		t.Fatalf("RangeScan(-∞,9) = %d rows, want 2 (2, 9)", got)
	}
	if got := col.RangeScan("10x", "abc").Count(); got != 2 {
		t.Fatalf("RangeScan(10x,abc) = %d rows, want 2", got)
	}
}

package colstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cods/internal/wah"
)

// segmentFromRows builds one segment over the given schema from rows.
func segmentFromRows(t *testing.T, schema []string, rows [][]string) *Segment {
	t.Helper()
	cols := make([]*Column, len(schema))
	for ci, name := range schema {
		b := NewColumnBuilder(name)
		for _, r := range rows {
			b.Append(r[ci])
		}
		cols[ci] = b.Finish()
	}
	s, err := NewSegment(cols)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomRows produces n rows with a few distinct values per column so
// merged dictionaries overlap across segments.
func randomRows(rng *rand.Rand, n int) [][]string {
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = []string{
			fmt.Sprintf("k%04d", rng.Intn(5000)),
			fmt.Sprintf("g%d", rng.Intn(7)),
			fmt.Sprintf("%d", rng.Intn(40)),
		}
	}
	return rows
}

var testSchema = []string{"id", "grp", "val"}

// buildPair returns the same logical table twice: once as a single
// segment and once split into segments at the given cut points.
func buildPair(t *testing.T, rows [][]string, cuts []int) (mono, segd *Table) {
	t.Helper()
	mono, err := NewSegmented("r", testSchema, []*Segment{segmentFromRows(t, testSchema, rows)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var segs []*Segment
	prev := 0
	for _, c := range append(cuts, len(rows)) {
		segs = append(segs, segmentFromRows(t, testSchema, rows[prev:c]))
		prev = c
	}
	segd, err = NewSegmented("r", testSchema, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return mono, segd
}

func TestSegmentedTableMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randomRows(rng, 200)
	mono, segd := buildPair(t, rows, []int{50, 60, 180})

	if segd.NumSegments() != 4 {
		t.Fatalf("segments=%d", segd.NumSegments())
	}
	if err := segd.Validate(); err != nil {
		t.Fatal(err)
	}
	// Whole-table materialization must be byte-identical, including order.
	mr, _ := mono.Rows(0, 0)
	sr, _ := segd.Rows(0, 0)
	if !reflect.DeepEqual(mr, sr) {
		t.Fatal("Rows(0,0) differ")
	}
	// Paged reads crossing segment boundaries.
	for _, page := range [][2]uint64{{0, 10}, {45, 20}, {55, 10}, {170, 100}, {199, 5}} {
		mp, _ := mono.Rows(page[0], page[1])
		sp, _ := segd.Rows(page[0], page[1])
		if !reflect.DeepEqual(mp, sp) {
			t.Fatalf("Rows(%d,%d) differ", page[0], page[1])
		}
	}
	// Row addressing across boundaries.
	for _, i := range []uint64{0, 49, 50, 59, 60, 179, 180, 199} {
		a, _ := mono.Row(i)
		b, _ := segd.Row(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Row(%d) differ: %v vs %v", i, a, b)
		}
	}
	// Stitched whole-table columns: same values row by row, and the
	// stitched dictionary preserves first-occurrence order (equal to the
	// monolithic build's interning order).
	for _, cn := range testSchema {
		mc, _ := mono.Column(cn)
		sc, _ := segd.Column(cn)
		if !reflect.DeepEqual(mc.RowIDs(), sc.RowIDs()) {
			t.Fatalf("column %q stitched RowIDs differ", cn)
		}
		if !reflect.DeepEqual(mc.Dict().Values(), sc.Dict().Values()) {
			t.Fatalf("column %q stitched dictionary order differs", cn)
		}
	}
	// Segment-native scans agree with monolithic scans.
	for _, v := range []string{rows[0][0], rows[123][0], "absent"} {
		mb, _ := mono.EqBitmap("id", v)
		sb, _ := segd.EqBitmap("id", v)
		if !wah.Equal(mb, sb) {
			t.Fatalf("EqBitmap(%q) differ", v)
		}
	}
	pred := func(v string) bool { return v > "g3" }
	mb, _ := mono.ScanWhereBitmap("grp", pred, 1)
	sb, _ := segd.ScanWhereBitmap("grp", pred, 1)
	if !wah.Equal(mb, sb) {
		t.Fatal("ScanWhereBitmap differ")
	}
	// Filtering slices the mask per segment; results must match.
	mask := wah.New()
	for i := 0; i < 200; i += 3 {
		mask.Add(uint64(i))
	}
	mask.Extend(200)
	mf, _ := mono.FilterRows("f", mask)
	sf, _ := segd.FilterRows("f", mask)
	if !reflect.DeepEqual(mf.SortedTuples(), sf.SortedTuples()) {
		t.Fatal("FilterRows differ")
	}
}

func TestSegmentedSchemaChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := randomRows(rng, 90)
	mono, segd := buildPair(t, rows, []int{30, 60})

	// ADD COLUMN: the new whole-table column is split along segment
	// boundaries.
	vals := make([]string, 90)
	for i := range vals {
		vals[i] = fmt.Sprintf("x%d", i%4)
	}
	nc := NewColumnFromValues("extra", vals)
	ma, err := mono.WithColumnAdded(nc)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := segd.WithColumnAdded(nc)
	if err != nil {
		t.Fatal(err)
	}
	if sa.NumSegments() != 3 {
		t.Fatalf("segments=%d after add", sa.NumSegments())
	}
	if err := sa.Validate(); err != nil {
		t.Fatal(err)
	}
	mr, _ := ma.Rows(0, 0)
	sr, _ := sa.Rows(0, 0)
	if !reflect.DeepEqual(mr, sr) {
		t.Fatal("rows differ after WithColumnAdded")
	}

	// DROP / RENAME / Project stay per-segment metadata maps.
	sd, err := sa.WithColumnDropped("grp")
	if err != nil {
		t.Fatal(err)
	}
	if got := sd.ColumnNames(); !reflect.DeepEqual(got, []string{"id", "val", "extra"}) {
		t.Fatalf("columns after drop: %v", got)
	}
	srn, err := sd.WithColumnRenamed("val", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if !srn.HasColumn("v2") || srn.HasColumn("val") {
		t.Fatal("rename not applied")
	}
	pj, err := srn.Project("p", []string{"v2", "id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pj.Validate(); err != nil {
		t.Fatal(err)
	}
	if pj.NumRows() != 90 || pj.NumColumns() != 2 {
		t.Fatalf("projection shape %d×%d", pj.NumRows(), pj.NumColumns())
	}
}

func TestSegmentedValidateKeyAcrossSegments(t *testing.T) {
	s1 := segmentFromRows(t, []string{"k"}, [][]string{{"a"}, {"b"}})
	s2 := segmentFromRows(t, []string{"k"}, [][]string{{"c"}, {"b"}})
	tbl, err := NewSegmented("r", []string{"k"}, []*Segment{s1, s2}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.ValidateKey(); err == nil {
		t.Fatal("cross-segment duplicate key not detected")
	}
	ok, err := NewSegmented("r", []string{"k"}, []*Segment{s1, segmentFromRows(t, []string{"k"}, [][]string{{"c"}, {"d"}})}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.ValidateKey(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTailPlan(t *testing.T) {
	cases := []struct {
		rows  []uint64
		ratio int
		want  int
	}{
		{nil, 2, 0},
		{[]uint64{100}, 2, 1},
		{[]uint64{100, 60}, 2, 0}, // 100 <= 2*60: fold everything
		{[]uint64{100, 10}, 2, 2}, // invariant holds: no merge
		{[]uint64{100, 10, 8}, 2, 1},
		{[]uint64{100, 50, 30, 8}, 2, 4},  // 30 > 2*8: tail fold never starts
		{[]uint64{100, 50, 30, 16}, 2, 0}, // cascade folds all the way down
		{[]uint64{1000, 10, 8}, 2, 1},
		{[]uint64{16, 16}, 1, 0},
	}
	for _, c := range cases {
		if got := MergeTailPlan(c.rows, c.ratio); got != c.want {
			t.Errorf("MergeTailPlan(%v, %d) = %d, want %d", c.rows, c.ratio, got, c.want)
		}
	}
}

func TestCompactSegmentsPreservesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := randomRows(rng, 120)
	mono, segd := buildPair(t, rows, []int{100, 110})
	merged, err := segd.CompactSegments(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumSegments() >= segd.NumSegments() {
		t.Fatalf("merge did not shrink: %d -> %d", segd.NumSegments(), merged.NumSegments())
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	a, _ := mono.Rows(0, 0)
	b, _ := merged.Rows(0, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rows differ after merge")
	}
}

func TestWithSegmentsReplacedVerifiesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows := randomRows(rng, 60)
	_, segd := buildPair(t, rows, []int{20, 40})
	segs := segd.Segments()
	merged, err := MergeSegments(segs[1:], 1)
	if err != nil {
		t.Fatal(err)
	}
	// Matching run splices.
	nt, ok := segd.WithSegmentsReplaced(1, segs[1:], merged)
	if !ok || nt.NumSegments() != 2 {
		t.Fatalf("splice failed: ok=%v segments=%d", ok, nt.NumSegments())
	}
	// A run that is no longer in place (wrong position, or stale pointers
	// after another splice) must be rejected.
	if _, ok := segd.WithSegmentsReplaced(0, segs[1:], merged); ok {
		t.Fatal("splice at wrong position accepted")
	}
	if _, ok := nt.WithSegmentsReplaced(1, segs[1:], merged); ok {
		t.Fatal("stale run accepted after earlier splice")
	}
}

func TestFlushSizedSegmentsStayLogarithmic(t *testing.T) {
	// Simulate repeated flush (append a threshold-sized tail) + merge
	// policy; the segment count must stay O(log n), which is the whole
	// point of the tiered invariant.
	tbl, err := NewSegmented("r", testSchema, []*Segment{segmentFromRows(t, testSchema, randomRows(rand.New(rand.NewSource(1)), 64))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	maxSegs := 0
	for i := 0; i < 64; i++ {
		tail := segmentFromRows(t, testSchema, randomRows(rng, 64))
		if tbl, err = tbl.WithTailSegment(tail); err != nil {
			t.Fatal(err)
		}
		if tbl, err = tbl.CompactSegments(2, 1); err != nil {
			t.Fatal(err)
		}
		if tbl.NumSegments() > maxSegs {
			maxSegs = tbl.NumSegments()
		}
	}
	if tbl.NumRows() != 65*64 {
		t.Fatalf("rows=%d", tbl.NumRows())
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if maxSegs > 8 {
		t.Fatalf("segment count grew to %d over 64 flushes; tiering is not bounding it", maxSegs)
	}
}

package colstore

import "strconv"

// ColumnStats summarizes one column for query planning and monitoring:
// the dictionary's distinct count (the planner's cardinality input for
// equality predicates and join sides), the row count, and — when every
// distinct value parses as a 64-bit integer — the numeric min and max.
// Cost is O(distinct): the dictionary is scanned, row data never is.
type ColumnStats struct {
	// Rows is the column's row count.
	Rows uint64
	// Distinct is the number of dictionary entries.
	Distinct int
	// Integer reports whether every distinct value parses as an int64
	// (an empty column is not integer — there is no min/max to report).
	Integer bool
	// MinInt and MaxInt bound the values numerically; meaningful only
	// when Integer is true.
	MinInt, MaxInt int64
}

// Stats computes the column's planning statistics from its dictionary.
func (c *Column) Stats() ColumnStats {
	st := ColumnStats{Rows: c.nrows, Distinct: c.dict.Len()}
	if st.Distinct == 0 {
		return st
	}
	st.Integer = true
	for id := 0; id < st.Distinct; id++ {
		v, err := strconv.ParseInt(c.dict.Value(uint32(id)), 10, 64)
		if err != nil {
			st.Integer = false
			st.MinInt, st.MaxInt = 0, 0
			return st
		}
		if id == 0 || v < st.MinInt {
			st.MinInt = v
		}
		if id == 0 || v > st.MaxInt {
			st.MaxInt = v
		}
	}
	return st
}

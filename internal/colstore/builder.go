package colstore

import (
	"fmt"

	"cods/internal/dict"
	"cods/internal/par"
	"cods/internal/rle"
	"cods/internal/wah"
)

// ColumnBuilder constructs a bitmap-encoded column by appending values in
// row order. Appends go straight into per-value compressed builders; the
// uncompressed column never exists.
type ColumnBuilder struct {
	name    string
	dict    *dict.Dict
	bitmaps []*wah.Bitmap
	nrows   uint64
}

// NewColumnBuilder returns a builder for a column with the given name.
func NewColumnBuilder(name string) *ColumnBuilder {
	return &ColumnBuilder{name: name, dict: dict.New()}
}

// NewColumnBuilderWithDict returns a builder that shares value ids with an
// existing dictionary (snapshotted). Evolution algorithms use this to
// carry source-table ids into output columns without re-interning.
func NewColumnBuilderWithDict(name string, d *dict.Dict) *ColumnBuilder {
	b := &ColumnBuilder{name: name, dict: d.Clone()}
	b.bitmaps = make([]*wah.Bitmap, b.dict.Len())
	for i := range b.bitmaps {
		b.bitmaps[i] = wah.New()
	}
	return b
}

// Append adds one row with the given value.
func (b *ColumnBuilder) Append(value string) {
	b.AppendID(b.Intern(value))
}

// Intern returns the value id for value, extending the dictionary as
// needed, without appending a row.
func (b *ColumnBuilder) Intern(value string) uint32 {
	id := b.dict.Intern(value)
	for uint32(len(b.bitmaps)) <= id {
		b.bitmaps = append(b.bitmaps, wah.New())
	}
	return id
}

// AppendID adds one row with a value id previously returned by Intern (or
// valid in the shared dictionary).
func (b *ColumnBuilder) AppendID(id uint32) {
	b.bitmaps[id].Add(b.nrows)
	b.nrows++
}

// AppendRunID adds count consecutive rows holding the same value id.
func (b *ColumnBuilder) AppendRunID(id uint32, count uint64) {
	if count == 0 {
		return
	}
	bm := b.bitmaps[id]
	bm.Extend(b.nrows)
	bm.AppendRun(1, count)
	b.nrows += count
}

// NumRows returns the number of rows appended so far.
func (b *ColumnBuilder) NumRows() uint64 { return b.nrows }

// Finish seals the builder into an immutable Column, dropping dictionary
// entries whose bitmaps are empty (values that did not survive evolution,
// §2.4) and padding all bitmaps to the row count.
func (b *ColumnBuilder) Finish() *Column {
	outDict := dict.New()
	var outBitmaps []*wah.Bitmap
	for id, bm := range b.bitmaps {
		if !bm.Any() {
			continue
		}
		bm.Extend(b.nrows)
		outDict.Intern(b.dict.Value(uint32(id)))
		outBitmaps = append(outBitmaps, bm)
	}
	return &Column{name: b.name, enc: EncodingBitmap, dict: outDict, bitmaps: outBitmaps, nrows: b.nrows}
}

// NewColumnFromValues builds a bitmap column from explicit row values.
func NewColumnFromValues(name string, values []string) *Column {
	b := NewColumnBuilder(name)
	for _, v := range values {
		b.Append(v)
	}
	return b.Finish()
}

// NewColumnFromBitmaps assembles a column directly from per-value bitmaps
// produced by an evolution algorithm. values[i] names the value of
// bitmaps[i]. Empty bitmaps are dropped. nrows fixes the column length.
func NewColumnFromBitmaps(name string, values []string, bitmaps []*wah.Bitmap, nrows uint64) (*Column, error) {
	if len(values) != len(bitmaps) {
		return nil, fmt.Errorf("colstore: %d values for %d bitmaps", len(values), len(bitmaps))
	}
	d := dict.New()
	var out []*wah.Bitmap
	for i, bm := range bitmaps {
		if bm == nil || !bm.Any() {
			continue
		}
		if bm.Len() > nrows {
			return nil, fmt.Errorf("colstore: bitmap for %q has %d bits, table has %d rows", values[i], bm.Len(), nrows)
		}
		if prev := d.Len(); d.Intern(values[i]) != uint32(prev) {
			return nil, fmt.Errorf("colstore: duplicate value %q", values[i])
		}
		bm.Extend(nrows)
		out = append(out, bm)
	}
	return &Column{name: name, enc: EncodingBitmap, dict: d, bitmaps: out, nrows: nrows}, nil
}

// NewColumnSharingDict assembles a column from per-value bitmaps that
// cover every dictionary entry, sharing the dictionary object itself.
// Columns are immutable, so sharing is safe; evolution fast paths use this
// when every source value survives (e.g. the key column of a
// decomposition's deduplicated output), avoiding re-interning large
// dictionaries. bitmaps[i] is the vector of d.Value(i) and must be
// non-empty.
func NewColumnSharingDict(name string, d *dict.Dict, bitmaps []*wah.Bitmap, nrows uint64) (*Column, error) {
	if len(bitmaps) != d.Len() {
		return nil, fmt.Errorf("colstore: %d bitmaps for %d dictionary entries", len(bitmaps), d.Len())
	}
	for i, bm := range bitmaps {
		if bm == nil || !bm.Any() {
			return nil, fmt.Errorf("colstore: value %q has an empty bitmap; use NewColumnFromBitmaps to drop values", d.Value(uint32(i)))
		}
		if bm.Len() > nrows {
			return nil, fmt.Errorf("colstore: bitmap for %q has %d bits, table has %d rows", d.Value(uint32(i)), bm.Len(), nrows)
		}
		bm.Extend(nrows)
	}
	return &Column{name: name, enc: EncodingBitmap, dict: d, bitmaps: bitmaps, nrows: nrows}, nil
}

// NewRLEColumn builds an RLE-encoded column from row values, typically a
// sorted column.
func NewRLEColumn(name string, values []string) *Column {
	d := dict.New()
	runs := &rle.Column{}
	for _, v := range values {
		runs.Append(d.Intern(v), 1)
	}
	return &Column{name: name, enc: EncodingRLE, dict: d, runs: runs, nrows: runs.Len()}
}

// TableBuilder constructs a table by appending whole rows.
type TableBuilder struct {
	name     string
	key      []string
	builders []*ColumnBuilder
	nrows    uint64
	// Parallelism bounds the worker pool Finish uses to seal columns
	// concurrently; 0 means GOMAXPROCS, 1 forces serial finishing.
	Parallelism int
}

// NewTableBuilder returns a builder for a table with the given column
// names. key lists the primary-key attribute names (may be empty).
func NewTableBuilder(name string, columns []string, key []string) (*TableBuilder, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("colstore: table %q needs at least one column", name)
	}
	seen := make(map[string]bool, len(columns))
	for _, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("colstore: table %q has an empty column name", name)
		}
		if seen[c] {
			return nil, fmt.Errorf("colstore: table %q declares column %q twice", name, c)
		}
		seen[c] = true
	}
	for _, k := range key {
		if !seen[k] {
			return nil, fmt.Errorf("colstore: table %q key column %q not in schema", name, k)
		}
	}
	tb := &TableBuilder{name: name, key: append([]string(nil), key...)}
	for _, c := range columns {
		tb.builders = append(tb.builders, NewColumnBuilder(c))
	}
	return tb, nil
}

// AppendRow adds one row; values must match the declared column order.
func (tb *TableBuilder) AppendRow(values []string) error {
	if len(values) != len(tb.builders) {
		return fmt.Errorf("colstore: row has %d values, table %q has %d columns", len(values), tb.name, len(tb.builders))
	}
	for i, v := range values {
		tb.builders[i].Append(v)
	}
	tb.nrows++
	return nil
}

// NumRows returns the number of rows appended so far.
func (tb *TableBuilder) NumRows() uint64 { return tb.nrows }

// Finish seals the builder into a Table. Column sealing (dropping empty
// values, padding bitmaps, rebuilding dictionaries) is independent per
// column, so it fans out over a worker pool bounded by tb.Parallelism.
func (tb *TableBuilder) Finish() (*Table, error) {
	cols := make([]*Column, len(tb.builders))
	par.ForEachIndexed(len(tb.builders), tb.Parallelism, func(i int) {
		cols[i] = tb.builders[i].Finish()
	})
	return NewTable(tb.name, cols, tb.key)
}

package colstore

import (
	"fmt"
	"sort"
	"strings"

	"cods/internal/par"
	"cods/internal/wah"
)

// Table is a named set of columns over a shared row count. Tables are
// immutable: every schema or data change produces a new Table value,
// sharing unchanged columns with its predecessor (cheap copy-on-write,
// which is what makes the paper's Property 1 free).
type Table struct {
	name   string
	cols   []*Column
	byName map[string]int
	key    []string
	nrows  uint64
}

// NewTable assembles a table from finished columns. All columns must have
// the same row count; key columns must exist.
func NewTable(name string, cols []*Column, key []string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("colstore: table %q needs at least one column", name)
	}
	t := &Table{name: name, cols: cols, byName: make(map[string]int, len(cols)), nrows: cols[0].NumRows()}
	for i, c := range cols {
		if c.NumRows() != t.nrows {
			return nil, fmt.Errorf("colstore: table %q column %q has %d rows, expected %d", name, c.Name(), c.NumRows(), t.nrows)
		}
		if _, dup := t.byName[c.Name()]; dup {
			return nil, fmt.Errorf("colstore: table %q has duplicate column %q", name, c.Name())
		}
		t.byName[c.Name()] = i
	}
	for _, k := range key {
		if _, ok := t.byName[k]; !ok {
			return nil, fmt.Errorf("colstore: table %q key column %q not present", name, k)
		}
	}
	t.key = append([]string(nil), key...)
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of rows.
func (t *Table) NumRows() uint64 { return t.nrows }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.cols) }

// Key returns the primary-key column names (possibly empty).
func (t *Table) Key() []string { return append([]string(nil), t.key...) }

// ColumnNames returns the column names in schema order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name()
	}
	return names
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	if i, ok := t.byName[name]; ok {
		return t.cols[i], nil
	}
	return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, name)
}

// ColumnAt returns the column at schema position i.
func (t *Table) ColumnAt(i int) *Column { return t.cols[i] }

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// WithName returns a table sharing all columns but carrying a new name
// (RENAME TABLE / COPY TABLE are metadata operations on a column store).
func (t *Table) WithName(name string) *Table {
	nt := *t
	nt.name = name
	return &nt
}

// WithKey returns a table sharing all columns with a different declared
// key.
func (t *Table) WithKey(key []string) (*Table, error) {
	return NewTable(t.name, t.cols, key)
}

// WithColumnAdded returns a new table with col appended to the schema.
func (t *Table) WithColumnAdded(col *Column) (*Table, error) {
	if col.NumRows() != t.nrows {
		return nil, fmt.Errorf("colstore: new column %q has %d rows, table %q has %d", col.Name(), col.NumRows(), t.name, t.nrows)
	}
	cols := append(append([]*Column(nil), t.cols...), col)
	return NewTable(t.name, cols, t.key)
}

// WithColumnDropped returns a new table without the named column. Dropping
// a key column clears the key declaration.
func (t *Table) WithColumnDropped(name string) (*Table, error) {
	idx, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, name)
	}
	if len(t.cols) == 1 {
		return nil, fmt.Errorf("colstore: cannot drop the only column of table %q", t.name)
	}
	cols := make([]*Column, 0, len(t.cols)-1)
	cols = append(cols, t.cols[:idx]...)
	cols = append(cols, t.cols[idx+1:]...)
	key := t.key
	for _, k := range key {
		if k == name {
			key = nil
			break
		}
	}
	return NewTable(t.name, cols, key)
}

// WithColumnRenamed returns a new table with one column renamed; data is
// shared.
func (t *Table) WithColumnRenamed(oldName, newName string) (*Table, error) {
	idx, ok := t.byName[oldName]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, oldName)
	}
	if _, clash := t.byName[newName]; clash {
		return nil, fmt.Errorf("colstore: table %q already has a column %q", t.name, newName)
	}
	cols := append([]*Column(nil), t.cols...)
	cols[idx] = cols[idx].Renamed(newName)
	key := append([]string(nil), t.key...)
	for i, k := range key {
		if k == oldName {
			key[i] = newName
		}
	}
	return NewTable(t.name, cols, key)
}

// Project returns a table with the named columns only (shared data), used
// by decomposition to assemble the unchanged output table.
func (t *Table) Project(name string, columns []string, key []string) (*Table, error) {
	cols := make([]*Column, 0, len(columns))
	for _, cn := range columns {
		c, err := t.Column(cn)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	return NewTable(name, cols, key)
}

// FilterRows returns a new table containing only the rows selected by
// mask, applying the paper's bitmap filtering to every column. mask must
// have the table's row count.
func (t *Table) FilterRows(name string, mask *wah.Bitmap) (*Table, error) {
	return t.FilterRowsP(name, mask, 1)
}

// FilterRowsP is FilterRows with bounded parallelism: the per-distinct-value
// bitmap filtering — the dominant cost — fans out over a worker pool, one
// task per value of each column. parallelism <= 0 means GOMAXPROCS.
func (t *Table) FilterRowsP(name string, mask *wah.Bitmap, parallelism int) (*Table, error) {
	if mask.Len() != t.nrows {
		return nil, fmt.Errorf("colstore: mask has %d bits, table %q has %d rows", mask.Len(), t.name, t.nrows)
	}
	positions := mask.AppendPositionsTo(make([]uint64, 0, mask.Count()))
	nrows := uint64(len(positions))
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		bc := c.ToBitmapEncoding()
		values := make([]string, bc.DistinctCount())
		bitmaps := make([]*wah.Bitmap, bc.DistinctCount())
		par.ForEachIndexed(bc.DistinctCount(), parallelism, func(id int) {
			values[id] = bc.dict.Value(uint32(id))
			bitmaps[id] = wah.FilterPositions(bc.bitmaps[id], positions)
		})
		nc, err := NewColumnFromBitmaps(c.Name(), values, bitmaps, nrows)
		if err != nil {
			return nil, err
		}
		cols[i] = nc
	}
	return NewTable(name, cols, t.key)
}

// Row materializes a single row as values in schema order. O(distinct)
// per column; for bulk access use Rows or Column.RowIDs.
func (t *Table) Row(i uint64) ([]string, error) {
	out := make([]string, len(t.cols))
	for c, col := range t.cols {
		v, err := col.ValueAt(i)
		if err != nil {
			return nil, err
		}
		out[c] = v
	}
	return out, nil
}

// Rows materializes up to limit rows starting at offset. A limit of 0
// means all remaining rows.
func (t *Table) Rows(offset, limit uint64) ([][]string, error) {
	if offset > t.nrows {
		offset = t.nrows
	}
	end := t.nrows
	// Compare limit against the remaining span instead of computing
	// offset+limit, which wraps for limits near MaxUint64.
	if limit > 0 && limit < end-offset {
		end = offset + limit
	}
	n := end - offset
	out := make([][]string, n)
	for i := range out {
		out[i] = make([]string, len(t.cols))
	}
	for c, col := range t.cols {
		ids := col.RowIDRange(offset, end)
		for i := uint64(0); i < n; i++ {
			out[i][c] = col.dict.Value(ids[i])
		}
	}
	return out, nil
}

// SortedTuples materializes all rows and sorts them lexicographically,
// giving a canonical order-independent representation used by tests and
// verification.
func (t *Table) SortedTuples() [][]string {
	rows, err := t.Rows(0, 0)
	if err != nil {
		panic(err) // Rows(0,0) cannot fail on a valid table
	}
	sort.Slice(rows, func(a, b int) bool {
		for i := range rows[a] {
			if rows[a][i] != rows[b][i] {
				return rows[a][i] < rows[b][i]
			}
		}
		return false
	})
	return rows
}

// TupleMultiset returns a multiset fingerprint of all rows: joined tuple →
// occurrence count. Used to compare tables regardless of row order.
func (t *Table) TupleMultiset() map[string]int {
	rows, err := t.Rows(0, 0)
	if err != nil {
		panic(err)
	}
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[strings.Join(r, "\x00")]++
	}
	return out
}

// Validate checks the structural invariants of the table and all columns.
func (t *Table) Validate() error {
	for _, c := range t.cols {
		if c.NumRows() != t.nrows {
			return fmt.Errorf("colstore: table %q column %q row count %d != %d", t.name, c.Name(), c.NumRows(), t.nrows)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ValidateKey verifies that the declared key is actually unique. Cost is
// one pass over the key columns.
func (t *Table) ValidateKey() error {
	if len(t.key) == 0 {
		return nil
	}
	seen := make(map[string]bool, t.nrows)
	ids := make([][]uint32, len(t.key))
	cols := make([]*Column, len(t.key))
	for i, k := range t.key {
		c, err := t.Column(k)
		if err != nil {
			return err
		}
		cols[i] = c
		ids[i] = c.RowIDs()
	}
	var sb strings.Builder
	for r := uint64(0); r < t.nrows; r++ {
		sb.Reset()
		for i := range ids {
			sb.WriteString(cols[i].dict.Value(ids[i][r]))
			sb.WriteByte(0)
		}
		k := sb.String()
		if seen[k] {
			return fmt.Errorf("colstore: table %q key %v violated at row %d", t.name, t.key, r)
		}
		seen[k] = true
	}
	return nil
}

// Stats summarizes the table's physical footprint.
type Stats struct {
	Rows            uint64
	Columns         int
	DistinctTotal   int
	CompressedBytes uint64
}

// Stats returns storage statistics for the table.
func (t *Table) Stats() Stats {
	s := Stats{Rows: t.nrows, Columns: len(t.cols)}
	for _, c := range t.cols {
		s.DistinctTotal += c.DistinctCount()
		s.CompressedBytes += c.CompressedSizeBytes()
	}
	return s
}

func (t *Table) String() string {
	return fmt.Sprintf("Table %s(%s) rows=%d key=%v", t.name, strings.Join(t.ColumnNames(), ", "), t.nrows, t.key)
}

package colstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cods/internal/par"
	"cods/internal/wah"
)

// Table is a named, ordered list of immutable row segments over a shared
// schema: a manifest of segment order plus row-count offsets. Tables are
// immutable: every schema or data change produces a new Table value,
// sharing unchanged segments and columns with its predecessor (cheap
// copy-on-write, which is what makes the paper's Property 1 free).
//
// Most tables hold a single segment; an overlay flush appends the sealed
// tail as a new small segment, and the tiered merge policy (MergeTailPlan)
// folds tails back so the count stays logarithmic. Whole-table column
// views (Column, ColumnAt) are stitched lazily across segments with a
// dictionary-id remap at each boundary and cached; hot paths that do not
// need a global dictionary (EqBitmap, ScanWhereBitmap, FilterRows, Rows)
// work per segment and never pay the stitch.
type Table struct {
	name    string
	schema  []string
	byName  map[string]int
	key     []string
	segs    []*Segment
	offsets []uint64 // offsets[i] = global row index of segs[i]'s first row
	nrows   uint64
	flat    *flatCache
}

// flatCache memoizes stitched whole-table columns by schema position. It
// lives behind a pointer so metadata-only table copies (WithName, WithKey,
// merges — anything that provably preserves per-position column content)
// can share it.
type flatCache struct {
	mu   sync.Mutex
	cols map[int]*Column
}

func newFlatCache() *flatCache { return &flatCache{cols: make(map[int]*Column)} }

// NewTable assembles a single-segment table from finished columns. All
// columns must have the same row count; key columns must exist.
func NewTable(name string, cols []*Column, key []string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("colstore: table %q needs at least one column", name)
	}
	nrows := cols[0].NumRows()
	byName := make(map[string]int, len(cols))
	schema := make([]string, len(cols))
	for i, c := range cols {
		if c.NumRows() != nrows {
			return nil, fmt.Errorf("colstore: table %q column %q has %d rows, expected %d", name, c.Name(), c.NumRows(), nrows)
		}
		if _, dup := byName[c.Name()]; dup {
			return nil, fmt.Errorf("colstore: table %q has duplicate column %q", name, c.Name())
		}
		byName[c.Name()] = i
		schema[i] = c.Name()
	}
	seg := &Segment{cols: cols, byName: byName, nrows: nrows}
	return newSegmented(name, schema, key, []*Segment{seg})
}

// NewSegmented assembles a table from schema-identical segments in row
// order. Every segment must match schema exactly; zero-row segments are
// dropped, and an empty list (or none with rows) yields an empty
// single-segment table over schema.
func NewSegmented(name string, schema []string, segs []*Segment, key []string) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("colstore: table %q needs at least one column", name)
	}
	seen := make(map[string]bool, len(schema))
	for _, n := range schema {
		if seen[n] {
			return nil, fmt.Errorf("colstore: table %q has duplicate column %q", name, n)
		}
		seen[n] = true
	}
	return newSegmented(name, schema, key, segs)
}

// newSegmented is the one true constructor: it validates segments against
// the schema, drops empty segments (synthesizing one when none remain),
// checks the key, and computes offsets.
func newSegmented(name string, schema []string, key []string, segs []*Segment) (*Table, error) {
	live := make([]*Segment, 0, len(segs))
	for _, s := range segs {
		if err := sameSchema(schema, s); err != nil {
			return nil, fmt.Errorf("colstore: table %q: %w", name, err)
		}
		if s.nrows > 0 {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		live = append(live, emptySegment(schema))
	}
	byName := make(map[string]int, len(schema))
	for i, n := range schema {
		byName[n] = i
	}
	for _, k := range key {
		if _, ok := byName[k]; !ok {
			return nil, fmt.Errorf("colstore: table %q key column %q not present", name, k)
		}
	}
	t := &Table{
		name:    name,
		schema:  append([]string(nil), schema...),
		byName:  byName,
		key:     append([]string(nil), key...),
		segs:    live,
		offsets: make([]uint64, len(live)),
		flat:    newFlatCache(),
	}
	for i, s := range live {
		t.offsets[i] = t.nrows
		t.nrows += s.nrows
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of rows.
func (t *Table) NumRows() uint64 { return t.nrows }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.schema) }

// Key returns the primary-key column names (possibly empty).
func (t *Table) Key() []string { return append([]string(nil), t.key...) }

// ColumnNames returns the column names in schema order.
func (t *Table) ColumnNames() []string { return append([]string(nil), t.schema...) }

// NumSegments returns the number of row segments.
func (t *Table) NumSegments() int { return len(t.segs) }

// Segments returns the row segments in order. Shared; callers must treat
// both the slice and the segments as read-only.
func (t *Table) Segments() []*Segment { return append([]*Segment(nil), t.segs...) }

// SegmentRows returns the per-segment row counts in order.
func (t *Table) SegmentRows() []uint64 {
	rows := make([]uint64, len(t.segs))
	for i, s := range t.segs {
		rows[i] = s.nrows
	}
	return rows
}

// Column returns the named column as a whole-table view. On a
// multi-segment table this stitches the per-segment columns (merged
// dictionary, offset-concatenated bitmaps) and caches the result; prefer
// the segment-native scans (EqBitmap, ScanWhereBitmap) on hot paths.
func (t *Table) Column(name string) (*Column, error) {
	if i, ok := t.byName[name]; ok {
		return t.columnAt(i), nil
	}
	return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, name)
}

// ColumnAt returns the whole-table column at schema position i.
func (t *Table) ColumnAt(i int) *Column { return t.columnAt(i) }

func (t *Table) columnAt(i int) *Column {
	if len(t.segs) == 1 {
		return t.segs[0].cols[i]
	}
	t.flat.mu.Lock()
	defer t.flat.mu.Unlock()
	if c, ok := t.flat.cols[i]; ok {
		return c
	}
	c := mergeColumn(t.segs, i, t.nrows)
	t.flat.cols[i] = c
	return c
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// WithName returns a table sharing all segments but carrying a new name
// (RENAME TABLE / COPY TABLE are metadata operations on a column store).
func (t *Table) WithName(name string) *Table {
	nt := *t
	nt.name = name
	return &nt
}

// WithKey returns a table sharing all segments with a different declared
// key.
func (t *Table) WithKey(key []string) (*Table, error) {
	for _, k := range key {
		if _, ok := t.byName[k]; !ok {
			return nil, fmt.Errorf("colstore: table %q key column %q not present", t.name, k)
		}
	}
	nt := *t
	nt.key = append([]string(nil), key...)
	return &nt, nil
}

// WithTailSegment returns a table with seg appended after the existing
// segments — the O(tail) flush step that seals an overlay's appended rows
// without touching the base.
func (t *Table) WithTailSegment(seg *Segment) (*Table, error) {
	if err := sameSchema(t.schema, seg); err != nil {
		return nil, fmt.Errorf("colstore: table %q: %w", t.name, err)
	}
	segs := append(append([]*Segment(nil), t.segs...), seg)
	nt, err := newSegmented(t.name, t.schema, t.key, segs)
	if err != nil {
		return nil, err
	}
	return nt, nil
}

// WithSegmentsReplaced splices merged over the run t.segs[start:start+
// len(verify)], provided that run is still pointer-identical to verify —
// the check that lets a background merge, computed against an older table
// version, publish against the current one only when the segments it read
// are still exactly the ones in place. Returns ok=false (and the receiver)
// when the run has changed or is out of range. merged must cover the same
// rows as the run it replaces.
func (t *Table) WithSegmentsReplaced(start int, verify []*Segment, merged *Segment) (*Table, bool) {
	if start < 0 || len(verify) == 0 || start+len(verify) > len(t.segs) {
		return t, false
	}
	var run uint64
	for i, s := range verify {
		if t.segs[start+i] != s {
			return t, false
		}
		run += s.nrows
	}
	if merged.nrows != run || sameSchema(t.schema, merged) != nil {
		return t, false
	}
	segs := make([]*Segment, 0, len(t.segs)-len(verify)+1)
	segs = append(segs, t.segs[:start]...)
	segs = append(segs, merged)
	segs = append(segs, t.segs[start+len(verify):]...)
	nt, err := newSegmented(t.name, t.schema, t.key, segs)
	if err != nil {
		return t, false
	}
	// A merge preserves both row order and stitched dictionary order, so
	// whole-table column views are unchanged — share the cache.
	nt.flat = t.flat
	return nt, true
}

// CompactSegments applies the tiered merge policy (MergeTailPlan) once:
// when the tail violates the size-ratio invariant it merges that run in
// place and returns the new table, otherwise it returns the receiver
// unchanged.
func (t *Table) CompactSegments(ratio, parallelism int) (*Table, error) {
	start := MergeTailPlan(t.SegmentRows(), ratio)
	if start >= len(t.segs) {
		return t, nil
	}
	merged, err := MergeSegments(t.segs[start:], parallelism)
	if err != nil {
		return nil, err
	}
	nt, ok := t.WithSegmentsReplaced(start, t.segs[start:], merged)
	if !ok {
		return nil, fmt.Errorf("colstore: table %q segment merge splice failed", t.name)
	}
	return nt, nil
}

// EqBitmap returns the bitmap of rows where the column equals value,
// evaluated per segment (a dictionary probe each) and concatenated — the
// O(segments + result words) point probe the keyed write path relies on.
func (t *Table) EqBitmap(column, value string) (*wah.Bitmap, error) {
	i, ok := t.byName[column]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, column)
	}
	out := wah.New()
	for _, s := range t.segs {
		out.Concat(s.cols[i].EqScan(value))
	}
	out.Extend(t.nrows)
	return out, nil
}

// ScanWhereBitmap returns the bitmap of rows whose value satisfies pred,
// evaluated once per distinct value per segment and concatenated. pred
// must be pure and safe for concurrent calls.
func (t *Table) ScanWhereBitmap(column string, pred func(value string) bool, parallelism int) (*wah.Bitmap, error) {
	i, ok := t.byName[column]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, column)
	}
	out := wah.New()
	for _, s := range t.segs {
		out.Concat(s.cols[i].ScanWhereP(pred, parallelism))
	}
	out.Extend(t.nrows)
	return out, nil
}

// WithColumnAdded returns a new table with col appended to the schema. On
// a multi-segment table the column is split along the existing segment
// boundaries.
func (t *Table) WithColumnAdded(col *Column) (*Table, error) {
	if col.NumRows() != t.nrows {
		return nil, fmt.Errorf("colstore: new column %q has %d rows, table %q has %d", col.Name(), col.NumRows(), t.name, t.nrows)
	}
	if _, dup := t.byName[col.Name()]; dup {
		return nil, fmt.Errorf("colstore: table %q has duplicate column %q", t.name, col.Name())
	}
	segs := make([]*Segment, len(t.segs))
	err := par.ForEachErr(len(t.segs), 0, func(i int) error {
		part := col
		if len(t.segs) > 1 {
			part = sliceColumn(col, t.offsets[i], t.offsets[i]+t.segs[i].nrows)
		}
		ns, err := t.segs[i].withColumn(len(t.schema), part)
		if err != nil {
			return err
		}
		segs[i] = ns
		return nil
	})
	if err != nil {
		return nil, err
	}
	nt, err := newSegmented(t.name, append(append([]string(nil), t.schema...), col.Name()), t.key, segs)
	if err != nil {
		return nil, err
	}
	return nt, nil
}

// WithColumnDropped returns a new table without the named column. Dropping
// a key column clears the key declaration.
func (t *Table) WithColumnDropped(name string) (*Table, error) {
	idx, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, name)
	}
	if len(t.schema) == 1 {
		return nil, fmt.Errorf("colstore: cannot drop the only column of table %q", t.name)
	}
	schema := make([]string, 0, len(t.schema)-1)
	schema = append(schema, t.schema[:idx]...)
	schema = append(schema, t.schema[idx+1:]...)
	key := t.key
	for _, k := range key {
		if k == name {
			key = nil
			break
		}
	}
	segs := make([]*Segment, len(t.segs))
	for i, s := range t.segs {
		ns, err := s.withoutColumn(idx)
		if err != nil {
			return nil, err
		}
		segs[i] = ns
	}
	return newSegmented(t.name, schema, key, segs)
}

// WithColumnRenamed returns a new table with one column renamed; data is
// shared.
func (t *Table) WithColumnRenamed(oldName, newName string) (*Table, error) {
	idx, ok := t.byName[oldName]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, oldName)
	}
	if _, clash := t.byName[newName]; clash {
		return nil, fmt.Errorf("colstore: table %q already has a column %q", t.name, newName)
	}
	schema := append([]string(nil), t.schema...)
	schema[idx] = newName
	key := append([]string(nil), t.key...)
	for i, k := range key {
		if k == oldName {
			key[i] = newName
		}
	}
	segs := make([]*Segment, len(t.segs))
	for i, s := range t.segs {
		ns, err := s.withColumn(idx, s.cols[idx].Renamed(newName))
		if err != nil {
			return nil, err
		}
		segs[i] = ns
	}
	return newSegmented(t.name, schema, key, segs)
}

// Project returns a table with the named columns only (shared data), used
// by decomposition to assemble the unchanged output table.
func (t *Table) Project(name string, columns []string, key []string) (*Table, error) {
	indices := make([]int, len(columns))
	for i, cn := range columns {
		idx, ok := t.byName[cn]
		if !ok {
			return nil, fmt.Errorf("colstore: table %q has no column %q", t.name, cn)
		}
		indices[i] = idx
	}
	segs := make([]*Segment, len(t.segs))
	for i, s := range t.segs {
		segs[i] = s.project(indices)
	}
	return newSegmented(name, append([]string(nil), columns...), key, segs)
}

// FilterRows returns a new table containing only the rows selected by
// mask, applying the paper's bitmap filtering to every column. mask must
// have the table's row count.
func (t *Table) FilterRows(name string, mask *wah.Bitmap) (*Table, error) {
	return t.FilterRowsP(name, mask, 1)
}

// FilterRowsP is FilterRows with bounded parallelism: the per-distinct-value
// bitmap filtering — the dominant cost — fans out over a worker pool, one
// task per value of each column. parallelism <= 0 means GOMAXPROCS. The
// mask is sliced along segment boundaries and each segment filtered
// independently; segments with no selected rows are dropped without any
// data operation.
func (t *Table) FilterRowsP(name string, mask *wah.Bitmap, parallelism int) (*Table, error) {
	if mask.Len() != t.nrows {
		return nil, fmt.Errorf("colstore: mask has %d bits, table %q has %d rows", mask.Len(), t.name, t.nrows)
	}
	segs := make([]*Segment, 0, len(t.segs))
	for i, s := range t.segs {
		sub := mask.Slice(t.offsets[i], t.offsets[i]+s.nrows)
		if !sub.Any() {
			continue
		}
		fs, err := s.filterP(sub, parallelism)
		if err != nil {
			return nil, err
		}
		segs = append(segs, fs)
	}
	return newSegmented(name, t.schema, t.key, segs)
}

// segmentAt returns the index of the segment containing global row i.
func (t *Table) segmentAt(i uint64) int {
	return sort.Search(len(t.offsets), func(k int) bool { return t.offsets[k] > i }) - 1
}

// Row materializes a single row as values in schema order. O(distinct)
// per column; for bulk access use Rows or Column.RowIDs.
func (t *Table) Row(i uint64) ([]string, error) {
	if i >= t.nrows {
		return nil, fmt.Errorf("colstore: row %d out of range in table %q (%d rows)", i, t.name, t.nrows)
	}
	si := t.segmentAt(i)
	s, local := t.segs[si], i-t.offsets[si]
	out := make([]string, len(s.cols))
	for c, col := range s.cols {
		v, err := col.ValueAt(local)
		if err != nil {
			return nil, err
		}
		out[c] = v
	}
	return out, nil
}

// Rows materializes up to limit rows starting at offset. A limit of 0
// means all remaining rows. Only the segments overlapping the page are
// decoded, so early pages cost O(page + first segments), not O(table).
func (t *Table) Rows(offset, limit uint64) ([][]string, error) {
	if offset > t.nrows {
		offset = t.nrows
	}
	end := t.nrows
	// Compare limit against the remaining span instead of computing
	// offset+limit, which wraps for limits near MaxUint64.
	if limit > 0 && limit < end-offset {
		end = offset + limit
	}
	out := make([][]string, 0, end-offset)
	for i, s := range t.segs {
		segStart, segEnd := t.offsets[i], t.offsets[i]+s.nrows
		if segEnd <= offset {
			continue
		}
		if segStart >= end {
			break
		}
		lo, hi := max(offset, segStart)-segStart, min(end, segEnd)-segStart
		n := hi - lo
		rows := make([][]string, n)
		for r := range rows {
			rows[r] = make([]string, len(s.cols))
		}
		for c, col := range s.cols {
			ids := col.RowIDRange(lo, hi)
			for r := uint64(0); r < n; r++ {
				rows[r][c] = col.dict.Value(ids[r])
			}
		}
		out = append(out, rows...)
	}
	return out, nil
}

// SortedTuples materializes all rows and sorts them lexicographically,
// giving a canonical order-independent representation used by tests and
// verification.
func (t *Table) SortedTuples() [][]string {
	rows, err := t.Rows(0, 0)
	if err != nil {
		panic(err) // Rows(0,0) cannot fail on a valid table
	}
	sort.Slice(rows, func(a, b int) bool {
		for i := range rows[a] {
			if rows[a][i] != rows[b][i] {
				return rows[a][i] < rows[b][i]
			}
		}
		return false
	})
	return rows
}

// TupleMultiset returns a multiset fingerprint of all rows: joined tuple →
// occurrence count. Used to compare tables regardless of row order.
func (t *Table) TupleMultiset() map[string]int {
	rows, err := t.Rows(0, 0)
	if err != nil {
		panic(err)
	}
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[strings.Join(r, "\x00")]++
	}
	return out
}

// Validate checks the structural invariants of the table, its manifest
// and all segments.
func (t *Table) Validate() error {
	var total uint64
	for i, s := range t.segs {
		if err := sameSchema(t.schema, s); err != nil {
			return fmt.Errorf("colstore: table %q segment %d: %w", t.name, i, err)
		}
		if t.offsets[i] != total {
			return fmt.Errorf("colstore: table %q segment %d offset %d != %d", t.name, i, t.offsets[i], total)
		}
		if len(t.segs) > 1 && s.nrows == 0 {
			return fmt.Errorf("colstore: table %q segment %d is empty", t.name, i)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("colstore: table %q: %w", t.name, err)
		}
		total += s.nrows
	}
	if total != t.nrows {
		return fmt.Errorf("colstore: table %q segments cover %d rows, manifest says %d", t.name, total, t.nrows)
	}
	return nil
}

// ValidateKey verifies that the declared key is actually unique across
// all segments. Cost is one pass over the key columns.
func (t *Table) ValidateKey() error {
	if len(t.key) == 0 {
		return nil
	}
	seen := make(map[string]bool, t.nrows)
	var sb strings.Builder
	for si, s := range t.segs {
		ids := make([][]uint32, len(t.key))
		cols := make([]*Column, len(t.key))
		for i, k := range t.key {
			c, err := s.Column(k)
			if err != nil {
				return err
			}
			cols[i] = c
			ids[i] = c.RowIDs()
		}
		for r := uint64(0); r < s.nrows; r++ {
			sb.Reset()
			for i := range ids {
				sb.WriteString(cols[i].dict.Value(ids[i][r]))
				sb.WriteByte(0)
			}
			k := sb.String()
			if seen[k] {
				return fmt.Errorf("colstore: table %q key %v violated at row %d", t.name, t.key, t.offsets[si]+r)
			}
			seen[k] = true
		}
	}
	return nil
}

// Stats summarizes the table's physical footprint. DistinctTotal counts
// per-segment dictionary entries, so a value present in k segments counts
// k times.
type Stats struct {
	Rows            uint64
	Columns         int
	Segments        int
	DistinctTotal   int
	CompressedBytes uint64
}

// Stats returns storage statistics for the table.
func (t *Table) Stats() Stats {
	s := Stats{Rows: t.nrows, Columns: len(t.schema), Segments: len(t.segs)}
	for _, seg := range t.segs {
		for _, c := range seg.cols {
			s.DistinctTotal += c.DistinctCount()
			s.CompressedBytes += c.CompressedSizeBytes()
		}
	}
	return s
}

func (t *Table) String() string {
	return fmt.Sprintf("Table %s(%s) rows=%d segs=%d key=%v", t.name, strings.Join(t.ColumnNames(), ", "), t.nrows, len(t.segs), t.key)
}

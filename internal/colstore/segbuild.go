package colstore

import (
	"fmt"

	"cods/internal/dict"
	"cods/internal/wah"
)

// RemapInto is the dictionary-remap kernel of segment-wise evolution: it
// interns every value of c's dictionary into target — the global
// dictionary-union step of a merge phase — and returns mapping with
// mapping[id] equal to the target id of c.Dict().Value(id). Re-keying the
// column's per-value WAH bitmaps under the merged dictionary is then pure
// pointer movement: each bitmap keeps its compressed runs verbatim and
// only its dictionary id changes, so no bitmap is ever decoded. Cost is
// O(local distinct values), independent of row count.
func (c *Column) RemapInto(target *dict.Dict) []uint32 {
	mapping := make([]uint32, c.dict.Len())
	for id := 0; id < c.dict.Len(); id++ {
		mapping[id] = target.Intern(c.dict.Value(uint32(id)))
	}
	return mapping
}

// SegmentBuilder assembles one output segment of a segment-wise evolution
// operator: the map phase of DECOMPOSE/MERGE/PARTITION produces one output
// segment per input segment, and each is put together here — either by
// sharing an input column verbatim (zero copy) or from freshly filtered
// per-value bitmaps. Slots follow the output schema order given at
// construction; Finish refuses to seal until every slot is filled and all
// columns agree on the row count.
type SegmentBuilder struct {
	schema []string
	cols   []*Column
}

// NewSegmentBuilder returns a builder for a segment with the given output
// schema (column names in order).
func NewSegmentBuilder(schema []string) *SegmentBuilder {
	return &SegmentBuilder{schema: append([]string(nil), schema...), cols: make([]*Column, len(schema))}
}

// SetShared fills schema slot i with an existing immutable column, sharing
// its dictionary and bitmaps. The column's name must match the slot.
func (sb *SegmentBuilder) SetShared(i int, c *Column) error {
	if i < 0 || i >= len(sb.cols) {
		return fmt.Errorf("colstore: segment builder has no slot %d", i)
	}
	if c.Name() != sb.schema[i] {
		return fmt.Errorf("colstore: column %q in slot %d, expected %q", c.Name(), i, sb.schema[i])
	}
	sb.cols[i] = c
	return nil
}

// SetFromBitmaps fills schema slot i from per-value bitmaps, dropping
// values whose bitmaps are nil or empty (values that did not survive the
// operator in this segment).
func (sb *SegmentBuilder) SetFromBitmaps(i int, values []string, bitmaps []*wah.Bitmap, nrows uint64) error {
	if i < 0 || i >= len(sb.cols) {
		return fmt.Errorf("colstore: segment builder has no slot %d", i)
	}
	c, err := NewColumnFromBitmaps(sb.schema[i], values, bitmaps, nrows)
	if err != nil {
		return err
	}
	sb.cols[i] = c
	return nil
}

// Finish seals the builder into an immutable Segment.
func (sb *SegmentBuilder) Finish() (*Segment, error) {
	for i, c := range sb.cols {
		if c == nil {
			return nil, fmt.Errorf("colstore: segment builder slot %d (%q) never filled", i, sb.schema[i])
		}
	}
	return NewSegment(sb.cols)
}

package colstore

import (
	"fmt"

	"cods/internal/dict"
	"cods/internal/par"
	"cods/internal/wah"
)

// A Segment is one immutable horizontal slice of a table: a contiguous run
// of rows with its own per-column dictionaries and WAH bitmaps. Tables are
// ordered lists of segments (see Table); sealing an overlay's appended
// tail into a fresh small segment is what makes flush cost O(tail) instead
// of O(table), and a tiered merge policy keeps the segment count
// logarithmic so reads stay cheap.
//
// Like Column, a Segment is immutable after construction (enforced by
// codslint) and freely shared between table versions.
//
// cods:immutable
type Segment struct {
	cols   []*Column
	byName map[string]int
	nrows  uint64
}

// NewSegment assembles a segment from finished columns. All columns must
// have the same row count and distinct names.
func NewSegment(cols []*Column) (*Segment, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("colstore: segment needs at least one column")
	}
	s := &Segment{cols: cols, byName: make(map[string]int, len(cols)), nrows: cols[0].NumRows()}
	for i, c := range cols {
		if c.NumRows() != s.nrows {
			return nil, fmt.Errorf("colstore: segment column %q has %d rows, expected %d", c.Name(), c.NumRows(), s.nrows)
		}
		if _, dup := s.byName[c.Name()]; dup {
			return nil, fmt.Errorf("colstore: segment has duplicate column %q", c.Name())
		}
		s.byName[c.Name()] = i
	}
	return s, nil
}

// emptySegment builds a zero-row segment with the given schema, the
// normal form of a table with no rows.
func emptySegment(schema []string) *Segment {
	cols := make([]*Column, len(schema))
	for i, n := range schema {
		cols[i] = NewColumnFromValues(n, nil)
	}
	s, err := NewSegment(cols)
	if err != nil {
		panic(err) // distinct names guaranteed by the caller's schema
	}
	return s
}

// NumRows returns the number of rows the segment covers.
func (s *Segment) NumRows() uint64 { return s.nrows }

// NumColumns returns the number of columns.
func (s *Segment) NumColumns() int { return len(s.cols) }

// ColumnAt returns the column at schema position i.
func (s *Segment) ColumnAt(i int) *Column { return s.cols[i] }

// Column returns the named column.
func (s *Segment) Column(name string) (*Column, error) {
	if i, ok := s.byName[name]; ok {
		return s.cols[i], nil
	}
	return nil, fmt.Errorf("colstore: segment has no column %q", name)
}

// ColumnNames returns the column names in schema order.
func (s *Segment) ColumnNames() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name()
	}
	return names
}

// Validate checks the segment's structural invariants.
func (s *Segment) Validate() error {
	for _, c := range s.cols {
		if c.NumRows() != s.nrows {
			return fmt.Errorf("colstore: segment column %q row count %d != %d", c.Name(), c.NumRows(), s.nrows)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// project returns a segment holding the columns at the given schema
// positions, sharing their data.
func (s *Segment) project(indices []int) *Segment {
	cols := make([]*Column, len(indices))
	for i, idx := range indices {
		cols[i] = s.cols[idx]
	}
	ns, err := NewSegment(cols)
	if err != nil {
		panic(err) // projections of a valid segment cannot collide
	}
	return ns
}

// withColumn returns a segment with the column at schema position idx
// replaced (idx == len(cols) appends).
func (s *Segment) withColumn(idx int, col *Column) (*Segment, error) {
	cols := make([]*Column, 0, len(s.cols)+1)
	cols = append(cols, s.cols...)
	if idx == len(cols) {
		cols = append(cols, col)
	} else {
		cols[idx] = col
	}
	return NewSegment(cols)
}

// withoutColumn returns a segment with the column at schema position idx
// removed.
func (s *Segment) withoutColumn(idx int) (*Segment, error) {
	cols := make([]*Column, 0, len(s.cols)-1)
	cols = append(cols, s.cols[:idx]...)
	cols = append(cols, s.cols[idx+1:]...)
	return NewSegment(cols)
}

// Filter returns a segment containing only the rows selected by mask,
// which must be segment-local: its length may not exceed the segment's
// row count (missing trailing bits read as zero). This is the primitive
// an overlay flush uses to apply deletions to exactly the segments they
// hit, leaving every other segment shared untouched.
func (s *Segment) Filter(mask *wah.Bitmap, parallelism int) (*Segment, error) {
	if mask.Len() > s.nrows {
		return nil, fmt.Errorf("colstore: mask has %d bits, segment has %d rows", mask.Len(), s.nrows)
	}
	return s.filterP(mask, parallelism)
}

// filterP returns a segment containing only the rows selected by mask,
// which must be segment-local (length <= s.nrows). The per-distinct-value
// bitmap filtering fans out over a worker pool.
func (s *Segment) filterP(mask *wah.Bitmap, parallelism int) (*Segment, error) {
	positions := mask.AppendPositionsTo(make([]uint64, 0, mask.Count()))
	nrows := uint64(len(positions))
	cols := make([]*Column, len(s.cols))
	for i, c := range s.cols {
		bc := c.ToBitmapEncoding()
		values := make([]string, bc.DistinctCount())
		bitmaps := make([]*wah.Bitmap, bc.DistinctCount())
		par.ForEachIndexed(bc.DistinctCount(), parallelism, func(id int) {
			values[id] = bc.dict.Value(uint32(id))
			bitmaps[id] = wah.FilterPositions(bc.bitmaps[id], positions)
		})
		nc, err := NewColumnFromBitmaps(c.Name(), values, bitmaps, nrows)
		if err != nil {
			return nil, err
		}
		cols[i] = nc
	}
	return NewSegment(cols)
}

// sliceColumn re-bases the rows [start, end) of a full-table column as a
// standalone column: each value's bitmap is sliced to the window and
// values absent from it are dropped from the dictionary. Used to split a
// newly built whole-table column (e.g. ADD COLUMN's filler) along the
// existing segment boundaries.
func sliceColumn(c *Column, start, end uint64) *Column {
	bc := c.ToBitmapEncoding()
	n := end - start
	d := dict.New()
	var bitmaps []*wah.Bitmap
	for id, bm := range bc.bitmaps {
		part := bm.Slice(start, end)
		if !part.Any() {
			continue
		}
		part.Extend(n)
		d.Intern(bc.dict.Value(uint32(id)))
		bitmaps = append(bitmaps, part)
	}
	return &Column{name: c.name, enc: EncodingBitmap, dict: d, bitmaps: bitmaps, nrows: n}
}

// mergeColumn builds the single column at schema position ci spanning
// segs in order: the merged dictionary lists values in first-seen row
// order and each value's bitmap is the offset concatenation of its
// per-segment bitmaps. This is both the tiered-merge kernel and the lazy
// "stitch" behind Table.Column on a multi-segment table — identical by
// construction, which is what lets a merge replace segments without
// changing any whole-table observation.
func mergeColumn(segs []*Segment, ci int, nrows uint64) *Column {
	if len(segs) == 1 {
		return segs[0].cols[ci]
	}
	d := dict.New()
	var bitmaps []*wah.Bitmap
	var off uint64
	for _, s := range segs {
		bc := s.cols[ci].ToBitmapEncoding()
		mapping := bc.RemapInto(d)
		for int(d.Len()) > len(bitmaps) {
			bitmaps = append(bitmaps, wah.New())
		}
		for id, bm := range bc.bitmaps {
			dst := bitmaps[mapping[id]]
			dst.Extend(off)
			dst.Concat(bm)
		}
		off += s.nrows
	}
	for _, bm := range bitmaps {
		bm.Extend(nrows)
	}
	return &Column{name: segs[0].cols[ci].name, enc: EncodingBitmap, dict: d, bitmaps: bitmaps, nrows: nrows}
}

// MergeSegments merges a run of schema-identical segments into one, the
// column builds fanned out over a worker pool. Row order is preserved, so
// replacing the run with the result leaves every whole-table observation
// unchanged.
func MergeSegments(segs []*Segment, parallelism int) (*Segment, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("colstore: MergeSegments needs at least one segment")
	}
	if len(segs) == 1 {
		return segs[0], nil
	}
	schema := segs[0].ColumnNames()
	for _, s := range segs[1:] {
		if err := sameSchema(schema, s); err != nil {
			return nil, err
		}
	}
	var nrows uint64
	for _, s := range segs {
		nrows += s.nrows
	}
	cols := make([]*Column, len(schema))
	par.ForEachIndexed(len(schema), parallelism, func(ci int) {
		cols[ci] = mergeColumn(segs, ci, nrows)
	})
	return NewSegment(cols)
}

// sameSchema verifies s's column names equal schema in order.
func sameSchema(schema []string, s *Segment) error {
	if len(s.cols) != len(schema) {
		return fmt.Errorf("colstore: segment has %d columns, expected %d", len(s.cols), len(schema))
	}
	for i, n := range schema {
		if s.cols[i].Name() != n {
			return fmt.Errorf("colstore: segment column %d is %q, expected %q", i, s.cols[i].Name(), n)
		}
	}
	return nil
}

// MergeTailPlan decides which tail run of segments a tiered merge should
// fold together, given the per-segment row counts and the size ratio: it
// returns the smallest start index such that merging [start, len) restores
// the invariant rows[i] > ratio·(rows after i) for every remaining
// boundary, or len(rows) when the invariant already holds. Segment sizes
// then grow geometrically, so a table holds O(log n) segments and each row
// is rewritten O(log n) times over its life — the amortization that keeps
// sustained per-statement write cost flat in the table size.
func MergeTailPlan(rows []uint64, ratio int) int {
	n := len(rows)
	if n < 2 {
		return n
	}
	if ratio < 1 {
		ratio = 1
	}
	start := n - 1
	sum := rows[n-1]
	for start > 0 && rows[start-1] <= uint64(ratio)*sum {
		start--
		sum += rows[start]
	}
	if start == n-1 {
		return n
	}
	return start
}

// Package colstore implements the bitmap-indexed column store that CODS
// operates on. Each column is stored as a value dictionary plus one
// WAH-compressed bitmap per distinct value — the paper's v×r bitmap matrix
// (§2.2).
//
// A Table is an ordered list of immutable segments behind a manifest.
// Each Segment is a horizontal row slice holding its own columns (own
// dictionaries, own bitmaps); the manifest's running row offsets stitch
// the segments into one logical row space, and every read primitive
// (paging, point/scan bitmaps, filtered copies, stitched column views)
// crosses segment boundaries transparently. The split exists for the
// write path: sealing an appended tail into a new segment is O(tail)
// regardless of table size, where a monolithic rebuild would be
// O(table). MergeTailPlan/CompactSegments implement the tiered merge
// policy that keeps the segment count logarithmic in return.
//
// Columns and segments are immutable once constructed. Schema evolution
// never mutates them in place; it either reuses the objects in a new
// table (Property 1 of §2.4: the unchanged decomposition output is
// created "right away using the existing columns ... without any data
// operation") or builds new ones from compressed inputs.
//
// Two primitives serve the segment-wise evolution path (internal/evolve):
// Column.RemapInto interns one segment's dictionary into a shared union
// dictionary and returns the local-id → union-id mapping, so per-value
// WAH bitmaps can be re-keyed under a global dictionary without being
// decoded (the same kernel the lazy whole-table stitch uses); and
// SegmentBuilder assembles an output segment column by column, sharing
// input columns by pointer where an operator reuses them and accepting
// freshly filtered bitmaps where it does not.
package colstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cods/internal/dict"
	"cods/internal/par"
	"cods/internal/rle"
	"cods/internal/wah"
)

// Encoding identifies the physical representation of a column.
type Encoding int

const (
	// EncodingBitmap stores one WAH bitmap per distinct value. It is the
	// universal encoding used by all evolution algorithms.
	EncodingBitmap Encoding = iota
	// EncodingRLE stores the column as run-length-encoded value ids,
	// appropriate for sorted columns (§2.2).
	EncodingRLE
)

func (e Encoding) String() string {
	switch e {
	case EncodingBitmap:
		return "bitmap"
	case EncodingRLE:
		return "rle"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// Column is one attribute of a table. Immutable after construction
// (enforced by codslint).
//
// cods:immutable
type Column struct {
	name    string
	enc     Encoding
	dict    *dict.Dict
	bitmaps []*wah.Bitmap // EncodingBitmap: indexed by value id
	runs    *rle.Column   // EncodingRLE
	nrows   uint64
}

// Name returns the column's attribute name.
func (c *Column) Name() string { return c.name }

// Encoding returns the physical encoding.
func (c *Column) Encoding() Encoding { return c.enc }

// NumRows returns the number of rows the column covers.
func (c *Column) NumRows() uint64 { return c.nrows }

// DistinctCount returns the number of distinct values.
func (c *Column) DistinctCount() int { return c.dict.Len() }

// Dict returns the column's dictionary. Callers must treat it as
// read-only.
func (c *Column) Dict() *dict.Dict { return c.dict }

// Renamed returns a column identical to c but with a new attribute name.
// The underlying data is shared, which makes RENAME COLUMN a metadata-only
// operation.
func (c *Column) Renamed(name string) *Column {
	cc := *c
	cc.name = name
	return &cc
}

// BitmapForID returns the bitmap of the value with the given dictionary
// id. The column must use EncodingBitmap. The returned bitmap is shared;
// callers must not mutate it.
func (c *Column) BitmapForID(id uint32) *wah.Bitmap {
	return c.bitmaps[id]
}

// BitmapFor returns the bitmap of rows holding the given value, or an
// all-zeros bitmap when the value does not occur. The column must use
// EncodingBitmap.
func (c *Column) BitmapFor(value string) *wah.Bitmap {
	if id := c.dict.Lookup(value); id != dict.NoID {
		return c.bitmaps[id]
	}
	empty := wah.New()
	empty.Extend(c.nrows)
	return empty
}

// RowIDs materializes the column into a row-wise value-id slice. This is a
// decompression step: evolution algorithms use it only where the paper's
// algorithms require row-order access (sequential scans in mergence), never
// to rebuild indexes.
func (c *Column) RowIDs() []uint32 {
	out := make([]uint32, c.nrows)
	switch c.enc {
	case EncodingBitmap:
		for id, bm := range c.bitmaps {
			id32 := uint32(id)
			bm.Ones(func(p uint64) bool {
				out[p] = id32
				return true
			})
		}
	case EncodingRLE:
		out = c.runs.AppendIDsTo(out[:0])
	}
	return out
}

// RowIDRange materializes value ids for the rows [start, end) only, the
// page-sized counterpart of RowIDs: the allocation is proportional to the
// page, and decoding stops at end instead of walking every set bit, so
// early pages over a big table cost O(end), not O(table). Bitmap columns
// still scan compressed words from row 0 up to end (WAH has no
// position index to seek by), so a page deep in the table costs O(end)
// per column; RLE columns skip whole runs before start.
func (c *Column) RowIDRange(start, end uint64) []uint32 {
	if end > c.nrows {
		end = c.nrows
	}
	if start >= end {
		return nil
	}
	out := make([]uint32, end-start)
	switch c.enc {
	case EncodingBitmap:
		for id, bm := range c.bitmaps {
			id32 := uint32(id)
			bm.Ones(func(p uint64) bool {
				if p >= end {
					return false
				}
				if p >= start {
					out[p-start] = id32
				}
				return true
			})
		}
	case EncodingRLE:
		var pos uint64
		for _, r := range c.runs.Runs() {
			runEnd := pos + r.Count
			if runEnd > start {
				lo, hi := max(pos, start), min(runEnd, end)
				for p := lo; p < hi; p++ {
					out[p-start] = r.ID
				}
			}
			pos = runEnd
			if pos >= end {
				break
			}
		}
	}
	return out
}

// ValueAt returns the value stored at the given row. Cost is O(distinct ·
// words) for bitmap columns; intended for display and tests, not bulk
// access (use RowIDs).
func (c *Column) ValueAt(row uint64) (string, error) {
	if row >= c.nrows {
		return "", fmt.Errorf("colstore: row %d out of range in column %q (%d rows)", row, c.name, c.nrows)
	}
	switch c.enc {
	case EncodingBitmap:
		for id, bm := range c.bitmaps {
			if bm.Get(row) {
				return c.dict.Value(uint32(id)), nil
			}
		}
		return "", fmt.Errorf("colstore: column %q has no value at row %d", c.name, row)
	case EncodingRLE:
		id, err := c.runs.Get(row)
		if err != nil {
			return "", err
		}
		return c.dict.Value(id), nil
	}
	return "", fmt.Errorf("colstore: unknown encoding %v", c.enc)
}

// EqScan returns the bitmap of rows where the column equals value.
func (c *Column) EqScan(value string) *wah.Bitmap {
	switch c.enc {
	case EncodingBitmap:
		bm := c.BitmapFor(value).Clone()
		bm.Extend(c.nrows)
		return bm
	case EncodingRLE:
		id := c.dict.Lookup(value)
		out := wah.New()
		var pos uint64
		for _, r := range c.runs.Runs() {
			if r.ID == id {
				out.Extend(pos)
				out.AppendRun(1, r.Count)
			}
			pos += r.Count
		}
		out.Extend(c.nrows)
		return out
	}
	panic("colstore: unknown encoding")
}

// ScanWhere returns the bitmap of rows whose value satisfies pred. The
// predicate is evaluated once per distinct value, not per row — the
// bitmap-index advantage.
func (c *Column) ScanWhere(pred func(value string) bool) *wah.Bitmap {
	return c.ScanWhereP(pred, 1)
}

// ScanWhereP is ScanWhere with bounded parallelism across distinct values:
// the per-value predicate calls fan out over a worker pool and the selected
// bitmaps are OR-accumulated with a parallel tree merge. pred must be safe
// for concurrent calls; parallelism <= 0 means GOMAXPROCS.
func (c *Column) ScanWhereP(pred func(value string) bool, parallelism int) *wah.Bitmap {
	switch c.enc {
	case EncodingBitmap:
		match := make([]bool, len(c.bitmaps))
		par.ForEachIndexed(len(c.bitmaps), parallelism, func(id int) {
			match[id] = pred(c.dict.Value(uint32(id)))
		})
		var selected []*wah.Bitmap
		for id, m := range match {
			if m {
				selected = append(selected, c.bitmaps[id])
			}
		}
		out := wah.OrAllP(selected, parallelism)
		out.Extend(c.nrows)
		return out
	case EncodingRLE:
		// The per-value predicate map fans out; the run scan that follows
		// is inherently sequential (appends must be in row order).
		match := make([]bool, c.dict.Len())
		par.ForEachIndexed(c.dict.Len(), parallelism, func(id int) {
			match[id] = pred(c.dict.Value(uint32(id)))
		})
		out := wah.New()
		for _, r := range c.runs.Runs() {
			if match[r.ID] {
				out.AppendRun(1, r.Count)
			} else {
				out.AppendRun(0, r.Count)
			}
		}
		return out
	}
	panic("colstore: unknown encoding")
}

// Validate checks the column's structural invariants: every row has
// exactly one value (per-value bitmaps are disjoint and complete) and the
// dictionary matches the bitmap set.
func (c *Column) Validate() error {
	switch c.enc {
	case EncodingBitmap:
		if len(c.bitmaps) != c.dict.Len() {
			return fmt.Errorf("colstore: column %q has %d bitmaps for %d dictionary entries", c.name, len(c.bitmaps), c.dict.Len())
		}
		var total uint64
		for id, bm := range c.bitmaps {
			if err := bm.Validate(); err != nil {
				return fmt.Errorf("colstore: column %q value %d: %w", c.name, id, err)
			}
			if bm.Len() > c.nrows {
				return fmt.Errorf("colstore: column %q value %d bitmap longer than table (%d > %d)", c.name, id, bm.Len(), c.nrows)
			}
			total += bm.Count()
		}
		if total != c.nrows {
			return fmt.Errorf("colstore: column %q bitmaps cover %d rows, table has %d", c.name, total, c.nrows)
		}
		// Disjointness: pairwise ANDs would be quadratic; OR counting is
		// equivalent given the total matches.
		all := make([]*wah.Bitmap, len(c.bitmaps))
		copy(all, c.bitmaps)
		if got := wah.OrAll(all).Count(); got != c.nrows {
			return fmt.Errorf("colstore: column %q bitmaps overlap (union %d != %d rows)", c.name, got, c.nrows)
		}
		return nil
	case EncodingRLE:
		if c.runs.Len() != c.nrows {
			return fmt.Errorf("colstore: column %q RLE covers %d rows, table has %d", c.name, c.runs.Len(), c.nrows)
		}
		for _, r := range c.runs.Runs() {
			if int(r.ID) >= c.dict.Len() {
				return fmt.Errorf("colstore: column %q RLE references id %d beyond dictionary (%d)", c.name, r.ID, c.dict.Len())
			}
		}
		return nil
	}
	return fmt.Errorf("colstore: unknown encoding %v", c.enc)
}

// CompressedSizeBytes returns the approximate storage footprint of the
// column's compressed data (bitmaps or runs, excluding the dictionary).
func (c *Column) CompressedSizeBytes() uint64 {
	switch c.enc {
	case EncodingBitmap:
		var total uint64
		for _, bm := range c.bitmaps {
			total += bm.SizeBytes()
		}
		return total
	case EncodingRLE:
		return uint64(c.runs.NumRuns()) * 12
	}
	return 0
}

// ToBitmapEncoding returns a bitmap-encoded equivalent of the column. For
// columns already bitmap-encoded it returns the receiver.
func (c *Column) ToBitmapEncoding() *Column {
	if c.enc == EncodingBitmap {
		return c
	}
	bitmaps := make([]*wah.Bitmap, c.dict.Len())
	for i := range bitmaps {
		bitmaps[i] = wah.New()
	}
	var pos uint64
	for _, r := range c.runs.Runs() {
		bm := bitmaps[r.ID]
		bm.Extend(pos)
		bm.AppendRun(1, r.Count)
		pos += r.Count
	}
	for _, bm := range bitmaps {
		bm.Extend(c.nrows)
	}
	return &Column{name: c.name, enc: EncodingBitmap, dict: c.dict.Clone(), bitmaps: bitmaps, nrows: c.nrows}
}

// ToRLEEncoding returns an RLE-encoded equivalent of the column. Most
// effective when the column is sorted; correct regardless.
func (c *Column) ToRLEEncoding() *Column {
	if c.enc == EncodingRLE {
		return c
	}
	runs := rle.FromIDs(c.RowIDs())
	return &Column{name: c.name, enc: EncodingRLE, dict: c.dict.Clone(), runs: runs, nrows: c.nrows}
}

// RLERuns exposes the run column for RLE-encoded columns; nil otherwise.
func (c *Column) RLERuns() *rle.Column { return c.runs }

// CompareValues totally orders two column values: -1, 0 or 1 as a sorts
// before, equal to, or after b. Values that parse as 64-bit integers
// order numerically and before every non-integer value; non-integers
// order lexicographically. This is the one value order of the whole
// system — the predicate language (expr.Compare delegates here), ORDER
// BY, MIN/MAX and RangeScan all share it, so no two layers can disagree
// about which of two values is smaller. It lives in colstore because
// every higher layer already depends on this package.
func CompareValues(a, b string) int {
	ai, aerr := strconv.ParseInt(a, 10, 64)
	bi, berr := strconv.ParseInt(b, 10, 64)
	switch {
	case aerr == nil && berr == nil:
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	case aerr == nil:
		return -1
	case berr == nil:
		return 1
	}
	return strings.Compare(a, b)
}

// RangeScan returns the bitmap of rows whose value lies in [lo, hi]
// (inclusive bounds; an empty bound is unbounded on that side), under
// the CompareValues total order. Like all index scans, the predicate is
// decided once per distinct value; the row-level work is a compressed OR
// over the qualifying values' bitmaps.
func (c *Column) RangeScan(lo, hi string) *wah.Bitmap {
	ids := c.sortValues()
	// Binary-search the sorted value order for the qualifying id range.
	start := 0
	if lo != "" {
		start = sort.Search(len(ids), func(i int) bool { return CompareValues(c.dict.Value(ids[i]), lo) >= 0 })
	}
	end := len(ids)
	if hi != "" {
		end = sort.Search(len(ids), func(i int) bool { return CompareValues(c.dict.Value(ids[i]), hi) > 0 })
	}
	if start >= end {
		out := wah.New()
		out.Extend(c.nrows)
		return out
	}
	bc := c.ToBitmapEncoding()
	selected := make([]*wah.Bitmap, 0, end-start)
	for _, id := range ids[start:end] {
		selected = append(selected, bc.bitmaps[id])
	}
	out := wah.OrAll(selected)
	out.Extend(c.nrows)
	return out
}

// sortValues returns value ids in the CompareValues total order — the
// sorted order RangeScan's binary search requires. A sort predicate
// disagreeing with the search comparator (the old numeric-vs-lex split)
// would make the search non-monotonic on mixed values. Each value is
// parsed once up front, not once per comparison.
func (c *Column) sortValues() []uint32 {
	type key struct {
		isInt bool
		n     int64
	}
	keys := make([]key, c.dict.Len())
	for i := range keys {
		n, err := strconv.ParseInt(c.dict.Value(uint32(i)), 10, 64)
		keys[i] = key{err == nil, n}
	}
	ids := make([]uint32, c.dict.Len())
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ka, kb := keys[ids[a]], keys[ids[b]]
		switch {
		case ka.isInt && kb.isInt:
			return ka.n < kb.n
		case ka.isInt:
			return true
		case kb.isInt:
			return false
		}
		return c.dict.Value(ids[a]) < c.dict.Value(ids[b])
	})
	return ids
}

package colstore

import (
	"encoding/binary"
	"fmt"
	"io"

	"cods/internal/dict"
	"cods/internal/rle"
	"cods/internal/wah"
)

// columnMagic guards the column binary format.
var columnMagic = [8]byte{'C', 'O', 'D', 'S', 'C', 'O', 'L', '1'}

// WriteTo writes the column in its binary on-disk format:
//
//	[8]  magic "CODSCOL1"
//	u8   encoding (0 bitmap, 1 rle)
//	u64  row count
//	u32  name length, name bytes
//	dict (see dict.WriteTo)
//	bitmap encoding: u32 bitmap count, bitmaps (see wah.WriteTo)
//	rle encoding:    runs (see rle.WriteTo)
func (c *Column) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := w.Write(columnMagic[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	hdr := make([]byte, 0, 13+len(c.name))
	hdr = append(hdr, byte(c.enc))
	hdr = binary.LittleEndian.AppendUint64(hdr, c.nrows)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(c.name)))
	hdr = append(hdr, c.name...)
	n, err = w.Write(hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}
	m, err := c.dict.WriteTo(w)
	total += m
	if err != nil {
		return total, err
	}
	switch c.enc {
	case EncodingBitmap:
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(c.bitmaps)))
		n, err = w.Write(cnt[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, bm := range c.bitmaps {
			m, err = bm.WriteTo(w)
			total += m
			if err != nil {
				return total, err
			}
		}
	case EncodingRLE:
		m, err = c.runs.WriteTo(w)
		total += m
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadColumn reads a column written by WriteTo.
func ReadColumn(r io.Reader) (*Column, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("colstore: reading column magic: %w", err)
	}
	if magic != columnMagic {
		return nil, fmt.Errorf("colstore: bad column magic %q", magic[:])
	}
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("colstore: reading column header: %w", err)
	}
	enc := Encoding(hdr[0])
	nrows := binary.LittleEndian.Uint64(hdr[1:9])
	nameLen := binary.LittleEndian.Uint32(hdr[9:13])
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, fmt.Errorf("colstore: reading column name: %w", err)
	}
	d := dict.New()
	if _, err := d.ReadFrom(r); err != nil {
		return nil, err
	}
	c := &Column{name: string(nameBuf), enc: enc, dict: d, nrows: nrows}
	switch enc {
	case EncodingBitmap:
		var cnt [4]byte
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return nil, fmt.Errorf("colstore: reading bitmap count: %w", err)
		}
		nbm := binary.LittleEndian.Uint32(cnt[:])
		if int(nbm) != d.Len() {
			return nil, fmt.Errorf("colstore: column %q has %d bitmaps for %d values", c.name, nbm, d.Len())
		}
		c.bitmaps = make([]*wah.Bitmap, nbm)
		for i := range c.bitmaps {
			bm := wah.New()
			if _, err := bm.ReadFrom(r); err != nil {
				return nil, fmt.Errorf("colstore: column %q bitmap %d: %w", c.name, i, err)
			}
			c.bitmaps[i] = bm
		}
	case EncodingRLE:
		c.runs = &rle.Column{}
		if _, err := c.runs.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("colstore: column %q runs: %w", c.name, err)
		}
	default:
		return nil, fmt.Errorf("colstore: unknown encoding %d", enc)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Package workload generates the synthetic datasets of the paper's
// evaluation (§2.6): a table R(A, B, C) with a configurable number of rows
// and a controlled number of distinct values in the key attribute A, where
// C depends functionally on A (the paper's Employee → Address shape) and B
// is a per-row attribute (Skill). Figure 3 varies the distinct count from
// 100 to 1M at 10M rows.
package workload

import (
	"fmt"
	"math/rand"

	"cods/internal/colstore"
	"cods/internal/rowstore"
)

// Spec parameterizes a generated dataset.
type Spec struct {
	// Rows is the number of tuples in R (the paper uses 10M).
	Rows int
	// DistinctKeys is the number of distinct values of the key attribute
	// A (the Figure 3 x-axis: 100 … 1M).
	DistinctKeys int
	// DistinctB is the number of distinct values of the non-key, non-FD
	// attribute B. Zero means Rows/10 (many distinct skills).
	DistinctB int
	// DistinctC is the number of distinct values C can take; each key
	// maps deterministically to one of them. Zero means DistinctKeys/10+1.
	DistinctC int
	// ZipfS, when > 1, skews the key distribution with a Zipf law of that
	// parameter; 0 (or <=1) draws keys uniformly.
	ZipfS float64
	// Seed makes generation reproducible.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.DistinctB == 0 {
		s.DistinctB = s.Rows/10 + 1
	}
	if s.DistinctC == 0 {
		s.DistinctC = s.DistinctKeys/10 + 1
	}
	return s
}

func (s Spec) String() string {
	return fmt.Sprintf("rows=%d distinct=%d zipf=%.2f seed=%d", s.Rows, s.DistinctKeys, s.ZipfS, s.Seed)
}

// Columns of the generated table R.
var Columns = []string{"A", "B", "C"}

// generator draws rows of R reproducibly.
type generator struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf
	keys []string
	bs   []string
	cs   []string
	cOfA []int // key index -> C value index (the FD A→C)
}

func newGenerator(spec Spec) *generator {
	spec = spec.withDefaults()
	g := &generator{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
	if spec.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, spec.ZipfS, 1, uint64(spec.DistinctKeys-1))
	}
	g.keys = pool("k", spec.DistinctKeys)
	g.bs = pool("b", spec.DistinctB)
	g.cs = pool("c", spec.DistinctC)
	g.cOfA = make([]int, spec.DistinctKeys)
	for i := range g.cOfA {
		g.cOfA[i] = g.rng.Intn(spec.DistinctC)
	}
	return g
}

func pool(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%07d", prefix, i)
	}
	return out
}

func (g *generator) keyIndex() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(g.spec.DistinctKeys)
}

// row fills dst with the next generated tuple (A, B, C).
func (g *generator) row(dst []string) {
	k := g.keyIndex()
	dst[0] = g.keys[k]
	dst[1] = g.bs[g.rng.Intn(g.spec.DistinctB)]
	dst[2] = g.cs[g.cOfA[k]]
}

// ForEachRow invokes fn once per generated tuple. The slice is reused
// across calls; fn must copy it to retain it.
func ForEachRow(spec Spec, fn func(row []string) error) error {
	g := newGenerator(spec)
	row := make([]string, 3)
	for i := 0; i < g.spec.Rows; i++ {
		g.row(row)
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// BuildColstore generates R directly into a bitmap-indexed column-store
// table.
func BuildColstore(spec Spec, name string) (*colstore.Table, error) {
	tb, err := colstore.NewTableBuilder(name, Columns, []string{})
	if err != nil {
		return nil, err
	}
	if err := ForEachRow(spec, tb.AppendRow); err != nil {
		return nil, err
	}
	return tb.Finish()
}

// BuildRowstore generates R into a row-store table registered in db.
func BuildRowstore(spec Spec, db *rowstore.DB, name string, kind rowstore.StorageKind) (*rowstore.Table, error) {
	t, err := db.Create(name, Columns, kind)
	if err != nil {
		return nil, err
	}
	if err := ForEachRow(spec, t.Insert); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildColstoreST generates the mergence experiment's inputs as
// column-store tables: S(A, B) with all rows and T(A, C) with one row per
// distinct key actually drawn (Figure 3(b) merges them back into R).
func BuildColstoreST(spec Spec, nameS, nameT string) (*colstore.Table, *colstore.Table, error) {
	spec = spec.withDefaults()
	g := newGenerator(spec)
	sb, err := colstore.NewTableBuilder(nameS, []string{"A", "B"}, nil)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[int]bool, spec.DistinctKeys)
	var keyOrder []int
	row := make([]string, 3)
	for i := 0; i < spec.Rows; i++ {
		k := g.keyIndex()
		row[0] = g.keys[k]
		row[1] = g.bs[g.rng.Intn(spec.DistinctB)]
		if err := sb.AppendRow(row[:2]); err != nil {
			return nil, nil, err
		}
		if !seen[k] {
			seen[k] = true
			keyOrder = append(keyOrder, k)
		}
	}
	s, err := sb.Finish()
	if err != nil {
		return nil, nil, err
	}
	tb, err := colstore.NewTableBuilder(nameT, []string{"A", "C"}, []string{"A"})
	if err != nil {
		return nil, nil, err
	}
	for _, k := range keyOrder {
		if err := tb.AppendRow([]string{g.keys[k], g.cs[g.cOfA[k]]}); err != nil {
			return nil, nil, err
		}
	}
	t, err := tb.Finish()
	if err != nil {
		return nil, nil, err
	}
	return s, t, nil
}

// BuildRowstoreST generates the pair (S, T) as row-store tables in db.
func BuildRowstoreST(spec Spec, db *rowstore.DB, nameS, nameT string, kind rowstore.StorageKind) error {
	spec = spec.withDefaults()
	g := newGenerator(spec)
	s, err := db.Create(nameS, []string{"A", "B"}, kind)
	if err != nil {
		return err
	}
	seen := make(map[int]bool, spec.DistinctKeys)
	var keyOrder []int
	row := make([]string, 2)
	for i := 0; i < spec.Rows; i++ {
		k := g.keyIndex()
		row[0] = g.keys[k]
		row[1] = g.bs[g.rng.Intn(spec.DistinctB)]
		if err := s.Insert(row); err != nil {
			return err
		}
		if !seen[k] {
			seen[k] = true
			keyOrder = append(keyOrder, k)
		}
	}
	t, err := db.Create(nameT, []string{"A", "C"}, kind)
	if err != nil {
		return err
	}
	for _, k := range keyOrder {
		if err := t.Insert([]string{g.keys[k], g.cs[g.cOfA[k]]}); err != nil {
			return err
		}
	}
	return nil
}

// DMLGen streams the keyed DML mix of DML one statement at a time, so a
// duration-bounded driver (cmd/codsbench htap) needn't materialize the
// whole stream up front. keyPrefix is spliced into every inserted key
// ("n<prefix>0000042"), letting N concurrent workers share one table
// without their insert keys aliasing: each worker owns a disjoint key
// range, so its DELETEs only ever hit its own inserts.
type DMLGen struct {
	spec      Spec
	table     string
	keyPrefix string
	rng       *rand.Rand
	i         int
	inserted  int
}

// NewDMLGen returns a generator producing the same statement stream DML
// materializes (for an empty keyPrefix), seeded by spec.Seed.
func NewDMLGen(spec Spec, table, keyPrefix string) *DMLGen {
	spec = spec.withDefaults()
	return &DMLGen{
		spec:      spec,
		table:     table,
		keyPrefix: keyPrefix,
		rng:       rand.New(rand.NewSource(spec.Seed + 1)),
	}
}

// Next returns the next DML statement of the stream.
func (g *DMLGen) Next() string {
	i := g.i
	g.i++
	switch {
	case i%4 == 0 || i%4 == 2:
		stmt := fmt.Sprintf("INSERT INTO %s VALUES ('n%s%07d', 'b%07d', 'c%07d')",
			g.table, g.keyPrefix, g.inserted, g.rng.Intn(g.spec.DistinctB), g.rng.Intn(g.spec.DistinctC))
		g.inserted++
		return stmt
	case i%4 == 1:
		return fmt.Sprintf("UPDATE %s SET B = 'b%07d' WHERE A = 'k%07d'",
			g.table, g.rng.Intn(g.spec.DistinctB), g.rng.Intn(g.spec.DistinctKeys))
	default:
		return fmt.Sprintf("DELETE FROM %s WHERE A = 'n%s%07d'",
			g.table, g.keyPrefix, g.rng.Intn(g.inserted))
	}
}

// DML returns a reproducible stream of n DML statements against a table
// generated by BuildColstore (columns A, B, C): about half INSERTs of
// fresh rows under new keys (each new key maps to one C value, so the FD
// A→C keeps holding and decompositions stay lossless), a quarter UPDATEs
// of B on existing keys, and a quarter DELETEs of previously inserted
// keys (bounding net growth). Seeded by spec.Seed; the mixed-workload
// benchmark and tests replay the same stream.
func DML(spec Spec, table string, n int) []string {
	g := NewDMLGen(spec, table, "")
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Reads draws the read side of an HTAP workload against a table generated
// by BuildColstore: point-read predicates over the key attribute A with a
// zipfian key chooser (spec.ZipfS > 1 skews toward hot keys, matching the
// skew BuildColstore used to populate the table; otherwise uniform), and
// the GROUP-BY column for analytic scans. Seeded independently of the
// data generator so read traffic is reproducible per worker.
type Reads struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewReads returns a read generator over spec's key space, seeded by seed
// (one generator per worker, each with its own seed, keeps streams
// reproducible under concurrency).
func NewReads(spec Spec, seed int64) *Reads {
	spec = spec.withDefaults()
	r := &Reads{spec: spec, rng: rand.New(rand.NewSource(seed))}
	if spec.ZipfS > 1 {
		r.zipf = rand.NewZipf(r.rng, spec.ZipfS, 1, uint64(spec.DistinctKeys-1))
	}
	return r
}

// PointKey returns the key value of the next point read ("k0000042"),
// zipfian-skewed when the spec says so.
func (r *Reads) PointKey() string {
	k := 0
	if r.zipf != nil {
		k = int(r.zipf.Uint64())
	} else {
		k = r.rng.Intn(r.spec.DistinctKeys)
	}
	return fmt.Sprintf("k%07d", k)
}

// PointCondition returns the next point-read predicate over the key
// attribute, in the WHERE syntax Query/Count and POST /query accept.
func (r *Reads) PointCondition() string {
	return fmt.Sprintf("A = '%s'", r.PointKey())
}

// ScanColumn is the low-cardinality column analytic GROUP-BY scans group
// on (C carries the FD A→C, so its distinct count is DistinctC).
func ScanColumn() string { return "C" }

// EmployeeRows returns the seven tuples of the paper's Figure 1.
func EmployeeRows() [][]string {
	return [][]string{
		{"Jones", "Typing", "425 Grant Ave"},
		{"Jones", "Shorthand", "425 Grant Ave"},
		{"Roberts", "Light Cleaning", "747 Industrial Way"},
		{"Ellis", "Alchemy", "747 Industrial Way"},
		{"Jones", "Whittling", "425 Grant Ave"},
		{"Ellis", "Juggling", "747 Industrial Way"},
		{"Harrison", "Light Cleaning", "425 Grant Ave"},
	}
}

// EmployeeTable builds the paper's Figure 1 table R as a column-store
// table.
func EmployeeTable(name string) (*colstore.Table, error) {
	tb, err := colstore.NewTableBuilder(name, []string{"Employee", "Skill", "Address"}, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range EmployeeRows() {
		if err := tb.AppendRow(r); err != nil {
			return nil, err
		}
	}
	return tb.Finish()
}

package workload

import (
	"testing"

	"cods/internal/rowstore"
	"cods/internal/smo"
)

func TestForEachRowShape(t *testing.T) {
	spec := Spec{Rows: 1000, DistinctKeys: 20, Seed: 1}
	keys := make(map[string]bool)
	cOf := make(map[string]string)
	var n int
	err := ForEachRow(spec, func(row []string) error {
		if len(row) != 3 {
			t.Fatalf("row arity %d", len(row))
		}
		keys[row[0]] = true
		// The FD A -> C must hold.
		if prev, ok := cOf[row[0]]; ok && prev != row[2] {
			t.Fatalf("FD violated for key %s: %s vs %s", row[0], prev, row[2])
		}
		cOf[row[0]] = row[2]
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("rows=%d", n)
	}
	if len(keys) == 0 || len(keys) > 20 {
		t.Fatalf("distinct keys=%d", len(keys))
	}
}

func TestReproducibility(t *testing.T) {
	spec := Spec{Rows: 500, DistinctKeys: 50, Seed: 42}
	var a, b []string
	ForEachRow(spec, func(row []string) error {
		a = append(a, row[0]+row[1]+row[2])
		return nil
	})
	ForEachRow(spec, func(row []string) error {
		b = append(b, row[0]+row[1]+row[2])
		return nil
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs with same seed", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	uniform := Spec{Rows: 20000, DistinctKeys: 100, Seed: 3}
	skewed := Spec{Rows: 20000, DistinctKeys: 100, ZipfS: 1.5, Seed: 3}
	maxCount := func(spec Spec) int {
		counts := map[string]int{}
		ForEachRow(spec, func(row []string) error {
			counts[row[0]]++
			return nil
		})
		m := 0
		for _, c := range counts {
			if c > m {
				m = c
			}
		}
		return m
	}
	mu, ms := maxCount(uniform), maxCount(skewed)
	if ms <= mu*2 {
		t.Fatalf("zipf skew not visible: uniform max=%d, skewed max=%d", mu, ms)
	}
}

func TestBuildColstore(t *testing.T) {
	tab, err := BuildColstore(Spec{Rows: 2000, DistinctKeys: 30, Seed: 5}, "R")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2000 || tab.NumColumns() != 3 {
		t.Fatalf("shape: %v", tab)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	a, _ := tab.Column("A")
	if a.DistinctCount() > 30 {
		t.Fatalf("A distinct=%d", a.DistinctCount())
	}
}

func TestBuildRowstore(t *testing.T) {
	db := rowstore.NewDB()
	tab, err := BuildRowstore(Spec{Rows: 1500, DistinctKeys: 10, Seed: 6}, db, "R", rowstore.HeapStorage)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1500 {
		t.Fatalf("rows=%d", tab.NumRows())
	}
}

func TestBuildColstoreST(t *testing.T) {
	s, tt, err := BuildColstoreST(Spec{Rows: 3000, DistinctKeys: 40, Seed: 7}, "S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 3000 {
		t.Fatalf("S rows=%d", s.NumRows())
	}
	// T has one row per distinct key that appears in S.
	sa, _ := s.Column("A")
	if tt.NumRows() != uint64(sa.DistinctCount()) {
		t.Fatalf("T rows=%d, S distinct=%d", tt.NumRows(), sa.DistinctCount())
	}
	if err := tt.ValidateKey(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRowstoreST(t *testing.T) {
	db := rowstore.NewDB()
	if err := BuildRowstoreST(Spec{Rows: 1000, DistinctKeys: 15, Seed: 8}, db, "S", "T", rowstore.HeapStorage); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Get("S")
	tt, _ := db.Get("T")
	if s.NumRows() != 1000 {
		t.Fatalf("S rows=%d", s.NumRows())
	}
	// Every S key must be in T exactly once.
	keys := map[string]int{}
	tt.Scan(func(row []string) bool { keys[row[0]]++; return true })
	err := s.Scan(func(row []string) bool {
		if keys[row[0]] != 1 {
			t.Fatalf("key %q appears %d times in T", row[0], keys[row[0]])
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmployeeTable(t *testing.T) {
	tab, err := EmployeeTable("R")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 7 {
		t.Fatalf("rows=%d", tab.NumRows())
	}
}

// TestDMLStatementsParseAndPreserveFD: every generated statement must
// parse, and the insert stream must keep the FD A → C intact (so
// decomposing a DML'd table stays lossless).
func TestDMLStatementsParseAndPreserveFD(t *testing.T) {
	spec := Spec{Rows: 100, DistinctKeys: 10, Seed: 3}
	stmts := DML(spec, "R", 40)
	if len(stmts) != 40 {
		t.Fatalf("got %d statements, want 40", len(stmts))
	}
	kinds := map[string]int{}
	cOf := map[string]string{}
	for _, s := range stmts {
		op, err := smo.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		kinds[op.Kind()]++
		if ins, ok := op.(smo.Insert); ok {
			if len(ins.Values) != 3 {
				t.Fatalf("insert arity %d: %q", len(ins.Values), s)
			}
			if prev, seen := cOf[ins.Values[0]]; seen && prev != ins.Values[2] {
				t.Fatalf("FD violated for inserted key %s: %s vs %s", ins.Values[0], prev, ins.Values[2])
			}
			cOf[ins.Values[0]] = ins.Values[2]
		}
	}
	for _, k := range []string{"INSERT", "UPDATE", "DELETE"} {
		if kinds[k] == 0 {
			t.Fatalf("no %s statements in %v", k, kinds)
		}
	}
	// Reproducible.
	again := DML(spec, "R", 40)
	for i := range stmts {
		if stmts[i] != again[i] {
			t.Fatalf("statement %d differs across runs", i)
		}
	}
}

package smo

import (
	"fmt"
	"strconv"
	"strings"
)

// Select is the read-only query statement. Unlike the SMOs and DML it
// never mutates state — the engine rejects it from Apply/WAL replay and
// the facade routes it to the planner — but it shares the statement
// lifecycle (text syntax, Parse/String round trip) so queries travel
// the same text path as evolutions: the REPL, scripts, and the HTTP
// API speak one language.
//
//	SELECT <list> FROM t [JOIN u ON (k1, ...)]... [WHERE <cond>]
//	    [GROUP BY g] [ORDER BY c [ASC|DESC]] [LIMIT n]
//
// <list> is '*', a comma-separated column list, or a comma-separated
// aggregate list: count(*), count_distinct(c), min(c), max(c), sum(c),
// avg(c). Columns and aggregates cannot mix.
type Select struct {
	// Columns projects named columns; empty with no Aggs means '*'.
	Columns []string
	// Aggs computes aggregates instead of projecting columns.
	Aggs []SelectAgg
	// From is the probe-side root table.
	From string
	// Joins are inner joins applied in written order (the planner may
	// execute them in another order; written order fixes the schema).
	Joins []JoinClause
	// Where is a predicate in the PARTITION condition syntax.
	Where string
	// GroupBy groups by one column; requires Aggs.
	GroupBy string
	// OrderBy sorts by one output column.
	OrderBy string
	// Desc reverses the sort order.
	Desc bool
	// Limit caps the row count; 0 means no limit.
	Limit int
}

// JoinClause is one JOIN step of a Select.
type JoinClause struct {
	Table string
	// On lists the shared column names to match on (USING-style).
	On []string
}

// SelectAgg is one aggregate in a Select list. Func is the lower-case
// function name; Column is empty for count.
type SelectAgg struct {
	Func   string
	Column string
}

func (a SelectAgg) String() string {
	if a.Func == "count" {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Column)
}

// selectAggFuncs are the aggregate function names the parser accepts,
// matching colquery's aggregate set.
var selectAggFuncs = map[string]bool{
	"count": true, "count_distinct": true, "min": true, "max": true,
	"sum": true, "avg": true,
}

// Kind implements Op.
func (Select) Kind() string { return "SELECT" }

func (o Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case len(o.Aggs) > 0:
		for i, a := range o.Aggs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	case len(o.Columns) > 0:
		sb.WriteString(joinIdents(o.Columns))
	default:
		sb.WriteString("*")
	}
	fmt.Fprintf(&sb, " FROM %s", o.From)
	for _, j := range o.Joins {
		fmt.Fprintf(&sb, " JOIN %s ON (%s)", j.Table, joinIdents(j.On))
	}
	if o.Where != "" {
		sb.WriteString(" WHERE ")
		sb.WriteString(o.Where)
	}
	if o.GroupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(o.GroupBy)
	}
	if o.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(o.OrderBy)
		if o.Desc {
			sb.WriteString(" DESC")
		}
	}
	if o.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", o.Limit)
	}
	return sb.String()
}

// parseSelect parses the clauses after the SELECT keyword.
func (p *opParser) parseSelect() (Op, error) {
	op := Select{}
	if !p.keyword("*") {
		for {
			t, err := p.ident("column or aggregate")
			if err != nil {
				return nil, err
			}
			if p.keyword("(") {
				fn := strings.ToLower(t)
				if !selectAggFuncs[fn] {
					return nil, fmt.Errorf("unknown aggregate function %q", t)
				}
				agg := SelectAgg{Func: fn}
				if fn == "count" {
					if err := p.expectKeyword("*"); err != nil {
						return nil, err
					}
				} else if agg.Column, err = p.ident("aggregate column"); err != nil {
					return nil, err
				} else if agg.Column == "*" {
					return nil, fmt.Errorf("%s takes a column name, not '*'", fn)
				}
				if err := p.expectKeyword(")"); err != nil {
					return nil, err
				}
				op.Aggs = append(op.Aggs, agg)
			} else {
				if t == "*" {
					return nil, fmt.Errorf("'*' cannot appear in a column list")
				}
				op.Columns = append(op.Columns, t)
			}
			if !p.keyword(",") {
				break
			}
		}
		if len(op.Columns) > 0 && len(op.Aggs) > 0 {
			return nil, fmt.Errorf("cannot mix plain columns and aggregates in a select list")
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var err error
	if op.From, err = p.ident("table name"); err != nil {
		return nil, err
	}
	for p.keyword("JOIN") {
		j := JoinClause{}
		if j.Table, err = p.ident("table name"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if p.peek() == "(" {
			if j.On, err = p.identList(); err != nil {
				return nil, err
			}
		} else {
			on, err := p.ident("join column")
			if err != nil {
				return nil, err
			}
			j.On = []string{on}
		}
		op.Joins = append(op.Joins, j)
	}
	if p.keyword("WHERE") {
		if op.Where, err = p.conditionUntilAny("GROUP", "ORDER", "LIMIT"); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if op.GroupBy, err = p.ident("group column"); err != nil {
			return nil, err
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if op.OrderBy, err = p.ident("order column"); err != nil {
			return nil, err
		}
		if p.keyword("DESC") {
			op.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		tok, err := p.ident("row limit")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("expected a positive row limit, got %q", tok)
		}
		op.Limit = n
	}
	return p.end(op)
}

// conditionUntilAny consumes a predicate's tokens until one of the
// terminating keywords or the end of input, re-quoting string tokens
// for the expr parser. Unlike condition, reaching the end of input is
// fine — every terminator here begins an optional clause.
func (p *opParser) conditionUntilAny(untils ...string) (string, error) {
	var cond []string
	for {
		t := p.peek()
		if t == "" {
			break
		}
		stop := false
		for _, u := range untils {
			if strings.EqualFold(t, u) {
				stop = true
				break
			}
		}
		if stop {
			break
		}
		p.pos++
		if strings.HasPrefix(t, "\x01") {
			t = "'" + strings.ReplaceAll(t[1:], "'", "''") + "'"
		}
		cond = append(cond, t)
	}
	if len(cond) == 0 {
		return "", fmt.Errorf("expected condition")
	}
	return strings.Join(cond, " "), nil
}

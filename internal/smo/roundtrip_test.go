package smo

import (
	"reflect"
	"testing"
)

// Every operator must survive Parse(op.String()) unchanged: the
// write-ahead log persists operators as text and replays them through
// Parse, so String is a serialization format, not just display.
func TestOpStringRoundTrip(t *testing.T) {
	ops := []Op{
		CreateTable{Table: "r", Columns: []string{"a", "b"}},
		CreateTable{Table: "r", Columns: []string{"a"}, Key: []string{"a"}},
		DropTable{Table: "r"},
		RenameTable{From: "r", To: "s"},
		CopyTable{From: "r", To: "s"},
		UnionTables{A: "r", B: "s", Out: "u"},
		PartitionTable{Table: "r", Condition: "a = 'x' AND b != 'y''z'", OutYes: "p", OutNo: "q"},
		DecomposeTable{Table: "r", OutS: "s", SColumns: []string{"a", "b"}, OutT: "t2", TColumns: []string{"a", "c"}},
		MergeTables{A: "s", B: "t2", Out: "r"},
		AddColumn{Table: "r", Column: "c", Default: "plain"},
		AddColumn{Table: "r", Column: "c", Default: "it's quoted"},
		AddColumn{Table: "r", Column: "c", Default: ""},
		AddColumn{Table: "r", Column: "c", ValuesFile: "dir/o'brien.txt"},
		DropColumn{Table: "r", Column: "c"},
		RenameColumn{Table: "r", From: "a", To: "b"},
	}
	for _, op := range ops {
		text := op.String()
		back, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if !reflect.DeepEqual(back, op) {
			t.Errorf("round trip of %q: got %#v, want %#v", text, back, op)
		}
	}
}

package smo

import (
	"reflect"
	"testing"
)

// Every operator must survive Parse(op.String()) unchanged: the
// write-ahead log persists operators as text and replays them through
// Parse, so String is a serialization format, not just display.
//
// AllOps comes first: codslint's walreplay analyzer guarantees the
// registry names every Op implementation, so iterating it here means a
// new operator cannot be parseable from the WAL yet escape round-trip
// coverage. The literals after it exercise hostile values (quotes,
// separators, empty strings) beyond the registry's representatives.
func TestOpStringRoundTrip(t *testing.T) {
	ops := append(append([]Op{}, AllOps...),
		CreateTable{Table: "r", Columns: []string{"a", "b"}},
		CreateTable{Table: "r", Columns: []string{"a"}, Key: []string{"a"}},
		DropTable{Table: "r"},
		RenameTable{From: "r", To: "s"},
		CopyTable{From: "r", To: "s"},
		UnionTables{A: "r", B: "s", Out: "u"},
		PartitionTable{Table: "r", Condition: "a = 'x' AND b != 'y''z'", OutYes: "p", OutNo: "q"},
		DecomposeTable{Table: "r", OutS: "s", SColumns: []string{"a", "b"}, OutT: "t2", TColumns: []string{"a", "c"}},
		MergeTables{A: "s", B: "t2", Out: "r"},
		AddColumn{Table: "r", Column: "c", Default: "plain"},
		AddColumn{Table: "r", Column: "c", Default: "it's quoted"},
		AddColumn{Table: "r", Column: "c", Default: ""},
		AddColumn{Table: "r", Column: "c", ValuesFile: "dir/o'brien.txt"},
		DropColumn{Table: "r", Column: "c"},
		RenameColumn{Table: "r", From: "a", To: "b"},
		Insert{Table: "r", Values: []string{"x"}},
		Insert{Table: "r", Values: []string{"plain", "it's", "", "a;b", "line1\nline2"}},
		Delete{Table: "r"},
		Delete{Table: "r", Where: "a = 'x' AND b != 'y''z'"},
		Update{Table: "r", Column: "c", Value: "v", Where: "a < '10'"},
		Update{Table: "r", Column: "c", Value: "it's; fine\nhere"},
		Update{Table: "r", Column: "c", Value: ""},
		Prune{Keep: 0},
		Prune{Keep: 12},
	)
	for _, op := range ops {
		text := op.String()
		back, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if !reflect.DeepEqual(back, op) {
			t.Errorf("round trip of %q: got %#v, want %#v", text, back, op)
		}
	}
}

// Statement separators inside quoted literals must not split a script:
// ParseScript(op.String()) has to see exactly one statement, or the WAL
// (which replays text through Parse) and user scripts disagree about
// statement boundaries.
func TestParseScriptQuoteAwareSplitting(t *testing.T) {
	ops := []Op{
		AddColumn{Table: "t", Column: "c", Default: "a;b"},
		AddColumn{Table: "t", Column: "c", Default: "line1\nline2"},
		AddColumn{Table: "t", Column: "c", Default: "mix;of\nboth;x"},
		Insert{Table: "t", Values: []string{"a;b", "c\nd", "it's"}},
		Delete{Table: "t", Where: "a = 'x;y'"},
		Update{Table: "t", Column: "c", Value: "v;w\nz", Where: "a != 'p\nq'"},
	}
	for _, op := range ops {
		got, err := ParseScript(op.String())
		if err != nil {
			t.Errorf("ParseScript(%q): %v", op.String(), err)
			continue
		}
		if len(got) != 1 {
			t.Errorf("ParseScript(%q) split into %d statements, want 1", op.String(), len(got))
			continue
		}
		if !reflect.DeepEqual(got[0], op) {
			t.Errorf("script round trip of %q: got %#v, want %#v", op.String(), got[0], op)
		}
	}

	// Several statements with hostile literals in one script.
	script := "CREATE TABLE r (a)\nADD COLUMN c TO r DEFAULT 'x;y'; DROP COLUMN c FROM r\n" +
		"-- a comment; it isn't a statement\nADD COLUMN d TO r DEFAULT 'p\nq'"
	parsed, err := ParseScript(script)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	want := []Op{
		CreateTable{Table: "r", Columns: []string{"a"}},
		AddColumn{Table: "r", Column: "c", Default: "x;y"},
		DropColumn{Table: "r", Column: "c"},
		AddColumn{Table: "r", Column: "d", Default: "p\nq"},
	}
	if !reflect.DeepEqual(parsed, want) {
		t.Fatalf("script parsed to %#v, want %#v", parsed, want)
	}
}

// Package smo defines the Schema Modification Operators of the paper's
// Table 1 (after Curino et al.'s PRISM workbench), the DML statements
// (INSERT, DELETE, UPDATE) that mutate tuples under those evolving
// schemas, and a small text syntax for specifying them, used by the CODS
// platform CLI and the write-ahead log.
package smo

import (
	"fmt"
	"strings"
)

// Op is a schema modification operator. Implementations are plain data;
// execution lives in the engine (internal/core). Every implementer must
// appear in the engine's statement dispatch (WAL replay runs through it)
// and in AllOps; codslint's walreplay analyzer enforces both.
//
// cods:statement
type Op interface {
	// Kind returns the operator's Table 1 name, e.g. "DECOMPOSE TABLE".
	Kind() string
	// String renders the operator in the parseable text syntax.
	String() string
}

// AllOps holds one representative value of every Op implementation. The
// String/Parse round-trip test iterates it, so adding an operator here
// (codslint's walreplay analyzer fails the build on one that is missing)
// automatically puts its text syntax under test — an operator can never
// be parseable from the WAL yet uncovered.
//
// cods:stmt-registry
var AllOps = []Op{
	AddColumn{Table: "t", Column: "c", Default: "v"},
	CopyTable{From: "a", To: "b"},
	CreateTable{Table: "t", Columns: []string{"c"}},
	DecomposeTable{Table: "r", OutS: "s", SColumns: []string{"c"}, OutT: "t", TColumns: []string{"d"}},
	Delete{Table: "t"},
	DropColumn{Table: "t", Column: "c"},
	DropTable{Table: "t"},
	Insert{Table: "t", Values: []string{"v"}},
	MergeTables{A: "a", B: "b", Out: "c"},
	PartitionTable{Table: "t", Condition: "c = 'v'", OutYes: "y", OutNo: "n"},
	Prune{Keep: 1},
	RenameColumn{Table: "t", From: "a", To: "b"},
	RenameTable{From: "a", To: "b"},
	Select{From: "t"},
	UnionTables{A: "a", B: "b", Out: "c"},
	Update{Table: "t", Column: "c", Value: "v"},
}

// CreateTable creates a new empty table.
type CreateTable struct {
	Table   string
	Columns []string
	Key     []string
}

// Kind implements Op.
func (CreateTable) Kind() string { return "CREATE TABLE" }

func (o CreateTable) String() string {
	s := fmt.Sprintf("CREATE TABLE %s (%s)", o.Table, joinIdents(o.Columns))
	if len(o.Key) > 0 {
		s += fmt.Sprintf(" KEY (%s)", joinIdents(o.Key))
	}
	return s
}

// DropTable deletes a table and its data.
type DropTable struct{ Table string }

// Kind implements Op.
func (DropTable) Kind() string { return "DROP TABLE" }

func (o DropTable) String() string { return fmt.Sprintf("DROP TABLE %s", o.Table) }

// RenameTable renames a table, keeping its data unchanged.
type RenameTable struct{ From, To string }

// Kind implements Op.
func (RenameTable) Kind() string { return "RENAME TABLE" }

func (o RenameTable) String() string { return fmt.Sprintf("RENAME TABLE %s TO %s", o.From, o.To) }

// CopyTable creates a copy of an existing table.
type CopyTable struct{ From, To string }

// Kind implements Op.
func (CopyTable) Kind() string { return "COPY TABLE" }

func (o CopyTable) String() string { return fmt.Sprintf("COPY TABLE %s TO %s", o.From, o.To) }

// UnionTables combines the tuples of two same-schema tables into one,
// consuming the inputs.
type UnionTables struct{ A, B, Out string }

// Kind implements Op.
func (UnionTables) Kind() string { return "UNION TABLES" }

func (o UnionTables) String() string {
	return fmt.Sprintf("UNION TABLES %s, %s INTO %s", o.A, o.B, o.Out)
}

// PartitionTable splits a table's tuples into two same-schema tables by a
// condition, consuming the input.
type PartitionTable struct {
	Table     string
	Condition string
	OutYes    string
	OutNo     string
}

// Kind implements Op.
func (PartitionTable) Kind() string { return "PARTITION TABLE" }

func (o PartitionTable) String() string {
	return fmt.Sprintf("PARTITION TABLE %s WHERE %s INTO %s, %s", o.Table, o.Condition, o.OutYes, o.OutNo)
}

// DecomposeTable splits a table into two tables whose attributes union to
// the input's, consuming the input.
type DecomposeTable struct {
	Table    string
	OutS     string
	SColumns []string
	OutT     string
	TColumns []string
}

// Kind implements Op.
func (DecomposeTable) Kind() string { return "DECOMPOSE TABLE" }

func (o DecomposeTable) String() string {
	return fmt.Sprintf("DECOMPOSE TABLE %s INTO %s (%s), %s (%s)",
		o.Table, o.OutS, joinIdents(o.SColumns), o.OutT, joinIdents(o.TColumns))
}

// MergeTables joins two tables on their common attributes into a new
// table, consuming the inputs.
type MergeTables struct{ A, B, Out string }

// Kind implements Op.
func (MergeTables) Kind() string { return "MERGE TABLES" }

func (o MergeTables) String() string {
	return fmt.Sprintf("MERGE TABLES %s, %s INTO %s", o.A, o.B, o.Out)
}

// AddColumn creates a new column. Exactly one of Default or ValuesFile
// should be set; with neither, the empty string is the default value.
type AddColumn struct {
	Table   string
	Column  string
	Default string
	// ValuesFile names a file with one value per row to load the column
	// from ("load the data from user input", Table 1). Resolved by the
	// CLI layer.
	ValuesFile string
}

// Kind implements Op.
func (AddColumn) Kind() string { return "ADD COLUMN" }

func (o AddColumn) String() string {
	if o.ValuesFile != "" {
		return fmt.Sprintf("ADD COLUMN %s TO %s FROM %s", o.Column, o.Table, quoteLit(o.ValuesFile))
	}
	return fmt.Sprintf("ADD COLUMN %s TO %s DEFAULT %s", o.Column, o.Table, quoteLit(o.Default))
}

// DropColumn deletes a column and its data.
type DropColumn struct{ Table, Column string }

// Kind implements Op.
func (DropColumn) Kind() string { return "DROP COLUMN" }

func (o DropColumn) String() string { return fmt.Sprintf("DROP COLUMN %s FROM %s", o.Column, o.Table) }

// RenameColumn changes a column's name without changing data.
type RenameColumn struct{ Table, From, To string }

// Kind implements Op.
func (RenameColumn) Kind() string { return "RENAME COLUMN" }

func (o RenameColumn) String() string {
	return fmt.Sprintf("RENAME COLUMN %s TO %s IN %s", o.From, o.To, o.Table)
}

// Insert appends one row to a table. INSERT/DELETE/UPDATE are DML, not
// SMOs: they change a table's tuples, not its schema, and execute against
// the table's delta overlay (internal/delta) instead of running a data
// evolution. They live here because they share the operators' whole
// lifecycle — the text syntax, the Parse(op.String()) round trip, WAL
// journaling and replay, versioned catalog publication.
type Insert struct {
	Table string
	// Values holds the new row in schema order; arity is checked at
	// execution time against the live schema, not at parse time.
	Values []string
}

// Kind implements Op.
func (Insert) Kind() string { return "INSERT" }

func (o Insert) String() string {
	vals := make([]string, len(o.Values))
	for i, v := range o.Values {
		vals[i] = quoteLit(v)
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s)", o.Table, strings.Join(vals, ", "))
}

// Delete removes a table's rows matching a condition (every row when
// Where is empty). The schema is untouched.
type Delete struct {
	Table string
	// Where is a predicate in the PARTITION condition syntax; empty
	// deletes all rows.
	Where string
}

// Kind implements Op.
func (Delete) Kind() string { return "DELETE" }

func (o Delete) String() string {
	if o.Where == "" {
		return fmt.Sprintf("DELETE FROM %s", o.Table)
	}
	return fmt.Sprintf("DELETE FROM %s WHERE %s", o.Table, o.Where)
}

// Update sets one column to a literal value on the rows matching a
// condition (every row when Where is empty).
type Update struct {
	Table  string
	Column string
	Value  string
	// Where is a predicate in the PARTITION condition syntax; empty
	// updates all rows.
	Where string
}

// Kind implements Op.
func (Update) Kind() string { return "UPDATE" }

func (o Update) String() string {
	s := fmt.Sprintf("UPDATE %s SET %s = %s", o.Table, o.Column, quoteLit(o.Value))
	if o.Where != "" {
		s += " WHERE " + o.Where
	}
	return s
}

// Prune retires rollback snapshots, keeping the current schema version
// plus its Keep predecessors. Like the DML statements it is not an SMO —
// it changes no schema and no tuples, only how far back Rollback can
// reach — but it shares the statement lifecycle (text syntax, Parse
// round trip, WAL journaling) so operators can bound catalog memory from
// a script, the REPL, or the HTTP /exec endpoint.
type Prune struct {
	// Keep is how many previous versions stay rollback-able.
	Keep int
}

// Kind implements Op.
func (Prune) Kind() string { return "PRUNE" }

func (o Prune) String() string { return fmt.Sprintf("PRUNE KEEP %d", o.Keep) }

// IsDML reports whether op manipulates data (INSERT, DELETE, UPDATE)
// rather than schema. The engine uses it to route execution through the
// delta overlay and to skip created/dropped bookkeeping that only schema
// operators produce.
func IsDML(op Op) bool {
	switch op.(type) {
	case Insert, Delete, Update:
		return true
	}
	return false
}

// quoteLit renders a string literal in the parseable syntax, doubling
// embedded quotes, so every Op round-trips through Parse(op.String()) —
// the invariant the write-ahead log relies on.
func quoteLit(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func joinIdents(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += id
	}
	return out
}

package smo

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses one operator in the text syntax rendered by each Op's
// String method:
//
//	CREATE TABLE t (c1, c2, ...) [KEY (k1, ...)]
//	DROP TABLE t
//	RENAME TABLE old TO new
//	COPY TABLE src TO dst
//	UNION TABLES a, b INTO out
//	PARTITION TABLE t WHERE <condition> INTO yes, no
//	DECOMPOSE TABLE r INTO s (c1, ...), t (c1, ...)
//	MERGE TABLES a, b INTO out
//	ADD COLUMN c TO t DEFAULT 'v'
//	ADD COLUMN c TO t FROM 'file'
//	DROP COLUMN c FROM t
//	RENAME COLUMN old TO new IN t
//
// and the DML statements:
//
//	INSERT INTO t VALUES ('v1', 'v2', ...)
//	DELETE FROM t [WHERE <condition>]
//	UPDATE t SET c = 'v' [WHERE <condition>]
//
// plus the retention statement:
//
//	PRUNE KEEP n
//
// and the read-only query statement (executed by the planner, never by
// the engine — see the Select type):
//
//	SELECT <list> FROM t [JOIN u ON (k1, ...)]... [WHERE <condition>]
//	    [GROUP BY g] [ORDER BY c [ASC|DESC]] [LIMIT n]
//
// Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(input string) (Op, error) {
	p := &opParser{toks: lexOp(input), input: input}
	op, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("smo: parsing %q: %w: %w", input, ErrParse, err)
	}
	return op, nil
}

// ParseScript parses a sequence of operators, one per line or separated by
// semicolons. Blank lines and lines starting with "--" or "#" are
// comments. Separators inside single-quoted string literals are part of
// the literal, not statement boundaries — ADD COLUMN c TO t DEFAULT 'a;b'
// is one statement — so any op.String() is a valid one-statement script
// (the Parse(op.String()) round trip the WAL relies on).
func ParseScript(input string) ([]Op, error) {
	var ops []Op
	for _, stmt := range splitStatements(input) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || strings.HasPrefix(stmt, "--") || strings.HasPrefix(stmt, "#") {
			continue
		}
		op, err := Parse(stmt)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// splitStatements cuts a script at ';' and '\n' outside single-quoted
// strings. The ” quote escape needs no special casing: it reads as two
// quote toggles and the scanner is back outside the literal either way by
// its end. A comment segment ("--" or "#" after leading blanks) runs to
// its newline with quotes and semicolons inert, so an apostrophe in a
// comment cannot swallow the statements after it.
func splitStatements(input string) []string {
	var out []string
	for i := 0; ; {
		k := i
		for k < len(input) && (input[k] == ' ' || input[k] == '\t' || input[k] == '\r') {
			k++
		}
		comment := strings.HasPrefix(input[k:], "--") || strings.HasPrefix(input[k:], "#")
		j, inQuote := i, false
		for j < len(input) {
			c := input[j]
			if c == '\'' && !comment {
				inQuote = !inQuote
			}
			if c == '\n' && !inQuote || c == ';' && !inQuote && !comment {
				break
			}
			j++
		}
		out = append(out, input[i:j])
		if j >= len(input) {
			return out
		}
		i = j + 1
	}
}

type opParser struct {
	toks  []string
	pos   int
	input string
}

// lexOp splits into identifiers, quoted strings (kept with quotes
// stripped, marked by a \x01 prefix), and single punctuation tokens.
func lexOp(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(' || r == ')' || r == ',':
			toks = append(toks, string(r))
			i++
		case r == '\'':
			j := i + 1
			var sb strings.Builder
			sb.WriteByte(1)
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, sb.String())
			i = j + 1
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) && !strings.ContainsRune("(),'", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *opParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *opParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// keyword consumes the next token if it matches (case-insensitively).
func (p *opParser) keyword(kw string) bool {
	if strings.EqualFold(p.peek(), kw) {
		p.pos++
		return true
	}
	return false
}

func (p *opParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek())
	}
	return nil
}

func (p *opParser) ident(what string) (string, error) {
	t := p.next()
	// Identifiers must be bare words: a quoted token (\x01-marked) here
	// could hold spaces, quotes or nothing at all, none of which survive
	// the render-and-reparse round trip the WAL depends on.
	if t == "" || strings.HasPrefix(t, "\x01") || strings.ContainsAny(t, "(),") {
		return "", fmt.Errorf("expected %s, got %q", what, t)
	}
	return t, nil
}

// stringLit consumes a quoted string (or bare word).
func (p *opParser) stringLit(what string) (string, error) {
	t := p.next()
	if t == "" {
		return "", fmt.Errorf("expected %s", what)
	}
	return strings.TrimPrefix(t, "\x01"), nil
}

// condition consumes a predicate's tokens — until the terminating keyword
// when until is non-empty, to the end of input otherwise — re-quoting
// string tokens for the expr parser.
func (p *opParser) condition(until string) (string, error) {
	var cond []string
	for {
		if until != "" && strings.EqualFold(p.peek(), until) {
			break
		}
		t := p.next()
		if t == "" {
			if until != "" {
				return "", fmt.Errorf("missing %s after condition", until)
			}
			break
		}
		if strings.HasPrefix(t, "\x01") {
			t = "'" + strings.ReplaceAll(t[1:], "'", "''") + "'"
		}
		cond = append(cond, t)
	}
	if len(cond) == 0 {
		return "", fmt.Errorf("expected condition")
	}
	return strings.Join(cond, " "), nil
}

// valueList parses a parenthesized, comma-separated list of literals
// (quoted strings or bare words).
func (p *opParser) valueList() ([]string, error) {
	if err := p.expectKeyword("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		t := p.next()
		if t == "" || t == "(" || t == ")" || t == "," {
			return nil, fmt.Errorf("expected value, got %q", t)
		}
		out = append(out, strings.TrimPrefix(t, "\x01"))
		switch p.next() {
		case ",":
			continue
		case ")":
			return out, nil
		default:
			return nil, fmt.Errorf("expected ',' or ')' in value list")
		}
	}
}

func (p *opParser) identList() ([]string, error) {
	if err := p.expectKeyword("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		switch p.next() {
		case ",":
			continue
		case ")":
			return out, nil
		default:
			return nil, fmt.Errorf("expected ',' or ')' in column list")
		}
	}
}

func (p *opParser) end(op Op) (Op, error) {
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("trailing input at %q", p.peek())
	}
	return op, nil
}

func (p *opParser) parse() (Op, error) {
	switch {
	case p.keyword("CREATE"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		cols, err := p.identList()
		if err != nil {
			return nil, err
		}
		var key []string
		if p.keyword("KEY") {
			if key, err = p.identList(); err != nil {
				return nil, err
			}
		}
		return p.end(CreateTable{Table: name, Columns: cols, Key: key})

	case p.keyword("DROP"):
		if p.keyword("TABLE") {
			name, err := p.ident("table name")
			if err != nil {
				return nil, err
			}
			return p.end(DropTable{Table: name})
		}
		if err := p.expectKeyword("COLUMN"); err != nil {
			return nil, err
		}
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(DropColumn{Table: table, Column: col})

	case p.keyword("RENAME"):
		if p.keyword("TABLE") {
			from, err := p.ident("table name")
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			to, err := p.ident("table name")
			if err != nil {
				return nil, err
			}
			return p.end(RenameTable{From: from, To: to})
		}
		if err := p.expectKeyword("COLUMN"); err != nil {
			return nil, err
		}
		from, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(RenameColumn{Table: table, From: from, To: to})

	case p.keyword("COPY"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		from, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(CopyTable{From: from, To: to})

	case p.keyword("UNION"):
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		a, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		b, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		out, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(UnionTables{A: a, B: b, Out: out})

	case p.keyword("PARTITION"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		cond, err := p.condition("INTO")
		if err != nil {
			return nil, err
		}
		p.pos++ // INTO
		yes, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		no, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(PartitionTable{Table: table, Condition: cond, OutYes: yes, OutNo: no})

	case p.keyword("DECOMPOSE"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		outS, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		sCols, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		outT, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		tCols, err := p.identList()
		if err != nil {
			return nil, err
		}
		return p.end(DecomposeTable{Table: table, OutS: outS, SColumns: sCols, OutT: outT, TColumns: tCols})

	case p.keyword("MERGE"):
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		a, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		b, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		out, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(MergeTables{A: a, B: b, Out: out})

	case p.keyword("ADD"):
		if err := p.expectKeyword("COLUMN"); err != nil {
			return nil, err
		}
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		op := AddColumn{Table: table, Column: col}
		switch {
		case p.keyword("DEFAULT"):
			if op.Default, err = p.stringLit("default value"); err != nil {
				return nil, err
			}
		case p.keyword("FROM"):
			if op.ValuesFile, err = p.stringLit("file name"); err != nil {
				return nil, err
			}
		}
		return p.end(op)

	case p.keyword("INSERT"):
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("VALUES"); err != nil {
			return nil, err
		}
		values, err := p.valueList()
		if err != nil {
			return nil, err
		}
		return p.end(Insert{Table: table, Values: values})

	case p.keyword("DELETE"):
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		op := Delete{Table: table}
		if p.keyword("WHERE") {
			if op.Where, err = p.condition(""); err != nil {
				return nil, err
			}
		}
		return p.end(op)

	case p.keyword("PRUNE"):
		if err := p.expectKeyword("KEEP"); err != nil {
			return nil, err
		}
		tok, err := p.ident("version count")
		if err != nil {
			return nil, err
		}
		keep, err := strconv.Atoi(tok)
		if err != nil || keep < 0 {
			return nil, fmt.Errorf("expected a non-negative version count, got %q", tok)
		}
		return p.end(Prune{Keep: keep})

	case p.keyword("SELECT"):
		return p.parseSelect()

	case p.keyword("UPDATE"):
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("SET"); err != nil {
			return nil, err
		}
		col, value, err := p.assignment()
		if err != nil {
			return nil, err
		}
		op := Update{Table: table, Column: col, Value: value}
		if p.keyword("WHERE") {
			if op.Where, err = p.condition(""); err != nil {
				return nil, err
			}
		}
		return p.end(op)
	}
	return nil, fmt.Errorf("%w: no operator begins with %q", ErrUnknownStatement, p.peek())
}

// assignment parses `column = literal`. The lexer keeps '=' glued to
// adjacent bare words ("c=", "c=v"), so the column token may carry the
// '=' and even the value; all spacings of column = value parse the same.
func (p *opParser) assignment() (column, value string, err error) {
	tok := p.next()
	if tok == "" || strings.HasPrefix(tok, "\x01") {
		return "", "", fmt.Errorf("expected column name after SET")
	}
	col, rest, hasEq := tok, "", false
	if i := strings.Index(tok, "="); i >= 0 {
		col, rest, hasEq = tok[:i], tok[i+1:], true
	}
	if col == "" || strings.ContainsAny(col, "(),") {
		return "", "", fmt.Errorf("expected column name after SET, got %q", tok)
	}
	if !hasEq {
		eq := p.next()
		if !strings.HasPrefix(eq, "=") {
			return "", "", fmt.Errorf("expected '=' after SET %s", col)
		}
		rest = eq[1:]
	}
	if rest != "" {
		return col, rest, nil
	}
	value, err = p.stringLit("value")
	if err != nil {
		return "", "", err
	}
	return col, value, nil
}

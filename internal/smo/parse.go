package smo

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses one operator in the text syntax rendered by each Op's
// String method:
//
//	CREATE TABLE t (c1, c2, ...) [KEY (k1, ...)]
//	DROP TABLE t
//	RENAME TABLE old TO new
//	COPY TABLE src TO dst
//	UNION TABLES a, b INTO out
//	PARTITION TABLE t WHERE <condition> INTO yes, no
//	DECOMPOSE TABLE r INTO s (c1, ...), t (c1, ...)
//	MERGE TABLES a, b INTO out
//	ADD COLUMN c TO t DEFAULT 'v'
//	ADD COLUMN c TO t FROM 'file'
//	DROP COLUMN c FROM t
//	RENAME COLUMN old TO new IN t
//
// Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(input string) (Op, error) {
	p := &opParser{toks: lexOp(input), input: input}
	op, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("smo: parsing %q: %w: %w", input, ErrParse, err)
	}
	return op, nil
}

// ParseScript parses a sequence of operators, one per line or separated by
// semicolons. Blank lines and lines starting with "--" or "#" are
// comments.
func ParseScript(input string) ([]Op, error) {
	var ops []Op
	for _, line := range strings.FieldsFunc(input, func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := Parse(line)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

type opParser struct {
	toks  []string
	pos   int
	input string
}

// lexOp splits into identifiers, quoted strings (kept with quotes
// stripped, marked by a \x01 prefix), and single punctuation tokens.
func lexOp(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(' || r == ')' || r == ',':
			toks = append(toks, string(r))
			i++
		case r == '\'':
			j := i + 1
			var sb strings.Builder
			sb.WriteByte(1)
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, sb.String())
			i = j + 1
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) && !strings.ContainsRune("(),'", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *opParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *opParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// keyword consumes the next token if it matches (case-insensitively).
func (p *opParser) keyword(kw string) bool {
	if strings.EqualFold(p.peek(), kw) {
		p.pos++
		return true
	}
	return false
}

func (p *opParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek())
	}
	return nil
}

func (p *opParser) ident(what string) (string, error) {
	t := p.next()
	if t == "" || strings.ContainsAny(t, "(),") {
		return "", fmt.Errorf("expected %s, got %q", what, t)
	}
	return strings.TrimPrefix(t, "\x01"), nil
}

// stringLit consumes a quoted string (or bare word).
func (p *opParser) stringLit(what string) (string, error) {
	t := p.next()
	if t == "" {
		return "", fmt.Errorf("expected %s", what)
	}
	return strings.TrimPrefix(t, "\x01"), nil
}

func (p *opParser) identList() ([]string, error) {
	if err := p.expectKeyword("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		switch p.next() {
		case ",":
			continue
		case ")":
			return out, nil
		default:
			return nil, fmt.Errorf("expected ',' or ')' in column list")
		}
	}
}

func (p *opParser) end(op Op) (Op, error) {
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("trailing input at %q", p.peek())
	}
	return op, nil
}

func (p *opParser) parse() (Op, error) {
	switch {
	case p.keyword("CREATE"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		cols, err := p.identList()
		if err != nil {
			return nil, err
		}
		var key []string
		if p.keyword("KEY") {
			if key, err = p.identList(); err != nil {
				return nil, err
			}
		}
		return p.end(CreateTable{Table: name, Columns: cols, Key: key})

	case p.keyword("DROP"):
		if p.keyword("TABLE") {
			name, err := p.ident("table name")
			if err != nil {
				return nil, err
			}
			return p.end(DropTable{Table: name})
		}
		if err := p.expectKeyword("COLUMN"); err != nil {
			return nil, err
		}
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(DropColumn{Table: table, Column: col})

	case p.keyword("RENAME"):
		if p.keyword("TABLE") {
			from, err := p.ident("table name")
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			to, err := p.ident("table name")
			if err != nil {
				return nil, err
			}
			return p.end(RenameTable{From: from, To: to})
		}
		if err := p.expectKeyword("COLUMN"); err != nil {
			return nil, err
		}
		from, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(RenameColumn{Table: table, From: from, To: to})

	case p.keyword("COPY"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		from, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(CopyTable{From: from, To: to})

	case p.keyword("UNION"):
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		a, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		b, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		out, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(UnionTables{A: a, B: b, Out: out})

	case p.keyword("PARTITION"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		// The condition runs until INTO; re-quote string tokens for the
		// expr parser.
		var cond []string
		for !strings.EqualFold(p.peek(), "INTO") {
			t := p.next()
			if t == "" {
				return nil, fmt.Errorf("missing INTO after condition")
			}
			if strings.HasPrefix(t, "\x01") {
				t = "'" + strings.ReplaceAll(t[1:], "'", "''") + "'"
			}
			cond = append(cond, t)
		}
		p.pos++ // INTO
		yes, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		no, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(PartitionTable{Table: table, Condition: strings.Join(cond, " "), OutYes: yes, OutNo: no})

	case p.keyword("DECOMPOSE"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		outS, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		sCols, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		outT, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		tCols, err := p.identList()
		if err != nil {
			return nil, err
		}
		return p.end(DecomposeTable{Table: table, OutS: outS, SColumns: sCols, OutT: outT, TColumns: tCols})

	case p.keyword("MERGE"):
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		a, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(","); err != nil {
			return nil, err
		}
		b, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		out, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		return p.end(MergeTables{A: a, B: b, Out: out})

	case p.keyword("ADD"):
		if err := p.expectKeyword("COLUMN"); err != nil {
			return nil, err
		}
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		op := AddColumn{Table: table, Column: col}
		switch {
		case p.keyword("DEFAULT"):
			if op.Default, err = p.stringLit("default value"); err != nil {
				return nil, err
			}
		case p.keyword("FROM"):
			if op.ValuesFile, err = p.stringLit("file name"); err != nil {
				return nil, err
			}
		}
		return p.end(op)
	}
	return nil, fmt.Errorf("%w: no operator begins with %q", ErrUnknownStatement, p.peek())
}

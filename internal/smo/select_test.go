package smo

import (
	"reflect"
	"strings"
	"testing"
)

// selectCases pair a canonical Select value with its rendered text.
// TestSelectStringRoundTrip pins both directions; FuzzParseSelect seeds
// from the same list.
var selectCases = []Select{
	{From: "t"},
	{Columns: []string{"a"}, From: "t"},
	{Columns: []string{"a", "b", "c"}, From: "t"},
	{From: "f", Joins: []JoinClause{{Table: "d", On: []string{"k"}}}},
	{From: "f", Joins: []JoinClause{
		{Table: "d", On: []string{"k1", "k2"}},
		{Table: "e", On: []string{"j"}},
	}},
	{From: "t", Where: "a = 'x' AND b != 'y''z'"},
	{From: "t", Where: "a = 'it''s; here'", OrderBy: "a"},
	{Aggs: []SelectAgg{{Func: "count"}}, From: "t"},
	{Aggs: []SelectAgg{
		{Func: "count"}, {Func: "sum", Column: "v"}, {Func: "avg", Column: "v"},
		{Func: "min", Column: "v"}, {Func: "max", Column: "v"},
		{Func: "count_distinct", Column: "v"},
	}, From: "t"},
	{Aggs: []SelectAgg{{Func: "count"}}, From: "t", GroupBy: "g"},
	{Aggs: []SelectAgg{{Func: "sum", Column: "v"}}, From: "f",
		Joins:   []JoinClause{{Table: "d", On: []string{"k"}}},
		Where:   "d1 = 'x'",
		GroupBy: "g", OrderBy: "g", Desc: true, Limit: 5},
	{Columns: []string{"a"}, From: "t", OrderBy: "a", Desc: true, Limit: 10},
	{From: "t", Limit: 1},
}

func TestSelectStringRoundTrip(t *testing.T) {
	for _, op := range selectCases {
		text := op.String()
		back, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if !reflect.DeepEqual(back, op) {
			t.Errorf("round trip of %q: got %#v, want %#v", text, back, op)
		}
	}
}

func TestParseSelectForms(t *testing.T) {
	cases := []struct {
		in   string
		want Select
	}{
		// Keywords are case-insensitive, '*' is the default list.
		{"select * from t", Select{From: "t"}},
		{"SELECT a, b FROM t", Select{Columns: []string{"a", "b"}, From: "t"}},
		// A single ON column may be bare; it renders parenthesized.
		{"SELECT * FROM f JOIN d ON k", Select{From: "f", Joins: []JoinClause{{Table: "d", On: []string{"k"}}}}},
		{"SELECT * FROM f JOIN d ON (k1, k2)", Select{From: "f", Joins: []JoinClause{{Table: "d", On: []string{"k1", "k2"}}}}},
		// ASC is accepted and normalizes away.
		{"SELECT a FROM t ORDER BY a ASC", Select{Columns: []string{"a"}, From: "t", OrderBy: "a"}},
		{"SELECT count ( * ) FROM t", Select{Aggs: []SelectAgg{{Func: "count"}}, From: "t"}},
		{"SELECT SUM(v) FROM t", Select{Aggs: []SelectAgg{{Func: "sum", Column: "v"}}, From: "t"}},
		// WHERE runs to the next clause keyword, quoting literals.
		{"SELECT * FROM t WHERE a = 'x y' ORDER BY b LIMIT 3",
			Select{From: "t", Where: "a = 'x y'", OrderBy: "b", Limit: 3}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseSelectErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT a, count(*) FROM t",      // mixing columns and aggregates
		"SELECT median(v) FROM t",        // unknown aggregate
		"SELECT count(v) FROM t",         // count takes '*'
		"SELECT sum(*) FROM t",           // sum takes a column
		"SELECT * FROM f JOIN d",         // missing ON
		"SELECT * FROM f JOIN d ON ()",   // empty ON list
		"SELECT * FROM t WHERE",          // missing condition
		"SELECT * FROM t GROUP BY",       // missing column
		"SELECT * FROM t ORDER BY",       // missing column
		"SELECT * FROM t LIMIT 0",        // limit must be positive
		"SELECT * FROM t LIMIT many",     // limit must be a number
		"SELECT * FROM t trailing stuff", // trailing input
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

// FuzzParseSelect feeds arbitrary text through Parse and checks the
// SELECT serialization contract on whatever parses as a Select: the
// statement travels as text (REPL, scripts, HTTP /query), so rendering
// and reparsing must reach a fixpoint. Non-parsing inputs must fail
// with an error, never panic or loop.
func FuzzParseSelect(f *testing.F) {
	for _, op := range selectCases {
		f.Add(op.String())
	}
	f.Add("select * from t where a = 'x;y' group by a order by a desc limit 2")
	f.Add("SELECT count ( * ) , sum ( v ) FROM t JOIN u ON ( k )")
	f.Fuzz(func(t *testing.T, input string) {
		op, err := Parse(input)
		if err != nil {
			return // rejected input; only parsed ones carry contracts
		}
		sel, ok := op.(Select)
		if !ok {
			return // some other statement kind; covered by its own fuzzer
		}
		text := sel.String()
		if !strings.HasPrefix(text, "SELECT ") {
			t.Fatalf("String() = %q, want SELECT prefix", text)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q) of rendered Select failed: %v", text, err)
		}
		if !reflect.DeepEqual(back, sel) {
			t.Fatalf("round trip of %q: got %#v, want %#v", text, back, sel)
		}
	})
}

package smo

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseScriptRoundTrip feeds arbitrary text through ParseScript and
// checks the parser's serialization contract on whatever parses: the WAL
// persists operators as op.String() and replays them through Parse, so
// for every successfully parsed script, re-rendering each statement and
// parsing it again must reach a fixpoint — identical ops, one statement
// per String(). Inputs that fail to parse must fail with an error, never
// panic or loop.
func FuzzParseScriptRoundTrip(f *testing.F) {
	// Seed with every operator shape the text syntax supports, including
	// the hostile literals the quote-aware splitter exists for (the same
	// shapes TestOpStringRoundTrip pins down).
	seeds := []Op{
		CreateTable{Table: "r", Columns: []string{"a", "b"}},
		CreateTable{Table: "r", Columns: []string{"a"}, Key: []string{"a"}},
		DropTable{Table: "r"},
		RenameTable{From: "r", To: "s"},
		CopyTable{From: "r", To: "s"},
		UnionTables{A: "r", B: "s", Out: "u"},
		PartitionTable{Table: "r", Condition: "a = 'x' AND b != 'y''z'", OutYes: "p", OutNo: "q"},
		DecomposeTable{Table: "r", OutS: "s", SColumns: []string{"a", "b"}, OutT: "t2", TColumns: []string{"a", "c"}},
		MergeTables{A: "s", B: "t2", Out: "r"},
		AddColumn{Table: "r", Column: "c", Default: "it's quoted"},
		AddColumn{Table: "r", Column: "c", ValuesFile: "dir/o'brien.txt"},
		DropColumn{Table: "r", Column: "c"},
		RenameColumn{Table: "r", From: "a", To: "b"},
		Insert{Table: "r", Values: []string{"plain", "it's", "", "a;b", "line1\nline2"}},
		Delete{Table: "r", Where: "a = 'x' AND b != 'y''z'"},
		Update{Table: "r", Column: "c", Value: "v;w\nz", Where: "a != 'p\nq'"},
		Prune{Keep: 12},
	}
	for _, op := range seeds {
		f.Add(op.String())
	}
	var multi []string
	for _, op := range seeds[:6] {
		multi = append(multi, op.String())
	}
	f.Add(strings.Join(multi, ";"))
	f.Add(strings.Join(multi, "\n"))
	f.Add("-- comment\n# comment\n\nPRUNE KEEP 3")
	f.Add("insert into t values ('lower', 'case')")

	f.Fuzz(func(t *testing.T, input string) {
		ops, err := ParseScript(input)
		if err != nil {
			return // rejected input; only the parsed ones carry contracts
		}
		for _, op := range ops {
			text := op.String()
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("Parse(%q) of rendered op failed: %v", text, err)
			}
			if !reflect.DeepEqual(back, op) {
				t.Fatalf("round trip of %q: got %#v, want %#v", text, back, op)
			}
			again, err := ParseScript(text)
			if err != nil || len(again) != 1 {
				t.Fatalf("ParseScript(%q) = %d statements, err %v; want exactly 1", text, len(again), err)
			}
			if !reflect.DeepEqual(again[0], op) {
				t.Fatalf("script round trip of %q diverged", text)
			}
		}
	})
}

package smo

import "errors"

// ErrParse is wrapped by every error returned from Parse and ParseScript,
// so callers (the HTTP server, the REPL) can distinguish a malformed
// statement from an execution failure with errors.Is.
var ErrParse = errors.New("invalid statement")

// ErrUnknownStatement is wrapped by Parse errors whose input does not
// begin with any known operator keyword. It also matches ErrParse.
var ErrUnknownStatement = errors.New("unknown statement")

package smo

import (
	"reflect"
	"testing"
)

func TestParseAllOperators(t *testing.T) {
	cases := []struct {
		in   string
		want Op
	}{
		{"CREATE TABLE R (A, B, C)", CreateTable{Table: "R", Columns: []string{"A", "B", "C"}}},
		{"create table R (A) key (A)", CreateTable{Table: "R", Columns: []string{"A"}, Key: []string{"A"}}},
		{"DROP TABLE R", DropTable{Table: "R"}},
		{"RENAME TABLE R TO R2", RenameTable{From: "R", To: "R2"}},
		{"COPY TABLE R TO R2", CopyTable{From: "R", To: "R2"}},
		{"UNION TABLES A, B INTO C", UnionTables{A: "A", B: "B", Out: "C"}},
		{"PARTITION TABLE R WHERE age > 30 INTO old, young", PartitionTable{Table: "R", Condition: "age > 30", OutYes: "old", OutNo: "young"}},
		{
			"PARTITION TABLE R WHERE city = 'new york' INTO ny, rest",
			PartitionTable{Table: "R", Condition: "city = 'new york'", OutYes: "ny", OutNo: "rest"},
		},
		{
			"DECOMPOSE TABLE R INTO S (Employee, Skill), T (Employee, Address)",
			DecomposeTable{Table: "R", OutS: "S", SColumns: []string{"Employee", "Skill"}, OutT: "T", TColumns: []string{"Employee", "Address"}},
		},
		{"MERGE TABLES S, T INTO R", MergeTables{A: "S", B: "T", Out: "R"}},
		{"ADD COLUMN G TO R DEFAULT 'x'", AddColumn{Table: "R", Column: "G", Default: "x"}},
		{"ADD COLUMN G TO R FROM 'vals.txt'", AddColumn{Table: "R", Column: "G", ValuesFile: "vals.txt"}},
		{"ADD COLUMN G TO R", AddColumn{Table: "R", Column: "G"}},
		{"DROP COLUMN B FROM R", DropColumn{Table: "R", Column: "B"}},
		{"RENAME COLUMN A TO A2 IN R", RenameColumn{Table: "R", From: "A", To: "A2"}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	ops := []Op{
		CreateTable{Table: "R", Columns: []string{"A", "B"}, Key: []string{"A"}},
		DropTable{Table: "R"},
		RenameTable{From: "R", To: "S"},
		CopyTable{From: "R", To: "S"},
		UnionTables{A: "A", B: "B", Out: "C"},
		PartitionTable{Table: "R", Condition: "x = 'a b'", OutYes: "y", OutNo: "n"},
		DecomposeTable{Table: "R", OutS: "S", SColumns: []string{"A", "B"}, OutT: "T", TColumns: []string{"A", "C"}},
		MergeTables{A: "S", B: "T", Out: "R"},
		AddColumn{Table: "R", Column: "G", Default: "v"},
		AddColumn{Table: "R", Column: "G", ValuesFile: "f.txt"},
		DropColumn{Table: "R", Column: "G"},
		RenameColumn{Table: "R", From: "A", To: "B"},
	}
	for _, op := range ops {
		back, err := Parse(op.String())
		if err != nil {
			t.Errorf("re-parsing %q: %v", op.String(), err)
			continue
		}
		if !reflect.DeepEqual(back, op) {
			t.Errorf("round trip %q: got %#v want %#v", op.String(), back, op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE TABLE X",
		"CREATE TABLE",
		"CREATE TABLE R",
		"CREATE TABLE R (",
		"CREATE TABLE R (A,)",
		"DROP",
		"RENAME TABLE R",
		"UNION TABLES A B INTO C",
		"PARTITION TABLE R WHERE x = 1",
		"DECOMPOSE TABLE R INTO S (A)",
		"MERGE TABLES S INTO R",
		"DROP TABLE R extra",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseScript(t *testing.T) {
	script := `
-- decompose then rename
DECOMPOSE TABLE R INTO S (A, B), T (A, C)
# a comment
RENAME TABLE T TO Dim; DROP COLUMN B FROM S
`
	ops, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("parsed %d ops, want 3", len(ops))
	}
	if ops[1].Kind() != "RENAME TABLE" || ops[2].Kind() != "DROP COLUMN" {
		t.Fatalf("ops: %v", ops)
	}
}

func TestParseScriptError(t *testing.T) {
	if _, err := ParseScript("DROP TABLE R\nBOGUS"); err == nil {
		t.Fatal("expected error")
	}
}

func TestKinds(t *testing.T) {
	kinds := map[string]Op{
		"CREATE TABLE":    CreateTable{},
		"DROP TABLE":      DropTable{},
		"RENAME TABLE":    RenameTable{},
		"COPY TABLE":      CopyTable{},
		"UNION TABLES":    UnionTables{},
		"PARTITION TABLE": PartitionTable{},
		"DECOMPOSE TABLE": DecomposeTable{},
		"MERGE TABLES":    MergeTables{},
		"ADD COLUMN":      AddColumn{},
		"DROP COLUMN":     DropColumn{},
		"RENAME COLUMN":   RenameColumn{},
	}
	if len(kinds) != 11 {
		t.Fatal("Table 1 lists 11 operators")
	}
	for want, op := range kinds {
		if op.Kind() != want {
			t.Errorf("Kind()=%q want %q", op.Kind(), want)
		}
	}
}

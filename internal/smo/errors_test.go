package smo

import (
	"errors"
	"testing"
)

func TestParseErrorSentinels(t *testing.T) {
	_, err := Parse("EXPLODE TABLE r")
	if err == nil {
		t.Fatal("Parse of unknown operator succeeded")
	}
	if !errors.Is(err, ErrUnknownStatement) {
		t.Errorf("err = %v, want errors.Is ErrUnknownStatement", err)
	}
	if !errors.Is(err, ErrParse) {
		t.Errorf("err = %v, want errors.Is ErrParse", err)
	}

	// A known operator with bad syntax is a parse error but not an
	// unknown statement.
	_, err = Parse("CREATE TABLE")
	if err == nil {
		t.Fatal("Parse of truncated CREATE TABLE succeeded")
	}
	if !errors.Is(err, ErrParse) {
		t.Errorf("err = %v, want errors.Is ErrParse", err)
	}
	if errors.Is(err, ErrUnknownStatement) {
		t.Errorf("err = %v, must not match ErrUnknownStatement", err)
	}

	if _, err := Parse("CREATE TABLE r (a, b)"); err != nil {
		t.Errorf("valid statement: %v", err)
	}

	// ParseScript propagates the sentinels too.
	if _, err := ParseScript("CREATE TABLE r (a)\nFROBNICATE r"); !errors.Is(err, ErrUnknownStatement) {
		t.Errorf("script err = %v, want ErrUnknownStatement", err)
	}
}

package dict

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	d := New()
	for i := 0; i < 100; i++ {
		v := fmt.Sprintf("v%d", i)
		if got := d.Intern(v); got != uint32(i) {
			t.Fatalf("Intern(%q)=%d want %d", v, got, i)
		}
	}
	if d.Len() != 100 {
		t.Fatalf("Len=%d", d.Len())
	}
	// Re-interning returns existing ids.
	if got := d.Intern("v42"); got != 42 {
		t.Fatalf("re-Intern=%d", got)
	}
	if d.Len() != 100 {
		t.Fatalf("re-Intern grew dictionary to %d", d.Len())
	}
}

func TestLookupAndValue(t *testing.T) {
	d := New()
	id := d.Intern("hello")
	if d.Lookup("hello") != id {
		t.Fatal("Lookup mismatch")
	}
	if d.Lookup("absent") != NoID {
		t.Fatal("Lookup of absent value should be NoID")
	}
	if d.Value(id) != "hello" {
		t.Fatal("Value mismatch")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var d Dict
	if d.Intern("a") != 0 || d.Intern("b") != 1 {
		t.Fatal("zero-value Dict broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New()
	d.Intern("a")
	c := d.Clone()
	c.Intern("b")
	if d.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d/%d", d.Len(), c.Len())
	}
	if c.Lookup("a") != 0 {
		t.Fatal("clone lost entry")
	}
}

func TestSortedIDs(t *testing.T) {
	d := New()
	for _, v := range []string{"pear", "apple", "zebra", "mango"} {
		d.Intern(v)
	}
	ids := d.SortedIDs()
	var got []string
	for _, id := range ids {
		got = append(got, d.Value(id))
	}
	want := []string{"apple", "mango", "pear", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := New()
	for i := 0; i < 57; i++ {
		d.Intern(fmt.Sprintf("value-%d-with-some-text", i))
	}
	d.Intern("") // empty string is a legal value
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := New()
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("Len=%d want %d", got.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if got.Value(uint32(i)) != d.Value(uint32(i)) {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestQuickInternRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		d := New()
		for _, v := range vals {
			id := d.Intern(v)
			if d.Value(id) != v || d.Lookup(v) != id {
				return false
			}
		}
		return d.Len() <= len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

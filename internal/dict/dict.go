// Package dict provides per-column value dictionaries: a bijection between
// column values (strings at the API boundary) and dense uint32 ids used by
// all hot paths of the column store.
package dict

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// NoID is returned by Lookup for values absent from the dictionary.
const NoID = ^uint32(0)

// Dict maps values to dense ids 0..Len()-1 in insertion order. The zero
// value is ready to use. Not safe for concurrent mutation.
type Dict struct {
	values []string
	ids    map[string]uint32
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.values) }

// Intern returns the id of v, assigning the next free id when v is new.
func (d *Dict) Intern(v string) uint32 {
	if d.ids == nil {
		d.ids = make(map[string]uint32)
	}
	if id, ok := d.ids[v]; ok {
		return id
	}
	id := uint32(len(d.values))
	d.values = append(d.values, v)
	d.ids[v] = id
	return id
}

// Lookup returns the id of v, or NoID when absent.
func (d *Dict) Lookup(v string) uint32 {
	if id, ok := d.ids[v]; ok {
		return id
	}
	return NoID
}

// Value returns the value with the given id. It panics when id is out of
// range: ids come from the dictionary itself, so a bad id is a programmer
// error.
func (d *Dict) Value(id uint32) string { return d.values[id] }

// Values returns the backing value slice in id order. Callers must not
// modify it.
func (d *Dict) Values() []string { return d.values }

// Clone returns an independent copy.
func (d *Dict) Clone() *Dict {
	c := New()
	c.values = append([]string(nil), d.values...)
	for i, v := range c.values {
		c.ids[v] = uint32(i)
	}
	return c
}

// SortedIDs returns all ids ordered by their values' lexicographic order.
func (d *Dict) SortedIDs() []uint32 {
	ids := make([]uint32, len(d.values))
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(a, b int) bool { return d.values[ids[a]] < d.values[ids[b]] })
	return ids
}

// WriteTo writes the dictionary in a length-prefixed binary format.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	var total int64
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(d.values)))
	n, err := w.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	var lenBuf [4]byte
	for _, v := range d.values {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(v)))
		n, err = w.Write(lenBuf[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
		n, err = io.WriteString(w, v)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFrom replaces the dictionary with one read from r.
func (d *Dict) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	var hdr [4]byte
	n, err := io.ReadFull(r, hdr[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("dict: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint32(hdr[:])
	values := make([]string, 0, count)
	ids := make(map[string]uint32, count)
	for i := uint32(0); i < count; i++ {
		n, err = io.ReadFull(r, hdr[:])
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("dict: reading value %d length: %w", i, err)
		}
		l := binary.LittleEndian.Uint32(hdr[:])
		buf := make([]byte, l)
		n, err = io.ReadFull(r, buf)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("dict: reading value %d: %w", i, err)
		}
		v := string(buf)
		if _, dup := ids[v]; dup {
			return total, fmt.Errorf("dict: duplicate value %q at id %d", v, i)
		}
		ids[v] = i
		values = append(values, v)
	}
	d.values, d.ids = values, ids
	return total, nil
}

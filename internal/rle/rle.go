// Package rle implements run-length encoding of value-id sequences. The
// paper (§2.2) notes that sorted columns are sometimes stored with
// run-length encoding instead of bitmaps; this codec backs that column
// representation in the column store.
package rle

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Run is a maximal run of a single value id.
type Run struct {
	ID    uint32 // value id
	Count uint64 // repetitions
}

// Column is an RLE-compressed sequence of value ids. The zero value is an
// empty column ready for appends.
type Column struct {
	runs  []Run
	nrows uint64
}

// Len returns the number of encoded rows.
func (c *Column) Len() uint64 { return c.nrows }

// Runs returns the run slice. Callers must not modify it.
func (c *Column) Runs() []Run { return c.runs }

// NumRuns returns the number of runs, a direct measure of compression.
func (c *Column) NumRuns() int { return len(c.runs) }

// Append adds count rows with value id at the end, coalescing with the
// previous run when the id matches.
func (c *Column) Append(id uint32, count uint64) {
	if count == 0 {
		return
	}
	c.nrows += count
	if n := len(c.runs); n > 0 && c.runs[n-1].ID == id {
		c.runs[n-1].Count += count
		return
	}
	c.runs = append(c.runs, Run{ID: id, Count: count})
}

// FromIDs encodes a row-wise id sequence.
func FromIDs(ids []uint32) *Column {
	c := &Column{}
	for _, id := range ids {
		c.Append(id, 1)
	}
	return c
}

// Get returns the id at row, walking the runs (O(runs)).
func (c *Column) Get(row uint64) (uint32, error) {
	if row >= c.nrows {
		return 0, fmt.Errorf("rle: row %d out of range (%d rows)", row, c.nrows)
	}
	var seen uint64
	for _, r := range c.runs {
		if row < seen+r.Count {
			return r.ID, nil
		}
		seen += r.Count
	}
	return 0, fmt.Errorf("rle: internal inconsistency at row %d", row)
}

// AppendIDsTo decodes the whole column into dst and returns it.
func (c *Column) AppendIDsTo(dst []uint32) []uint32 {
	for _, r := range c.runs {
		for i := uint64(0); i < r.Count; i++ {
			dst = append(dst, r.ID)
		}
	}
	return dst
}

// IsSorted reports whether ids are non-decreasing across runs, the shape
// for which RLE is the encoding of choice.
func (c *Column) IsSorted() bool {
	for i := 1; i < len(c.runs); i++ {
		if c.runs[i].ID < c.runs[i-1].ID {
			return false
		}
	}
	return true
}

// WriteTo writes the column in binary form.
func (c *Column) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 0, 8+4+len(c.runs)*12)
	buf = binary.LittleEndian.AppendUint64(buf, c.nrows)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.runs)))
	for _, r := range c.runs {
		buf = binary.LittleEndian.AppendUint32(buf, r.ID)
		buf = binary.LittleEndian.AppendUint64(buf, r.Count)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom replaces the column with one read from r.
func (c *Column) ReadFrom(r io.Reader) (int64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("rle: reading header: %w", err)
	}
	nrows := binary.LittleEndian.Uint64(hdr[0:8])
	nruns := binary.LittleEndian.Uint32(hdr[8:12])
	body := make([]byte, int(nruns)*12)
	if _, err := io.ReadFull(r, body); err != nil {
		return 12, fmt.Errorf("rle: reading runs: %w", err)
	}
	runs := make([]Run, nruns)
	var total uint64
	for i := range runs {
		runs[i].ID = binary.LittleEndian.Uint32(body[i*12:])
		runs[i].Count = binary.LittleEndian.Uint64(body[i*12+4:])
		if runs[i].Count == 0 {
			return 12 + int64(len(body)), fmt.Errorf("rle: run %d has zero count", i)
		}
		total += runs[i].Count
	}
	if total != nrows {
		return 12 + int64(len(body)), fmt.Errorf("rle: runs sum to %d rows, header says %d", total, nrows)
	}
	c.runs, c.nrows = runs, nrows
	return 12 + int64(len(body)), nil
}

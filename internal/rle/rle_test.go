package rle

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppendCoalesces(t *testing.T) {
	var c Column
	c.Append(1, 5)
	c.Append(1, 3)
	c.Append(2, 1)
	c.Append(2, 0) // no-op
	if c.NumRuns() != 2 {
		t.Fatalf("runs=%d want 2", c.NumRuns())
	}
	if c.Len() != 9 {
		t.Fatalf("len=%d want 9", c.Len())
	}
}

func TestFromIDsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(500)
		ids := make([]uint32, n)
		cur := uint32(0)
		for i := range ids {
			if rng.Intn(10) == 0 {
				cur = uint32(rng.Intn(8))
			}
			ids[i] = cur
		}
		c := FromIDs(ids)
		got := c.AppendIDsTo(nil)
		if len(got) != len(ids) {
			t.Fatalf("decoded %d ids want %d", len(got), len(ids))
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("id %d: got %d want %d", i, got[i], ids[i])
			}
			v, err := c.Get(uint64(i))
			if err != nil || v != ids[i] {
				t.Fatalf("Get(%d)=%d,%v want %d", i, v, err, ids[i])
			}
		}
	}
}

func TestGetOutOfRange(t *testing.T) {
	c := FromIDs([]uint32{1, 2, 3})
	if _, err := c.Get(3); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestIsSorted(t *testing.T) {
	if !FromIDs([]uint32{0, 0, 1, 1, 2}).IsSorted() {
		t.Fatal("sorted column reported unsorted")
	}
	if FromIDs([]uint32{0, 2, 1}).IsSorted() {
		t.Fatal("unsorted column reported sorted")
	}
	if !(&Column{}).IsSorted() {
		t.Fatal("empty column should be sorted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := FromIDs([]uint32{5, 5, 5, 1, 2, 2, 9})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Column
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	a, b := c.AppendIDsTo(nil), got.AppendIDsTo(nil)
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id %d mismatch", i)
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	c := FromIDs([]uint32{1, 1, 2})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xFF // nrows no longer matches run sum
	var got Column
	if _, err := got.ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(raw []uint8) bool {
		ids := make([]uint32, len(raw))
		for i, v := range raw {
			ids[i] = uint32(v % 5) // few distinct values => real runs
		}
		c := FromIDs(ids)
		if c.Len() != uint64(len(ids)) {
			return false
		}
		got := c.AppendIDsTo(nil)
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

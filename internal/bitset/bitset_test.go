package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cods/internal/wah"
)

func TestSetGetClear(t *testing.T) {
	b := New(200)
	for _, p := range []uint64{0, 63, 64, 127, 199} {
		if b.Get(p) {
			t.Fatalf("bit %d set in fresh bitset", p)
		}
		b.Set(p)
		if !b.Get(p) {
			t.Fatalf("bit %d not set", p)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("count=%d", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 4 {
		t.Fatalf("clear failed: count=%d", b.Count())
	}
}

func TestOrAnd(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(129)
	or := a.Clone()
	or.Or(b)
	if or.Count() != 3 || !or.Get(1) || !or.Get(100) || !or.Get(129) {
		t.Fatalf("or wrong: %d", or.Count())
	}
	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Get(100) {
		t.Fatalf("and wrong: %d", and.Count())
	}
}

func TestOnesAndFilterPositions(t *testing.T) {
	b := New(1000)
	want := []uint64{3, 64, 65, 500, 999}
	for _, p := range want {
		b.Set(p)
	}
	var got []uint64
	b.Ones(func(p uint64) bool { got = append(got, p); return true })
	if len(got) != len(want) {
		t.Fatalf("ones=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ones=%v want %v", got, want)
		}
	}
	f := b.FilterPositions([]uint64{0, 3, 64, 998, 999, 2000})
	if f.Len() != 6 || f.Count() != 3 {
		t.Fatalf("filter: len=%d count=%d", f.Len(), f.Count())
	}
	if !f.Get(1) || !f.Get(2) || !f.Get(4) || f.Get(0) || f.Get(3) || f.Get(5) {
		t.Fatal("filter selected wrong bits")
	}
}

func TestOnesEarlyStop(t *testing.T) {
	b := New(100)
	for i := uint64(0); i < 100; i++ {
		b.Set(i)
	}
	n := 0
	b.Ones(func(uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("visited %d", n)
	}
}

func TestQuickAgreesWithWAH(t *testing.T) {
	// Property: bitset and WAH agree on count and filtering for random
	// content — the two representations are interchangeable semantically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint64(rng.Intn(2000) + 1)
		bs := New(n)
		wb := wah.New()
		for p := uint64(0); p < n; p++ {
			if rng.Intn(3) == 0 {
				bs.Set(p)
				wb.AppendBit(1)
			} else {
				wb.AppendBit(0)
			}
		}
		if bs.Count() != wb.Count() {
			return false
		}
		var positions []uint64
		for p := uint64(0); p < n; p += uint64(rng.Intn(5) + 1) {
			positions = append(positions, p)
		}
		fb := bs.FilterPositions(positions)
		fw := wah.FilterPositions(wb, positions)
		return fb.Count() == fw.Count() && fb.Len() == fw.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package bitset implements plain uncompressed bitsets. It exists as the
// ablation baseline for WAH: the benchmark suite compares evolution
// primitives (filtering, OR-combination) on compressed bitmaps against the
// same operations on uncompressed vectors, quantifying §2.2's choice of a
// compressed representation. The column store itself never uses this
// package.
package bitset

import "math/bits"

// Bitset is a fixed-length uncompressed bit vector.
type Bitset struct {
	words []uint64
	nbits uint64
}

// New returns a zeroed bitset of n bits.
func New(n uint64) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), nbits: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() uint64 { return b.nbits }

// SizeBytes returns the memory footprint of the bit data.
func (b *Bitset) SizeBytes() uint64 { return uint64(len(b.words)) * 8 }

// Set sets the bit at position p.
func (b *Bitset) Set(p uint64) { b.words[p/64] |= 1 << (p % 64) }

// Clear clears the bit at position p.
func (b *Bitset) Clear(p uint64) { b.words[p/64] &^= 1 << (p % 64) }

// Get reports the bit at position p.
func (b *Bitset) Get(p uint64) bool { return b.words[p/64]&(1<<(p%64)) != 0 }

// Count returns the number of set bits.
func (b *Bitset) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// Or sets b to b OR other. Lengths must match.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to b AND other. Lengths must match.
func (b *Bitset) And(other *Bitset) {
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := New(b.nbits)
	copy(c.words, b.words)
	return c
}

// FilterPositions returns a bitset of length len(positions) whose i-th bit
// is b's bit at positions[i] — the uncompressed counterpart of
// wah.FilterPositions. Cost is O(len(positions)) random reads.
func (b *Bitset) FilterPositions(positions []uint64) *Bitset {
	out := New(uint64(len(positions)))
	for i, p := range positions {
		if p < b.nbits && b.Get(p) {
			out.Set(uint64(i))
		}
	}
	return out
}

// Ones calls yield for each set bit in ascending order until it returns
// false.
func (b *Bitset) Ones(yield func(uint64) bool) {
	for wi, w := range b.words {
		for m := w; m != 0; m &= m - 1 {
			p := uint64(wi)*64 + uint64(bits.TrailingZeros64(m))
			if !yield(p) {
				return
			}
		}
	}
}

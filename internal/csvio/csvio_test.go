package csvio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cods/internal/workload"
)

const sample = `Employee,Skill,Address
Jones,Typing,425 Grant Ave
Roberts,"Light Cleaning","747 Industrial Way"
Ellis,"Comma, Inc.",somewhere
`

func TestReadWriteRoundTrip(t *testing.T) {
	tab, err := Read(strings.NewReader(sample), "R", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumColumns() != 3 {
		t.Fatalf("shape: %v", tab)
	}
	row, err := tab.Row(2)
	if err != nil {
		t.Fatal(err)
	}
	if row[1] != "Comma, Inc." {
		t.Fatalf("quoted field lost: %v", row)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "R2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.TupleMultiset(), tab.TupleMultiset()) {
		t.Fatal("round trip changed tuples")
	}
}

func TestLoadSaveFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "emp.csv")
	emp, err := workload.EmployeeTable("E")
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, emp); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "E", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TupleMultiset(), emp.TupleMultiset()) {
		t.Fatal("file round trip changed tuples")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), "R", nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := Read(strings.NewReader("A,B\n1\n"), "R", nil); err == nil {
		t.Fatal("ragged row should fail")
	}
	if _, err := Read(strings.NewReader("A,A\n1,2\n"), "R", nil); err == nil {
		t.Fatal("duplicate header should fail")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.csv"), "R", nil); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestKeyDeclaration(t *testing.T) {
	tab, err := Read(strings.NewReader("K,V\na,1\nb,2\n"), "T", []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Key(); len(got) != 1 || got[0] != "K" {
		t.Fatalf("key=%v", got)
	}
	if _, err := Read(strings.NewReader("K,V\na,1\n"), "T", []string{"Zed"}); err == nil {
		t.Fatal("unknown key column should fail")
	}
}

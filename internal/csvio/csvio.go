// Package csvio loads CSV files into column-store tables and writes
// tables back out — the demo platform's "load data" and "display table"
// file paths.
package csvio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"

	"cods/internal/colstore"
)

// Load reads a CSV file with a header row into a new table. key names the
// primary-key columns (may be nil). Equivalent to LoadP with parallelism 0
// (GOMAXPROCS).
func Load(path, tableName string, key []string) (*colstore.Table, error) {
	return LoadP(path, tableName, key, 0)
}

// LoadP is Load with an explicit bound on the worker pool used to seal the
// table's columns; parallelism <= 0 means GOMAXPROCS, 1 forces serial.
func LoadP(path, tableName string, key []string, parallelism int) (*colstore.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	defer f.Close()
	return ReadP(f, tableName, key, parallelism)
}

// Read parses CSV from r (header row first) into a new table. Equivalent to
// ReadP with parallelism 0 (GOMAXPROCS).
func Read(r io.Reader, tableName string, key []string) (*colstore.Table, error) {
	return ReadP(r, tableName, key, 0)
}

// ReadP is Read with an explicit column-sealing parallelism bound.
func ReadP(r io.Reader, tableName string, key []string, parallelism int) (*colstore.Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	tb, err := colstore.NewTableBuilder(tableName, append([]string(nil), header...), key)
	if err != nil {
		return nil, err
	}
	tb.Parallelism = parallelism
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: row %d: %w", tb.NumRows()+2, err)
		}
		if err := tb.AppendRow(rec); err != nil {
			return nil, err
		}
	}
	return tb.Finish()
}

// Save writes a table as CSV with a header row.
func Save(path string, t *colstore.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Write streams a table as CSV to w.
func Write(w io.Writer, t *colstore.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	rows, err := t.Rows(0, 0)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

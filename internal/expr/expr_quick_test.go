package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"cods/internal/colstore"
)

// randomPredicate builds a random predicate tree and an equivalent
// row-level evaluator, for differential testing of the bitmap-index
// evaluation against a naive scan.
func randomPredicate(rng *rand.Rand, columns []string, depth int) (string, func(row map[string]string) bool) {
	if depth <= 0 || rng.Intn(3) == 0 {
		col := columns[rng.Intn(len(columns))]
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		op := ops[rng.Intn(len(ops))]
		lit := fmt.Sprintf("%d", rng.Intn(30))
		return fmt.Sprintf("%s %s '%s'", col, op, lit),
			func(row map[string]string) bool { return op.Compare(row[col], lit) }
	}
	switch rng.Intn(3) {
	case 0:
		l, fl := randomPredicate(rng, columns, depth-1)
		r, fr := randomPredicate(rng, columns, depth-1)
		return fmt.Sprintf("(%s AND %s)", l, r),
			func(row map[string]string) bool { return fl(row) && fr(row) }
	case 1:
		l, fl := randomPredicate(rng, columns, depth-1)
		r, fr := randomPredicate(rng, columns, depth-1)
		return fmt.Sprintf("(%s OR %s)", l, r),
			func(row map[string]string) bool { return fl(row) || fr(row) }
	default:
		x, fx := randomPredicate(rng, columns, depth-1)
		return fmt.Sprintf("NOT %s", x),
			func(row map[string]string) bool { return !fx(row) }
	}
}

func TestQuickRandomPredicatesMatchNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	columns := []string{"X", "Y"}
	tb, err := colstore.NewTableBuilder("T", columns, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]string
	for i := 0; i < 500; i++ {
		x := fmt.Sprintf("%d", rng.Intn(25))
		y := fmt.Sprintf("%d", rng.Intn(25))
		tb.AppendRow([]string{x, y})
		rows = append(rows, map[string]string{"X": x, "Y": y})
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		text, naive := randomPredicate(rng, columns, 3)
		node, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, text, err)
		}
		bm, err := node.Eval(tab)
		if err != nil {
			t.Fatalf("trial %d: Eval(%q): %v", trial, text, err)
		}
		var want uint64
		for _, row := range rows {
			if naive(row) {
				want++
			}
		}
		if got := bm.Count(); got != want {
			t.Fatalf("trial %d: %q: bitmap count=%d, naive scan=%d", trial, text, got, want)
		}
	}
}

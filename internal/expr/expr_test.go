package expr

import (
	"testing"

	"cods/internal/colstore"
)

func sampleTable(t *testing.T) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder("T", []string{"name", "age", "city"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"ann", "30", "sf"},
		{"bob", "25", "ny"},
		{"carol", "41", "sf"},
		{"dave", "7", "la"},
		{"erin", "30", "ny"},
	}
	for _, r := range rows {
		tb.AppendRow(r)
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func evalCount(t *testing.T, tab *colstore.Table, pred string) uint64 {
	t.Helper()
	n, err := Parse(pred)
	if err != nil {
		t.Fatalf("Parse(%q): %v", pred, err)
	}
	b, err := n.Eval(tab)
	if err != nil {
		t.Fatalf("Eval(%q): %v", pred, err)
	}
	if b.Len() != tab.NumRows() {
		t.Fatalf("Eval(%q) bitmap covers %d rows, table has %d", pred, b.Len(), tab.NumRows())
	}
	return b.Count()
}

func TestComparisons(t *testing.T) {
	tab := sampleTable(t)
	cases := []struct {
		pred string
		want uint64
	}{
		{"city = 'sf'", 2},
		{"city != 'sf'", 3},
		{"city <> 'sf'", 3},
		{"name = ann", 1},
		{"age = 30", 2},
		{"age < 30", 2}, // 25, 7: numeric, not lexicographic
		{"age <= 30", 4},
		{"age > 30", 1},
		{"age >= 41", 1},
		{"name >= 'carol'", 3}, // lexicographic on strings
		{"age = 99", 0},
	}
	for _, c := range cases {
		if got := evalCount(t, tab, c.pred); got != c.want {
			t.Errorf("%q: count=%d want %d", c.pred, got, c.want)
		}
	}
}

func TestNumericVsLexicographic(t *testing.T) {
	// "7" < "30" numerically but "30" < "7" lexicographically; the
	// numeric path must win when both sides are integers.
	if !OpLt.Compare("7", "30") {
		t.Fatal("7 < 30 should hold numerically")
	}
	if OpLt.Compare("7a", "30") {
		t.Fatal("non-integers sort after all integers: '7a' > '30'")
	}
}

// Compare must be one total order — integers numerically, before every
// non-integer; non-integers lexicographically — with antisymmetry and
// transitivity over mixed values.
func TestCompareTotalOrder(t *testing.T) {
	ordered := []string{"-12", "-1", "0", "7", "9", "10", "123", "", " 3", "10x", "7a", "abc"}
	for i, a := range ordered {
		if Compare(a, a) != 0 {
			t.Errorf("Compare(%q, %q) = %d, want 0", a, a, Compare(a, a))
		}
		for _, b := range ordered[i+1:] {
			if Compare(a, b) >= 0 {
				t.Errorf("Compare(%q, %q) = %d, want < 0", a, b, Compare(a, b))
			}
			if Compare(b, a) <= 0 {
				t.Errorf("Compare(%q, %q) = %d, want > 0", b, a, Compare(b, a))
			}
		}
	}
	// Transitivity over every triple of the (distinct-valued) pool.
	for _, a := range ordered {
		for _, b := range ordered {
			for _, c := range ordered {
				if Compare(a, b) < 0 && Compare(b, c) < 0 && Compare(a, c) >= 0 {
					t.Errorf("transitivity violated: %q < %q < %q but Compare(%q, %q) = %d",
						a, b, c, a, c, Compare(a, c))
				}
			}
		}
	}
}

func TestEvalRowMatchesBitmapEval(t *testing.T) {
	tab := sampleTable(t)
	rows, err := tab.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cols := tab.ColumnNames()
	for _, pred := range []string{
		"city = 'sf' AND age > 30",
		"NOT (name >= 'carol' OR age < 30)",
		"age <= 30 AND city != 'la'",
	} {
		node, err := Parse(pred)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := node.Eval(tab)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			get := func(col string) (string, bool) {
				for ci, cn := range cols {
					if cn == col {
						return row[ci], true
					}
				}
				return "", false
			}
			got, err := node.EvalRow(get)
			if err != nil {
				t.Fatal(err)
			}
			if want := bm.Get(uint64(i)); got != want {
				t.Errorf("%q row %d: EvalRow=%v, bitmap=%v", pred, i, got, want)
			}
		}
	}
}

func TestEvalRowUnknownColumn(t *testing.T) {
	node, err := Parse("age > 30 OR ghost = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	// Even when the known side alone decides the result, the unknown
	// column must surface.
	if _, err := node.EvalRow(func(col string) (string, bool) {
		if col == "age" {
			return "99", true
		}
		return "", false
	}); err == nil {
		t.Fatal("EvalRow with unknown column returned no error")
	}
}

func TestLogicalOperators(t *testing.T) {
	tab := sampleTable(t)
	cases := []struct {
		pred string
		want uint64
	}{
		{"city = 'sf' AND age > 30", 1},
		{"city = 'sf' OR city = 'ny'", 4},
		{"NOT city = 'sf'", 3},
		{"NOT (city = 'sf' OR city = 'ny')", 1},
		{"city = 'sf' AND age > 30 OR name = dave", 2}, // AND binds tighter
		{"city = 'sf' AND (age > 30 OR name = dave)", 1},
		{"not city = 'la' and not city = 'ny'", 2}, // case-insensitive keywords
	}
	for _, c := range cases {
		if got := evalCount(t, tab, c.pred); got != c.want {
			t.Errorf("%q: count=%d want %d", c.pred, got, c.want)
		}
	}
}

func TestQuotedLiterals(t *testing.T) {
	tb, _ := colstore.NewTableBuilder("T", []string{"v"}, nil)
	tb.AppendRow([]string{"it's"})
	tb.AppendRow([]string{"plain"})
	tab, _ := tb.Finish()
	if got := evalCount(t, tab, "v = 'it''s'"); got != 1 {
		t.Fatalf("escaped quote literal: count=%d", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"city",
		"city =",
		"= 'sf'",
		"city = 'sf' AND",
		"(city = 'sf'",
		"city ~ 'sf'",
		"city = 'sf' extra",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestEvalUnknownColumn(t *testing.T) {
	tab := sampleTable(t)
	n, err := Parse("missing = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Eval(tab); err == nil {
		t.Fatal("expected unknown-column error")
	}
}

func TestColumnsCollection(t *testing.T) {
	n, err := Parse("a = 1 AND (b > 2 OR NOT c <= 3)")
	if err != nil {
		t.Fatal(err)
	}
	got := n.Columns(nil)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("columns=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("columns=%v want %v", got, want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	n, err := Parse("a = 1 AND NOT b < 'x'")
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(n.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", n.String(), err)
	}
	if re.String() != n.String() {
		t.Fatalf("not stable: %q vs %q", n.String(), re.String())
	}
}

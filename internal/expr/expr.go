// Package expr implements the small predicate language used by PARTITION
// TABLE and row filters:
//
//	predicate := term { OR term }
//	term      := factor { AND factor }
//	factor    := NOT factor | '(' predicate ')' | comparison
//	comparison:= column op literal
//	op        := = | != | <> | < | <= | > | >=
//
// Column names are bare identifiers; literals are single-quoted strings or
// bare numbers/identifiers. Comparisons follow one total order over all
// values (see Compare): 64-bit integers order numerically and before
// every non-integer value; non-integers order lexicographically. The same
// order drives ORDER BY and MIN/MAX in the query layer, so predicates and
// sorting can never disagree about which of two values is smaller.
//
// Predicates evaluate to WAH bitmaps over a table's rows. Evaluation
// visits each distinct value once per referenced column (a bitmap-index
// scan), never each row.
package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"cods/internal/colstore"
	"cods/internal/wah"
)

// Node is a parsed predicate.
type Node interface {
	// Eval returns the bitmap of rows satisfying the predicate. Equivalent
	// to EvalP with parallelism 1.
	Eval(t *colstore.Table) (*wah.Bitmap, error)
	// EvalP is Eval with bounded parallelism across each referenced
	// column's distinct values (comparison leaves fan their per-value
	// predicate calls and OR accumulation out over a worker pool).
	// parallelism <= 0 means GOMAXPROCS.
	EvalP(t *colstore.Table, parallelism int) (*wah.Bitmap, error)
	// EvalRow evaluates the predicate against a single row presented as a
	// column lookup (value, ok). It exists for data that has no bitmap
	// index yet — the DML delta overlay's appended rows — and agrees
	// exactly with the bitmap evaluation. An unknown column is an error.
	EvalRow(get func(column string) (string, bool)) (bool, error)
	// Columns appends the referenced column names to dst.
	Columns(dst []string) []string
	String() string
}

// Op is a comparison operator.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}

func (o Op) String() string { return opNames[o] }

// Compare totally orders two values: -1, 0 or 1 as a sorts before, equal
// to, or after b. Values that parse as 64-bit integers order numerically
// and sort before every non-integer value; non-integers order
// lexicographically. Ranking integers as a block (instead of comparing a
// number lexicographically against a non-number) is what makes the order
// transitive — "9" < "10" numeric, "10" < "10x", and also "9" < "10x" —
// so it is a strict weak ordering fit for sorting. Every comparison in
// the system goes through this one order: predicates here, ORDER BY and
// MIN/MAX in colquery, RangeScan in the storage layer (which hosts the
// implementation — see colstore.CompareValues).
func Compare(a, b string) int {
	return colstore.CompareValues(a, b)
}

// Compare applies the operator to a column value and a literal under the
// package's total order (see the Compare function).
func (o Op) Compare(value, literal string) bool {
	return o.holds(Compare(value, literal))
}

func (o Op) holds(c int) bool {
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Comparison is a leaf predicate `Column Op Literal`.
type Comparison struct {
	Column  string
	Op      Op
	Literal string
}

// Eval implements Node.
func (c *Comparison) Eval(t *colstore.Table) (*wah.Bitmap, error) {
	return c.EvalP(t, 1)
}

// EvalP implements Node. Evaluation is segment-native: per-distinct-value
// predicate scans run segment by segment so a point predicate on a huge
// segmented table never stitches a whole-table column. Equality against a
// non-integer literal short-circuits to a dictionary probe per segment;
// integer literals cannot (numeric equality admits distinct spellings,
// '07' = '7', which a dictionary lookup would miss — the same exclusion
// delta applies to exact-match key probes).
func (c *Comparison) EvalP(t *colstore.Table, parallelism int) (*wah.Bitmap, error) {
	if c.Op == OpEq {
		if _, err := strconv.ParseInt(c.Literal, 10, 64); err != nil {
			return t.EqBitmap(c.Column, c.Literal)
		}
	}
	return t.ScanWhereBitmap(c.Column, func(v string) bool { return c.Op.Compare(v, c.Literal) }, parallelism)
}

// EvalRow implements Node.
func (c *Comparison) EvalRow(get func(string) (string, bool)) (bool, error) {
	v, ok := get(c.Column)
	if !ok {
		return false, fmt.Errorf("expr: no column %q", c.Column)
	}
	return c.Op.Compare(v, c.Literal), nil
}

// Columns implements Node.
func (c *Comparison) Columns(dst []string) []string { return append(dst, c.Column) }

func (c *Comparison) String() string {
	return fmt.Sprintf("%s %s '%s'", c.Column, c.Op, c.Literal)
}

// Logical is an AND/OR combination of two predicates.
type Logical struct {
	IsAnd bool
	L, R  Node
}

// Eval implements Node.
func (l *Logical) Eval(t *colstore.Table) (*wah.Bitmap, error) {
	return l.EvalP(t, 1)
}

// EvalP implements Node. The worker-pool budget is shared down both
// subtrees rather than multiplied: each leaf fans out over its own distinct
// values, which is where the per-value work lives.
func (l *Logical) EvalP(t *colstore.Table, parallelism int) (*wah.Bitmap, error) {
	lb, err := l.L.EvalP(t, parallelism)
	if err != nil {
		return nil, err
	}
	rb, err := l.R.EvalP(t, parallelism)
	if err != nil {
		return nil, err
	}
	if l.IsAnd {
		return wah.And(lb, rb), nil
	}
	return wah.Or(lb, rb), nil
}

// EvalRow implements Node. Both sides evaluate even when the left one
// already decides the result, so an unknown column in either operand
// surfaces as an error regardless of the row's values — matching the
// bitmap evaluation, which always resolves every referenced column.
func (l *Logical) EvalRow(get func(string) (string, bool)) (bool, error) {
	lv, err := l.L.EvalRow(get)
	if err != nil {
		return false, err
	}
	rv, err := l.R.EvalRow(get)
	if err != nil {
		return false, err
	}
	if l.IsAnd {
		return lv && rv, nil
	}
	return lv || rv, nil
}

// Columns implements Node.
func (l *Logical) Columns(dst []string) []string { return l.R.Columns(l.L.Columns(dst)) }

func (l *Logical) String() string {
	op := "OR"
	if l.IsAnd {
		op = "AND"
	}
	return fmt.Sprintf("(%s %s %s)", l.L, op, l.R)
}

// Not negates a predicate.
type Not struct{ X Node }

// Eval implements Node.
func (n *Not) Eval(t *colstore.Table) (*wah.Bitmap, error) {
	return n.EvalP(t, 1)
}

// EvalP implements Node.
func (n *Not) EvalP(t *colstore.Table, parallelism int) (*wah.Bitmap, error) {
	b, err := n.X.EvalP(t, parallelism)
	if err != nil {
		return nil, err
	}
	return b.Not(), nil
}

// EvalRow implements Node.
func (n *Not) EvalRow(get func(string) (string, bool)) (bool, error) {
	v, err := n.X.EvalRow(get)
	if err != nil {
		return false, err
	}
	return !v, nil
}

// Columns implements Node.
func (n *Not) Columns(dst []string) []string { return n.X.Columns(dst) }

func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.X) }

// Parse parses a predicate expression.
func Parse(input string) (Node, error) {
	p := &parser{toks: lex(input), input: input}
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("expr: trailing input at %q", p.toks[p.pos].text)
	}
	return node, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokOp
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case r == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case strings.ContainsRune("=!<>", r):
			j := i + 1
			if j < len(s) && (s[j] == '=' || (s[i] == '<' && s[j] == '>')) {
				j++
			}
			toks = append(toks, token{tokOp, s[i:j]})
			i = j
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) && !strings.ContainsRune("()=!<>'", rune(s[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		}
	}
	return toks
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokIdent || !strings.EqualFold(t.text, "OR") {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Logical{IsAnd: false, L: left, R: right}
	}
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokIdent || !strings.EqualFold(t.text, "AND") {
			return left, nil
		}
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &Logical{IsAnd: true, L: left, R: right}
	}
}

func (p *parser) parseFactor() (Node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("expr: unexpected end of input in %q", p.input)
	}
	if t.kind == tokIdent && strings.EqualFold(t.text, "NOT") {
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	if t.kind == tokLParen {
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		t, ok = p.peek()
		if !ok || t.kind != tokRParen {
			return nil, fmt.Errorf("expr: missing ')' in %q", p.input)
		}
		p.pos++
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Node, error) {
	col, ok := p.peek()
	if !ok || col.kind != tokIdent {
		return nil, fmt.Errorf("expr: expected column name, got %q", col.text)
	}
	p.pos++
	opTok, ok := p.peek()
	if !ok || opTok.kind != tokOp {
		return nil, fmt.Errorf("expr: expected operator after %q", col.text)
	}
	p.pos++
	var op Op
	switch opTok.text {
	case "=", "==":
		op = OpEq
	case "!=", "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("expr: unknown operator %q", opTok.text)
	}
	lit, ok := p.peek()
	if !ok || (lit.kind != tokIdent && lit.kind != tokString) {
		return nil, fmt.Errorf("expr: expected literal after %q %s", col.text, opTok.text)
	}
	p.pos++
	return &Comparison{Column: col.text, Op: op, Literal: lit.text}, nil
}

package delta

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cods/internal/colstore"
	"cods/internal/expr"
)

func pred(t *testing.T, condition string) expr.Node {
	t.Helper()
	node, err := expr.Parse(condition)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

func baseTable(t *testing.T) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder("emp", []string{"Name", "Skill", "City"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{
		{"jones", "typing", "sf"},
		{"ellis", "alchemy", "la"},
		{"smith", "typing", "sf"},
		{"adams", "juggling", "ny"},
	} {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func sorted(rows [][]string) [][]string {
	out := append([][]string(nil), rows...)
	sort.Slice(out, func(a, b int) bool {
		return fmt.Sprint(out[a]) < fmt.Sprint(out[b])
	})
	return out
}

// assertMerged checks that the overlay's merged reads (Query, Count,
// NumRows) and its flushed table agree on the expected tuple set — the
// core invariant: reads through the overlay and reads of the compacted
// base are indistinguishable.
func assertMerged(t *testing.T, o *Overlay, want [][]string) {
	t.Helper()
	if n := o.NumRows(); n != uint64(len(want)) {
		t.Fatalf("NumRows = %d, want %d", n, len(want))
	}
	got, err := o.Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sorted(got), sorted(want)) {
		t.Fatalf("Query(all) = %v, want %v", sorted(got), sorted(want))
	}
	n, err := o.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(want)) {
		t.Fatalf("Count(all) = %d, want %d", n, len(want))
	}
	flushed, err := o.Table()
	if err != nil {
		t.Fatal(err)
	}
	if flushed.NumRows() != uint64(len(want)) {
		t.Fatalf("flushed rows = %d, want %d", flushed.NumRows(), len(want))
	}
	if err := flushed.Validate(); err != nil {
		t.Fatalf("flushed table invalid: %v", err)
	}
	frows, err := flushed.Rows(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sorted(frows), sorted(want)) {
		t.Fatalf("flushed rows = %v, want %v", sorted(frows), sorted(want))
	}
}

func TestInsertDeleteUpdateMerged(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	if o.Dirty() {
		t.Fatal("clean overlay reports dirty")
	}

	o1, err := o.Insert([]string{"brown", "typing", "sf"})
	if err != nil {
		t.Fatal(err)
	}
	assertMerged(t, o1, [][]string{
		{"jones", "typing", "sf"},
		{"ellis", "alchemy", "la"},
		{"smith", "typing", "sf"},
		{"adams", "juggling", "ny"},
		{"brown", "typing", "sf"},
	})

	// Delete hits one base row and one appended row.
	o2, n, err := o1.Delete("Name = 'smith' OR Name = 'brown'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Delete removed %d rows, want 2", n)
	}
	assertMerged(t, o2, [][]string{
		{"jones", "typing", "sf"},
		{"ellis", "alchemy", "la"},
		{"adams", "juggling", "ny"},
	})

	// Update hits base rows (delete+reinsert) and leaves others alone.
	o3, n, err := o2.Update("City", "oakland", "City = 'sf' OR City = 'la'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Update changed %d rows, want 2", n)
	}
	assertMerged(t, o3, [][]string{
		{"jones", "typing", "oakland"},
		{"ellis", "alchemy", "oakland"},
		{"adams", "juggling", "ny"},
	})

	// Update of an appended row rewrites it in place.
	o4, err := o3.Insert([]string{"kim", "typing", "sf"})
	if err != nil {
		t.Fatal(err)
	}
	o5, n, err := o4.Update("Skill", "editing", "Name = 'kim'")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Update changed %d rows, want 1", n)
	}
	assertMerged(t, o5, [][]string{
		{"jones", "typing", "oakland"},
		{"ellis", "alchemy", "oakland"},
		{"adams", "juggling", "ny"},
		{"kim", "editing", "sf"},
	})

	// Filtered merged reads see base and tail consistently.
	cnt, err := o5.Count(pred(t, "Skill = 'editing' OR City = 'oakland'"))
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 3 {
		t.Fatalf("filtered Count = %d, want 3", cnt)
	}
}

// Copy-on-write: DML on a derived overlay must never change what an
// earlier overlay (a published snapshot) observes.
func TestOverlayCopyOnWrite(t *testing.T) {
	o0 := Wrap(baseTable(t), 1)
	o1, err := o0.Insert([]string{"brown", "typing", "sf"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o1.Delete(""); err != nil {
		t.Fatal(err)
	}
	if _, _, err = o1.Update("City", "x", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := o1.Insert([]string{"pena", "ops", "ny"}); err != nil {
		t.Fatal(err)
	}
	// o0 and o1 are unchanged by everything derived from them.
	if n := o0.NumRows(); n != 4 {
		t.Fatalf("o0.NumRows = %d after derived DML, want 4", n)
	}
	if n := o1.NumRows(); n != 5 {
		t.Fatalf("o1.NumRows = %d after derived DML, want 5", n)
	}
	rows, err := o1.Query(pred(t, "Name = 'brown'"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2] != "sf" {
		t.Fatalf("o1 brown row = %v, want [brown typing sf]", rows)
	}
	// Mutating a Query result must not leak into the overlay.
	rows[0][2] = "corrupted"
	again, err := o1.Query(pred(t, "Name = 'brown'"))
	if err != nil {
		t.Fatal(err)
	}
	if again[0][2] != "sf" {
		t.Fatal("mutating a Query result corrupted the overlay")
	}
}

// Two lineages branching off one overlay (the shape a rollback produces)
// must not share appended slots: the arena lets only the tip extend the
// backing array in place; the branch copies.
func TestInsertBranchingLineages(t *testing.T) {
	o0 := Wrap(baseTable(t), 1)
	parent, err := o0.Insert([]string{"p", "s", "c"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := parent.Insert([]string{"branchA", "s", "c"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := parent.Insert([]string{"branchB", "s", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for name, o := range map[string]*Overlay{"A": a, "B": b} {
		own, other := "branchA", "branchB"
		if name == "B" {
			own, other = other, own
		}
		if n, err := o.Count(pred(t, fmt.Sprintf("Name = '%s'", own))); err != nil || n != 1 {
			t.Fatalf("branch %s misses its own row: %d (%v)", name, n, err)
		}
		if n, err := o.Count(pred(t, fmt.Sprintf("Name = '%s'", other))); err != nil || n != 0 {
			t.Fatalf("branch %s sees the other branch's row: %d (%v)", name, n, err)
		}
		if n := o.NumRows(); n != 6 {
			t.Fatalf("branch %s NumRows = %d, want 6", name, n)
		}
	}
	if n := parent.NumRows(); n != 5 {
		t.Fatalf("parent NumRows = %d after branch inserts, want 5", n)
	}

	// A derived (Delete/Update) overlay over a shared backing array must
	// also be insulated: inserts after a no-op delete cannot collide with
	// the original lineage's next insert.
	noop, _, err := parent.Delete("Name = 'nobody'")
	if err != nil {
		t.Fatal(err)
	}
	c, err := noop.Insert([]string{"branchC", "s", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := a.Count(pred(t, "Name = 'branchC'")); err != nil || n != 0 {
		t.Fatalf("derived-branch insert leaked into lineage A: %d (%v)", n, err)
	}
	if n, err := c.Count(pred(t, "Name = 'branchA'")); err != nil || n != 0 {
		t.Fatalf("lineage A's insert leaked into derived branch: %d (%v)", n, err)
	}
}

// A long linear chain of inserts (the common DML shape) stays correct
// while extending the shared backing array in place.
func TestInsertLinearChain(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	var err error
	for i := 0; i < 500; i++ {
		if o, err = o.Insert([]string{fmt.Sprintf("n%03d", i), "s", "c"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := o.NumRows(); n != 504 {
		t.Fatalf("NumRows = %d, want 504", n)
	}
	if n, err := o.Count(pred(t, "Name = 'n037'")); err != nil || n != 1 {
		t.Fatalf("Count(n037) = %d (%v), want 1", n, err)
	}
	flushed, err := o.Table()
	if err != nil {
		t.Fatal(err)
	}
	if flushed.NumRows() != 504 {
		t.Fatalf("flushed rows = %d, want 504", flushed.NumRows())
	}
	if err := flushed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllAndEmptyTable(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	o1, n, err := o.Delete("")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("Delete(all) removed %d, want 4", n)
	}
	assertMerged(t, o1, nil)
	// Inserting into the emptied table works and flushes.
	o2, err := o1.Insert([]string{"new", "skill", "city"})
	if err != nil {
		t.Fatal(err)
	}
	assertMerged(t, o2, [][]string{{"new", "skill", "city"}})
}

func TestInsertArityAndUnknownColumn(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	if _, err := o.Insert([]string{"too", "few"}); err == nil {
		t.Fatal("short INSERT accepted")
	}
	if _, _, err := o.Update("Ghost", "v", ""); err == nil {
		t.Fatal("UPDATE of unknown column accepted")
	}
	if _, _, err := o.Delete("Ghost = 'x'"); err == nil {
		t.Fatal("DELETE with unknown predicate column accepted")
	}
}

// Flushing preserves dictionary sharing semantics: surviving base values
// keep working, vanished values are dropped, new values appear.
func TestFlushDictionaryHygiene(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	o1, n, err := o.Delete("Skill = 'alchemy'")
	if err != nil || n != 1 {
		t.Fatalf("Delete: n=%d err=%v", n, err)
	}
	o2, err := o1.Insert([]string{"nova", "welding", "sf"})
	if err != nil {
		t.Fatal(err)
	}
	flushed, err := o2.Table()
	if err != nil {
		t.Fatal(err)
	}
	skill, err := flushed.Column("Skill")
	if err != nil {
		t.Fatal(err)
	}
	// typing, juggling survive; alchemy vanished; welding is new.
	if got := skill.DistinctCount(); got != 3 {
		t.Fatalf("Skill distinct = %d, want 3", got)
	}
	if err := flushed.Validate(); err != nil {
		t.Fatal(err)
	}
}

// DML must respect declared keys: the evolution operators' key–FK
// assumptions and ValidateKey depend on them being real.
func TestDMLEnforcesDeclaredKey(t *testing.T) {
	tb, err := colstore.NewTableBuilder("kv", []string{"K", "V"}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		tb.AppendRow(r)
	}
	base, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(base, 1)

	if _, err := o.Insert([]string{"a", "9"}); err == nil {
		t.Fatal("duplicate-key INSERT accepted")
	}
	o1, err := o.Insert([]string{"d", "4"})
	if err != nil {
		t.Fatal(err)
	}
	// A duplicate against the appended tail is also caught.
	if _, err := o1.Insert([]string{"d", "5"}); err == nil {
		t.Fatal("duplicate-key INSERT against appended row accepted")
	}
	// Deleting a key frees it for re-insertion.
	o2, n, err := o1.Delete("K = 'a'")
	if err != nil || n != 1 {
		t.Fatalf("Delete: n=%d err=%v", n, err)
	}
	o3, err := o2.Insert([]string{"a", "10"})
	if err != nil {
		t.Fatalf("re-insert of deleted key rejected: %v", err)
	}

	// UPDATE of the key column to a colliding value is rejected; to a
	// fresh value it passes.
	if _, _, err := o3.Update("K", "b", "V = '3'"); err == nil {
		t.Fatal("key-colliding UPDATE accepted")
	}
	o4, n, err := o3.Update("K", "z", "V = '3'")
	if err != nil || n != 1 {
		t.Fatalf("key UPDATE to fresh value: n=%d err=%v", n, err)
	}
	flushed, err := o4.Table()
	if err != nil {
		t.Fatal(err)
	}
	if err := flushed.ValidateKey(); err != nil {
		t.Fatal(err)
	}
	// Two matched rows collapsing onto one key value collide with each
	// other, and a rewritten key colliding with an appended row is caught
	// too. (o4 holds {b:2, z:3, d:4, a:10}.)
	if _, _, err := o4.Update("K", "w", "V = '2' OR V = '3'"); err == nil {
		t.Fatal("key UPDATE collapsing two rows accepted")
	}
	if _, _, err := o4.Update("K", "d", "V = '2'"); err == nil {
		t.Fatal("key UPDATE colliding with an appended row accepted")
	}
	// Non-key updates are never key-checked (same value on many rows).
	if _, n, err := o4.Update("V", "0", ""); err != nil || n != 4 {
		t.Fatalf("non-key UPDATE: n=%d err=%v", n, err)
	}
}

// Paged merged reads must agree exactly with paging the flushed table —
// same rows, same order, every offset/limit — without flushing.
func TestRowsPagingMatchesFlush(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	var err error
	for i := 0; i < 7; i++ {
		if o, err = o.Insert([]string{fmt.Sprintf("n%d", i), "s", "c"}); err != nil {
			t.Fatal(err)
		}
	}
	var n uint64
	if o, n, err = o.Delete("Name = 'ellis' OR Name = 'n3'"); err != nil || n != 2 {
		t.Fatalf("Delete: n=%d err=%v", n, err)
	}
	if o, n, err = o.Update("City", "zz", "Name = 'jones'"); err != nil || n != 1 {
		t.Fatalf("Update: n=%d err=%v", n, err)
	}
	flushed, err := o.Table()
	if err != nil {
		t.Fatal(err)
	}
	total := o.NumRows()
	if flushed.NumRows() != total {
		t.Fatalf("flushed %d rows, overlay %d", flushed.NumRows(), total)
	}
	for offset := uint64(0); offset <= total+1; offset++ {
		for _, limit := range []uint64{0, 1, 2, 3, total, total + 5} {
			got, err := o.Rows(offset, limit)
			if err != nil {
				t.Fatalf("Rows(%d, %d): %v", offset, limit, err)
			}
			want, err := flushed.Rows(offset, limit)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Rows(%d, %d) = %v, want %v", offset, limit, got, want)
			}
		}
	}
}

// RENAME carries the overlay: same pending DML, new name, no flush.
func TestWithNamePreservesDelta(t *testing.T) {
	o := Wrap(baseTable(t), 1)
	o1, err := o.Insert([]string{"kim", "editing", "ny"})
	if err != nil {
		t.Fatal(err)
	}
	o2, n, err := o1.Delete("Name = 'adams'")
	if err != nil || n != 1 {
		t.Fatalf("Delete: n=%d err=%v", n, err)
	}
	r := o2.WithName("emp2")
	if r.Name() != "emp2" {
		t.Fatalf("Name = %q", r.Name())
	}
	if !r.Dirty() || r.PendingAdded() != 1 || r.PendingDeleted() != 1 {
		t.Fatalf("rename dropped overlay state: added=%d deleted=%d", r.PendingAdded(), r.PendingDeleted())
	}
	if n := r.NumRows(); n != 4 {
		t.Fatalf("NumRows = %d, want 4", n)
	}
	// The renamed lineage keeps inserting through the shared arena.
	r2, err := r.Insert([]string{"lee", "ops", "sf"})
	if err != nil {
		t.Fatal(err)
	}
	if cnt, err := r2.Count(pred(t, "Name = 'lee'")); err != nil || cnt != 1 {
		t.Fatalf("post-rename insert: %d (%v)", cnt, err)
	}
	tab, err := r2.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "emp2" || tab.NumRows() != 5 {
		t.Fatalf("flushed renamed table = %s/%d rows", tab.Name(), tab.NumRows())
	}
}

// keyedBase builds a keyed K,V table with rows a..c for key-index tests.
func keyedBase(t *testing.T) *colstore.Table {
	t.Helper()
	tb, err := colstore.NewTableBuilder("kv", []string{"K", "V"}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		tb.AppendRow(r)
	}
	base, err := tb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// The arena's key index must honor view lengths across branches: after a
// rollback to an older version, keys claimed only by the abandoned newer
// versions are free again, while keys within the rolled-back view still
// conflict. This is the branch-after-rollback contract of the amortized
// keyConflict.
func TestKeyIndexBranchAfterRollback(t *testing.T) {
	o := Wrap(keyedBase(t), 1)
	v1, err := o.Insert([]string{"d", "4"})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := v1.Insert([]string{"e", "5"})
	if err != nil {
		t.Fatal(err)
	}
	// "Rollback" to v1: v2's key 'e' lives only beyond v1's view of the
	// shared arena and must not conflict there.
	branch, err := v1.Insert([]string{"e", "50"})
	if err != nil {
		t.Fatalf("key abandoned by rollback still conflicts: %v", err)
	}
	// Keys within the rolled-back view still conflict on the branch.
	if _, err := branch.Insert([]string{"d", "40"}); err == nil {
		t.Fatal("duplicate of retained key accepted on branch")
	}
	if _, err := branch.Insert([]string{"a", "9"}); err == nil {
		t.Fatal("duplicate of base key accepted on branch")
	}
	// Both lineages stay internally consistent and flush to valid keys.
	for name, ov := range map[string]*Overlay{"abandoned": v2, "branch": branch} {
		tab, err := ov.Table()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tab.ValidateKey(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tab.NumRows() != 5 {
			t.Fatalf("%s: rows = %d, want 5", name, tab.NumRows())
		}
	}
	// The abandoned tip's own view still sees its key.
	if _, err := v2.Insert([]string{"e", "51"}); err == nil {
		t.Fatal("duplicate key accepted on abandoned tip")
	}
}

// A base-only DELETE (or no-op UPDATE) carries the append arena forward:
// the next INSERT of the lineage extends the shared backing array in
// place instead of copying the pending tail.
func TestDeriveCarriesArena(t *testing.T) {
	o := Wrap(keyedBase(t), 1)
	var err error
	for i := 0; i < 10; i++ {
		if o, err = o.Insert([]string{fmt.Sprintf("n%02d", i), "v"}); err != nil {
			t.Fatal(err)
		}
	}
	del, n, err := o.Delete("K = 'a'")
	if err != nil || n != 1 {
		t.Fatalf("Delete: n=%d err=%v", n, err)
	}
	if del.ar != o.ar {
		t.Fatal("base-only Delete severed the append arena")
	}
	ins, err := del.Insert([]string{"x", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if ins.ar != o.ar {
		t.Fatal("insert after base-only Delete copied the tail (new arena)")
	}
	if &ins.added[0] != &o.added[0] {
		t.Fatal("insert after base-only Delete reallocated the backing array")
	}
	// A key freed by the DELETE is insertable, and lands in the index.
	re, err := ins.Insert([]string{"a", "back"})
	if err != nil {
		t.Fatalf("re-insert of base-deleted key rejected: %v", err)
	}
	if _, err := re.Insert([]string{"a", "again"}); err == nil {
		t.Fatal("duplicate of re-inserted key accepted")
	}
	// Deleting an appended row rebuilds the tail with a fresh arena and a
	// rebuilt index: its key frees, the others still conflict.
	cut, n, err := re.Delete("K = 'n03'")
	if err != nil || n != 1 {
		t.Fatalf("Delete appended: n=%d err=%v", n, err)
	}
	if cut.ar == re.ar {
		t.Fatal("appended-row Delete must own a fresh arena")
	}
	if _, err := cut.Insert([]string{"n03", "v2"}); err != nil {
		t.Fatalf("re-insert of tail-deleted key rejected: %v", err)
	}
	if _, err := cut.Insert([]string{"n04", "v2"}); err == nil {
		t.Fatal("duplicate of surviving tail key accepted after rebuild")
	}
	assertMerged(t, cut, [][]string{
		{"b", "2"}, {"c", "3"},
		{"n00", "v"}, {"n01", "v"}, {"n02", "v"}, {"n04", "v"},
		{"n05", "v"}, {"n06", "v"}, {"n07", "v"}, {"n08", "v"}, {"n09", "v"},
		{"x", "v"}, {"a", "back"},
	})
}

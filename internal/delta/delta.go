// Package delta implements the DML overlay that makes tables writable
// without giving up the immutable bitmap-indexed column store: each table
// in the catalog is a base colstore.Table (never mutated) plus an Overlay
// of appended rows and a deletion bitmap over the base. INSERT appends to
// the overlay, DELETE marks base rows in the bitmap (and drops appended
// rows), UPDATE is delete-plus-reinsert of the changed rows. Every DML
// statement produces a new Overlay value (copy-on-write), so the engine's
// published catalog snapshots stay immutable and lock-free readers keep
// working unchanged while writes commit.
//
// Reads merge base and delta: filtered reads evaluate predicates on the
// base's bitmap index as usual, mask out deleted rows with one compressed
// AND-NOT, and scan only the (small) appended tail row-wise with
// expr.Node.EvalRow. Whole-table access (aggregation queries, evolution
// operators, checkpoints) goes through Table, which flushes the overlay
// into a rebuilt base — computed at most once per overlay version and
// cached, so an evolution operator or checkpoint "compacting the delta"
// is the same code path as a heavy read. Schema Modification Operators
// always consume the flushed table, which keeps the paper's evolution
// algorithms oblivious to DML.
package delta

import (
	"fmt"
	"strings"
	"sync"

	"cods/internal/colstore"
	"cods/internal/expr"
	"cods/internal/par"
	"cods/internal/wah"
)

// arena coordinates in-place extension of one shared appended-rows
// backing array across the overlay versions that view prefixes of it.
// tip is the authoritative number of rows written to the array: an
// overlay whose view length equals tip (and with spare capacity) is the
// newest version and may claim the next slot; any other overlay must
// copy. This makes a linear chain of INSERTs — each statement deriving
// from the last — amortized O(1) instead of O(rows-so-far), while a
// branch (e.g. DML after a rollback to an older version) safely copies.
// Readers never touch slots beyond their own view length, so claimed
// slots racing reads of older views is not possible.
type arena struct {
	mu  sync.Mutex
	tip int
}

// Overlay is an immutable view of one table: a base column-store table
// plus pending DML. The zero overlay (fresh from Wrap) is the base table
// itself. Methods returning *Overlay never mutate the receiver.
type Overlay struct {
	base *colstore.Table
	// byName maps column names to schema positions; built once in Wrap
	// (the schema never changes within a lineage) and shared by every
	// derived overlay.
	byName map[string]int
	// added holds rows appended since the base was built, in schema
	// order. Row slices are never mutated after they enter an overlay;
	// the backing array may be shared with newer versions (see arena).
	added [][]string
	// ar guards extension of added's backing array; nil until the first
	// insert of a lineage.
	ar *arena
	// deleted marks base-row positions removed by DELETE/UPDATE; nil
	// means none. Never mutated once set (bitmap algebra allocates).
	deleted  *wah.Bitmap
	nDeleted uint64
	// parallelism bounds the worker pool for bitmap work (predicate
	// evaluation, filtering, flush); 0 means GOMAXPROCS.
	parallelism int

	// flush cache: an overlay is immutable, so the merged table is
	// computed at most once and shared by every reader of this version.
	flushOnce sync.Once
	flushed   *colstore.Table
	flushErr  error
}

// Wrap returns a clean overlay over a base table. parallelism bounds
// bitmap work for this overlay and its descendants (0 = GOMAXPROCS).
func Wrap(base *colstore.Table, parallelism int) *Overlay {
	byName := make(map[string]int, base.NumColumns())
	for i, c := range base.ColumnNames() {
		byName[c] = i
	}
	return &Overlay{base: base, byName: byName, parallelism: parallelism}
}

// WithName returns an overlay over the same DML state with the base
// renamed. Rename is metadata-only on a column store, so the appended
// tail, deletion bitmap and append arena carry forward untouched — the
// arena in particular must be shared, not copied, so a lineage that
// branches across the rename still coordinates backing-array claims.
func (o *Overlay) WithName(name string) *Overlay {
	return &Overlay{
		base: o.base.WithName(name), byName: o.byName,
		added: o.added, ar: o.ar,
		deleted: o.deleted, nDeleted: o.nDeleted,
		parallelism: o.parallelism,
	}
}

// Base returns the underlying immutable table (schema authority; its row
// set ignores pending DML).
func (o *Overlay) Base() *colstore.Table { return o.base }

// Name returns the table name.
func (o *Overlay) Name() string { return o.base.Name() }

// ColumnNames returns the schema's column names in order. DML never
// changes the schema, so the base is authoritative.
func (o *Overlay) ColumnNames() []string { return o.base.ColumnNames() }

// Dirty reports whether the overlay carries pending DML.
func (o *Overlay) Dirty() bool { return len(o.added) > 0 || o.nDeleted > 0 }

// PendingAdded returns the number of appended rows not yet compacted.
func (o *Overlay) PendingAdded() int { return len(o.added) }

// PendingDeleted returns the number of base rows marked deleted.
func (o *Overlay) PendingDeleted() uint64 { return o.nDeleted }

// NumRows returns the merged row count, without flushing.
func (o *Overlay) NumRows() uint64 {
	return o.base.NumRows() - o.nDeleted + uint64(len(o.added))
}

// derive copies the overlay's DML state for a new version (Delete and
// Update). The capacity clamp severs the result from the arena protocol:
// with no spare capacity and no arena, the next Insert of this lineage
// must copy into a fresh array — so a derive over a shared backing array
// (e.g. Update matching nothing returns o.added unchanged) can never
// hand out a second claim on slots another lineage extends into. The
// flush cache is deliberately not carried over.
func (o *Overlay) derive(added [][]string, deleted *wah.Bitmap) *Overlay {
	added = added[:len(added):len(added)]
	n := &Overlay{base: o.base, byName: o.byName, added: added, deleted: deleted, parallelism: o.parallelism}
	if deleted != nil {
		n.nDeleted = deleted.Count()
	}
	return n
}

// keyConflict reports whether row's values in the declared key columns
// already appear in a live merged row. The evolution operators (MERGE's
// key–FK join in particular) and ValidateKey rely on declared keys being
// real, so the DML write path must not be a hole that lets duplicates
// in. Cost per call: one dictionary EqScan + compressed AND per key
// column, plus a scan of the appended tail.
func (o *Overlay) keyConflict(row []string) (bool, error) {
	key := o.base.Key()
	if len(key) == 0 {
		return false, nil
	}
	hit, err := o.baseKeyMatch(key, row, o.deleted)
	if err != nil {
		return false, err
	}
	if hit {
		return true, nil
	}
	for _, a := range o.added {
		same := true
		for _, k := range key {
			if a[o.byName[k]] != row[o.byName[k]] {
				same = false
				break
			}
		}
		if same {
			return true, nil
		}
	}
	return false, nil
}

// baseKeyMatch reports whether any base row not masked out by del holds
// row's values in the kcols columns: one dictionary EqScan plus a
// compressed AND per key column.
func (o *Overlay) baseKeyMatch(kcols []string, row []string, del *wah.Bitmap) (bool, error) {
	var mask *wah.Bitmap
	for _, k := range kcols {
		col, err := o.base.Column(k)
		if err != nil {
			return false, err
		}
		bm := col.EqScan(row[o.byName[k]])
		if mask == nil {
			mask = bm
		} else {
			mask = wah.And(mask, bm)
		}
		if !mask.Any() {
			return false, nil
		}
	}
	if del != nil {
		mask = wah.AndNot(mask, del)
	}
	return mask.Any(), nil
}

// Insert returns an overlay with one row appended. The row must match
// the schema's arity and respect the table's declared key; values are
// copied.
func (o *Overlay) Insert(row []string) (*Overlay, error) {
	if len(row) != o.base.NumColumns() {
		return nil, fmt.Errorf("delta: INSERT into %s has %d values, schema has %d columns",
			o.Name(), len(row), o.base.NumColumns())
	}
	if conflict, err := o.keyConflict(row); err != nil {
		return nil, err
	} else if conflict {
		return nil, fmt.Errorf("delta: INSERT into %s violates key %v", o.Name(), o.base.Key())
	}
	row = append([]string(nil), row...)
	n := &Overlay{base: o.base, byName: o.byName, deleted: o.deleted, nDeleted: o.nDeleted, parallelism: o.parallelism}
	if o.ar != nil {
		o.ar.mu.Lock()
		if o.ar.tip == len(o.added) && cap(o.added) > len(o.added) {
			// This overlay is the tip of its lineage and the backing array
			// has room: claim the next slot in place. Older views never
			// read past their own length, so the write is invisible to
			// them.
			n.added = append(o.added, row)
			n.ar = o.ar
			o.ar.tip++
			o.ar.mu.Unlock()
			return n, nil
		}
		o.ar.mu.Unlock()
	}
	// First insert of a lineage, a full backing array, or a branch (DML
	// deriving from a non-tip version, e.g. after rollback): copy into a
	// fresh array with doubling headroom, owned by a new arena.
	n.added = make([][]string, len(o.added), 2*(len(o.added)+1))
	copy(n.added, o.added)
	n.added = append(n.added, row)
	n.ar = &arena{tip: len(n.added)}
	return n, nil
}

// parse compiles a condition, with "" meaning all rows (nil Node).
func parse(condition string) (expr.Node, error) {
	if condition == "" {
		return nil, nil
	}
	return expr.Parse(condition)
}

// liveBaseMatches returns the bitmap of not-deleted base rows matching
// pred (nil pred = all live rows).
func (o *Overlay) liveBaseMatches(pred expr.Node) (*wah.Bitmap, error) {
	var mask *wah.Bitmap
	if pred == nil {
		mask = wah.New()
		mask.AppendRun(1, o.base.NumRows())
	} else {
		var err error
		if mask, err = pred.EvalP(o.base, o.parallelism); err != nil {
			return nil, err
		}
	}
	if o.deleted == nil {
		return mask, nil
	}
	return wah.AndNot(mask, o.deleted), nil
}

// matchAdded evaluates pred row-wise over the appended tail, returning
// matching indices (all indices for nil pred).
func (o *Overlay) matchAdded(pred expr.Node) ([]int, error) {
	idx := make([]int, 0, len(o.added))
	for i, row := range o.added {
		if pred == nil {
			idx = append(idx, i)
			continue
		}
		ok, err := pred.EvalRow(func(col string) (string, bool) {
			ci, ok := o.byName[col]
			if !ok {
				return "", false
			}
			return row[ci], true
		})
		if err != nil {
			return nil, err
		}
		if ok {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

// Delete returns an overlay with the rows matching condition removed
// (every row when condition is empty) and the number of rows it removed.
func (o *Overlay) Delete(condition string) (*Overlay, uint64, error) {
	pred, err := parse(condition)
	if err != nil {
		return nil, 0, err
	}
	hit, err := o.liveBaseMatches(pred)
	if err != nil {
		return nil, 0, err
	}
	removed := hit.Count()
	deleted := o.deleted
	if removed > 0 {
		if deleted == nil {
			deleted = hit
		} else {
			deleted = wah.Or(deleted, hit)
		}
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return nil, 0, err
	}
	added := o.added
	if len(addedHit) > 0 {
		removed += uint64(len(addedHit))
		added = make([][]string, 0, len(o.added)-len(addedHit))
		drop := make(map[int]bool, len(addedHit))
		for _, i := range addedHit {
			drop[i] = true
		}
		for i, row := range o.added {
			if !drop[i] {
				added = append(added, row)
			}
		}
	}
	return o.derive(added, deleted), removed, nil
}

// Update returns an overlay with column set to value on every row
// matching condition (all rows when empty), plus the number of rows
// changed. Matching base rows are marked deleted and re-appended with the
// new value — delete-plus-reinsert — so an updated base row moves to the
// appended tail until the next flush.
func (o *Overlay) Update(column, value, condition string) (*Overlay, uint64, error) {
	ci, ok := o.byName[column]
	if !ok {
		return nil, 0, fmt.Errorf("delta: table %s has no column %q", o.Name(), column)
	}
	pred, err := parse(condition)
	if err != nil {
		return nil, 0, err
	}
	hit, err := o.liveBaseMatches(pred)
	if err != nil {
		return nil, 0, err
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return nil, 0, err
	}
	changed := hit.Count() + uint64(len(addedHit))
	if changed == 0 {
		return o.derive(o.added, o.deleted), 0, nil
	}

	added := make([][]string, 0, len(o.added)+int(hit.Count()))
	rewrite := make(map[int]bool, len(addedHit))
	for _, i := range addedHit {
		rewrite[i] = true
	}
	for i, row := range o.added {
		if rewrite[i] {
			nr := append([]string(nil), row...)
			nr[ci] = value
			row = nr
		}
		added = append(added, row)
	}
	deleted := o.deleted
	if hit.Any() {
		// Materialize the matched base rows (bitmap filtering, the same
		// primitive evolutions use), rewrite the column, re-append.
		matched, err := o.base.FilterRowsP(o.Name(), hit, o.parallelism)
		if err != nil {
			return nil, 0, err
		}
		rows, err := matched.Rows(0, 0)
		if err != nil {
			return nil, 0, err
		}
		for _, row := range rows {
			row[ci] = value
			added = append(added, row)
		}
		if deleted == nil {
			deleted = hit
		} else {
			deleted = wah.Or(deleted, hit)
		}
	}
	// Updating a key column can collide rewritten rows with each other or
	// with untouched rows. Check each rewritten row's new key tuple —
	// against the other rewritten rows, the surviving base (the rewritten
	// base rows' old selves are excluded via the deletion mask), and the
	// unchanged tail — at O(changed × key columns) like INSERT's check,
	// instead of rebuilding and re-validating the whole table.
	isKey := false
	for _, k := range o.base.Key() {
		if k == column {
			isKey = true
			break
		}
	}
	if isKey && changed > 0 {
		kcols := o.base.Key()
		tuple := func(row []string) string {
			var sb strings.Builder
			for _, k := range kcols {
				sb.WriteString(row[o.byName[k]])
				sb.WriteByte(0)
			}
			return sb.String()
		}
		keyErr := func() error {
			return fmt.Errorf("delta: UPDATE %s violates key %v", o.Name(), kcols)
		}
		seen := make(map[string]bool, changed)
		for i, row := range added {
			if i < len(o.added) && !rewrite[i] {
				continue
			}
			kt := tuple(row)
			if seen[kt] {
				return nil, 0, keyErr()
			}
			seen[kt] = true
			inBase, err := o.baseKeyMatch(kcols, row, deleted)
			if err != nil {
				return nil, 0, err
			}
			if inBase {
				return nil, 0, keyErr()
			}
		}
		for i, row := range o.added {
			if !rewrite[i] && seen[tuple(row)] {
				return nil, 0, keyErr()
			}
		}
	}
	return o.derive(added, deleted), changed, nil
}

// Count returns the number of merged rows satisfying pred (nil = all)
// without materializing them: a compressed popcount over the base plus a
// row-wise scan of the appended tail. Callers own the parse (the facade
// parses each condition exactly once).
func (o *Overlay) Count(pred expr.Node) (uint64, error) {
	live, err := o.liveBaseMatches(pred)
	if err != nil {
		return 0, err
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return 0, err
	}
	return live.Count() + uint64(len(addedHit)), nil
}

// Query returns the merged rows satisfying pred (nil = all): base
// matches via bitmap filtering (deleted rows masked out), then matching
// appended rows in insertion order.
func (o *Overlay) Query(pred expr.Node) ([][]string, error) {
	live, err := o.liveBaseMatches(pred)
	if err != nil {
		return nil, err
	}
	filtered, err := o.base.FilterRowsP(o.Name(), live, o.parallelism)
	if err != nil {
		return nil, err
	}
	rows, err := filtered.Rows(0, 0)
	if err != nil {
		return nil, err
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return nil, err
	}
	for _, i := range addedHit {
		// Copy: result rows are the caller's to mutate, overlay rows are
		// shared by every snapshot holding this version.
		rows = append(rows, append([]string(nil), o.added[i]...))
	}
	return rows, nil
}

// Rows materializes up to limit merged rows starting at offset (0 = all
// remaining) without flushing: surviving base rows in base order, then
// the appended tail in insertion order — the same order a flush
// produces, so paging is stable across calls and across compaction.
// With deletions, the requested page of base positions is turned into a
// bitmap and served by the usual filter primitive; the whole-table
// rebuild is reserved for Table.
func (o *Overlay) Rows(offset, limit uint64) ([][]string, error) {
	if !o.Dirty() {
		return o.base.Rows(offset, limit)
	}
	total := o.NumRows()
	if offset == 0 && (limit == 0 || limit >= total) && o.nDeleted > 0 {
		// A whole-table read over a deletion-dirty overlay costs the same
		// as a flush; go through Table so the work is cached and repeat
		// full reads (exports, dumps) are free after the first.
		t, err := o.Table()
		if err != nil {
			return nil, err
		}
		return t.Rows(0, 0)
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && limit < end-offset {
		end = offset + limit
	}
	nLive := o.base.NumRows() - o.nDeleted
	var out [][]string
	if offset < nLive {
		bEnd := min(end, nLive)
		if o.nDeleted == 0 {
			rows, err := o.base.Rows(offset, bEnd-offset)
			if err != nil {
				return nil, err
			}
			out = rows
		} else {
			// Decode only the requested page of live positions: skip the
			// first offset set bits run-at-a-time (O(compressed words),
			// not O(offset)), stop after the page is full — never
			// materialize all live positions for one page.
			positions := make([]uint64, 0, bEnd-offset)
			skip := offset
			o.deleted.Not().Runs(func(start, length uint64) bool {
				if skip >= length {
					skip -= length
					return true
				}
				start, length = start+skip, length-skip
				skip = 0
				for i := uint64(0); i < length; i++ {
					positions = append(positions, start+i)
					if uint64(len(positions)) == bEnd-offset {
						return false
					}
				}
				return true
			})
			mask, err := wah.FromPositions(positions, o.base.NumRows())
			if err != nil {
				return nil, err
			}
			page, err := o.base.FilterRowsP(o.Name(), mask, o.parallelism)
			if err != nil {
				return nil, err
			}
			if out, err = page.Rows(0, 0); err != nil {
				return nil, err
			}
		}
	}
	if end > nLive {
		start := uint64(0)
		if offset > nLive {
			start = offset - nLive
		}
		for _, row := range o.added[start : end-nLive] {
			out = append(out, append([]string(nil), row...))
		}
	}
	if out == nil {
		// Match Table.Rows: an empty page is an empty slice, not nil.
		out = [][]string{}
	}
	return out, nil
}

// Table returns the merged table: the base itself when the overlay is
// clean, otherwise a rebuilt base with deletions applied and appended
// rows at the tail (flush). The flush runs at most once per overlay and
// is cached — concurrent readers share one result — so repeated heavy
// reads, evolution operators and checkpoints pay for compaction once.
func (o *Overlay) Table() (*colstore.Table, error) {
	if !o.Dirty() {
		return o.base, nil
	}
	o.flushOnce.Do(func() { o.flushed, o.flushErr = o.flush() })
	return o.flushed, o.flushErr
}

// flush rebuilds the base with the overlay applied: per column, surviving
// base rows keep their dictionary ids (no re-interning) and appended rows
// are interned at the tail. Columns rebuild independently, fanned out
// over the worker pool.
func (o *Overlay) flush() (*colstore.Table, error) {
	nbase := o.base.NumRows()
	var dead []bool
	if o.deleted != nil && o.deleted.Any() {
		dead = make([]bool, nbase)
		o.deleted.Ones(func(p uint64) bool {
			dead[p] = true
			return true
		})
	}
	ncols := o.base.NumColumns()
	cols := make([]*colstore.Column, ncols)
	if err := par.ForEachErr(ncols, o.parallelism, func(ci int) error {
		src := o.base.ColumnAt(ci).ToBitmapEncoding()
		b := colstore.NewColumnBuilderWithDict(src.Name(), src.Dict())
		ids := src.RowIDs()
		for r, id := range ids {
			if dead == nil || !dead[r] {
				b.AppendID(id)
			}
		}
		for _, row := range o.added {
			b.Append(row[ci])
		}
		cols[ci] = b.Finish()
		return nil
	}); err != nil {
		return nil, err
	}
	return colstore.NewTable(o.Name(), cols, o.base.Key())
}

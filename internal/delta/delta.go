// Package delta implements the DML overlay that makes tables writable
// without giving up the immutable bitmap-indexed column store: each table
// in the catalog is a base colstore.Table (never mutated) plus an Overlay
// of appended rows and a deletion bitmap over the base. INSERT appends to
// the overlay, DELETE marks base rows in the bitmap (and drops appended
// rows), UPDATE is delete-plus-reinsert of the changed rows. Every DML
// statement produces a new Overlay value (copy-on-write), so the engine's
// published catalog snapshots stay immutable and lock-free readers keep
// working unchanged while writes commit.
//
// Reads merge base and delta: filtered reads evaluate predicates on the
// base's bitmap index as usual, mask out deleted rows with one compressed
// AND-NOT, and scan only the (small) appended tail row-wise with
// expr.Node.EvalRow. Whole-table access (aggregation queries, evolution
// operators, checkpoints) goes through Table, which flushes the overlay
// into a rebuilt base — computed at most once per overlay version and
// cached, so an evolution operator or checkpoint "compacting the delta"
// is the same code path as a heavy read. Schema Modification Operators
// always consume the flushed table, which keeps the paper's evolution
// algorithms oblivious to DML.
package delta

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cods/internal/colstore"
	"cods/internal/expr"
	"cods/internal/par"
	"cods/internal/wah"
)

// arena coordinates in-place extension of one shared appended-rows
// backing array across the overlay versions that view prefixes of it.
// tip is the authoritative number of rows written to the array: an
// overlay whose view length equals tip (and with spare capacity) is the
// newest version and may claim the next slot; any other overlay must
// copy. This makes a linear chain of INSERTs — each statement deriving
// from the last — amortized O(1) instead of O(rows-so-far), while a
// branch (e.g. DML after a rollback to an older version) safely copies.
// Readers never touch slots beyond their own view length, so claimed
// slots racing reads of older views is not possible.
//
// Alongside the rows, the arena carries the key index of the tail: the
// declared-key tuple of each appended row mapped to its slot. It shares
// the backing array's protocol exactly — entries are written only when a
// slot is claimed, slots are claimed in order, and a view of length L
// ignores entries at index >= L — so keyConflict is one map lookup
// instead of a scan of the pending tail, and branches copy the index
// when (and only when) they copy the rows. Within one arena no live
// tuple repeats: a claim is made only by the tip view, which checked the
// tuple against every slot below the tip first.
type arena struct {
	mu  sync.Mutex
	tip int
	// keys maps each appended row's key tuple (see appendKeySegment) to
	// its slot in the shared backing array; nil when the table declares
	// no key (the field itself is set at arena construction and never
	// reassigned). Guarded by mu together with tip: claims write it and
	// lock-free snapshot readers probe it through tailKeyAt (point
	// Count/Query), so every access to the map contents holds mu. Bulk
	// iteration (shiftedKeys, the non-key UPDATE carry-over) runs only on
	// the write path, where the engine's writer mutex already excludes
	// the claims that mutate it.
	keys map[string]int
}

// Overlay is an immutable view of one table: a base column-store table
// plus pending DML. The zero overlay (fresh from Wrap) is the base table
// itself. Methods returning *Overlay never mutate the receiver.
type Overlay struct {
	base *colstore.Table
	// byName maps column names to schema positions; built once in Wrap
	// (the schema never changes within a lineage) and shared by every
	// derived overlay.
	byName map[string]int
	// added holds rows appended since the base was built, in schema
	// order. Row slices are never mutated after they enter an overlay;
	// the backing array may be shared with newer versions (see arena).
	added [][]string
	// ar guards extension of added's backing array; nil until the first
	// insert of a lineage.
	ar *arena
	// deleted marks base-row positions removed by DELETE/UPDATE; nil
	// means none. Never mutated once set (bitmap algebra allocates).
	deleted  *wah.Bitmap
	nDeleted uint64
	// parallelism bounds the worker pool for bitmap work (predicate
	// evaluation, filtering, flush); 0 means GOMAXPROCS.
	parallelism int
	// rebuild forces flush to rebuild the base as one monolithic segment
	// (the pre-segmentation behavior) instead of the segmented O(tail)
	// flush. It exists as the oracle the property tests compare against
	// and as the baseline the write benchmarks measure.
	rebuild bool

	// flush cache: an overlay is immutable, so the merged table is
	// computed at most once and shared by every reader of this version.
	flushOnce sync.Once
	flushed   *colstore.Table
	flushErr  error
}

// Wrap returns a clean overlay over a base table. parallelism bounds
// bitmap work for this overlay and its descendants (0 = GOMAXPROCS).
func Wrap(base *colstore.Table, parallelism int) *Overlay {
	byName := make(map[string]int, base.NumColumns())
	for i, c := range base.ColumnNames() {
		byName[c] = i
	}
	return &Overlay{base: base, byName: byName, parallelism: parallelism}
}

// WithRebuildFlush returns an overlay over the same state whose flushes
// (and those of every derived overlay) rebuild the base as a single
// segment instead of sealing the tail into a new one. The engine enables
// it for oracle and baseline runs; production lineages leave it off.
func (o *Overlay) WithRebuildFlush(on bool) *Overlay {
	return &Overlay{
		base: o.base, byName: o.byName,
		added: o.added, ar: o.ar,
		deleted: o.deleted, nDeleted: o.nDeleted,
		parallelism: o.parallelism, rebuild: on,
	}
}

// RebuildFlush reports whether this lineage flushes by monolithic
// rebuild.
func (o *Overlay) RebuildFlush() bool { return o.rebuild }

// WithBase returns an overlay carrying this overlay's DML state over a
// replacement base covering exactly the same rows in the same order — the
// splice a background segment merge performs. The deletion bitmap,
// appended tail and arena stay valid because merges preserve global row
// positions.
func (o *Overlay) WithBase(base *colstore.Table) (*Overlay, error) {
	if base.NumRows() != o.base.NumRows() {
		return nil, fmt.Errorf("delta: replacement base for %s has %d rows, overlay base has %d",
			o.Name(), base.NumRows(), o.base.NumRows())
	}
	return &Overlay{
		base: base, byName: o.byName,
		added: o.added, ar: o.ar,
		deleted: o.deleted, nDeleted: o.nDeleted,
		parallelism: o.parallelism, rebuild: o.rebuild,
	}, nil
}

// WithName returns an overlay over the same DML state with the base
// renamed. Rename is metadata-only on a column store, so the appended
// tail, deletion bitmap and append arena carry forward untouched — the
// arena in particular must be shared, not copied, so a lineage that
// branches across the rename still coordinates backing-array claims.
func (o *Overlay) WithName(name string) *Overlay {
	return &Overlay{
		base: o.base.WithName(name), byName: o.byName,
		added: o.added, ar: o.ar,
		deleted: o.deleted, nDeleted: o.nDeleted,
		parallelism: o.parallelism, rebuild: o.rebuild,
	}
}

// Base returns the underlying immutable table (schema authority; its row
// set ignores pending DML).
func (o *Overlay) Base() *colstore.Table { return o.base }

// Name returns the table name.
func (o *Overlay) Name() string { return o.base.Name() }

// ColumnNames returns the schema's column names in order. DML never
// changes the schema, so the base is authoritative.
func (o *Overlay) ColumnNames() []string { return o.base.ColumnNames() }

// Dirty reports whether the overlay carries pending DML.
func (o *Overlay) Dirty() bool { return len(o.added) > 0 || o.nDeleted > 0 }

// PendingAdded returns the number of appended rows not yet compacted.
func (o *Overlay) PendingAdded() int { return len(o.added) }

// PendingDeleted returns the number of base rows marked deleted.
func (o *Overlay) PendingDeleted() uint64 { return o.nDeleted }

// NumRows returns the merged row count, without flushing.
func (o *Overlay) NumRows() uint64 {
	return o.base.NumRows() - o.nDeleted + uint64(len(o.added))
}

// derive carries the overlay's DML state forward for a new version with
// the appended tail unchanged (Delete and Update when no appended row is
// touched). The arena comes along with the backing array: the derived
// overlay still views the arena tip, so a later INSERT extends in place
// instead of copying the tail — the old pre-derive version and the new
// one race for the next slot through the arena protocol, and whichever
// claims second copies, exactly the branch semantics. The flush cache is
// deliberately not carried over.
func (o *Overlay) derive(deleted *wah.Bitmap) *Overlay {
	n := &Overlay{base: o.base, byName: o.byName, added: o.added, ar: o.ar, deleted: deleted, parallelism: o.parallelism, rebuild: o.rebuild}
	if deleted != nil {
		n.nDeleted = deleted.Count()
	}
	return n
}

// appendKeySegment renders one key-column value into a tuple being
// built. Segments are length-prefixed, so tuples collide only when
// their values are equal column by column — values are arbitrary
// strings and may contain any delimiter. Every tuple in the system
// (index entries and lookups alike) goes through this one renderer.
func appendKeySegment(sb *strings.Builder, v string) {
	sb.WriteString(strconv.Itoa(len(v)))
	sb.WriteByte(':')
	sb.WriteString(v)
}

// keyTuple renders row's declared-key values as one map key.
func (o *Overlay) keyTuple(kcols []string, row []string) string {
	var sb strings.Builder
	for _, k := range kcols {
		appendKeySegment(&sb, row[o.byName[k]])
	}
	return sb.String()
}

// newArena builds an arena owning added, indexing the tail by key tuple
// when the table declares a key. O(len(added)) — paid on branch and
// rebuild, never on the linear insert chain.
func (o *Overlay) newArena(added [][]string) *arena {
	ar := &arena{tip: len(added)}
	if kcols := o.base.Key(); len(kcols) > 0 {
		ar.keys = make(map[string]int, len(added))
		for i, row := range added {
			ar.keys[o.keyTuple(kcols, row)] = i
		}
	}
	return ar
}

// shiftedKeys derives the key index for a tail rebuilt by dropping the
// slots listed in di (sorted ascending; drop is the same set as a map)
// from this overlay's view: surviving entries keep their interned tuple
// strings and shift down past the dropped slots. One pass of re-hashing
// instead of re-rendering every tuple — the difference between a point
// DELETE costing one map pass and one string build per pending row.
func (o *Overlay) shiftedKeys(drop map[int]bool, di []int) map[string]int {
	if o.ar == nil || o.ar.keys == nil {
		return nil
	}
	keys := make(map[string]int, len(o.ar.keys))
	for kt, slot := range o.ar.keys {
		if slot >= len(o.added) || drop[slot] {
			continue
		}
		keys[kt] = slot - sort.SearchInts(di, slot)
	}
	return keys
}

// tailKeyAt returns the slot of the live appended row holding the key
// tuple kt, or -1. A view of length len(o.added) ignores arena entries
// claimed beyond it (newer versions of the lineage). The lookup takes
// the arena mutex: lock-free snapshot readers reach it through
// matchAdded (point Count/Query) while the lineage tip may be claiming
// a slot — and a claim writes the shared map, so an unguarded read
// would be a map race, not just a stale value. The critical section is
// one map probe; readers still never wait on a statement, only on
// another O(1) lookup or claim.
func (o *Overlay) tailKeyAt(kt string) int {
	if o.ar == nil || o.ar.keys == nil {
		return -1
	}
	o.ar.mu.Lock()
	idx, ok := o.ar.keys[kt]
	o.ar.mu.Unlock()
	if ok && idx < len(o.added) {
		return idx
	}
	return -1
}

// keyConflict reports whether row's values in the declared key columns
// already appear in a live merged row. The evolution operators (MERGE's
// key–FK join in particular) and ValidateKey rely on declared keys being
// real, so the DML write path must not be a hole that lets duplicates
// in. Cost per call: one dictionary EqScan + compressed AND per key
// column, plus one lookup in the arena's key index of the appended tail
// — independent of how many rows are pending, which is what keeps a
// sustained keyed-INSERT stream amortized O(1) per statement.
func (o *Overlay) keyConflict(row []string) (bool, error) {
	key := o.base.Key()
	if len(key) == 0 {
		return false, nil
	}
	hit, err := o.baseKeyMatch(key, row, o.deleted)
	if err != nil {
		return false, err
	}
	if hit {
		return true, nil
	}
	return o.tailKeyAt(o.keyTuple(key, row)) >= 0, nil
}

// baseKeyMatch reports whether any base row not masked out by del holds
// row's values in the kcols columns: one dictionary probe per key column
// per segment (Table.EqBitmap) plus a compressed AND per key column —
// never a whole-table stitch, which is what keeps keyed INSERT flat as
// the base grows.
func (o *Overlay) baseKeyMatch(kcols []string, row []string, del *wah.Bitmap) (bool, error) {
	var mask *wah.Bitmap
	for _, k := range kcols {
		bm, err := o.base.EqBitmap(k, row[o.byName[k]])
		if err != nil {
			return false, err
		}
		if mask == nil {
			mask = bm
		} else {
			mask = wah.And(mask, bm)
		}
		if !mask.Any() {
			return false, nil
		}
	}
	if del != nil {
		mask = wah.AndNot(mask, del)
	}
	return mask.Any(), nil
}

// Insert returns an overlay with one row appended. The row must match
// the schema's arity and respect the table's declared key; values are
// copied.
func (o *Overlay) Insert(row []string) (*Overlay, error) {
	if len(row) != o.base.NumColumns() {
		return nil, fmt.Errorf("delta: INSERT into %s has %d values, schema has %d columns",
			o.Name(), len(row), o.base.NumColumns())
	}
	if conflict, err := o.keyConflict(row); err != nil {
		return nil, err
	} else if conflict {
		return nil, fmt.Errorf("delta: INSERT into %s violates key %v", o.Name(), o.base.Key())
	}
	row = append([]string(nil), row...)
	n := &Overlay{base: o.base, byName: o.byName, deleted: o.deleted, nDeleted: o.nDeleted, parallelism: o.parallelism, rebuild: o.rebuild}
	if o.ar != nil {
		o.ar.mu.Lock()
		if o.ar.tip == len(o.added) && cap(o.added) > len(o.added) {
			// This overlay is the tip of its lineage and the backing array
			// has room: claim the next slot in place, recording the row's
			// key tuple in the shared index. Older views never read past
			// their own length, so both writes are invisible to them.
			n.added = append(o.added, row)
			n.ar = o.ar
			if o.ar.keys != nil {
				o.ar.keys[o.keyTuple(o.base.Key(), row)] = len(o.added)
			}
			o.ar.tip++
			o.ar.mu.Unlock()
			return n, nil
		}
		o.ar.mu.Unlock()
	}
	// First insert of a lineage, a full backing array, or a branch (DML
	// deriving from a non-tip version, e.g. after rollback): copy into a
	// fresh array with doubling headroom, owned by a new arena with a
	// rebuilt key index.
	n.added = make([][]string, len(o.added), 2*(len(o.added)+1))
	copy(n.added, o.added)
	n.added = append(n.added, row)
	n.ar = o.newArena(n.added)
	return n, nil
}

// parse compiles a condition, with "" meaning all rows (nil Node).
func parse(condition string) (expr.Node, error) {
	if condition == "" {
		return nil, nil
	}
	return expr.Parse(condition)
}

// liveBaseMatches returns the bitmap of not-deleted base rows matching
// pred (nil pred = all live rows).
func (o *Overlay) liveBaseMatches(pred expr.Node) (*wah.Bitmap, error) {
	var mask *wah.Bitmap
	if pred == nil {
		mask = wah.New()
		mask.AppendRun(1, o.base.NumRows())
	} else {
		var err error
		if mask, err = pred.EvalP(o.base, o.parallelism); err != nil {
			return nil, err
		}
	}
	if o.deleted == nil {
		return mask, nil
	}
	return wah.AndNot(mask, o.deleted), nil
}

// pointKeyTuple reports whether pred is a point predicate on the
// declared key — a conjunction of exact-match equality comparisons, one
// per key column and nothing else — and if so returns the key tuple it
// pins. A literal that parses as an integer disqualifies its comparison:
// predicate equality is numeric there ('07' matches '7'), wider than the
// exact string identity the key index stores.
func (o *Overlay) pointKeyTuple(pred expr.Node) (string, bool) {
	kcols := o.base.Key()
	if pred == nil || len(kcols) == 0 || o.ar == nil || o.ar.keys == nil {
		return "", false
	}
	eqs := make(map[string]string, len(kcols))
	if !collectExactEqs(pred, eqs) || len(eqs) != len(kcols) {
		return "", false
	}
	var sb strings.Builder
	for _, k := range kcols {
		v, ok := eqs[k]
		if !ok {
			return "", false
		}
		appendKeySegment(&sb, v)
	}
	return sb.String(), true
}

// collectExactEqs walks an AND-only tree of exact-match equality leaves
// into out (column -> literal), reporting false on any other shape.
func collectExactEqs(n expr.Node, out map[string]string) bool {
	switch x := n.(type) {
	case *expr.Comparison:
		if x.Op != expr.OpEq {
			return false
		}
		if _, err := strconv.ParseInt(x.Literal, 10, 64); err == nil {
			// Numeric equality: '7' also matches '07'; the index cannot
			// answer that.
			return false
		}
		if _, dup := out[x.Column]; dup {
			return false
		}
		out[x.Column] = x.Literal
		return true
	case *expr.Logical:
		return x.IsAnd && collectExactEqs(x.L, out) && collectExactEqs(x.R, out)
	}
	return false
}

// matchAdded evaluates pred row-wise over the appended tail, returning
// matching indices (all indices for nil pred). A point predicate on the
// declared key short-circuits to one lookup in the arena's key index —
// the shape a sustained keyed write stream's DELETEs and UPDATEs take —
// so those statements stay amortized O(1) instead of rescanning the
// pending tail.
func (o *Overlay) matchAdded(pred expr.Node) ([]int, error) {
	if kt, ok := o.pointKeyTuple(pred); ok {
		if idx := o.tailKeyAt(kt); idx >= 0 {
			return []int{idx}, nil
		}
		return nil, nil
	}
	idx := make([]int, 0, len(o.added))
	for i, row := range o.added {
		if pred == nil {
			idx = append(idx, i)
			continue
		}
		ok, err := pred.EvalRow(func(col string) (string, bool) {
			ci, ok := o.byName[col]
			if !ok {
				return "", false
			}
			return row[ci], true
		})
		if err != nil {
			return nil, err
		}
		if ok {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

// Delete returns an overlay with the rows matching condition removed
// (every row when condition is empty) and the number of rows it removed.
func (o *Overlay) Delete(condition string) (*Overlay, uint64, error) {
	pred, err := parse(condition)
	if err != nil {
		return nil, 0, err
	}
	hit, err := o.liveBaseMatches(pred)
	if err != nil {
		return nil, 0, err
	}
	removed := hit.Count()
	deleted := o.deleted
	if removed > 0 {
		if deleted == nil {
			deleted = hit
		} else {
			deleted = wah.Or(deleted, hit)
		}
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return nil, 0, err
	}
	if len(addedHit) == 0 {
		// The appended tail is untouched: carry the arena forward so the
		// lineage's next INSERT still extends in place.
		return o.derive(deleted), removed, nil
	}
	// Dropped appended rows force a tail rebuild (views are prefixes of a
	// shared array, so a gap cannot be represented in place). Built with
	// doubling headroom and a shifted — not re-rendered — key index, the
	// rebuild is one pass over the tail.
	removed += uint64(len(addedHit))
	drop := make(map[int]bool, len(addedHit))
	for _, i := range addedHit {
		drop[i] = true
	}
	keep := len(o.added) - len(addedHit)
	added := make([][]string, 0, 2*(keep+1))
	for i, row := range o.added {
		if !drop[i] {
			added = append(added, row)
		}
	}
	n := &Overlay{base: o.base, byName: o.byName, added: added, deleted: deleted, parallelism: o.parallelism, rebuild: o.rebuild}
	n.ar = &arena{tip: len(added), keys: o.shiftedKeys(drop, addedHit)}
	if deleted != nil {
		n.nDeleted = deleted.Count()
	}
	return n, removed, nil
}

// Update returns an overlay with column set to value on every row
// matching condition (all rows when empty), plus the number of rows
// changed. Matching base rows are marked deleted and re-appended with the
// new value — delete-plus-reinsert — so an updated base row moves to the
// appended tail until the next flush.
func (o *Overlay) Update(column, value, condition string) (*Overlay, uint64, error) {
	ci, ok := o.byName[column]
	if !ok {
		return nil, 0, fmt.Errorf("delta: table %s has no column %q", o.Name(), column)
	}
	pred, err := parse(condition)
	if err != nil {
		return nil, 0, err
	}
	hit, err := o.liveBaseMatches(pred)
	if err != nil {
		return nil, 0, err
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return nil, 0, err
	}
	changed := hit.Count() + uint64(len(addedHit))
	if changed == 0 {
		return o.derive(o.deleted), 0, nil
	}

	added := make([][]string, 0, 2*(len(o.added)+int(hit.Count())+1))
	rewrite := make(map[int]bool, len(addedHit))
	for _, i := range addedHit {
		rewrite[i] = true
	}
	for i, row := range o.added {
		if rewrite[i] {
			nr := append([]string(nil), row...)
			nr[ci] = value
			row = nr
		}
		added = append(added, row)
	}
	deleted := o.deleted
	if hit.Any() {
		// Materialize the matched base rows (bitmap filtering, the same
		// primitive evolutions use), rewrite the column, re-append.
		matched, err := o.base.FilterRowsP(o.Name(), hit, o.parallelism)
		if err != nil {
			return nil, 0, err
		}
		rows, err := matched.Rows(0, 0)
		if err != nil {
			return nil, 0, err
		}
		for _, row := range rows {
			row[ci] = value
			added = append(added, row)
		}
		if deleted == nil {
			deleted = hit
		} else {
			deleted = wah.Or(deleted, hit)
		}
	}
	// Updating a key column can collide rewritten rows with each other or
	// with untouched rows. Check each rewritten row's new key tuple —
	// against the other rewritten rows, the surviving base (the rewritten
	// base rows' old selves are excluded via the deletion mask), and the
	// unchanged tail via the arena's key index — at O(changed × key
	// columns) like INSERT's check, instead of rebuilding and
	// re-validating the whole table.
	isKey := false
	for _, k := range o.base.Key() {
		if k == column {
			isKey = true
			break
		}
	}
	if isKey && changed > 0 {
		kcols := o.base.Key()
		keyErr := func() error {
			return fmt.Errorf("delta: UPDATE %s violates key %v", o.Name(), kcols)
		}
		seen := make(map[string]bool, changed)
		for i, row := range added {
			if i < len(o.added) && !rewrite[i] {
				continue
			}
			kt := o.keyTuple(kcols, row)
			if seen[kt] {
				return nil, 0, keyErr()
			}
			seen[kt] = true
			if idx := o.tailKeyAt(kt); idx >= 0 && !rewrite[idx] {
				// An untouched appended row already holds this tuple.
				return nil, 0, keyErr()
			}
			inBase, err := o.baseKeyMatch(kcols, row, deleted)
			if err != nil {
				return nil, 0, err
			}
			if inBase {
				return nil, 0, keyErr()
			}
		}
	}
	n := &Overlay{base: o.base, byName: o.byName, added: added, deleted: deleted, parallelism: o.parallelism, rebuild: o.rebuild}
	if deleted != nil {
		n.nDeleted = deleted.Count()
	}
	if isKey {
		// Rewritten tuples changed: re-render the whole index.
		n.ar = o.newArena(added)
		return n, changed, nil
	}
	// A non-key UPDATE leaves every row's key tuple and slot unchanged
	// (rewrites are in place, re-appended base rows extend the tail), so
	// the index carries over with only the new tail entries rendered.
	ar := &arena{tip: len(added)}
	if kcols := o.base.Key(); len(kcols) > 0 {
		keys := make(map[string]int, len(added))
		if o.ar != nil && o.ar.keys != nil {
			for kt, slot := range o.ar.keys {
				if slot < len(o.added) {
					keys[kt] = slot
				}
			}
		}
		for i := len(o.added); i < len(added); i++ {
			keys[o.keyTuple(kcols, added[i])] = i
		}
		ar.keys = keys
	}
	n.ar = ar
	return n, changed, nil
}

// Count returns the number of merged rows satisfying pred (nil = all)
// without materializing them: a compressed popcount over the base plus a
// row-wise scan of the appended tail. Callers own the parse (the facade
// parses each condition exactly once).
func (o *Overlay) Count(pred expr.Node) (uint64, error) {
	live, err := o.liveBaseMatches(pred)
	if err != nil {
		return 0, err
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return 0, err
	}
	return live.Count() + uint64(len(addedHit)), nil
}

// Query returns the merged rows satisfying pred (nil = all): base
// matches via bitmap filtering (deleted rows masked out), then matching
// appended rows in insertion order.
func (o *Overlay) Query(pred expr.Node) ([][]string, error) {
	live, err := o.liveBaseMatches(pred)
	if err != nil {
		return nil, err
	}
	filtered, err := o.base.FilterRowsP(o.Name(), live, o.parallelism)
	if err != nil {
		return nil, err
	}
	rows, err := filtered.Rows(0, 0)
	if err != nil {
		return nil, err
	}
	addedHit, err := o.matchAdded(pred)
	if err != nil {
		return nil, err
	}
	for _, i := range addedHit {
		// Copy: result rows are the caller's to mutate, overlay rows are
		// shared by every snapshot holding this version.
		rows = append(rows, append([]string(nil), o.added[i]...))
	}
	return rows, nil
}

// Rows materializes up to limit merged rows starting at offset (0 = all
// remaining) without flushing: surviving base rows in base order, then
// the appended tail in insertion order — the same order a flush
// produces, so paging is stable across calls and across compaction.
// With deletions, the requested page of base positions is turned into a
// bitmap and served by the usual filter primitive; the whole-table
// rebuild is reserved for Table.
func (o *Overlay) Rows(offset, limit uint64) ([][]string, error) {
	if !o.Dirty() {
		return o.base.Rows(offset, limit)
	}
	total := o.NumRows()
	if offset == 0 && (limit == 0 || limit >= total) && o.nDeleted > 0 {
		// A whole-table read over a deletion-dirty overlay costs the same
		// as a flush; go through Table so the work is cached and repeat
		// full reads (exports, dumps) are free after the first.
		t, err := o.Table()
		if err != nil {
			return nil, err
		}
		return t.Rows(0, 0)
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && limit < end-offset {
		end = offset + limit
	}
	nLive := o.base.NumRows() - o.nDeleted
	var out [][]string
	if offset < nLive {
		bEnd := min(end, nLive)
		if o.nDeleted == 0 {
			rows, err := o.base.Rows(offset, bEnd-offset)
			if err != nil {
				return nil, err
			}
			out = rows
		} else {
			// Decode only the requested page of live positions: skip the
			// first offset set bits run-at-a-time (O(compressed words),
			// not O(offset)), stop after the page is full — never
			// materialize all live positions for one page.
			positions := make([]uint64, 0, bEnd-offset)
			skip := offset
			o.deleted.Not().Runs(func(start, length uint64) bool {
				if skip >= length {
					skip -= length
					return true
				}
				start, length = start+skip, length-skip
				skip = 0
				for i := uint64(0); i < length; i++ {
					positions = append(positions, start+i)
					if uint64(len(positions)) == bEnd-offset {
						return false
					}
				}
				return true
			})
			mask, err := wah.FromPositions(positions, o.base.NumRows())
			if err != nil {
				return nil, err
			}
			page, err := o.base.FilterRowsP(o.Name(), mask, o.parallelism)
			if err != nil {
				return nil, err
			}
			if out, err = page.Rows(0, 0); err != nil {
				return nil, err
			}
		}
	}
	if end > nLive {
		start := uint64(0)
		if offset > nLive {
			start = offset - nLive
		}
		for _, row := range o.added[start : end-nLive] {
			out = append(out, append([]string(nil), row...))
		}
	}
	if out == nil {
		// Match Table.Rows: an empty page is an empty slice, not nil.
		out = [][]string{}
	}
	return out, nil
}

// Table returns the merged table: the base itself when the overlay is
// clean, otherwise a rebuilt base with deletions applied and appended
// rows at the tail (flush). The flush runs at most once per overlay and
// is cached — concurrent readers share one result — so repeated heavy
// reads, evolution operators and checkpoints pay for compaction once.
func (o *Overlay) Table() (*colstore.Table, error) {
	if !o.Dirty() {
		return o.base, nil
	}
	o.flushOnce.Do(func() { o.flushed, o.flushErr = o.flush() })
	return o.flushed, o.flushErr
}

// flush applies the overlay to the base segment by segment: deletions
// filter only the segments they actually hit (untouched segments are
// shared into the result without any data operation, and fully-deleted
// segments are dropped), and the appended tail is sealed into one new
// segment with fresh per-column dictionaries. Cost is O(tail + deleted
// segments), not O(table) — the flat per-statement write cost the
// segmented store exists for. Row order matches the rebuild flush
// exactly: surviving base rows in base order, then appended rows in
// insertion order.
func (o *Overlay) flush() (*colstore.Table, error) {
	if o.rebuild {
		return o.flushRebuild()
	}
	segs := o.base.Segments()
	out := make([]*colstore.Segment, 0, len(segs)+1)
	var off uint64
	for _, s := range segs {
		n := s.NumRows()
		if o.deleted != nil {
			sub := o.deleted.Slice(off, off+n)
			off += n
			if c := sub.Count(); c == n {
				continue // every row deleted: drop the segment
			} else if c > 0 {
				keep := sub.Not()
				fs, err := s.Filter(keep, o.parallelism)
				if err != nil {
					return nil, err
				}
				out = append(out, fs)
				continue
			}
		} else {
			off += n
		}
		out = append(out, s)
	}
	if len(o.added) > 0 {
		names := o.base.ColumnNames()
		cols := make([]*colstore.Column, len(names))
		if err := par.ForEachErr(len(names), o.parallelism, func(ci int) error {
			b := colstore.NewColumnBuilder(names[ci])
			for _, row := range o.added {
				b.Append(row[ci])
			}
			cols[ci] = b.Finish()
			return nil
		}); err != nil {
			return nil, err
		}
		tail, err := colstore.NewSegment(cols)
		if err != nil {
			return nil, err
		}
		out = append(out, tail)
	}
	return colstore.NewSegmented(o.Name(), o.base.ColumnNames(), out, o.base.Key())
}

// flushRebuild rebuilds the base as one monolithic segment with the
// overlay applied: per column, surviving base rows keep their dictionary
// ids (no re-interning) and appended rows are interned at the tail.
// Columns rebuild independently, fanned out over the worker pool. This is
// the pre-segmentation flush, kept as the property-test oracle and
// benchmark baseline (see WithRebuildFlush).
func (o *Overlay) flushRebuild() (*colstore.Table, error) {
	nbase := o.base.NumRows()
	var dead []bool
	if o.deleted != nil && o.deleted.Any() {
		dead = make([]bool, nbase)
		o.deleted.Ones(func(p uint64) bool {
			dead[p] = true
			return true
		})
	}
	ncols := o.base.NumColumns()
	cols := make([]*colstore.Column, ncols)
	if err := par.ForEachErr(ncols, o.parallelism, func(ci int) error {
		src := o.base.ColumnAt(ci).ToBitmapEncoding()
		b := colstore.NewColumnBuilderWithDict(src.Name(), src.Dict())
		ids := src.RowIDs()
		for r, id := range ids {
			if dead == nil || !dead[r] {
				b.AppendID(id)
			}
		}
		for _, row := range o.added {
			b.Append(row[ci])
		}
		cols[ci] = b.Finish()
		return nil
	}); err != nil {
		return nil, err
	}
	return colstore.NewTable(o.Name(), cols, o.base.Key())
}

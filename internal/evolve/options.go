// Package evolve implements CODS's data-level data evolution algorithms
// (paper §2.4–§2.5): table decomposition via "distinction" and "bitmap
// filtering", key–foreign-key based mergence via compressed OR
// combination, the two-pass general mergence, and the data-affecting
// column-level and tuple-level SMOs (union, partition, add/drop column).
//
// Every algorithm consumes and produces colstore tables whose columns are
// WAH bitmap indexes. No algorithm materializes query results as tuples
// and none rebuilds an index from scratch: outputs are assembled by
// compressed-form operations (filter, OR, concatenation, fill-run
// construction) on the inputs' bitmaps.
//
// Since the base storage became a list of immutable segments, every
// operator runs segment-wise by default: a map phase works on one
// segment's local dictionaries and bitmaps (distinction, bitmap
// filtering, join-group builds) and a merge phase combines the
// per-segment results (global dictionary union with id remapping via
// colstore's RemapInto kernel, offset restitching of row positions,
// FD/key re-validation across segment boundaries). Operators emit one
// output segment per contributing input segment, so evolution cost is
// proportional to the segments that actually change, not the logical row
// count. The pre-segmentation monolithic implementations are retained
// behind Options.Rebuild as the correctness oracle.
package evolve

import (
	"cods/internal/par"
)

// Options control tracing and parallelism of the evolution algorithms.
type Options struct {
	// Status, when non-nil, receives progress events ("distinction",
	// "bitmap filtering", ...) as they happen — the demo UI's "Data
	// Evolution Status" panel (paper §3).
	Status func(step string)
	// Parallelism bounds the worker pool used for per-value bitmap work.
	// Zero means GOMAXPROCS.
	Parallelism int
	// ValidateFD makes Decompose verify Property 2 (the functional
	// dependency key → non-key in the input) and fail on violations
	// instead of silently producing a lossy decomposition.
	ValidateFD bool
	// Rebuild forces the pre-segmentation monolithic algorithms: each
	// operator consumes one stitched whole-table view and emits a
	// single-segment output. Kept as the correctness oracle for the
	// segment-wise default (core.Config.RebuildEvolve sets it, mirroring
	// RebuildFlush on the write path).
	Rebuild bool
}

func (o Options) trace(step string) {
	if o.Status != nil {
		o.Status(step)
	}
}

// forEach runs fn(i) for i in [0, n) on a bounded worker pool. fn must be
// safe for concurrent invocation on distinct indexes.
func (o Options) forEach(n int, fn func(i int)) {
	par.ForEachIndexed(n, o.Parallelism, fn)
}

// forEachErr is forEach for fallible per-index work; it returns the error of
// the lowest failing index.
func (o Options) forEachErr(n int, fn func(i int) error) error {
	return par.ForEachErr(n, o.Parallelism, fn)
}

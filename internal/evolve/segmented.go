package evolve

import (
	"fmt"
	"strings"

	"cods/internal/colstore"
	"cods/internal/dict"
)

// This file holds the shared plumbing of segment-wise evolution: helpers
// that replace a whole-table bitmap stitch with a per-segment map phase
// plus a dictionary-union merge phase (colstore's RemapInto kernel). Each
// operator's own map/merge split lives next to its monolithic oracle in
// decompose.go, merge.go and generalmerge.go.

// segmentOffsets returns the starting global row of each segment.
func segmentOffsets(segs []*colstore.Segment) []uint64 {
	offs := make([]uint64, len(segs))
	var off uint64
	for i, s := range segs {
		offs[i] = off
		off += s.NumRows()
	}
	return offs
}

// rowIDsRemapped decodes column cn of every segment and re-keys the local
// value ids under a cross-segment union dictionary: the returned slice
// holds one global value id per row, and the returned dictionary lists
// values in first-seen segment order — exactly the dictionary a full
// stitch of the column would produce, but without concatenating a single
// bitmap. The dictionary union is sequential (dictionaries are not safe
// for concurrent mutation); the per-segment decodes fan out.
func rowIDsRemapped(t *colstore.Table, cn string, opt Options) ([]uint32, *dict.Dict, error) {
	segs := t.Segments()
	offs := segmentOffsets(segs)
	d := dict.New()
	cols := make([]*colstore.Column, len(segs))
	mappings := make([][]uint32, len(segs))
	for i, s := range segs {
		c, err := s.Column(cn)
		if err != nil {
			return nil, nil, err
		}
		cols[i] = c
		mappings[i] = c.RemapInto(d)
	}
	out := make([]uint32, t.NumRows())
	opt.forEach(len(segs), func(i int) {
		m, off := mappings[i], offs[i]
		for r, id := range cols[i].RowIDs() {
			out[off+uint64(r)] = m[id]
		}
	})
	return out, d, nil
}

// keyedBySegmented reports whether the given columns form a candidate key
// of t without stitching: a single attribute is a key iff the
// cross-segment dictionary union (RemapInto, O(distinct) per segment) has
// exactly one value per row; composite keys build the value index with a
// duplicate check.
func keyedBySegmented(t *colstore.Table, columns []string) bool {
	if len(columns) == 1 {
		d := dict.New()
		for _, s := range t.Segments() {
			c, err := s.Column(columns[0])
			if err != nil {
				return false
			}
			c.RemapInto(d)
		}
		return uint64(d.Len()) == t.NumRows()
	}
	_, err := segRowIndex(t, columns)
	return err == nil
}

// segRowIndex maps each value tuple of the given columns to its global
// row, built segment by segment with offset restitching, failing on
// duplicates (the columns must be a key). Keys are value-based — local
// dictionary ids are not comparable across segments — in the same
// NUL-joined format for single and composite attributes.
func segRowIndex(t *colstore.Table, columns []string) (map[string]uint64, error) {
	idx := make(map[string]uint64, t.NumRows())
	var off uint64
	for _, s := range t.Segments() {
		if len(columns) == 1 {
			c, err := s.Column(columns[0])
			if err != nil {
				return nil, err
			}
			bc := c.ToBitmapEncoding()
			for id := 0; id < bc.DistinctCount(); id++ {
				v := bc.Dict().Value(uint32(id))
				pos, ok := bc.BitmapForID(uint32(id)).FirstOne()
				if !ok {
					continue
				}
				k := v + "\x00"
				if _, dup := idx[k]; dup {
					return nil, fmt.Errorf("evolve: %v is not a key of %s: duplicate %q", columns, t.Name(), v)
				}
				idx[k] = off + pos
			}
		} else {
			ids := make([][]uint32, len(columns))
			dicts := make([]func(uint32) string, len(columns))
			for i, cn := range columns {
				c, err := s.Column(cn)
				if err != nil {
					return nil, err
				}
				ids[i] = c.RowIDs()
				dicts[i] = c.Dict().Value
			}
			var kb strings.Builder
			for row := uint64(0); row < s.NumRows(); row++ {
				kb.Reset()
				for i := range ids {
					kb.WriteString(dicts[i](ids[i][row]))
					kb.WriteByte(0)
				}
				k := kb.String()
				if _, dup := idx[k]; dup {
					return nil, fmt.Errorf("evolve: %v is not a key of %s: duplicate %q", columns, t.Name(), strings.ReplaceAll(strings.TrimSuffix(k, "\x00"), "\x00", ","))
				}
				idx[k] = off + row
			}
		}
		off += s.NumRows()
	}
	return idx, nil
}

// valuePositions returns, for every value of column cn under a
// cross-segment union dictionary, the ascending global row positions
// holding it: each segment decodes its local per-value position lists
// independently (map), then the lists are restitched at segment offsets
// in union-dictionary id order (merge). The id order equals the stitched
// column's dictionary order by construction.
func valuePositions(t *colstore.Table, cn string, opt Options) ([][]uint64, *dict.Dict, error) {
	segs := t.Segments()
	offs := segmentOffsets(segs)
	d := dict.New()
	cols := make([]*colstore.Column, len(segs))
	mappings := make([][]uint32, len(segs))
	for i, s := range segs {
		c, err := s.Column(cn)
		if err != nil {
			return nil, nil, err
		}
		cols[i] = c
		mappings[i] = c.RemapInto(d)
	}
	locals := make([][][]uint64, len(segs))
	opt.forEach(len(segs), func(i int) {
		bc := cols[i].ToBitmapEncoding()
		lp := make([][]uint64, bc.DistinctCount())
		for id := range lp {
			ps := bc.BitmapForID(uint32(id)).AppendPositionsTo(nil)
			for j := range ps {
				ps[j] += offs[i]
			}
			lp[id] = ps
		}
		locals[i] = lp
	})
	out := make([][]uint64, d.Len())
	for i := range segs {
		for id, ps := range locals[i] {
			g := mappings[i][id]
			out[g] = append(out[g], ps...)
		}
	}
	return out, d, nil
}

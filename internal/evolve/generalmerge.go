package evolve

import (
	"fmt"

	"cods/internal/colstore"
	"cods/internal/dict"
)

// joinGroup describes one distinct join value occurring in both inputs.
type joinGroup struct {
	sPositions []uint64 // rows of s holding the value, ascending
	tPositions []uint64 // rows of t holding the value, ascending
}

// MergeGeneral performs general mergence (paper §2.5.2): an equi-join of s
// and t on their common attributes when those attributes are not a key of
// either input, so no column can be reused.
//
// Pass 1 runs over the join attributes only and counts occurrences n1(v)
// and n2(v) of each distinct join value; the output is clustered by join
// value, each value occupying a block of n1·n2 consecutive rows, so the
// join attributes' bitmaps are single fill runs derived from the counts.
// Pass 2 streams the non-join attributes: values from s repeat in
// consecutive stretches of length n2 within a block, values from t repeat
// with stride n2 ("non-consecutive but with the same distance"); both
// layouts are emitted in ascending output position, so every per-value
// bitmap is built by monotone compressed appends.
func MergeGeneral(s, t *colstore.Table, outName string, opt Options) (*colstore.Table, error) {
	common, err := commonColumns(s, t)
	if err != nil {
		return nil, err
	}
	opt.trace(fmt.Sprintf("general mergence pass 1: counting join values of %v", common))
	groups, err := buildJoinGroups(s, t, common, opt)
	if err != nil {
		return nil, err
	}

	var outRows uint64
	for _, g := range groups {
		outRows += uint64(len(g.sPositions)) * uint64(len(g.tPositions))
	}

	opt.trace(fmt.Sprintf("general mergence pass 2: laying out %d output rows clustered by join value", outRows))

	// Pass 2 builds each output column from the shared (read-only) group
	// layout with its own builder, so the columns are independent tasks.
	var tasks []func() (*colstore.Column, error)

	// Join attribute columns: per group a single fill run.
	for _, cn := range common {
		tasks = append(tasks, func() (*colstore.Column, error) {
			sc, err := s.Column(cn)
			if err != nil {
				return nil, err
			}
			ids := sc.RowIDs()
			b := colstore.NewColumnBuilderWithDict(cn, sc.Dict())
			for _, g := range groups {
				v := ids[g.sPositions[0]]
				b.AppendRunID(v, uint64(len(g.sPositions))*uint64(len(g.tPositions)))
			}
			return b.Finish(), nil
		})
	}

	// Non-join attributes of s: consecutive runs of length n2.
	for _, cn := range minus(s.ColumnNames(), common) {
		tasks = append(tasks, func() (*colstore.Column, error) {
			sc, err := s.Column(cn)
			if err != nil {
				return nil, err
			}
			ids := sc.RowIDs()
			b := colstore.NewColumnBuilderWithDict(cn, sc.Dict())
			for _, g := range groups {
				n2 := uint64(len(g.tPositions))
				for _, p := range g.sPositions {
					b.AppendRunID(ids[p], n2)
				}
			}
			return b.Finish(), nil
		})
	}

	// Non-join attributes of t: the per-block value sequence (one value
	// per t row in the group) repeats n1 times; emit its runs per
	// repetition so appends stay monotone.
	for _, cn := range minus(t.ColumnNames(), common) {
		tasks = append(tasks, func() (*colstore.Column, error) {
			tc, err := t.Column(cn)
			if err != nil {
				return nil, err
			}
			ids := tc.RowIDs()
			b := colstore.NewColumnBuilderWithDict(cn, tc.Dict())
			var runIDs []uint32
			var runLens []uint64
			for _, g := range groups {
				runIDs, runLens = runIDs[:0], runLens[:0]
				for _, p := range g.tPositions {
					id := ids[p]
					if n := len(runIDs); n > 0 && runIDs[n-1] == id {
						runLens[n-1]++
					} else {
						runIDs = append(runIDs, id)
						runLens = append(runLens, 1)
					}
				}
				for j := 0; j < len(g.sPositions); j++ {
					for k := range runIDs {
						b.AppendRunID(runIDs[k], runLens[k])
					}
				}
			}
			return b.Finish(), nil
		})
	}

	outCols := make([]*colstore.Column, len(tasks))
	if err := opt.forEachErr(len(tasks), func(i int) error {
		c, err := tasks[i]()
		outCols[i] = c
		return err
	}); err != nil {
		return nil, err
	}

	return colstore.NewTable(outName, outCols, nil)
}

// buildJoinGroups returns, per distinct join value present in both inputs,
// the ascending row positions in each input. Join values appearing in only
// one input produce no output rows (inner-join semantics) and are skipped.
// Group order follows s's dictionary id order for single-attribute joins
// and first appearance in s for composite joins, making output layout
// deterministic.
func buildJoinGroups(s, t *colstore.Table, common []string, opt Options) ([]joinGroup, error) {
	if len(common) == 1 {
		sc, err := s.Column(common[0])
		if err != nil {
			return nil, err
		}
		tc, err := t.Column(common[0])
		if err != nil {
			return nil, err
		}
		sb, tb := sc.ToBitmapEncoding(), tc.ToBitmapEncoding()
		// Decompress each value's position lists in parallel, then compact
		// in dictionary id order to keep the output layout deterministic.
		found := make([]*joinGroup, sb.DistinctCount())
		opt.forEach(sb.DistinctCount(), func(id int) {
			value := sb.Dict().Value(uint32(id))
			tid := tb.Dict().Lookup(value)
			if tid == dict.NoID {
				return
			}
			found[id] = &joinGroup{
				sPositions: sb.BitmapForID(uint32(id)).AppendPositionsTo(nil),
				tPositions: tb.BitmapForID(tid).AppendPositionsTo(nil),
			}
		})
		var groups []joinGroup
		for _, g := range found {
			if g != nil {
				groups = append(groups, *g)
			}
		}
		return groups, nil
	}
	// Composite join: group rows by composite value with one scan per
	// input.
	sKeys, err := compositeKeys(s, common)
	if err != nil {
		return nil, err
	}
	tKeys, err := compositeKeys(t, common)
	if err != nil {
		return nil, err
	}
	tIndex := make(map[string][]uint64)
	for row, k := range tKeys {
		tIndex[k] = append(tIndex[k], uint64(row))
	}
	sIndex := make(map[string]int)
	var groups []joinGroup
	for row, k := range sKeys {
		tpos, ok := tIndex[k]
		if !ok {
			continue
		}
		gi, seen := sIndex[k]
		if !seen {
			gi = len(groups)
			sIndex[k] = gi
			groups = append(groups, joinGroup{tPositions: tpos})
		}
		groups[gi].sPositions = append(groups[gi].sPositions, uint64(row))
	}
	return groups, nil
}

// compositeKeys materializes the composite join key of every row.
func compositeKeys(t *colstore.Table, columns []string) ([]string, error) {
	ids := make([][]uint32, len(columns))
	dicts := make([]func(uint32) string, len(columns))
	for i, cn := range columns {
		c, err := t.Column(cn)
		if err != nil {
			return nil, err
		}
		ids[i] = c.RowIDs()
		dicts[i] = c.Dict().Value
	}
	out := make([]string, t.NumRows())
	for row := range out {
		k := ""
		for i := range ids {
			k += dicts[i](ids[i][row]) + "\x00"
		}
		out[row] = k
	}
	return out, nil
}

package evolve

import (
	"fmt"

	"cods/internal/colstore"
	"cods/internal/dict"
)

// joinGroup describes one distinct join value occurring in both inputs.
type joinGroup struct {
	sPositions []uint64 // rows of s holding the value, ascending
	tPositions []uint64 // rows of t holding the value, ascending
}

// MergeGeneral performs general mergence (paper §2.5.2): an equi-join of s
// and t on their common attributes when those attributes are not a key of
// either input, so no column can be reused.
//
// Pass 1 runs over the join attributes only and counts occurrences n1(v)
// and n2(v) of each distinct join value; the output is clustered by join
// value, each value occupying a block of n1·n2 consecutive rows, so the
// join attributes' bitmaps are single fill runs derived from the counts.
// Pass 2 streams the non-join attributes: values from s repeat in
// consecutive stretches of length n2 within a block, values from t repeat
// with stride n2 ("non-consecutive but with the same distance"); both
// layouts are emitted in ascending output position, so every per-value
// bitmap is built by monotone compressed appends.
//
// Segment-wise (the default), pass 1 builds the join groups per segment —
// each segment decodes its local per-value position lists, restitched at
// segment offsets under a union dictionary — and pass 2 reads row ids
// through the same remapping instead of a stitched column, so no input
// bitmap is ever concatenated. The output is inherently a reshuffle and
// is emitted as a single fresh segment either way; the two paths produce
// identical tables because the union dictionary order equals the stitched
// dictionary order by construction.
func MergeGeneral(s, t *colstore.Table, outName string, opt Options) (*colstore.Table, error) {
	common, err := commonColumns(s, t)
	if err != nil {
		return nil, err
	}
	var groups []joinGroup
	if opt.Rebuild {
		opt.trace(fmt.Sprintf("general mergence pass 1: counting join values of %v", common))
		groups, err = buildJoinGroups(s, t, common, opt)
	} else {
		opt.trace(fmt.Sprintf("general mergence pass 1 (map): building join groups of %v from %d+%d segments", common, s.NumSegments(), t.NumSegments()))
		groups, err = buildJoinGroupsSegmented(s, t, common, opt)
	}
	if err != nil {
		return nil, err
	}

	var outRows uint64
	for _, g := range groups {
		outRows += uint64(len(g.sPositions)) * uint64(len(g.tPositions))
	}

	opt.trace(fmt.Sprintf("general mergence pass 2: laying out %d output rows clustered by join value", outRows))

	// colIDs reads a column's per-row value ids and its dictionary — from
	// the stitched whole-table view on the oracle path, via per-segment
	// decode and dictionary-union remapping (no bitmap stitch) on the
	// segment-wise path. Both produce identical (ids, dictionary) pairs,
	// so pass 2 below is shared.
	colIDs := func(tab *colstore.Table, cn string) ([]uint32, *dict.Dict, error) {
		if opt.Rebuild {
			c, err := tab.Column(cn)
			if err != nil {
				return nil, nil, err
			}
			return c.RowIDs(), c.Dict(), nil
		}
		return rowIDsRemapped(tab, cn, opt)
	}

	// Pass 2 builds each output column from the shared (read-only) group
	// layout with its own builder, so the columns are independent tasks.
	var tasks []func() (*colstore.Column, error)

	// Join attribute columns: per group a single fill run.
	for _, cn := range common {
		tasks = append(tasks, func() (*colstore.Column, error) {
			ids, d, err := colIDs(s, cn)
			if err != nil {
				return nil, err
			}
			b := colstore.NewColumnBuilderWithDict(cn, d)
			for _, g := range groups {
				v := ids[g.sPositions[0]]
				b.AppendRunID(v, uint64(len(g.sPositions))*uint64(len(g.tPositions)))
			}
			return b.Finish(), nil
		})
	}

	// Non-join attributes of s: consecutive runs of length n2.
	for _, cn := range minus(s.ColumnNames(), common) {
		tasks = append(tasks, func() (*colstore.Column, error) {
			ids, d, err := colIDs(s, cn)
			if err != nil {
				return nil, err
			}
			b := colstore.NewColumnBuilderWithDict(cn, d)
			for _, g := range groups {
				n2 := uint64(len(g.tPositions))
				for _, p := range g.sPositions {
					b.AppendRunID(ids[p], n2)
				}
			}
			return b.Finish(), nil
		})
	}

	// Non-join attributes of t: the per-block value sequence (one value
	// per t row in the group) repeats n1 times; emit its runs per
	// repetition so appends stay monotone.
	for _, cn := range minus(t.ColumnNames(), common) {
		tasks = append(tasks, func() (*colstore.Column, error) {
			ids, d, err := colIDs(t, cn)
			if err != nil {
				return nil, err
			}
			b := colstore.NewColumnBuilderWithDict(cn, d)
			var runIDs []uint32
			var runLens []uint64
			for _, g := range groups {
				runIDs, runLens = runIDs[:0], runLens[:0]
				for _, p := range g.tPositions {
					id := ids[p]
					if n := len(runIDs); n > 0 && runIDs[n-1] == id {
						runLens[n-1]++
					} else {
						runIDs = append(runIDs, id)
						runLens = append(runLens, 1)
					}
				}
				for j := 0; j < len(g.sPositions); j++ {
					for k := range runIDs {
						b.AppendRunID(runIDs[k], runLens[k])
					}
				}
			}
			return b.Finish(), nil
		})
	}

	outCols := make([]*colstore.Column, len(tasks))
	if err := opt.forEachErr(len(tasks), func(i int) error {
		c, err := tasks[i]()
		outCols[i] = c
		return err
	}); err != nil {
		return nil, err
	}

	return colstore.NewTable(outName, outCols, nil)
}

// buildJoinGroups returns, per distinct join value present in both inputs,
// the ascending row positions in each input. Join values appearing in only
// one input produce no output rows (inner-join semantics) and are skipped.
// Group order follows s's dictionary id order for single-attribute joins
// and first appearance in s for composite joins, making output layout
// deterministic.
func buildJoinGroups(s, t *colstore.Table, common []string, opt Options) ([]joinGroup, error) {
	if len(common) == 1 {
		sc, err := s.Column(common[0])
		if err != nil {
			return nil, err
		}
		tc, err := t.Column(common[0])
		if err != nil {
			return nil, err
		}
		sb, tb := sc.ToBitmapEncoding(), tc.ToBitmapEncoding()
		// Decompress each value's position lists in parallel, then compact
		// in dictionary id order to keep the output layout deterministic.
		found := make([]*joinGroup, sb.DistinctCount())
		opt.forEach(sb.DistinctCount(), func(id int) {
			value := sb.Dict().Value(uint32(id))
			tid := tb.Dict().Lookup(value)
			if tid == dict.NoID {
				return
			}
			found[id] = &joinGroup{
				sPositions: sb.BitmapForID(uint32(id)).AppendPositionsTo(nil),
				tPositions: tb.BitmapForID(tid).AppendPositionsTo(nil),
			}
		})
		var groups []joinGroup
		for _, g := range found {
			if g != nil {
				groups = append(groups, *g)
			}
		}
		return groups, nil
	}
	// Composite join: group rows by composite value with one scan per
	// input.
	sKeys, err := compositeKeys(s, common)
	if err != nil {
		return nil, err
	}
	tKeys, err := compositeKeys(t, common)
	if err != nil {
		return nil, err
	}
	return groupComposite(sKeys, tKeys), nil
}

// groupComposite groups the per-row composite join keys of both inputs
// into joinGroups, ordered by first appearance in s.
func groupComposite(sKeys, tKeys []string) []joinGroup {
	tIndex := make(map[string][]uint64)
	for row, k := range tKeys {
		tIndex[k] = append(tIndex[k], uint64(row))
	}
	sIndex := make(map[string]int)
	var groups []joinGroup
	for row, k := range sKeys {
		tpos, ok := tIndex[k]
		if !ok {
			continue
		}
		gi, seen := sIndex[k]
		if !seen {
			gi = len(groups)
			sIndex[k] = gi
			groups = append(groups, joinGroup{tPositions: tpos})
		}
		groups[gi].sPositions = append(groups[gi].sPositions, uint64(row))
	}
	return groups
}

// buildJoinGroupsSegmented is buildJoinGroups without the stitch: for a
// single join attribute each input's per-value global position lists come
// from per-segment decodes restitched at segment offsets under a union
// dictionary (valuePositions), and group order follows that dictionary's
// id order — equal to the stitched dictionary order the monolithic path
// uses. Composite joins materialize per-row keys segment by segment and
// share the grouping with the monolithic path.
func buildJoinGroupsSegmented(s, t *colstore.Table, common []string, opt Options) ([]joinGroup, error) {
	if len(common) == 1 {
		sPos, sDict, err := valuePositions(s, common[0], opt)
		if err != nil {
			return nil, err
		}
		tPos, tDict, err := valuePositions(t, common[0], opt)
		if err != nil {
			return nil, err
		}
		var groups []joinGroup
		for id := 0; id < sDict.Len(); id++ {
			tid := tDict.Lookup(sDict.Value(uint32(id)))
			if tid == dict.NoID {
				continue
			}
			groups = append(groups, joinGroup{sPositions: sPos[id], tPositions: tPos[tid]})
		}
		return groups, nil
	}
	sKeys, err := compositeKeysSegmented(s, common, opt)
	if err != nil {
		return nil, err
	}
	tKeys, err := compositeKeysSegmented(t, common, opt)
	if err != nil {
		return nil, err
	}
	return groupComposite(sKeys, tKeys), nil
}

// compositeKeysSegmented materializes the composite join key of every
// row, one segment at a time (fanned out; the keys are value-based, so
// per-segment results agree with the whole-table scan).
func compositeKeysSegmented(t *colstore.Table, columns []string, opt Options) ([]string, error) {
	segs := t.Segments()
	offs := segmentOffsets(segs)
	out := make([]string, t.NumRows())
	if err := opt.forEachErr(len(segs), func(i int) error {
		s := segs[i]
		ids := make([][]uint32, len(columns))
		dicts := make([]func(uint32) string, len(columns))
		for j, cn := range columns {
			c, err := s.Column(cn)
			if err != nil {
				return err
			}
			ids[j] = c.RowIDs()
			dicts[j] = c.Dict().Value
		}
		off := offs[i]
		for row := uint64(0); row < s.NumRows(); row++ {
			k := ""
			for j := range ids {
				k += dicts[j](ids[j][row]) + "\x00"
			}
			out[off+row] = k
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// compositeKeys materializes the composite join key of every row.
func compositeKeys(t *colstore.Table, columns []string) ([]string, error) {
	ids := make([][]uint32, len(columns))
	dicts := make([]func(uint32) string, len(columns))
	for i, cn := range columns {
		c, err := t.Column(cn)
		if err != nil {
			return nil, err
		}
		ids[i] = c.RowIDs()
		dicts[i] = c.Dict().Value
	}
	out := make([]string, t.NumRows())
	for row := range out {
		k := ""
		for i := range ids {
			k += dicts[i](ids[i][row]) + "\x00"
		}
		out[row] = k
	}
	return out, nil
}
